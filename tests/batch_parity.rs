//! Batch/serial parity: every built-in dispatcher must produce identical
//! `EpisodeResult`s through the legacy per-order path (the default
//! `dispatch_batch` adapter, forced via `PerOrder`) and through its native
//! `dispatch_batch`, on quick-preset instances under both immediate service
//! and fixed-interval buffering (where real multi-order batches form).
//!
//! The same suite also proves the **thread-count invariance** the parallel
//! epoch scoring guarantees: running any policy on a
//! `SimulatorBuilder::num_threads(n)` pool yields decisions and metrics
//! bit-identical to `num_threads(1)`. The parallel width defaults to 4 and
//! can be overridden through the `DPDP_TEST_THREADS` env var (the CI test
//! matrix runs 1 and 4).
//!
//! And it proves the **shard-layout invariance** of the region-sharded
//! dispatch pipeline: `SimulatorBuilder::sharding(ShardConfig::flat(s))`
//! partitions every epoch geographically, prunes cross-shard
//! `(order, vehicle)` pairs through an exact infeasibility bound and
//! escalates the rest — and the resulting episodes are bit-identical to
//! the flat `shards = 1` scan for every policy, at 1 thread and at the
//! parallel width, on the metro preset (where the prune genuinely fires; a
//! guard test asserts non-vacuity). Hierarchical layouts and mid-episode
//! re-partitioning get the same treatment in `tests/repartition.rs`.

use dpdp_core::prelude::*;
use dpdp_net::TimeDelta;
use dpdp_rl::ActorCriticConfig;
use dpdp_sim::{BufferingMode, EpisodeResult, PerOrder, PlannerMode, ShardConfig};

fn presets() -> Presets {
    let mut cfg = DatasetConfig::default();
    cfg.generator.orders_per_day = 60;
    Presets::with_config(cfg)
}

/// Parallel width for the thread-parity runs: `DPDP_TEST_THREADS`, or 4.
fn parallel_threads() -> usize {
    std::env::var("DPDP_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(4)
}

fn run(
    instance: &Instance,
    buffering: BufferingMode,
    dispatcher: &mut dyn Dispatcher,
) -> EpisodeResult {
    run_threads(instance, buffering, dispatcher, 1)
}

fn run_threads(
    instance: &Instance,
    buffering: BufferingMode,
    dispatcher: &mut dyn Dispatcher,
    num_threads: usize,
) -> EpisodeResult {
    Simulator::builder(instance)
        .buffering(buffering)
        .num_threads(num_threads)
        .build()
        .expect("valid configuration")
        .run(dispatcher)
}

fn modes() -> [BufferingMode; 3] {
    [
        BufferingMode::Immediate,
        BufferingMode::FixedInterval(TimeDelta::from_minutes(10.0)),
        // A coarse period so whole groups of orders share one batch.
        BufferingMode::FixedInterval(TimeDelta::from_minutes(60.0)),
    ]
}

#[test]
fn greedy_baselines_match_through_both_paths() {
    let presets = presets();
    let instance = presets.dataset().sampled_instance(0..3, 30, 8, 21);
    for mode in modes() {
        let native1 = run(&instance, mode, &mut Baseline1);
        let serial1 = run(&instance, mode, &mut PerOrder(Baseline1));
        assert_eq!(native1, serial1, "Baseline1 diverged under {mode:?}");

        let native2 = run(&instance, mode, &mut Baseline2);
        let serial2 = run(&instance, mode, &mut PerOrder(Baseline2));
        assert_eq!(native2, serial2, "Baseline2 diverged under {mode:?}");

        let native3 = run(&instance, mode, &mut Baseline3::default());
        let serial3 = run(&instance, mode, &mut PerOrder(Baseline3::default()));
        assert_eq!(native3, serial3, "Baseline3 diverged under {mode:?}");
    }
}

#[test]
fn buffered_baseline1_actually_forms_multi_order_batches() {
    // Guard against the parity test going vacuous: under the coarse buffer
    // the episode must contain at least one epoch with several orders.
    use dpdp_sim::{EpochInfo, SimObserver};

    #[derive(Default)]
    struct MaxBatch(usize);
    impl SimObserver for MaxBatch {
        fn on_epoch(&mut self, epoch: &EpochInfo) {
            self.0 = self.0.max(epoch.num_orders);
        }
    }

    let presets = presets();
    let instance = presets.dataset().sampled_instance(0..3, 30, 8, 21);
    let mut probe = MaxBatch::default();
    Simulator::builder(&instance)
        .buffering(BufferingMode::FixedInterval(TimeDelta::from_minutes(60.0)))
        .build()
        .unwrap()
        .run_observed(&mut Baseline1, &mut [&mut probe]);
    assert!(
        probe.0 >= 2,
        "expected at least one multi-order flush epoch, largest was {}",
        probe.0
    );
}

/// The incremental O(n²) insertion evaluator must reproduce the naive
/// enumerate-and-resimulate reference **bit-identically** over whole
/// episodes: for every policy of the lineup and every buffering mode, the
/// full `EpisodeResult` — assignment log with per-pair winning routes and
/// lengths included — matches between `PlannerMode::Incremental` (the
/// default) and `PlannerMode::Naive`, at 1 thread and at the parallel
/// width. This is the end-to-end form of the per-pair parity asserted in
/// `crates/routing/tests/incremental_parity.rs`.
#[test]
fn incremental_planner_matches_naive_reference_end_to_end() {
    let presets = presets();
    let threads = parallel_threads();
    let instance = presets.dataset().sampled_instance(0..3, 30, 8, 21);
    let rl_instance = presets.dataset().sampled_instance(0..3, 20, 6, 9);
    let run_mode = |instance: &Instance,
                    buffering: BufferingMode,
                    dispatcher: &mut dyn Dispatcher,
                    mode: PlannerMode,
                    num_threads: usize| {
        Simulator::builder(instance)
            .buffering(buffering)
            .planner_mode(mode)
            .num_threads(num_threads)
            .build()
            .expect("valid configuration")
            .run(dispatcher)
    };
    for mode in modes() {
        for &width in &[1usize, threads] {
            type MakeDispatcher = fn() -> Box<dyn Dispatcher>;
            let heuristics: [(&str, MakeDispatcher); 3] = [
                ("Baseline1", || Box::new(Baseline1)),
                ("Baseline2", || Box::new(Baseline2)),
                ("Baseline3", || Box::<Baseline3>::default()),
            ];
            for (name, make) in heuristics {
                let fast = run_mode(
                    &instance,
                    mode,
                    &mut *make(),
                    PlannerMode::Incremental,
                    width,
                );
                let slow = run_mode(&instance, mode, &mut *make(), PlannerMode::Naive, width);
                assert_eq!(
                    fast, slow,
                    "{name} diverged between incremental and naive planner \
                     under {mode:?} at {width} thread(s)"
                );
            }
        }
        // One learned policy episode (seeded identically) for coverage of
        // the RL joint-state path; width 1 keeps the suite fast.
        let mut dqn_fast = models::dqn_agent(ModelKind::Dgn, presets.dataset(), 5);
        let mut dqn_slow = models::dqn_agent(ModelKind::Dgn, presets.dataset(), 5);
        let a = run_mode(
            &rl_instance,
            mode,
            &mut dqn_fast,
            PlannerMode::Incremental,
            1,
        );
        let b = run_mode(&rl_instance, mode, &mut dqn_slow, PlannerMode::Naive, 1);
        assert_eq!(
            a, b,
            "DQN diverged between incremental and naive planner under {mode:?}"
        );
    }
}

/// The region-sharded dispatch pipeline must be invisible in results:
/// episodes at `shards = N` are bit-identical to `shards = 1`, for
/// Baselines 1–3 and DQN, at 1 thread and at the parallel width, under
/// immediate service and coarse buffering (multi-order sharded epochs).
/// Runs on a metro instance where cross-shard pruning genuinely fires
/// (see `sharded_metro_epochs_actually_prune` for the non-vacuity guard).
#[test]
fn every_policy_is_bit_identical_across_shard_counts() {
    let metro = Presets::metro(7);
    let instance = metro.metro_instance(60, 32, 5);
    let rl_instance = metro.metro_instance(24, 12, 9);
    let threads = parallel_threads();
    let run_sharded = |instance: &Instance,
                       buffering: BufferingMode,
                       dispatcher: &mut dyn Dispatcher,
                       shards: usize,
                       num_threads: usize| {
        Simulator::builder(instance)
            .buffering(buffering)
            .sharding(ShardConfig::flat(shards).expect("positive shard count"))
            .num_threads(num_threads)
            .build()
            .expect("valid configuration")
            .run(dispatcher)
    };
    let buffer_modes = [
        BufferingMode::Immediate,
        BufferingMode::FixedInterval(TimeDelta::from_minutes(60.0)),
    ];
    for mode in buffer_modes {
        type MakeDispatcher = fn() -> Box<dyn Dispatcher>;
        let heuristics: [(&str, MakeDispatcher); 3] = [
            ("Baseline1", || Box::new(Baseline1)),
            ("Baseline2", || Box::new(Baseline2)),
            ("Baseline3", || Box::<Baseline3>::default()),
        ];
        for (name, make) in heuristics {
            let flat = run_sharded(&instance, mode, &mut *make(), 1, 1);
            assert_eq!(flat.assignments.len(), instance.num_orders());
            for shards in [2usize, 4] {
                for &width in &[1usize, threads] {
                    let sharded = run_sharded(&instance, mode, &mut *make(), shards, width);
                    assert_eq!(
                        flat, sharded,
                        "{name} diverged at {shards} shards / {width} thread(s) under {mode:?}"
                    );
                }
            }
        }

        // One learned policy: identically seeded agents, so the whole
        // training episode (exploration RNG included) must match.
        let flat = {
            let mut agent = models::dqn_agent(ModelKind::Dgn, metro.dataset(), 5);
            run_sharded(&rl_instance, mode, &mut agent, 1, 1)
        };
        for &(shards, width) in &[(4usize, 1usize), (4, threads)] {
            let mut agent = models::dqn_agent(ModelKind::Dgn, metro.dataset(), 5);
            let sharded = run_sharded(&rl_instance, mode, &mut agent, shards, width);
            assert_eq!(
                flat, sharded,
                "DQN diverged at {shards} shards / {width} thread(s) under {mode:?}"
            );
        }
    }
}

/// Non-vacuity guard for the shard parity suite: on the metro instance the
/// sharded sweep must actually prune a substantial share of cross-shard
/// cells — otherwise the bit-identity assertions above would hold
/// trivially because every cell ran the full sweep anyway.
#[test]
fn sharded_metro_epochs_actually_prune() {
    use dpdp_sim::{EpochInfo, ShardStats, SimObserver};

    #[derive(Default)]
    struct Tally(ShardStats);
    impl SimObserver for Tally {
        fn on_epoch(&mut self, e: &EpochInfo) {
            self.0.cells += e.shards.cells;
            self.0.evaluated += e.shards.evaluated;
            self.0.pruned += e.shards.pruned;
            self.0.escalated += e.shards.escalated;
        }
    }

    let metro = Presets::metro(7);
    let instance = metro.metro_instance(60, 32, 5);
    let mut tally = Tally::default();
    Simulator::builder(&instance)
        .sharding(ShardConfig::flat(4).unwrap())
        .build()
        .unwrap()
        .run_observed(&mut Baseline1, &mut [&mut tally]);
    let stats = tally.0;
    assert_eq!(stats.cells, stats.evaluated + stats.pruned);
    assert!(
        stats.pruned as f64 >= 0.3 * stats.cells as f64,
        "expected >= 30% of cells pruned on the metro instance, got {}/{}",
        stats.pruned,
        stats.cells
    );
    assert!(stats.escalated > 0, "escalation must also fire");
}

#[test]
fn dqn_agent_matches_through_both_paths() {
    // Two freshly built agents share every seed, so as long as the batch
    // path consumes the RNG and scores snapshots identically, the whole
    // training episode (exploration included) must match decision for
    // decision.
    let presets = presets();
    let instance = presets.dataset().sampled_instance(0..3, 20, 6, 9);
    for mode in modes() {
        let mut native = models::dqn_agent(ModelKind::Dgn, presets.dataset(), 5);
        let mut serial = PerOrder(models::dqn_agent(ModelKind::Dgn, presets.dataset(), 5));
        for episode in 0..2 {
            let a = run(&instance, mode, &mut native);
            let b = run(&instance, mode, &mut serial);
            assert_eq!(
                a, b,
                "DQN episode {episode} diverged between native batch and \
                 per-order dispatch under {mode:?}"
            );
        }
    }
}

/// Every policy of the evaluation lineup — Baselines 1-3, DQN, AC — must
/// produce identical decisions (assignment log included) and metrics on a
/// multi-threaded scoring pool, under both immediate service and coarse
/// buffering (where the parallel `B x K` sweep sees real multi-order
/// epochs).
#[test]
fn every_policy_is_bit_identical_across_thread_counts() {
    let presets = presets();
    let threads = parallel_threads();
    let instance = presets.dataset().sampled_instance(0..3, 30, 8, 21);
    let rl_instance = presets.dataset().sampled_instance(0..3, 20, 6, 9);
    for mode in modes() {
        // Heuristics are stateless across runs (Baseline3 resets per
        // episode), so one value can serve both thread counts.
        type MakeDispatcher = fn() -> Box<dyn Dispatcher>;
        let heuristics: [(&str, MakeDispatcher); 3] = [
            ("Baseline1", || Box::new(Baseline1)),
            ("Baseline2", || Box::new(Baseline2)),
            ("Baseline3", || Box::<Baseline3>::default()),
        ];
        for (name, make) in heuristics {
            let serial = run_threads(&instance, mode, &mut *make(), 1);
            let parallel = run_threads(&instance, mode, &mut *make(), threads);
            assert_eq!(
                serial, parallel,
                "{name} diverged at {threads} threads under {mode:?}"
            );
            assert_eq!(serial.assignments.len(), instance.num_orders());
        }

        // Learned agents: identical seeds, training mode (exploration RNG
        // included) — the whole episode must match decision for decision.
        let mut dqn_serial = models::dqn_agent(ModelKind::Dgn, presets.dataset(), 5);
        let mut dqn_parallel = models::dqn_agent(ModelKind::Dgn, presets.dataset(), 5);
        let a = run_threads(&rl_instance, mode, &mut dqn_serial, 1);
        let b = run_threads(&rl_instance, mode, &mut dqn_parallel, threads);
        assert_eq!(a, b, "DQN diverged at {threads} threads under {mode:?}");

        let cfg = ActorCriticConfig {
            seed: 3,
            ..ActorCriticConfig::default()
        };
        let mut ac_serial = ActorCriticAgent::new(cfg.clone(), 144);
        let mut ac_parallel = ActorCriticAgent::new(cfg, 144);
        let a = run_threads(&rl_instance, mode, &mut ac_serial, 1);
        let b = run_threads(&rl_instance, mode, &mut ac_parallel, threads);
        assert_eq!(a, b, "AC diverged at {threads} threads under {mode:?}");
    }
}

#[test]
fn actor_critic_matches_through_both_paths() {
    let presets = presets();
    let instance = presets.dataset().sampled_instance(0..3, 20, 6, 13);
    let cfg = ActorCriticConfig {
        seed: 3,
        ..ActorCriticConfig::default()
    };
    for mode in modes() {
        let mut native = ActorCriticAgent::new(cfg.clone(), 144);
        let mut serial = PerOrder(ActorCriticAgent::new(cfg.clone(), 144));
        for episode in 0..2 {
            let a = run(&instance, mode, &mut native);
            let b = run(&instance, mode, &mut serial);
            assert_eq!(
                a, b,
                "AC episode {episode} diverged between native batch and \
                 per-order dispatch under {mode:?}"
            );
        }
    }
}
