//! Cross-crate integration tests: the full pipeline from synthetic data to
//! trained dispatchers and exact optima.

use dpdp_core::models::{self, ModelSpec};
use dpdp_core::prelude::*;
use dpdp_rl::CapacityRecorder;
use dpdp_sim::Dispatcher;

fn quick_presets() -> Presets {
    let mut cfg = DatasetConfig::default();
    cfg.generator.orders_per_day = 60;
    Presets::with_config(cfg)
}

#[test]
fn baselines_serve_all_orders_on_sampled_instances() {
    let presets = quick_presets();
    for seed in [1, 2] {
        let instance = presets.dataset().sampled_instance(0..3, 30, 10, seed);
        for mut d in [
            models::baseline1(),
            models::baseline2(),
            models::baseline3(),
        ] {
            let row = evaluate(&mut *d, &instance);
            assert_eq!(
                row.served, 30,
                "{} rejected orders on seed {seed}",
                row.algo
            );
            // Cost identity: TC = mu * NUV + delta * TTL.
            let expect = instance.fleet.total_cost(row.nuv, row.ttl);
            assert!((row.total_cost - expect).abs() < 1e-6);
        }
    }
}

#[test]
fn exact_lower_bounds_all_heuristics_on_tiny_instances() {
    let presets = quick_presets();
    for seed in [3, 4, 5] {
        let instance = presets.tiny_instance(5, seed);
        let sol = ExactSolver::new().solve(&instance).expect("feasible");
        assert!(sol.optimal);
        dpdp_baselines::exact::validate_solution(&instance, &sol.routes).unwrap();
        for mut d in [
            models::baseline1(),
            models::baseline2(),
            models::baseline3(),
        ] {
            let row = evaluate(&mut *d, &instance);
            if row.served == instance.num_orders() {
                assert!(
                    sol.total_cost <= row.total_cost + 1e-6,
                    "exact {} > {} {} on seed {seed}",
                    sol.total_cost,
                    row.algo,
                    row.total_cost
                );
            }
        }
    }
}

#[test]
fn every_paper_model_trains_and_evaluates_end_to_end() {
    let presets = quick_presets();
    let instance = presets.dataset().sampled_instance(0..3, 20, 8, 7);
    for spec in ModelSpec::comparison_lineup() {
        let mut model = dpdp_bench_model(spec, &presets);
        // Two training episodes, then greedy evaluation.
        if spec.is_learned() {
            train(model.as_mut(), &instance, &TrainerConfig::new(2));
        }
        let row = evaluate(model.as_mut(), &instance);
        assert_eq!(row.algo, spec.name());
        assert_eq!(
            row.served + row.rejected,
            instance.num_orders(),
            "{} lost orders",
            spec.name()
        );
        assert!(row.total_cost >= 0.0);
    }
}

/// Local stand-in for `dpdp_bench::Model` (the bench crate is not a
/// dependency of the test target): builds a boxed dispatcher per spec with
/// ST prediction wired.
fn dpdp_bench_model(spec: ModelSpec, presets: &Presets) -> Box<dyn Dispatcher> {
    match spec {
        ModelSpec::Baseline1 => models::baseline1(),
        ModelSpec::Baseline2 => models::baseline2(),
        ModelSpec::Baseline3 => models::baseline3(),
        ModelSpec::ActorCritic => Box::new(models::actor_critic(presets.dataset(), 1)),
        ModelSpec::Dqn(kind) => {
            let mut agent = models::dqn_agent(kind, presets.dataset(), 1);
            agent.set_prediction(Some(presets.train_prediction(2)));
            Box::new(agent)
        }
    }
}

#[test]
fn trained_policy_checkpoint_roundtrip_preserves_behaviour() {
    use dpdp_nn::serialize::{load_params, save_params};
    let presets = quick_presets();
    let instance = presets.dataset().sampled_instance(0..2, 15, 6, 11);
    let mut agent = models::dqn_agent(ModelKind::Ddgn, presets.dataset(), 5);
    train(&mut agent, &instance, &TrainerConfig::new(3));
    agent.set_training(false);
    let before = evaluate(&mut agent, &instance);

    let bytes = save_params(agent.params());
    let mut clone = models::dqn_agent(ModelKind::Ddgn, presets.dataset(), 999);
    let mut params = clone.params().clone();
    load_params(&mut params, &bytes).unwrap();
    clone.load_params(&params);
    clone.set_training(false);
    let after = evaluate(&mut clone, &instance);
    assert_eq!(before.nuv, after.nuv);
    assert!((before.total_cost - after.total_cost).abs() < 1e-9);
}

#[test]
fn capacity_recorder_composes_with_learned_agents() {
    let presets = quick_presets();
    let instance = presets.dataset().sampled_instance(0..2, 15, 6, 13);
    let mut agent = models::dqn_agent(ModelKind::Dgn, presets.dataset(), 3);
    let index = presets.dataset().factory_index();
    // The recorder observes the episode; the agent is not wrapped.
    let mut rec = CapacityRecorder::new(instance.grid, index);
    let result = Simulator::builder(&instance)
        .build()
        .unwrap()
        .run_observed(&mut agent, &mut [&mut rec]);
    assert_eq!(result.metrics.served, 15);
    let m = rec.take_matrix();
    assert!(m.total() > 0.0, "capacity must be recorded somewhere");
}

#[test]
fn st_ddgn_full_pipeline_with_prediction() {
    // The headline model, end to end: dataset -> prediction -> scorer ->
    // training -> greedy evaluation, all deterministic per seed.
    let presets = quick_presets();
    let instance = presets.dataset().sampled_instance(0..3, 20, 8, 17);
    let mut a = models::dqn_agent(ModelKind::StDdgn, presets.dataset(), 21);
    a.set_prediction(Some(presets.train_prediction(3)));
    train(&mut a, &instance, &TrainerConfig::new(3));
    a.set_training(false);
    let first = evaluate(&mut a, &instance);

    let mut b = models::dqn_agent(ModelKind::StDdgn, presets.dataset(), 21);
    b.set_prediction(Some(presets.train_prediction(3)));
    train(&mut b, &instance, &TrainerConfig::new(3));
    b.set_training(false);
    let second = evaluate(&mut b, &instance);
    assert_eq!(first.nuv, second.nuv, "same seed must give same policy");
    assert!((first.total_cost - second.total_cost).abs() < 1e-9);
}
