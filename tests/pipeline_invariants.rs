//! Property-based invariants of the full pipeline, over randomly generated
//! instances.

use dpdp_core::models;
use dpdp_core::prelude::*;
use dpdp_data::{CampusConfig, DivergenceKind};
use dpdp_net::TimeDelta;
use proptest::prelude::*;

fn arb_dataset_config() -> impl Strategy<Value = DatasetConfig> {
    (2usize..8, 20usize..60, 1u64..1000, 1.0f64..1.5).prop_map(
        |(factories, orders, seed, detour)| {
            let mut cfg = DatasetConfig {
                campus: CampusConfig {
                    num_depots: 1 + (seed % 2) as usize,
                    num_factories: factories.max(3),
                    area_km: 8.0,
                    detour_factor: detour,
                    seed,
                    ..CampusConfig::default()
                },
                ..DatasetConfig::default()
            };
            cfg.generator.orders_per_day = orders;
            cfg.generator.seed = seed.wrapping_mul(31);
            cfg
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For any generated instance, every baseline satisfies the accounting
    /// identities: TC = mu*NUV + delta*TTL, served + rejected = orders, and
    /// NUV never exceeds the fleet or the number of served orders.
    #[test]
    fn baseline_metrics_identities(cfg in arb_dataset_config(), seed in 0u64..50) {
        let ds = Dataset::new(cfg);
        let orders = ds.day_orders(0).len().min(15);
        prop_assume!(orders >= 3);
        let instance = ds.sampled_instance(0..1, orders, 6, seed);
        for mut d in [models::baseline1(), models::baseline2(), models::baseline3()] {
            let row = evaluate(&mut *d, &instance);
            prop_assert_eq!(row.served + row.rejected, instance.num_orders());
            let expect = instance.fleet.total_cost(row.nuv, row.ttl);
            prop_assert!((row.total_cost - expect).abs() < 1e-6);
            prop_assert!(row.nuv <= instance.num_vehicles());
            prop_assert!(row.nuv <= row.served.max(1));
            prop_assert!(row.ttl >= 0.0);
        }
    }

    /// The exact solver never exceeds the greedy incumbent, and its
    /// solution always validates (constraint audit over the whole route
    /// set).
    #[test]
    fn exact_never_worse_than_greedy(cfg in arb_dataset_config(), seed in 0u64..20) {
        let ds = Dataset::new(cfg);
        prop_assume!(ds.day_orders(0).len() >= 4);
        let instance = ds.sampled_instance(0..1, 4, 4, seed);
        let solver = ExactSolver {
            config: dpdp_baselines::ExactConfig {
                time_limit: Some(std::time::Duration::from_secs(5)),
                node_limit: Some(200_000),
            },
        };
        if let Some(sol) = solver.solve(&instance) {
            dpdp_baselines::exact::validate_solution(&instance, &sol.routes).unwrap();
            let mut b1 = models::baseline1();
            let row = evaluate(&mut *b1, &instance);
            if row.served == instance.num_orders() {
                prop_assert!(sol.total_cost <= row.total_cost + 1e-6,
                    "exact {} worse than greedy {}", sol.total_cost, row.total_cost);
            }
        }
    }

    /// STD matrices conserve mass: the matrix total equals the total order
    /// quantity, for any day.
    #[test]
    fn std_matrix_conserves_quantity(cfg in arb_dataset_config(), day in 0u64..30) {
        let ds = Dataset::new(cfg);
        let orders = ds.day_orders(day);
        let m = StdMatrix::from_orders(&orders, &ds.grid(), &ds.factory_index());
        let total: f64 = orders.iter().map(|o| o.quantity).sum();
        prop_assert!((m.total() - total).abs() < 1e-9);
    }

    /// ST scores are finite, non-negative, bounded by ln 2 under JS, and
    /// zero for empty routes — for arbitrary feasible direct routes.
    #[test]
    fn st_scores_are_bounded(cfg in arb_dataset_config(), seed in 0u64..20) {
        let ds = Dataset::new(cfg);
        prop_assume!(ds.day_orders(0).len() >= 2);
        let instance = ds.sampled_instance(0..1, 2, 2, seed);
        let scorer = StScorer::new(ds.grid(), ds.factory_index());
        let skl = StScorer::with_divergence(ds.grid(), ds.factory_index(), DivergenceKind::SymmetricKl);
        let pred = ds.predicted_std(1, 1);
        let order = &instance.orders()[0];
        let view = dpdp_routing::VehicleView::idle_at_depot(
            instance.fleet.vehicles[0].id,
            instance.fleet.vehicles[0].depot,
        );
        let route = dpdp_routing::Route::from_stops(vec![
            dpdp_routing::Stop::pickup(order.pickup, order.id),
            dpdp_routing::Stop::delivery(order.delivery, order.id),
        ]);
        if let Ok(sched) = dpdp_routing::simulate_schedule(
            &view, &route, &instance.network, &instance.fleet, instance.orders(),
        ) {
            let js = scorer.score(&view, &sched, &pred, instance.fleet.capacity);
            prop_assert!(js.is_finite() && js >= 0.0);
            prop_assert!(js <= std::f64::consts::LN_2 + 1e-9, "JS score {js} above ln 2");
            let kl = skl.score(&view, &sched, &pred, instance.fleet.capacity);
            prop_assert!(kl.is_finite() && kl >= 0.0);
        }
    }

    /// Buffering can only delay decisions: the average response time is
    /// non-decreasing in the buffer period, and immediate service has zero
    /// response time.
    #[test]
    fn buffering_response_monotonicity(cfg in arb_dataset_config(), seed in 0u64..20) {
        let ds = Dataset::new(cfg);
        prop_assume!(ds.day_orders(0).len() >= 5);
        let instance = ds.sampled_instance(0..1, 5, 5, seed);
        let mut responses = Vec::new();
        for minutes in [0.0, 10.0, 30.0] {
            let buffering = if minutes == 0.0 {
                dpdp_sim::BufferingMode::Immediate
            } else {
                dpdp_sim::BufferingMode::FixedInterval(TimeDelta::from_minutes(minutes))
            };
            let mut b1 = models::baseline1();
            let r = Simulator::builder(&instance)
                .buffering(buffering)
                .build()
                .unwrap()
                .run(&mut *b1);
            responses.push(r.metrics.avg_response_secs);
        }
        prop_assert_eq!(responses[0], 0.0);
        prop_assert!(responses[1] <= responses[2] + 1e-9);
    }
}
