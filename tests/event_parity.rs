//! Event-engine parity and determinism.
//!
//! 1. **Replay parity** — `Simulator::run_observed` now drives episodes
//!    through the event engine (a `ReplaySource` over the order table
//!    merged with nothing else); `Simulator::run_reference` is the
//!    pre-refactor scan loop kept verbatim. For Baselines 1–3 and DQN,
//!    across shard counts {1, 4} × thread widths {1, N} and both
//!    buffering strategies, the two must produce **bit-identical**
//!    `EpisodeResult`s.
//! 2. **Seeded-disruption determinism** — with a `DisruptionConfig`
//!    armed, the same seed reproduces the identical episode *and* the
//!    identical disruption trace; a different seed moves the trace.
//! 3. **Stream serving** — a second thread pushes orders into a live
//!    episode (`Simulator::serve`) and each pushed order is decided at
//!    exactly the flush epoch its creation time maps to.

use dpdp_core::prelude::*;
use dpdp_net::{
    FleetConfig, IntervalGrid, Node, NodeId, Order, OrderId, Point, RoadNetwork, TimeDelta,
    TimePoint,
};
use dpdp_rl::ActorCriticConfig;
use dpdp_sim::{BufferingMode, DisruptionRecord, EpisodeResult, EpochInfo, ShardConfig};

/// Parallel width for the thread-parity legs: `DPDP_TEST_THREADS`, or 4.
fn parallel_threads() -> usize {
    std::env::var("DPDP_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(4)
}

fn build_sim<'a>(
    instance: &'a Instance,
    buffering: BufferingMode,
    shards: usize,
    threads: usize,
) -> Simulator<'a> {
    Simulator::builder(instance)
        .buffering(buffering)
        .sharding(ShardConfig::flat(shards).expect("positive shard count"))
        .num_threads(threads)
        .build()
        .expect("valid configuration")
}

/// The engine and the reference scan loop, same configuration, compared.
fn assert_parity(
    instance: &Instance,
    buffering: BufferingMode,
    shards: usize,
    threads: usize,
    make: &dyn Fn() -> Box<dyn Dispatcher>,
    label: &str,
) {
    let sim = build_sim(instance, buffering, shards, threads);
    let engine = sim.run_observed(&mut *make(), &mut []);
    let reference = sim.run_reference(&mut *make(), &mut []);
    assert_eq!(
        engine, reference,
        "{label} diverged between the event engine and the reference loop \
         at {shards} shard(s) / {threads} thread(s) under {buffering:?}"
    );
}

#[test]
fn replay_source_is_bit_identical_to_the_reference_loop() {
    let metro = Presets::metro(7);
    let instance = metro.metro_instance(60, 32, 5);
    let threads = parallel_threads();
    type MakeDispatcher = fn() -> Box<dyn Dispatcher>;
    let heuristics: [(&str, MakeDispatcher); 3] = [
        ("Baseline1", || Box::new(Baseline1)),
        ("Baseline2", || Box::new(Baseline2)),
        ("Baseline3", || Box::<Baseline3>::default()),
    ];
    let modes = [
        BufferingMode::Immediate,
        BufferingMode::FixedInterval(TimeDelta::from_minutes(60.0)),
    ];
    for mode in modes {
        for (name, make) in heuristics {
            for shards in [1usize, 4] {
                for &width in &[1usize, threads] {
                    assert_parity(&instance, mode, shards, width, &|| make(), name);
                }
            }
        }
    }
}

#[test]
fn replay_parity_covers_the_campus_preset_and_actor_critic() {
    // The quick-campus workload batch_parity runs on, plus the one policy
    // the metro matrix above leaves out: identically seeded AC agents on
    // each side of the engine/reference comparison.
    let mut cfg = DatasetConfig::default();
    cfg.generator.orders_per_day = 60;
    let presets = Presets::with_config(cfg);
    let instance = presets.dataset().sampled_instance(0..3, 30, 8, 21);
    let rl_instance = presets.dataset().sampled_instance(0..3, 20, 6, 13);
    let threads = parallel_threads();
    for mode in [
        BufferingMode::Immediate,
        BufferingMode::FixedInterval(TimeDelta::from_minutes(10.0)),
    ] {
        for &width in &[1usize, threads] {
            assert_parity(
                &instance,
                mode,
                1,
                width,
                &|| Box::new(Baseline1),
                "Baseline1",
            );
            let sim = build_sim(&rl_instance, mode, 1, width);
            let ac_cfg = ActorCriticConfig {
                seed: 3,
                ..ActorCriticConfig::default()
            };
            let engine = {
                let mut agent = ActorCriticAgent::new(ac_cfg.clone(), 144);
                sim.run_observed(&mut agent, &mut [])
            };
            let reference = {
                let mut agent = ActorCriticAgent::new(ac_cfg.clone(), 144);
                sim.run_reference(&mut agent, &mut [])
            };
            assert_eq!(
                engine, reference,
                "AC diverged at {width} thread(s) under {mode:?}"
            );
        }
    }
}

#[test]
fn replay_parity_holds_for_dqn_training_episodes() {
    // Identically seeded agents on each side: the whole training episode
    // (exploration RNG included) must match decision for decision.
    let metro = Presets::metro(7);
    let instance = metro.metro_instance(24, 12, 9);
    let threads = parallel_threads();
    for mode in [
        BufferingMode::Immediate,
        BufferingMode::FixedInterval(TimeDelta::from_minutes(60.0)),
    ] {
        for shards in [1usize, 4] {
            for &width in &[1usize, threads] {
                let sim = build_sim(&instance, mode, shards, width);
                let engine = {
                    let mut agent = models::dqn_agent(ModelKind::Dgn, metro.dataset(), 5);
                    sim.run_observed(&mut agent, &mut [])
                };
                let reference = {
                    let mut agent = models::dqn_agent(ModelKind::Dgn, metro.dataset(), 5);
                    sim.run_reference(&mut agent, &mut [])
                };
                assert_eq!(
                    engine, reference,
                    "DQN diverged at {shards} shard(s) / {width} thread(s) under {mode:?}"
                );
            }
        }
    }
}

/// Records a comparable rendering of every disruption the episode applied.
#[derive(Default)]
struct DisruptionTrace(Vec<String>);

impl SimObserver for DisruptionTrace {
    fn on_disruption(&mut self, record: &DisruptionRecord) {
        self.0
            .push(format!("{:.3}s {:?}", record.time.seconds(), record.kind));
    }
}

#[test]
fn seeded_disruptions_are_deterministic_and_seed_sensitive() {
    let (metro, disruptions) = Presets::metro_disrupted(3);
    let instance = metro.metro_instance(80, 16, 2);
    let run = |seed: u64| -> (EpisodeResult, Vec<String>) {
        let mut trace = DisruptionTrace::default();
        let result = Simulator::builder(&instance)
            .buffering(BufferingMode::FixedInterval(TimeDelta::from_minutes(10.0)))
            .disruptions(disruptions.clone())
            .seed(seed)
            .build()
            .expect("valid disrupted configuration")
            .run_observed(&mut Baseline1, &mut [&mut trace]);
        (result, trace.0)
    };
    let (a, trace_a) = run(11);
    let (b, trace_b) = run(11);
    assert_eq!(a, b, "same seed must reproduce the episode bit for bit");
    assert_eq!(trace_a, trace_b, "and the same disruption trace");
    assert!(
        !trace_a.is_empty(),
        "the disrupted metro preset must actually disrupt"
    );
    let (_, trace_c) = run(12);
    assert_ne!(trace_a, trace_c, "a different seed must move the trace");
    // Every order ends in exactly one final state: served, or rejected
    // with a reason (stranded orders re-dispatched or accounted for).
    assert_eq!(
        a.metrics.served + a.metrics.rejections.total(),
        instance.num_orders()
    );
    assert_eq!(a.metrics.rejections.total(), a.metrics.rejected);
}

/// Records each epoch's flush instant and order count.
#[derive(Default)]
struct EpochTrace(Vec<(f64, usize)>);

impl SimObserver for EpochTrace {
    fn on_epoch(&mut self, epoch: &EpochInfo) {
        self.0.push((epoch.now.hours(), epoch.num_orders));
    }
}

#[test]
fn orders_pushed_from_a_second_thread_land_in_their_flush_epoch() {
    // An instance with no replayed orders: everything arrives live.
    let nodes = vec![
        Node::depot(NodeId(0), Point::new(0.0, 0.0)),
        Node::factory(NodeId(1), Point::new(10.0, 0.0)),
        Node::factory(NodeId(2), Point::new(20.0, 0.0)),
        Node::factory(NodeId(3), Point::new(30.0, 0.0)),
    ];
    let net = RoadNetwork::euclidean(nodes, 1.0).unwrap();
    let fleet =
        FleetConfig::homogeneous(2, &[NodeId(0)], 10.0, 500.0, 2.0, 60.0, TimeDelta::ZERO).unwrap();
    let instance = Instance::new(net, fleet, IntervalGrid::paper_default(), vec![]).unwrap();

    let order = |id: u32, p: u32, d: u32, created_h: f64| {
        Order::new(
            OrderId(id),
            NodeId(p),
            NodeId(d),
            2.0,
            TimePoint::from_hours(created_h),
            TimePoint::from_hours(created_h + 8.0),
        )
        .unwrap()
    };

    let (tx, rx) = std::sync::mpsc::channel();
    let producer = std::thread::spawn(move || {
        // 8:12 and 8:24 share the 8:30 flush; 8:54 lands on 9:00. The
        // trailing heartbeat proves buffered epochs release without
        // waiting for the channel to close.
        tx.send(StreamCommand::Order(order(0, 1, 2, 8.2))).unwrap();
        tx.send(StreamCommand::Order(order(1, 2, 3, 8.4))).unwrap();
        tx.send(StreamCommand::Order(order(2, 3, 1, 8.9))).unwrap();
        tx.send(StreamCommand::Flush {
            at: TimePoint::from_hours(12.0),
        })
        .unwrap();
    });

    let sim = Simulator::builder(&instance)
        .buffering(BufferingMode::FixedInterval(TimeDelta::from_minutes(30.0)))
        .build()
        .unwrap();
    let mut epochs = EpochTrace::default();
    let mut b1 = Baseline1;
    let result = sim.serve_observed(rx, &mut b1, &mut [&mut epochs]);
    producer.join().expect("producer thread");

    assert_eq!(result.metrics.served, 3);
    // Engine-assigned ids are sequential in arrival order.
    let times: Vec<(u32, f64)> = result
        .assignments
        .iter()
        .map(|r| (r.order.0, r.time.hours()))
        .collect();
    assert_eq!(times, vec![(0, 8.5), (1, 8.5), (2, 9.0)]);
    // Two flush epochs: 8:30 with two orders, 9:00 with one.
    assert_eq!(epochs.0, vec![(8.5, 2), (9.0, 1)]);
    // Response times measure creation -> flush.
    let resp = result.metrics.avg_response_secs;
    let expect = ((8.5 - 8.2) + (8.5 - 8.4) + (9.0 - 8.9)) / 3.0 * 3600.0;
    assert!((resp - expect).abs() < 1e-6, "{resp} vs {expect}");
}
