//! Mid-episode re-partition determinism.
//!
//! Re-partitioning re-seeds the shard map from live demand at flush
//! boundaries — a pure work optimisation. These tests pin the contract:
//!
//! 1. **Layout invariance** — a hierarchical, periodically re-partitioned
//!    episode is **bit-identical** to the plain unsharded one, across
//!    thread widths {1, N} × escalation widths {0, 2, 3}.
//! 2. **Non-vacuity** — the suite is only meaningful if re-partitions
//!    actually fire, so every sharded leg asserts ≥ 1 `repartitioned`
//!    epoch, and the *count* of them is itself invariant.
//! 3. **Engine parity** — `run_observed` (event engine) and
//!    `run_reference` (scan loop) re-partition in lockstep.
//! 4. **Inertness** — `RepartitionPolicy::Never` never sets the flag.

use dpdp_core::prelude::*;
use dpdp_net::TimeDelta;
use dpdp_sim::{BufferingMode, EpochInfo, RepartitionPolicy, ShardConfig};

/// Parallel width for the thread-parity legs: `DPDP_TEST_THREADS`, or 4.
fn parallel_threads() -> usize {
    std::env::var("DPDP_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(4)
}

/// Counts epochs whose shard map was re-seeded.
#[derive(Default)]
struct RepartitionCounter(usize);

impl SimObserver for RepartitionCounter {
    fn on_epoch(&mut self, epoch: &EpochInfo) {
        if epoch.repartitioned {
            self.0 += 1;
        }
    }
}

/// A two-level layout that re-seeds aggressively: every other flush, no
/// demand floor, so an hour-buffered metro day fires several times.
fn repartitioning_config(escalation: usize) -> ShardConfig {
    ShardConfig::hierarchical(2, 2)
        .expect("positive region/cell counts")
        .escalation(escalation)
        .repartition(RepartitionPolicy::Periodic {
            every_epochs: 2,
            min_orders: 1,
        })
        .expect("positive epoch period")
}

#[test]
fn repartitioned_episodes_match_the_unsharded_run_bit_for_bit() {
    let metro = Presets::metro(7);
    let instance = metro.metro_instance(60, 32, 5);
    let buffering = BufferingMode::FixedInterval(TimeDelta::from_minutes(60.0));
    let baseline = Simulator::builder(&instance)
        .buffering(buffering)
        .build()
        .expect("valid unsharded configuration")
        .run_observed(&mut Baseline1, &mut []);

    let mut fire_counts = Vec::new();
    for escalation in [0usize, 2, 3] {
        for threads in [1usize, parallel_threads()] {
            let mut fired = RepartitionCounter::default();
            let result = Simulator::builder(&instance)
                .buffering(buffering)
                .sharding(repartitioning_config(escalation))
                .num_threads(threads)
                .build()
                .expect("valid sharded configuration")
                .run_observed(&mut Baseline1, &mut [&mut fired]);
            assert_eq!(
                result, baseline,
                "episode diverged at escalation {escalation} / {threads} thread(s)"
            );
            assert!(
                fired.0 >= 1,
                "vacuous run: no re-partition fired at escalation {escalation} / \
                 {threads} thread(s)"
            );
            fire_counts.push(fired.0);
        }
    }
    assert!(
        fire_counts.windows(2).all(|w| w[0] == w[1]),
        "re-partition cadence must be a pure function of the demand \
         stream, got {fire_counts:?}"
    );
}

#[test]
fn engine_and_reference_loop_repartition_in_lockstep() {
    let metro = Presets::metro(7);
    let instance = metro.metro_instance(48, 24, 9);
    for threads in [1usize, parallel_threads()] {
        let sim = Simulator::builder(&instance)
            .buffering(BufferingMode::FixedInterval(TimeDelta::from_minutes(60.0)))
            .sharding(repartitioning_config(2))
            .num_threads(threads)
            .build()
            .expect("valid sharded configuration");
        let mut engine_fired = RepartitionCounter::default();
        let engine = sim.run_observed(&mut Baseline1, &mut [&mut engine_fired]);
        let mut reference_fired = RepartitionCounter::default();
        let reference = sim.run_reference(&mut Baseline1, &mut [&mut reference_fired]);
        assert_eq!(
            engine, reference,
            "engine vs reference diverged at {threads} thread(s)"
        );
        assert_eq!(
            engine_fired.0, reference_fired.0,
            "the two loops must re-seed at the same epochs"
        );
        assert!(engine_fired.0 >= 1, "vacuous parity run");
    }
}

#[test]
fn the_never_policy_keeps_the_initial_partition() {
    let metro = Presets::metro(7);
    let instance = metro.metro_instance(40, 16, 3);
    let mut fired = RepartitionCounter::default();
    let result = Simulator::builder(&instance)
        .buffering(BufferingMode::FixedInterval(TimeDelta::from_minutes(30.0)))
        .sharding(ShardConfig::hierarchical(2, 2).expect("positive region/cell counts"))
        .build()
        .expect("valid sharded configuration")
        .run_observed(&mut Baseline1, &mut [&mut fired]);
    assert_eq!(fired.0, 0, "Never must not re-seed");
    assert!(result.metrics.served > 0, "episode must do real work");
}
