//! Umbrella crate for the DPDP reproduction workspace.
//!
//! The substance lives in the `dpdp-*` crates under `crates/`; this root
//! package exists so the repository-level integration tests (`tests/`) and
//! runnable examples (`examples/`) are ordinary cargo targets. Downstream
//! users should depend on the individual crates (most commonly
//! [`dpdp_core`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dpdp_baselines as baselines;
pub use dpdp_core as core;
pub use dpdp_data as data;
pub use dpdp_net as net;
pub use dpdp_nn as nn;
pub use dpdp_pool as pool;
pub use dpdp_rl as rl;
pub use dpdp_routing as routing;
pub use dpdp_server as server;
pub use dpdp_sim as sim;
