//! Live serving: the simulator as a serving loop.
//!
//! A producer thread pushes orders — and a mid-day vehicle breakdown —
//! into a running episode through `Simulator::serve`, while the main
//! thread dispatches with Baseline 1. Virtual time advances exactly as
//! far as the producer has spoken, so buffered epochs flush as
//! later-stamped commands (or `Flush` heartbeats) arrive, and the episode
//! ends when the producer hangs up.
//!
//! ```text
//! cargo run --release --example live_serve
//! ```

use dpdp_core::prelude::*;
use dpdp_net::{
    FleetConfig, IntervalGrid, Node, NodeId, Order, OrderId, Point, RoadNetwork, TimeDelta,
    TimePoint, VehicleId,
};

fn main() {
    // A small two-hotspot city with an empty replay table: every order
    // arrives over the wire.
    let nodes = vec![
        Node::depot(NodeId(0), Point::new(0.0, 0.0)),
        Node::factory(NodeId(1), Point::new(8.0, 0.0)),
        Node::factory(NodeId(2), Point::new(16.0, 0.0)),
        Node::factory(NodeId(3), Point::new(24.0, 0.0)),
    ];
    let net = RoadNetwork::euclidean(nodes, 1.0).expect("valid network");
    let fleet = FleetConfig::homogeneous(
        3,
        &[NodeId(0)],
        10.0,
        500.0,
        2.0,
        40.0,
        TimeDelta::from_minutes(2.0),
    )
    .expect("valid fleet");
    let instance =
        Instance::new(net, fleet, IntervalGrid::paper_default(), vec![]).expect("valid instance");

    let order = |p: u32, d: u32, created_h: f64| {
        Order::new(
            OrderId(0), // the engine reassigns ids on arrival
            NodeId(p),
            NodeId(d),
            3.0,
            TimePoint::from_hours(created_h),
            TimePoint::from_hours(created_h + 6.0),
        )
        .expect("valid order")
    };

    let (tx, rx) = std::sync::mpsc::channel();
    let producer = std::thread::spawn(move || {
        // Morning traffic, 10-minute buffered epochs downstream.
        tx.send(StreamCommand::Order(order(1, 2, 8.05))).unwrap();
        tx.send(StreamCommand::Order(order(2, 3, 8.07))).unwrap();
        tx.send(StreamCommand::Order(order(3, 1, 8.60))).unwrap();
        // Vehicle 0 dies mid-morning: whatever it had not picked up yet
        // is stranded back into the queue and re-dispatched.
        tx.send(StreamCommand::Breakdown {
            vehicle: VehicleId(0),
            at: TimePoint::from_hours(8.9),
        })
        .unwrap();
        tx.send(StreamCommand::Order(order(2, 1, 9.30))).unwrap();
        // Heartbeat: release everything due up to noon, then hang up.
        tx.send(StreamCommand::Flush {
            at: TimePoint::from_hours(12.0),
        })
        .unwrap();
    });

    let sim = Simulator::builder(&instance)
        .buffering(BufferingMode::FixedInterval(TimeDelta::from_minutes(10.0)))
        .build()
        .expect("positive buffering period");
    let mut counter = EventCounter::default();
    let mut baseline = models::baseline1();
    let result = sim.serve_observed(rx, &mut *baseline, &mut [&mut counter]);
    producer.join().expect("producer thread");

    println!(
        "served {} / rejected {} over {} epochs ({} breakdown event)",
        result.metrics.served, result.metrics.rejected, counter.epochs, counter.breakdowns,
    );
    for r in &result.assignments {
        println!(
            "  order {:>2} decided {:>5.2} h -> {}",
            r.order.index(),
            r.time.hours(),
            match r.vehicle {
                Some(v) => format!("vehicle {}", v.index()),
                None => format!("{:?}", r.reason),
            }
        );
    }
    println!(
        "vehicle-lost {}  cancelled {}  (rejection breakdown: {:?})",
        result.metrics.rejections.vehicle_lost,
        result.metrics.rejections.cancelled,
        result.metrics.rejections,
    );
}
