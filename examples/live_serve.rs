//! Live serving over the wire: the simulator behind a socket.
//!
//! Spawns an in-process `dpdp-server`, connects the bundled wire client,
//! and drives one tenant session end to end through the real TCP
//! protocol: `HELLO` opens a `line4` episode with 10-minute buffered
//! epochs, `ORDER`/`BREAKDOWN` frames stream the morning in, a `FLUSH`
//! heartbeat releases everything due up to noon, and `DRAIN` flushes the
//! episode into its final `METRICS` frame. The decisions that stream back
//! are the same — bit for bit — as pushing the commands through
//! `Simulator::serve` in-process (the socket-parity suite proves it).
//!
//! ```text
//! cargo run --release --example live_serve
//! ```

use dpdp::server::{DecisionServer, ServeClient, ServerConfig};

fn main() {
    let server = DecisionServer::bind("127.0.0.1:0", ServerConfig::default())
        .expect("bind on a loopback port")
        .spawn()
        .expect("spawn accept loop");
    println!("serving on {}", server.addr());

    let mut client = ServeClient::connect(server.addr()).expect("connect");
    // line4: a depot and three factories strung along 24 km, three
    // vehicles, empty replay table — every order arrives over the wire.
    let ok = client
        .hello("morning-shift", "line4", 0, "baseline1", 10.0)
        .expect("handshake");
    println!("server said: OK {ok}");

    // Morning traffic, times in seconds of the virtual day.
    let hours = |h: f64| h * 3600.0;
    let order = |c: &mut ServeClient, p: u32, d: u32, at_h: f64| {
        c.order(p, d, 3.0, hours(at_h), hours(at_h + 6.0))
            .expect("order frame");
    };
    order(&mut client, 1, 2, 8.05);
    order(&mut client, 2, 3, 8.07);
    order(&mut client, 3, 1, 8.60);
    // Vehicle 0 dies mid-morning: whatever it had not picked up yet is
    // stranded back into the queue and re-dispatched.
    client.breakdown(0, hours(8.9)).expect("breakdown frame");
    order(&mut client, 2, 1, 9.30);
    // Heartbeat: release everything due up to noon, then drain.
    client.flush(hours(12.0)).expect("flush heartbeat");
    client.drain().expect("drain frame");

    let episode = client.collect_episode().expect("episode drains to BYE");
    for (index, now_s, orders) in &episode.epochs {
        println!(
            "epoch {index:>2} at {:>5.2} h ({orders} orders)",
            now_s / 3600.0
        );
    }
    for d in &episode.disruptions {
        println!("disruption: {d}");
    }
    for d in &episode.decisions {
        println!(
            "  order {:>2} decided {:>5.2} h -> {}",
            d.order.index(),
            d.time_s / 3600.0,
            match d.vehicle {
                Some(v) => format!("vehicle {}", v.index()),
                None => format!("{:?}", d.reason),
            }
        );
    }
    let metrics = episode.metrics.expect("final METRICS frame");
    println!(
        "served {} / rejected {} (vehicle-lost {}, cancelled {})",
        metrics.served,
        metrics.rejected,
        metrics.rejections.vehicle_lost,
        metrics.rejections.cancelled,
    );
    server.shutdown();
}
