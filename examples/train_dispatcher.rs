//! Train, checkpoint, reload: the full ST-DDGN life cycle.
//!
//! Trains on a large-scale instance, watches the convergence curve, saves
//! the learned weights to a byte buffer (the `dpdp-nn` checkpoint format),
//! reloads them into a fresh agent and verifies the policies agree.
//!
//! ```text
//! cargo run -p dpdp-core --release --example train_dispatcher
//! ```

use dpdp_core::models;
use dpdp_core::prelude::*;
use dpdp_nn::serialize::{load_params, save_params};

fn main() {
    let presets = Presets::quick();
    let instance = presets.large_instance(9);
    let prediction = presets.train_prediction(4);

    // Train.
    let mut agent = models::dqn_agent(ModelKind::StDdgn, presets.dataset(), 9);
    agent.set_prediction(Some(prediction.clone()));
    println!("training ST-DDGN on a 150-order instance…");
    let report = train(&mut agent, &instance, &TrainerConfig::new(80));
    for p in report.points.iter().step_by(16) {
        println!(
            "  episode {:>3}: NUV {:>3}  TC {:>10.1}",
            p.episode, p.nuv, p.total_cost
        );
    }

    // Checkpoint to bytes (would be a file in production).
    let checkpoint = save_params(agent.params());
    println!(
        "checkpoint: {} bytes for {} parameter tensors",
        checkpoint.len(),
        agent.params().len()
    );

    // Reload into a brand-new agent with different initial weights.
    let mut restored = models::dqn_agent(ModelKind::StDdgn, presets.dataset(), 12345);
    let mut fresh_params = restored.params().clone();
    load_params(&mut fresh_params, &checkpoint).expect("checkpoint layout matches");
    restored.load_params(&fresh_params);
    restored.set_prediction(Some(prediction));
    restored.set_training(false);
    agent.set_training(false);

    let a = evaluate(&mut agent, &instance);
    let b = evaluate(&mut restored, &instance);
    println!(
        "original: NUV {} TC {:.1} | restored: NUV {} TC {:.1}",
        a.nuv, a.total_cost, b.nuv, b.total_cost
    );
    assert_eq!(a.nuv, b.nuv, "restored policy must act identically");
    assert!((a.total_cost - b.total_cost).abs() < 1e-6);
    println!("restored policy matches the trained one exactly ✓");
}
