//! Industry-scale day: replay one full generated day of campus orders
//! (600+ with the paper-scale dataset) against a 150-vehicle fleet under
//! all three greedy baselines, and inspect the dispatch log.
//!
//! ```text
//! cargo run -p dpdp-core --release --example campus_day
//! ```

use dpdp_core::models;
use dpdp_core::prelude::*;

fn main() {
    let presets = Presets::quick();
    let instance = presets.industry_instance(0);
    println!(
        "industry day: {} orders, {} vehicles, total cargo {:.1}",
        instance.num_orders(),
        instance.num_vehicles(),
        instance.total_quantity()
    );

    for mut dispatcher in [
        models::baseline1(),
        models::baseline2(),
        models::baseline3(),
    ] {
        let row = evaluate(&mut *dispatcher, &instance);
        println!(
            "{:<10} NUV {:>3}  TC {:>10.1}  TTL {:>8.1} km  served {:>3}  rejected {:>2}  ({:.2}s)",
            row.algo, row.nuv, row.total_cost, row.ttl, row.served, row.rejected, row.wall_secs
        );
    }

    // A closer look at Baseline 1's dispatch log.
    let mut b1 = models::baseline1();
    let result = Simulator::builder(&instance).build().unwrap().run(&mut *b1);
    let hitchhikes = result
        .assignments
        .iter()
        .filter(|a| a.vehicle.is_some() && a.incremental_length() < 1.0)
        .count();
    let fresh = result
        .assignments
        .iter()
        .filter(|a| a.vehicle.is_some() && !a.vehicle_was_used)
        .count();
    println!(
        "\nBaseline1 dispatch log: {} assignments, {} near-free hitchhikes (<1 km), {} vehicle activations",
        result.assignments.len(),
        hitchhikes,
        fresh
    );
    // Busiest interval of the day.
    let mut per_interval = std::collections::HashMap::new();
    for a in &result.assignments {
        *per_interval.entry(a.interval).or_insert(0usize) += 1;
    }
    if let Some((interval, count)) = per_interval.iter().max_by_key(|(_, c)| **c) {
        println!(
            "busiest 10-minute interval: #{interval} ({count} orders) — around {:02}:{:02}",
            interval / 6,
            (interval % 6) * 10
        );
    }
}
