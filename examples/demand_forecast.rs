//! The spatial-temporal machinery on its own: STD matrices (Definition 1),
//! mean/EWMA demand prediction (Eq. (3)) and the ST Score (Definitions 2–5)
//! for two candidate routes — one riding the demand wave, one against it.
//!
//! ```text
//! cargo run -p dpdp-core --release --example demand_forecast
//! ```

use dpdp_core::prelude::*;
use dpdp_data::{DemandPredictor, EwmaPredictor, MeanPredictor};
use dpdp_routing::{simulate_schedule, Route, Stop, VehicleView};

fn main() {
    let presets = Presets::quick();
    let ds = presets.dataset();

    // Build a week of STD matrices and predict day 7 two ways.
    let history = ds.std_history(0..7);
    let actual = ds.std_history(7..8).pop().expect("day exists");
    let mean_pred = MeanPredictor::new(4).predict(&history);
    let ewma_pred = EwmaPredictor::new(0.4).predict(&history);
    println!("predicting day 7 from days 0-6:");
    for (name, pred) in [("mean(4)", &mean_pred), ("ewma(0.4)", &ewma_pred)] {
        println!(
            "  {name:<10} total {:>8.1} (actual {:>8.1}), Frobenius diff {:>8.2}",
            pred.total(),
            actual.total(),
            pred.frobenius_diff(&actual)
        );
    }

    // ST Score: compare two candidate routes for the same vehicle.
    let campus = ds.campus();
    let orders = ds.day_orders(7);
    let instance = ds.day_instance(7, 10);
    let fleet = &instance.fleet;
    let scorer = StScorer::new(ds.grid(), ds.factory_index());

    // Among factories that actually generate orders today, find the ones
    // the forecast calls hottest and coldest.
    let rows = mean_pred.row_sums();
    let mut active: Vec<usize> = orders
        .iter()
        .filter_map(|o| ds.factory_index().row(o.pickup))
        .collect();
    active.sort_unstable();
    active.dedup();
    let hot = *active
        .iter()
        .max_by(|&&a, &&b| rows[a].partial_cmp(&rows[b]).expect("finite"))
        .expect("a day always has orders");
    let cold = *active
        .iter()
        .min_by(|&&a, &&b| rows[a].partial_cmp(&rows[b]).expect("finite"))
        .expect("a day always has orders");

    // One order from each.
    let pick = |row: usize| {
        orders
            .iter()
            .find(|o| ds.factory_index().row(o.pickup) == Some(row))
            .cloned()
    };
    let (Some(hot_order), Some(cold_order)) = (pick(hot), pick(cold)) else {
        unreachable!("hot/cold rows were chosen among active factories");
    };
    let view = VehicleView::idle_at_depot(fleet.vehicles[0].id, campus.depots[0]);
    for (label, order) in [
        ("hot-spot route", &hot_order),
        ("cold-spot route", &cold_order),
    ] {
        let route = Route::from_stops(vec![
            Stop::pickup(order.pickup, order.id),
            Stop::delivery(order.delivery, order.id),
        ]);
        // Schedules need the day's dense order table.
        let sched = simulate_schedule(&view, &route, &campus.network, fleet, &orders)
            .expect("direct route is feasible");
        let score = scorer.score(&view, &sched, &mean_pred, fleet.capacity);
        println!(
            "{label:<16} via F{:<2} -> ST Score {score:.4} (lower = better hitchhiking odds)",
            ds.factory_index().row(order.pickup).expect("factory")
        );
    }
}
