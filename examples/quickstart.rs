//! Quickstart: build a synthetic campus instance, dispatch a day of orders
//! with the deployed heuristic (Baseline 1) and with a briefly-trained
//! ST-DDGN agent, and compare the two. Along the way it shows the
//! simulator builder and the observer hooks around batched decision
//! epochs.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dpdp_core::models;
use dpdp_core::prelude::*;

fn main() {
    // A reduced-volume campus dataset: 27 factories, 2 depots, seeded.
    let presets = Presets::quick();
    // A 50-vehicle, 150-order instance sampled from the training days.
    let instance = presets.large_instance(42);
    println!(
        "instance: {} orders, {} vehicles, {} nodes",
        instance.num_orders(),
        instance.num_vehicles(),
        instance.network.num_nodes()
    );

    // 1. The heuristic deployed in the paper's UAT environment. `evaluate`
    //    uses the default simulator (immediate service); underneath, each
    //    decision epoch flows through one `dispatch_batch` call.
    let mut baseline = models::baseline1();
    let b1 = evaluate(&mut *baseline, &instance);
    println!(
        "Baseline1:  NUV {:>3}  TC {:>10.1}  TTL {:>8.1} km  ({} served)",
        b1.nuv, b1.total_cost, b1.ttl, b1.served
    );

    // 1b. The same policy under fixed-interval buffering, configured via
    //     the builder and watched through an observer: whole flushes of
    //     orders are decided together against one fleet snapshot.
    //     `num_threads(4)` spreads each flush's `B x K` planning sweep and
    //     scoring over an in-repo thread pool — results are guaranteed
    //     bit-identical to the default `num_threads(1)`, only faster.
    let sim = Simulator::builder(&instance)
        .buffering(BufferingMode::FixedInterval(
            dpdp_net::TimeDelta::from_minutes(10.0),
        ))
        .num_threads(4)
        .build()
        .expect("positive buffering period");
    let mut counter = EventCounter::default();
    let buffered = sim.run_observed(&mut *baseline, &mut [&mut counter]);
    println!(
        "  buffered: {} orders in {} epochs (largest flush decided together), \
         mean response {:.0} s",
        counter.decisions, counter.epochs, buffered.metrics.avg_response_secs,
    );

    // 2. ST-DDGN: graph Q-network + Double DQN + spatial-temporal score.
    let mut agent = models::dqn_agent(ModelKind::StDdgn, presets.dataset(), 42);
    // The ST Score needs the day's demand forecast (mean of past days).
    agent.set_prediction(Some(presets.train_prediction(4)));
    println!("training ST-DDGN for 60 episodes…");
    let report = train(&mut agent, &instance, &TrainerConfig::new(60));
    println!(
        "  first episode TC {:>10.1} -> best TC {:>10.1}",
        report.points.first().map(|p| p.total_cost).unwrap_or(0.0),
        report.best_cost().unwrap_or(0.0),
    );
    agent.set_training(false);
    let st = evaluate(&mut agent, &instance);
    println!(
        "ST-DDGN:    NUV {:>3}  TC {:>10.1}  TTL {:>8.1} km  ({} served)",
        st.nuv, st.total_cost, st.ttl, st.served
    );

    let delta = 100.0 * (b1.total_cost - st.total_cost) / b1.total_cost;
    println!("cost difference vs Baseline1: {delta:+.2}% (positive = ST-DDGN cheaper)");
}
