//! Quickstart: build a synthetic campus instance, dispatch a day of orders
//! with the deployed heuristic (Baseline 1) and with a briefly-trained
//! ST-DDGN agent, and compare the two.
//!
//! ```text
//! cargo run -p dpdp-core --release --example quickstart
//! ```

use dpdp_core::models;
use dpdp_core::prelude::*;

fn main() {
    // A reduced-volume campus dataset: 27 factories, 2 depots, seeded.
    let presets = Presets::quick();
    // A 50-vehicle, 150-order instance sampled from the training days.
    let instance = presets.large_instance(42);
    println!(
        "instance: {} orders, {} vehicles, {} nodes",
        instance.num_orders(),
        instance.num_vehicles(),
        instance.network.num_nodes()
    );

    // 1. The heuristic deployed in the paper's UAT environment.
    let mut baseline = models::baseline1();
    let b1 = evaluate(&mut *baseline, &instance);
    println!(
        "Baseline1:  NUV {:>3}  TC {:>10.1}  TTL {:>8.1} km  ({} served)",
        b1.nuv, b1.total_cost, b1.ttl, b1.served
    );

    // 2. ST-DDGN: graph Q-network + Double DQN + spatial-temporal score.
    let mut agent = models::dqn_agent(ModelKind::StDdgn, presets.dataset(), 42);
    // The ST Score needs the day's demand forecast (mean of past days).
    agent.set_prediction(Some(presets.train_prediction(4)));
    println!("training ST-DDGN for 60 episodes…");
    let report = train(&mut agent, &instance, &TrainerConfig::new(60));
    println!(
        "  first episode TC {:>10.1} -> best TC {:>10.1}",
        report.points.first().map(|p| p.total_cost).unwrap_or(0.0),
        report.best_cost().unwrap_or(0.0),
    );
    agent.set_training(false);
    let st = evaluate(&mut agent, &instance);
    println!(
        "ST-DDGN:    NUV {:>3}  TC {:>10.1}  TTL {:>8.1} km  ({} served)",
        st.nuv, st.total_cost, st.ttl, st.served
    );

    let delta = 100.0 * (b1.total_cost - st.total_cost) / b1.total_cost;
    println!("cost difference vs Baseline1: {delta:+.2}% (positive = ST-DDGN cheaper)");
}
