//! Property-based tests for the data substrate: divergences, STD matrices,
//! predictors and the synthetic generator.

use dpdp_data::*;
use dpdp_net::{IntervalGrid, NodeId};
use proptest::prelude::*;

fn arb_dist(n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0f64..10.0, n..=n)
}

proptest! {
    /// JS divergence is symmetric, non-negative, bounded by ln 2, and zero
    /// iff the normalised inputs coincide.
    #[test]
    fn js_properties(a in arb_dist(6), b in arb_dist(6)) {
        let p = normalize(&a);
        let q = normalize(&b);
        let pq = js_divergence(&p, &q);
        let qp = js_divergence(&q, &p);
        prop_assert!((pq - qp).abs() < 1e-12);
        prop_assert!(pq >= -1e-12);
        prop_assert!(pq <= std::f64::consts::LN_2 + 1e-9);
        prop_assert!(js_divergence(&p, &p).abs() < 1e-12);
    }

    /// Symmetric KL dominates JS (a standard inequality: JS <= sym-KL).
    #[test]
    fn symmetric_kl_dominates_js(a in arb_dist(5), b in arb_dist(5)) {
        let p = normalize(&a);
        let q = normalize(&b);
        prop_assert!(js_divergence(&p, &q) <= symmetric_kl(&p, &q) + 1e-9);
    }

    /// Normalisation produces a distribution whose order statistics match
    /// the input's (monotone transformation).
    #[test]
    fn normalize_is_monotone(a in arb_dist(8)) {
        let p = normalize(&a);
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        for i in 0..a.len() {
            for j in 0..a.len() {
                if a[i] > a[j] {
                    prop_assert!(p[i] >= p[j]);
                }
            }
        }
    }

    /// STD matrices are additive over order concatenation.
    #[test]
    fn std_matrix_additivity(seed in 0u64..500) {
        let campus = Campus::generate(&CampusConfig { seed, ..CampusConfig::default() });
        let cfg = OrderGeneratorConfig {
            orders_per_day: 40,
            seed,
            ..OrderGeneratorConfig::default()
        };
        let generator = OrderGenerator::new(&campus, cfg);
        let day = generator.generate_day(0);
        let grid = IntervalGrid::paper_default();
        let index = FactoryIndex::new(&campus.factories);
        let (first, second) = day.split_at(day.len() / 2);
        let mut partial = StdMatrix::from_orders(first, &grid, &index);
        partial.add_assign(&StdMatrix::from_orders(second, &grid, &index));
        let full = StdMatrix::from_orders(&day, &grid, &index);
        prop_assert!(partial.frobenius_diff(&full) < 1e-9);
    }

    /// The mean predictor is bounded by the element-wise min/max of its
    /// history window.
    #[test]
    fn mean_predictor_is_bounded(seed in 0u64..200, k in 1usize..5) {
        let campus = Campus::generate(&CampusConfig::default());
        let cfg = OrderGeneratorConfig {
            orders_per_day: 30,
            seed,
            ..OrderGeneratorConfig::default()
        };
        let generator = OrderGenerator::new(&campus, cfg);
        let grid = IntervalGrid::paper_default();
        let index = FactoryIndex::new(&campus.factories);
        let history: Vec<StdMatrix> = (0..4u64)
            .map(|d| StdMatrix::from_orders(&generator.generate_day(d), &grid, &index))
            .collect();
        let pred = MeanPredictor::new(k).predict(&history);
        let window = &history[history.len() - k.min(history.len())..];
        for r in 0..pred.num_factories() {
            for c in 0..pred.num_intervals() {
                let lo = window.iter().map(|m| m.get(r, c)).fold(f64::INFINITY, f64::min);
                let hi = window.iter().map(|m| m.get(r, c)).fold(0.0f64, f64::max);
                prop_assert!(pred.get(r, c) >= lo - 1e-9);
                prop_assert!(pred.get(r, c) <= hi + 1e-9);
            }
        }
    }

    /// Generated orders always reference campus factories, never depots.
    #[test]
    fn generator_never_uses_depots(seed in 0u64..200) {
        let campus = Campus::generate(&CampusConfig { seed, ..CampusConfig::default() });
        let cfg = OrderGeneratorConfig {
            orders_per_day: 25,
            seed,
            ..OrderGeneratorConfig::default()
        };
        let generator = OrderGenerator::new(&campus, cfg);
        for order in generator.generate_day(seed % 10) {
            prop_assert!(campus.network.node(order.pickup).is_factory());
            prop_assert!(campus.network.node(order.delivery).is_factory());
        }
    }

    /// `FactoryIndex` is a bijection between rows and factory nodes.
    #[test]
    fn factory_index_bijection(ids in proptest::collection::btree_set(0u32..100, 1..20)) {
        let nodes: Vec<NodeId> = ids.iter().map(|&i| NodeId(i)).collect();
        let index = FactoryIndex::new(&nodes);
        for (row, node) in nodes.iter().enumerate() {
            prop_assert_eq!(index.row(*node), Some(row));
            prop_assert_eq!(index.node(row), *node);
        }
        prop_assert_eq!(index.num_factories(), nodes.len());
    }

    /// Dataset day sampling is stable: two datasets with the same config
    /// produce identical orders for any day.
    #[test]
    fn dataset_determinism(day in 0u64..50) {
        let mut cfg = DatasetConfig::default();
        cfg.generator.orders_per_day = 20;
        let a = Dataset::new(cfg.clone());
        let b = Dataset::new(cfg);
        prop_assert_eq!(a.day_orders(day), b.day_orders(day));
    }
}
