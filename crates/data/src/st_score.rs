//! The Spatial-Temporal Score (ST Score) — Definitions 2–5 of the paper.
//!
//! For a candidate route, the ST Score measures how well the vehicle's
//! residual capacity along the route matches the *predicted* delivery demand
//! at the (factory, time-interval) coordinates the route visits. A small
//! score means the vehicle carries spare capacity exactly where and when
//! demand is expected — maximising the chance of cheap "hitchhiking".

use crate::divergence::{divergence, DivergenceKind};
use crate::std_matrix::{FactoryIndex, StdMatrix};
use dpdp_net::IntervalGrid;
use dpdp_routing::{Schedule, VehicleView};

/// Computes ST Scores for candidate routes against a predicted STD matrix.
#[derive(Debug, Clone)]
pub struct StScorer {
    grid: IntervalGrid,
    index: FactoryIndex,
    kind: DivergenceKind,
}

impl StScorer {
    /// Creates a scorer using the paper's Jensen–Shannon divergence.
    pub fn new(grid: IntervalGrid, index: FactoryIndex) -> Self {
        StScorer {
            grid,
            index,
            kind: DivergenceKind::JensenShannon,
        }
    }

    /// Creates a scorer with an explicit divergence (the supplementary
    /// material compares JS with symmetric KL).
    pub fn with_divergence(grid: IntervalGrid, index: FactoryIndex, kind: DivergenceKind) -> Self {
        StScorer { grid, index, kind }
    }

    /// The divergence in use.
    pub fn kind(&self) -> DivergenceKind {
        self.kind
    }

    /// The interval grid in use.
    pub fn grid(&self) -> IntervalGrid {
        self.grid
    }

    /// The factory index in use.
    pub fn index(&self) -> &FactoryIndex {
        &self.index
    }

    /// The spatial-temporal **capacity vector** `η^k` (Definition 3): the
    /// vehicle's residual capacity `Q - load` *upon arrival* at each stop of
    /// the scheduled route.
    pub fn capacity_vector(
        &self,
        view: &VehicleView,
        schedule: &Schedule,
        capacity: f64,
    ) -> Vec<f64> {
        capacity_vector(view, schedule, capacity)
    }

    /// The spatial-temporal **demand vector** `τ^k` (Definition 4): the
    /// predicted demand at each stop's `(factory, interval)` coordinate
    /// (Definition 2 — the interval the vehicle is scheduled to arrive in).
    pub fn demand_vector(&self, schedule: &Schedule, predicted: &StdMatrix) -> Vec<f64> {
        schedule
            .timings
            .iter()
            .map(|timing| {
                match self.index.row(timing.stop.node) {
                    Some(row) => {
                        let col = self.grid.interval_of(timing.arrival);
                        predicted.get(row, col)
                    }
                    // Depot stops carry no demand.
                    None => 0.0,
                }
            })
            .collect()
    }

    /// The **ST Score** `ξ^k` (Definition 5): the divergence between the
    /// normalised capacity and demand vectors. Empty routes score 0.
    pub fn score(
        &self,
        view: &VehicleView,
        schedule: &Schedule,
        predicted: &StdMatrix,
        capacity: f64,
    ) -> f64 {
        let eta = self.capacity_vector(view, schedule, capacity);
        let tau = self.demand_vector(schedule, predicted);
        divergence(self.kind, &eta, &tau)
    }
}

/// Standalone capacity-vector computation (Definition 3); see
/// [`StScorer::capacity_vector`].
pub fn capacity_vector(view: &VehicleView, schedule: &Schedule, capacity: f64) -> Vec<f64> {
    let mut load_before = view.load();
    let mut out = Vec::with_capacity(schedule.timings.len());
    for timing in &schedule.timings {
        out.push((capacity - load_before).max(0.0));
        load_before = timing.load_after;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpdp_net::{
        FleetConfig, Node, NodeId, Order, OrderId, Point, RoadNetwork, TimeDelta, TimePoint,
        VehicleId,
    };
    use dpdp_routing::{simulate_schedule, Route, Stop};

    fn setup() -> (RoadNetwork, FleetConfig, Vec<Order>, FactoryIndex) {
        let nodes = vec![
            Node::depot(NodeId(0), Point::new(0.0, 0.0)),
            Node::factory(NodeId(1), Point::new(10.0, 0.0)),
            Node::factory(NodeId(2), Point::new(20.0, 0.0)),
        ];
        let net = RoadNetwork::euclidean(nodes, 1.0).unwrap();
        let fleet =
            FleetConfig::homogeneous(1, &[NodeId(0)], 10.0, 500.0, 2.0, 60.0, TimeDelta::ZERO)
                .unwrap();
        let orders = vec![Order::new(
            OrderId(0),
            NodeId(1),
            NodeId(2),
            4.0,
            TimePoint::ZERO,
            TimePoint::from_hours(24.0),
        )
        .unwrap()];
        let index = FactoryIndex::new(&[NodeId(1), NodeId(2)]);
        (net, fleet, orders, index)
    }

    #[test]
    fn capacity_vector_tracks_residual_on_arrival() {
        let (net, fleet, orders, index) = setup();
        let view = VehicleView::idle_at_depot(VehicleId(0), NodeId(0));
        let route = Route::from_stops(vec![
            Stop::pickup(NodeId(1), OrderId(0)),
            Stop::delivery(NodeId(2), OrderId(0)),
        ]);
        let sched = simulate_schedule(&view, &route, &net, &fleet, &orders).unwrap();
        let scorer = StScorer::new(IntervalGrid::paper_default(), index);
        let eta = scorer.capacity_vector(&view, &sched, fleet.capacity);
        // Arrives empty at the pickup (residual 10), loaded 4 at delivery
        // (residual 6).
        assert_eq!(eta, vec![10.0, 6.0]);
    }

    #[test]
    fn demand_vector_reads_predicted_std() {
        let (net, fleet, orders, index) = setup();
        let view = VehicleView::idle_at_depot(VehicleId(0), NodeId(0));
        let route = Route::from_stops(vec![
            Stop::pickup(NodeId(1), OrderId(0)),
            Stop::delivery(NodeId(2), OrderId(0)),
        ]);
        let sched = simulate_schedule(&view, &route, &net, &fleet, &orders).unwrap();
        let grid = IntervalGrid::paper_default();
        let scorer = StScorer::new(grid, index);
        let mut predicted = StdMatrix::zeros(2, 144);
        // Arrivals are at 10 and 20 minutes -> intervals 1 and 2.
        *predicted.get_mut(0, 1) = 7.0;
        *predicted.get_mut(1, 2) = 3.0;
        let tau = scorer.demand_vector(&sched, &predicted);
        assert_eq!(tau, vec![7.0, 3.0]);
    }

    #[test]
    fn matched_distributions_score_lower() {
        let (net, fleet, orders, index) = setup();
        let view = VehicleView::idle_at_depot(VehicleId(0), NodeId(0));
        let route = Route::from_stops(vec![
            Stop::pickup(NodeId(1), OrderId(0)),
            Stop::delivery(NodeId(2), OrderId(0)),
        ]);
        let sched = simulate_schedule(&view, &route, &net, &fleet, &orders).unwrap();
        let grid = IntervalGrid::paper_default();
        let scorer = StScorer::new(grid, index.clone());
        // Demand proportional to the capacity vector [10, 6] -> score ~0.
        let mut matched = StdMatrix::zeros(2, 144);
        *matched.get_mut(0, 1) = 10.0;
        *matched.get_mut(1, 2) = 6.0;
        // Demand concentrated where the vehicle has the least capacity.
        let mut mismatched = StdMatrix::zeros(2, 144);
        *mismatched.get_mut(0, 1) = 0.1;
        *mismatched.get_mut(1, 2) = 20.0;
        let s_match = scorer.score(&view, &sched, &matched, fleet.capacity);
        let s_mismatch = scorer.score(&view, &sched, &mismatched, fleet.capacity);
        assert!(s_match < s_mismatch, "{s_match} !< {s_mismatch}");
        assert!(s_match < 1e-6);
    }

    #[test]
    fn empty_route_scores_zero() {
        let (net, fleet, _, index) = setup();
        let view = VehicleView::idle_at_depot(VehicleId(0), NodeId(0));
        let sched = simulate_schedule(&view, &Route::empty(), &net, &fleet, &[]).unwrap();
        let scorer = StScorer::new(IntervalGrid::paper_default(), index);
        let predicted = StdMatrix::zeros(2, 144);
        assert_eq!(scorer.score(&view, &sched, &predicted, fleet.capacity), 0.0);
    }
}
