//! Synthetic delivery-order generation with a recurring spatial-temporal
//! pattern.
//!
//! The generator is the repo's substitute for the paper's proprietary data
//! (DESIGN.md §2). It reproduces the structure visible in the paper's
//! Fig. 2: (a) a few "hot" factories generate most demand on every day,
//! (b) demand concentrates in two intra-day peaks (10–12 a.m., 2–5 p.m.),
//! and (c) consecutive days are more alike than distant ones — modelled by
//! an AR(1) multiplicative drift on per-factory weights.

use crate::campus::Campus;
use dpdp_net::{NodeId, Order, OrderId, TimeDelta, TimePoint};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Standard normal sample via Box–Muller (rand_distr is not a dependency).
fn sample_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random_range(f64::EPSILON..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Samples an index from unnormalised non-negative weights.
fn sample_weighted(rng: &mut StdRng, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    debug_assert!(total > 0.0, "weights must not be all zero");
    let mut target = rng.random_range(0.0..total);
    for (i, w) in weights.iter().enumerate() {
        if target < *w {
            return i;
        }
        target -= w;
    }
    weights.len() - 1
}

/// The stationary part of the demand pattern: per-factory base weights and
/// the intra-day intensity profile.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DemandProfile {
    /// Unnormalised pickup intensity per factory (row order of the campus'
    /// factory list). A heavy-tailed mix: a few hot factories dominate.
    pub factory_weights: Vec<f64>,
    /// Unnormalised intensity per hour of day (24 entries). Two-peak shape.
    pub hourly_weights: [f64; 24],
    /// Optional per-factory hourly profiles (same row order as
    /// `factory_weights`). When non-empty, an order's creation hour is
    /// drawn from its pickup factory's own curve instead of the global
    /// `hourly_weights` — this is how metro hotspots get *distinct*
    /// order-rate profiles (staggered peaks per cluster). Empty = legacy
    /// single-profile behaviour.
    pub factory_hours: Vec<[f64; 24]>,
}

impl DemandProfile {
    /// Builds the paper-like profile for `num_factories` factories: factory
    /// weights decay geometrically (hot spots), hours follow a two-peak
    /// working-day curve.
    pub fn paper_like(num_factories: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        // Geometric decay with multiplicative jitter; shuffle so hot
        // factories are not always the low ids.
        let mut factory_weights: Vec<f64> = (0..num_factories)
            .map(|i| 0.85f64.powi(i as i32) * rng.random_range(0.6..1.4))
            .collect();
        for i in (1..factory_weights.len()).rev() {
            let j = rng.random_range(0..=i);
            factory_weights.swap(i, j);
        }
        // Two peaks: 10-12 a.m. and 2-5 p.m.; low but non-zero otherwise
        // during working hours, nearly zero at night.
        let mut hourly_weights = [0.0f64; 24];
        for (h, w) in hourly_weights.iter_mut().enumerate() {
            *w = match h {
                10 | 11 => 10.0,
                14..=16 => 8.0,
                8 | 9 | 12 | 13 | 17 => 3.0,
                7 | 18 | 19 => 1.0,
                _ => 0.1,
            };
        }
        DemandProfile {
            factory_weights,
            hourly_weights,
            factory_hours: Vec::new(),
        }
    }

    /// Builds a metro-style profile: the paper-like heavy-tailed factory
    /// weights, plus a **distinct hourly curve per hotspot** — cluster `c`'s
    /// working-day peaks shift by `c` hours (cluster 0 peaks 10–12 a.m.,
    /// cluster 1 at 11–1, …), so demand rolls across the city's regions
    /// over the day instead of spiking everywhere at once.
    ///
    /// `clusters` maps each factory row to its hotspot (see
    /// [`Campus::factory_cluster`](crate::campus::Campus::factory_cluster)).
    ///
    /// # Panics
    /// Panics if `clusters.len() != num_factories`.
    pub fn metro_like(num_factories: usize, clusters: &[usize], seed: u64) -> Self {
        assert_eq!(
            clusters.len(),
            num_factories,
            "cluster labels must cover every factory"
        );
        let base = Self::paper_like(num_factories, seed);
        let factory_hours = clusters
            .iter()
            .map(|&c| {
                let mut hours = [0.0f64; 24];
                for (h, w) in hours.iter_mut().enumerate() {
                    // Shift the base curve back by `c` hours (wrapping), so
                    // cluster c's peaks land `c` hours later in the day.
                    *w = base.hourly_weights[(h + 24 - (c % 24)) % 24];
                }
                hours
            })
            .collect();
        DemandProfile {
            factory_hours,
            ..base
        }
    }

    /// Per-factory weights for day `day`, with AR(1) multiplicative drift so
    /// that nearby days look more alike than distant ones.
    pub fn weights_for_day(&self, day: u64, drift: f64, seed: u64) -> Vec<f64> {
        let mut weights = self.factory_weights.clone();
        // Walk the AR(1) chain deterministically from day 0 so that any day
        // can be generated independently yet consistently.
        let mut factors = vec![1.0f64; weights.len()];
        for d in 0..=day {
            let mut rng =
                StdRng::seed_from_u64(seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(d + 1)));
            for f in factors.iter_mut() {
                let shock = 1.0 + drift * sample_normal(&mut rng);
                *f = (*f * 0.8 + 0.2) * shock.clamp(0.5, 1.5);
            }
        }
        for (w, f) in weights.iter_mut().zip(&factors) {
            *w *= f.max(0.05);
        }
        weights
    }
}

/// Order-generation parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OrderGeneratorConfig {
    /// Mean number of orders per day.
    pub orders_per_day: usize,
    /// Mean cargo quantity (same unit as vehicle capacity).
    pub quantity_mean: f64,
    /// Log-normal shape parameter for quantities.
    pub quantity_sigma: f64,
    /// Cap on a single order's quantity (e.g. vehicle capacity).
    pub quantity_max: f64,
    /// Minimum service slack: deadline >= created + min_slack.
    pub min_slack: TimeDelta,
    /// Maximum service slack.
    pub max_slack: TimeDelta,
    /// AR(1) day-to-day drift magnitude (0 disables drift).
    pub day_drift: f64,
    /// Probability that an order's delivery factory is drawn from the
    /// pickup's own hotspot (requires a clustered campus; 0 = legacy
    /// uniform cross-factory flow). High values make demand mostly
    /// region-local — the regime where sharded dispatch pays off.
    pub intra_cluster_bias: f64,
    /// Master seed; combined with the day number for per-day streams.
    pub seed: u64,
}

impl Default for OrderGeneratorConfig {
    fn default() -> Self {
        OrderGeneratorConfig {
            orders_per_day: 600,
            quantity_mean: 2.0,
            quantity_sigma: 0.6,
            quantity_max: 10.0,
            min_slack: TimeDelta::from_hours(2.0),
            max_slack: TimeDelta::from_hours(6.0),
            day_drift: 0.08,
            intra_cluster_bias: 0.0,
            seed: 7,
        }
    }
}

/// Generates days of delivery orders over a campus.
#[derive(Debug, Clone)]
pub struct OrderGenerator {
    profile: DemandProfile,
    config: OrderGeneratorConfig,
    factories: Vec<NodeId>,
    /// Hotspot label per factory row; empty on unclustered campuses.
    clusters: Vec<usize>,
    /// Factory rows per hotspot, ascending (precomputed for the biased
    /// delivery draw); empty on unclustered campuses.
    cluster_rows: Vec<Vec<usize>>,
    /// Each factory row's position within its hotspot's `cluster_rows`
    /// list; empty on unclustered campuses.
    cluster_pos: Vec<usize>,
}

/// Groups factory rows by hotspot and records each row's position within
/// its group.
fn cluster_lookup(clusters: &[usize]) -> (Vec<Vec<usize>>, Vec<usize>) {
    let num_clusters = clusters.iter().map(|&c| c + 1).max().unwrap_or(0);
    let mut rows = vec![Vec::new(); num_clusters];
    let mut pos = Vec::with_capacity(clusters.len());
    for (row, &c) in clusters.iter().enumerate() {
        pos.push(rows[c].len());
        rows[c].push(row);
    }
    (rows, pos)
}

impl OrderGenerator {
    /// Creates a generator for the campus: the paper-like profile on a
    /// uniform campus, the metro profile (per-hotspot hourly curves) when
    /// the campus was generated with hotspot clustering.
    pub fn new(campus: &Campus, config: OrderGeneratorConfig) -> Self {
        let profile = if campus.factory_cluster.is_empty() {
            DemandProfile::paper_like(campus.num_factories(), config.seed)
        } else {
            DemandProfile::metro_like(campus.num_factories(), &campus.factory_cluster, config.seed)
        };
        Self::with_profile(campus, profile, config)
    }

    /// Creates a generator with an explicit profile.
    pub fn with_profile(
        campus: &Campus,
        profile: DemandProfile,
        config: OrderGeneratorConfig,
    ) -> Self {
        assert_eq!(
            profile.factory_weights.len(),
            campus.num_factories(),
            "profile must cover every campus factory"
        );
        let (cluster_rows, cluster_pos) = cluster_lookup(&campus.factory_cluster);
        OrderGenerator {
            profile,
            config,
            factories: campus.factories.clone(),
            clusters: campus.factory_cluster.clone(),
            cluster_rows,
            cluster_pos,
        }
    }

    /// The generator's demand profile.
    pub fn profile(&self) -> &DemandProfile {
        &self.profile
    }

    /// Generates one day of orders (sorted by creation time, dense ids).
    pub fn generate_day(&self, day: u64) -> Vec<Order> {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(day.wrapping_mul(0xA24B_AED4)));
        let weights = self
            .profile
            .weights_for_day(day, cfg.day_drift, cfg.seed ^ 0xD1F7);
        // Day-level volume noise: +-15%.
        let count_f = cfg.orders_per_day as f64 * rng.random_range(0.85..1.15);
        let count = count_f.round().max(1.0) as usize;
        let mut orders = Vec::with_capacity(count);
        for i in 0..count {
            let pickup_row = sample_weighted(&mut rng, &weights);
            // Delivery factory: biased toward the pickup's own hotspot on
            // clustered campuses, uniform over the others otherwise. The
            // extra RNG draw only happens when the bias is active, so
            // legacy configurations keep their exact order streams.
            let delivery_row = if cfg.intra_cluster_bias > 0.0
                && !self.clusters.is_empty()
                && rng.random_range(0.0..1.0) < cfg.intra_cluster_bias
            {
                self.sample_same_cluster(&mut rng, pickup_row)
            } else {
                self.sample_other_factory(&mut rng, pickup_row)
            };
            // Creation time: sample an hour by weight — the pickup
            // factory's own curve when per-hotspot profiles are active —
            // then uniform within the hour.
            let hours = self
                .profile
                .factory_hours
                .get(pickup_row)
                .unwrap_or(&self.profile.hourly_weights);
            let hour = sample_weighted(&mut rng, hours);
            let created = TimePoint::from_hours(hour as f64 + rng.random_range(0.0..1.0));
            // Quantity: log-normal with mean quantity_mean, capped.
            let mu = cfg.quantity_mean.ln() - cfg.quantity_sigma * cfg.quantity_sigma / 2.0;
            let q = (mu + cfg.quantity_sigma * sample_normal(&mut rng)).exp();
            let quantity = q.clamp(0.1, cfg.quantity_max);
            let slack_secs = rng.random_range(cfg.min_slack.seconds()..=cfg.max_slack.seconds());
            let deadline = created + TimeDelta::from_seconds(slack_secs);
            orders.push(
                Order::new(
                    OrderId::from_index(i),
                    self.factories[pickup_row],
                    self.factories[delivery_row],
                    quantity,
                    created,
                    deadline,
                )
                .expect("generated order parameters are valid by construction"),
            );
        }
        orders.sort_by(|a, b| {
            a.created
                .seconds()
                .partial_cmp(&b.created.seconds())
                .expect("finite")
        });
        for (i, o) in orders.iter_mut().enumerate() {
            o.id = OrderId::from_index(i);
        }
        orders
    }

    /// Generates a range of days.
    pub fn generate_days(&self, days: std::ops::Range<u64>) -> Vec<Vec<Order>> {
        days.map(|d| self.generate_day(d)).collect()
    }

    /// Uniform delivery factory over everything except the pickup (one
    /// draw over `n - 1` rows, skipping the pickup's slot).
    fn sample_other_factory(&self, rng: &mut StdRng, pickup_row: usize) -> usize {
        let mut row = rng.random_range(0..self.factories.len() - 1);
        if row >= pickup_row {
            row += 1;
        }
        row
    }

    /// Uniform delivery factory from the pickup's own hotspot (excluding
    /// the pickup itself); falls back to the global uniform rule when the
    /// hotspot has no other factory. One draw either way, over the
    /// precomputed per-hotspot row lists.
    fn sample_same_cluster(&self, rng: &mut StdRng, pickup_row: usize) -> usize {
        let mates = &self.cluster_rows[self.clusters[pickup_row]];
        if mates.len() <= 1 {
            return self.sample_other_factory(rng, pickup_row);
        }
        let mut idx = rng.random_range(0..mates.len() - 1);
        if idx >= self.cluster_pos[pickup_row] {
            idx += 1;
        }
        mates[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campus::CampusConfig;

    fn campus() -> Campus {
        Campus::generate(&CampusConfig::default())
    }

    #[test]
    fn day_generation_is_deterministic() {
        let c = campus();
        let g = OrderGenerator::new(&c, OrderGeneratorConfig::default());
        let a = g.generate_day(3);
        let b = g.generate_day(3);
        assert_eq!(a, b);
        let c2 = g.generate_day(4);
        assert_ne!(a, c2);
    }

    #[test]
    fn orders_are_sorted_valid_and_within_bounds() {
        let c = campus();
        let cfg = OrderGeneratorConfig::default();
        let g = OrderGenerator::new(&c, cfg.clone());
        let orders = g.generate_day(0);
        assert!(!orders.is_empty());
        let mut prev = TimePoint::ZERO;
        for (i, o) in orders.iter().enumerate() {
            assert_eq!(o.id.index(), i);
            assert!(o.created >= prev);
            prev = o.created;
            assert!(o.quantity > 0.0 && o.quantity <= cfg.quantity_max);
            assert!(o.deadline >= o.created + cfg.min_slack);
            assert!(o.deadline <= o.created + cfg.max_slack);
            assert_ne!(o.pickup, o.delivery);
            assert!(c.factories.contains(&o.pickup));
            assert!(c.factories.contains(&o.delivery));
        }
    }

    #[test]
    fn demand_concentrates_in_peak_hours() {
        let c = campus();
        let g = OrderGenerator::new(&c, OrderGeneratorConfig::default());
        let orders = g.generate_day(0);
        let peak = orders
            .iter()
            .filter(|o| {
                let h = o.created.hours();
                (10.0..12.0).contains(&h) || (14.0..17.0).contains(&h)
            })
            .count();
        // Peak hours carry 5/24ths of the day but far more of the demand.
        assert!(
            peak as f64 > 0.5 * orders.len() as f64,
            "peak share too low: {peak}/{}",
            orders.len()
        );
    }

    #[test]
    fn hot_factories_dominate() {
        let c = campus();
        let g = OrderGenerator::new(&c, OrderGeneratorConfig::default());
        let orders = g.generate_day(0);
        let mut counts = vec![0usize; c.num_factories()];
        for o in &orders {
            let row = c.factories.iter().position(|f| *f == o.pickup).unwrap();
            counts[row] += 1;
        }
        let mut sorted = counts.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let top5: usize = sorted.iter().take(5).sum();
        assert!(
            top5 as f64 > 0.4 * orders.len() as f64,
            "top-5 factories should dominate pickups, got {top5}/{}",
            orders.len()
        );
    }

    #[test]
    fn nearby_days_are_more_similar_than_distant_ones() {
        let profile = DemandProfile::paper_like(27, 1);
        let d0 = profile.weights_for_day(10, 0.08, 1);
        let d1 = profile.weights_for_day(11, 0.08, 1);
        let d9 = profile.weights_for_day(60, 0.08, 1);
        let dist = |a: &[f64], b: &[f64]| -> f64 {
            a.iter()
                .zip(b)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>()
                .sqrt()
        };
        assert!(dist(&d0, &d1) < dist(&d0, &d9) * 2.0);
    }

    fn metro_campus() -> Campus {
        Campus::generate(&CampusConfig {
            num_depots: 4,
            num_factories: 28,
            area_km: 60.0,
            hotspots: 4,
            hotspot_spread_km: 1.5,
            ..CampusConfig::default()
        })
    }

    #[test]
    fn intra_cluster_bias_keeps_deliveries_local() {
        let c = metro_campus();
        let cfg = OrderGeneratorConfig {
            intra_cluster_bias: 0.9,
            ..OrderGeneratorConfig::default()
        };
        let g = OrderGenerator::new(&c, cfg);
        let orders = g.generate_day(0);
        let cluster_of = |node: NodeId| {
            let row = c.factories.iter().position(|f| *f == node).unwrap();
            c.factory_cluster[row]
        };
        let local = orders
            .iter()
            .filter(|o| cluster_of(o.pickup) == cluster_of(o.delivery))
            .count();
        // 0.9 bias + the ~1/4 chance a uniform draw stays local anyway.
        assert!(
            local as f64 > 0.8 * orders.len() as f64,
            "only {local}/{} deliveries stayed in-cluster",
            orders.len()
        );
    }

    #[test]
    fn metro_clusters_have_staggered_peaks() {
        let c = metro_campus();
        let g = OrderGenerator::new(&c, OrderGeneratorConfig::default());
        assert_eq!(g.profile().factory_hours.len(), 28);
        // Cluster c's curve is the base curve shifted by c hours: compare
        // a factory from cluster 0 against one from cluster 2.
        let row0 = c.factory_cluster.iter().position(|&x| x == 0).unwrap();
        let row2 = c.factory_cluster.iter().position(|&x| x == 2).unwrap();
        let h0 = g.profile().factory_hours[row0];
        let h2 = g.profile().factory_hours[row2];
        for h in 0..24 {
            assert_eq!(h0[h], h2[(h + 2) % 24], "hour {h} not shifted by 2");
        }
        // And the generated day reflects it: the mean creation hour of
        // cluster-2 pickups trails cluster-0 pickups.
        let orders = g.generate_day(0);
        let mean_hour = |cluster: usize| {
            let hours: Vec<f64> = orders
                .iter()
                .filter(|o| {
                    let row = c.factories.iter().position(|f| *f == o.pickup).unwrap();
                    c.factory_cluster[row] == cluster
                })
                .map(|o| o.created.hours())
                .collect();
            hours.iter().sum::<f64>() / hours.len().max(1) as f64
        };
        assert!(
            mean_hour(2) > mean_hour(0) + 0.5,
            "cluster 2 ({:.2}h) should peak after cluster 0 ({:.2}h)",
            mean_hour(2),
            mean_hour(0)
        );
    }

    #[test]
    fn legacy_generation_is_unchanged_by_the_metro_knobs() {
        // Zero bias + unclustered campus must draw the exact same stream
        // as before the knobs existed (the extra RNG draw is gated off).
        let c = campus();
        let g = OrderGenerator::new(&c, OrderGeneratorConfig::default());
        let orders = g.generate_day(3);
        assert!(g.profile().factory_hours.is_empty());
        assert_eq!(orders, g.generate_day(3));
    }

    #[test]
    fn weighted_sampling_respects_weights() {
        let mut rng = StdRng::seed_from_u64(0);
        let weights = [0.0, 5.0, 0.0, 1.0];
        let mut counts = [0usize; 4];
        for _ in 0..6000 {
            counts[sample_weighted(&mut rng, &weights)] += 1;
        }
        assert_eq!(counts[0], 0);
        assert_eq!(counts[2], 0);
        let ratio = counts[1] as f64 / counts[3] as f64;
        assert!((3.5..6.5).contains(&ratio), "ratio {ratio}");
    }
}
