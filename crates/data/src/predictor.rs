//! Demand prediction: forecasting the next day's STD matrix from history
//! (Eq. (3) of the paper).

use crate::std_matrix::StdMatrix;

/// A spatial-temporal demand predictor: aggregates the STD matrices of the
/// past `k` days into a forecast for the next day (the aggregate function
/// `G` of Eq. (3)).
pub trait DemandPredictor {
    /// Predicts the next day's STD matrix from `history`, ordered oldest to
    /// newest.
    ///
    /// # Panics
    /// Implementations may panic on an empty history or mismatched shapes.
    fn predict(&self, history: &[StdMatrix]) -> StdMatrix;

    /// A short name for reports.
    fn name(&self) -> &str;
}

/// The paper's choice of `G`: the element-wise mean over the most recent `k`
/// days ("for efficiency of inference, we just take the average function").
#[derive(Debug, Clone, Copy)]
pub struct MeanPredictor {
    /// Number of most recent days to average over.
    pub k: usize,
}

impl MeanPredictor {
    /// Mean over the last `k` days.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "MeanPredictor needs k >= 1");
        MeanPredictor { k }
    }
}

impl DemandPredictor for MeanPredictor {
    fn predict(&self, history: &[StdMatrix]) -> StdMatrix {
        assert!(!history.is_empty(), "cannot predict from empty history");
        let take = self.k.min(history.len());
        let recent = &history[history.len() - take..];
        let mut out = StdMatrix::zeros(recent[0].num_factories(), recent[0].num_intervals());
        for m in recent {
            out.add_assign(m);
        }
        out.scale(1.0 / take as f64);
        out
    }

    fn name(&self) -> &str {
        "mean"
    }
}

/// Exponentially-weighted moving average, an "advanced" aggregate the paper
/// notes could be slotted in; newer days weigh more.
#[derive(Debug, Clone, Copy)]
pub struct EwmaPredictor {
    /// Smoothing factor in `(0, 1]`; larger = more weight on recent days.
    pub alpha: f64,
}

impl EwmaPredictor {
    /// Creates an EWMA predictor.
    ///
    /// # Panics
    /// Panics unless `0 < alpha <= 1`.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "alpha must be in (0, 1], got {alpha}"
        );
        EwmaPredictor { alpha }
    }
}

impl DemandPredictor for EwmaPredictor {
    fn predict(&self, history: &[StdMatrix]) -> StdMatrix {
        assert!(!history.is_empty(), "cannot predict from empty history");
        let mut acc = history[0].clone();
        for m in &history[1..] {
            // acc = (1 - alpha) * acc + alpha * m
            acc.scale(1.0 - self.alpha);
            let mut scaled = m.clone();
            scaled.scale(self.alpha);
            acc.add_assign(&scaled);
        }
        acc
    }

    fn name(&self) -> &str {
        "ewma"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn constant(v: f64) -> StdMatrix {
        let mut m = StdMatrix::zeros(2, 2);
        for r in 0..2 {
            for c in 0..2 {
                *m.get_mut(r, c) = v;
            }
        }
        m
    }

    #[test]
    fn mean_predictor_averages_last_k() {
        let history = vec![constant(100.0), constant(2.0), constant(4.0)];
        let p = MeanPredictor::new(2);
        let out = p.predict(&history);
        assert!((out.get(0, 0) - 3.0).abs() < 1e-12);
        // k larger than history uses everything.
        let p = MeanPredictor::new(10);
        let out = p.predict(&history);
        assert!((out.get(1, 1) - (106.0 / 3.0)).abs() < 1e-9);
    }

    #[test]
    fn mean_predictor_identity_on_single_day() {
        let history = vec![constant(5.0)];
        let out = MeanPredictor::new(4).predict(&history);
        assert_eq!(out, constant(5.0));
    }

    #[test]
    fn ewma_weighs_recent_days_more() {
        let history = vec![constant(0.0), constant(10.0)];
        let out = EwmaPredictor::new(0.7).predict(&history);
        assert!((out.get(0, 0) - 7.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty history")]
    fn empty_history_panics() {
        let _ = MeanPredictor::new(1).predict(&[]);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn invalid_alpha_panics() {
        let _ = EwmaPredictor::new(0.0);
    }
}
