//! Synthetic manufacturing campus: depots + factories on a plane.

use dpdp_net::{Node, NodeId, Point, RoadNetwork};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of a synthetic campus.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampusConfig {
    /// Number of depots (the paper's `{w_i}`; vehicles start here).
    pub num_depots: usize,
    /// Number of factories (27 in the paper's campus).
    pub num_factories: usize,
    /// Side length of the square campus area, km.
    pub area_km: f64,
    /// Road distance = Euclidean distance × this factor (>= 1).
    pub detour_factor: f64,
    /// RNG seed for node placement.
    pub seed: u64,
    /// Number of spatial hotspots (metro-style multi-cluster layout).
    /// `0` or `1` keeps the legacy uniform placement over the whole area;
    /// `>= 2` places hotspot centres on a ring and gathers depots and
    /// factories around them (round-robin), giving region sharding
    /// geography to bite on.
    pub hotspots: usize,
    /// Standard deviation of node placement around its hotspot centre, km
    /// (only used with `hotspots >= 2`).
    pub hotspot_spread_km: f64,
}

impl Default for CampusConfig {
    /// The paper's campus: 27 factories (Pearl River Delta manufacturing
    /// campus), 2 depots, a ~10 km site, mild road detour, no hotspot
    /// clustering.
    fn default() -> Self {
        CampusConfig {
            num_depots: 2,
            num_factories: 27,
            area_km: 10.0,
            detour_factor: 1.3,
            seed: 20210527, // arXiv submission date of the paper
            hotspots: 0,
            hotspot_spread_km: 1.0,
        }
    }
}

/// A generated campus: the road network plus the depot/factory id ranges.
///
/// Node layout: depots occupy ids `0..num_depots`, factories occupy
/// `num_depots..num_depots+num_factories`.
#[derive(Debug, Clone)]
pub struct Campus {
    /// The road network over all campus nodes.
    pub network: RoadNetwork,
    /// Ids of the depot nodes.
    pub depots: Vec<NodeId>,
    /// Ids of the factory nodes, in STD-matrix row order.
    pub factories: Vec<NodeId>,
    /// Hotspot index per factory (row order of `factories`). Empty when
    /// the campus was generated without hotspot clustering.
    pub factory_cluster: Vec<usize>,
}

impl Campus {
    /// Generates a campus from the given configuration.
    ///
    /// # Panics
    /// Panics if the configuration has zero depots or factories (a campus
    /// without both cannot host any order).
    pub fn generate(config: &CampusConfig) -> Self {
        assert!(config.num_depots > 0, "campus needs at least one depot");
        assert!(
            config.num_factories > 0,
            "campus needs at least one factory"
        );
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut nodes = Vec::with_capacity(config.num_depots + config.num_factories);
        let mut factory_cluster = Vec::new();
        if config.hotspots >= 2 {
            // Metro layout: hotspot centres on a ring around the area
            // centre (with angular jitter), nodes gathered gaussian around
            // their round-robin hotspot.
            let c = config.hotspots;
            let mid = config.area_km / 2.0;
            let ring = config.area_km * 0.35;
            let centres: Vec<Point> = (0..c)
                .map(|i| {
                    let jitter = rng.random_range(-0.25..0.25) / c as f64;
                    let angle = (i as f64 / c as f64 + jitter) * std::f64::consts::TAU;
                    Point::new(mid + ring * angle.cos(), mid + ring * angle.sin())
                })
                .collect();
            let gauss = |rng: &mut StdRng, centre: Point| {
                // Box–Muller pair for an isotropic spread around the centre.
                let u1: f64 = rng.random_range(f64::EPSILON..1.0);
                let u2: f64 = rng.random_range(0.0..1.0);
                let r = (-2.0 * u1.ln()).sqrt() * config.hotspot_spread_km;
                let theta = std::f64::consts::TAU * u2;
                Point::new(centre.x + r * theta.cos(), centre.y + r * theta.sin())
            };
            for i in 0..config.num_depots {
                let centre = centres[i % c];
                nodes.push(Node::depot(NodeId::from_index(i), gauss(&mut rng, centre)));
            }
            for i in 0..config.num_factories {
                let cluster = i % c;
                factory_cluster.push(cluster);
                nodes.push(Node::factory(
                    NodeId::from_index(config.num_depots + i),
                    gauss(&mut rng, centres[cluster]),
                ));
            }
        } else {
            let place = |rng: &mut StdRng| {
                Point::new(
                    rng.random_range(0.0..config.area_km),
                    rng.random_range(0.0..config.area_km),
                )
            };
            for i in 0..config.num_depots {
                nodes.push(Node::depot(NodeId::from_index(i), place(&mut rng)));
            }
            for i in 0..config.num_factories {
                nodes.push(Node::factory(
                    NodeId::from_index(config.num_depots + i),
                    place(&mut rng),
                ));
            }
        }
        let network = RoadNetwork::euclidean(nodes, config.detour_factor)
            .expect("generated nodes are dense and detour factor validated");
        let depots = network.depots();
        let factories = network.factories();
        Campus {
            network,
            depots,
            factories,
            factory_cluster,
        }
    }

    /// Number of factories `n`.
    pub fn num_factories(&self) -> usize {
        self.factories.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_campus_matches_paper_shape() {
        let campus = Campus::generate(&CampusConfig::default());
        assert_eq!(campus.num_factories(), 27);
        assert_eq!(campus.depots.len(), 2);
        assert_eq!(campus.network.num_nodes(), 29);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = CampusConfig::default();
        let a = Campus::generate(&cfg);
        let b = Campus::generate(&cfg);
        for (na, nb) in a.network.nodes().iter().zip(b.network.nodes()) {
            assert_eq!(na.pos, nb.pos);
        }
        let mut cfg2 = cfg.clone();
        cfg2.seed += 1;
        let c = Campus::generate(&cfg2);
        assert_ne!(a.network.nodes()[0].pos, c.network.nodes()[0].pos);
    }

    #[test]
    fn distances_respect_detour_factor() {
        let campus = Campus::generate(&CampusConfig::default());
        let nodes = campus.network.nodes();
        let i = campus.factories[0];
        let j = campus.factories[1];
        let euclid = nodes[i.index()].pos.distance(&nodes[j.index()].pos);
        let road = campus.network.distance(i, j);
        assert!((road - euclid * 1.3).abs() < 1e-9);
    }

    #[test]
    fn hotspot_campus_forms_separated_clusters() {
        let cfg = CampusConfig {
            num_depots: 4,
            num_factories: 28,
            area_km: 60.0,
            hotspots: 4,
            hotspot_spread_km: 1.5,
            ..CampusConfig::default()
        };
        let campus = Campus::generate(&cfg);
        assert_eq!(campus.factory_cluster.len(), 28);
        assert!(campus.factory_cluster.iter().all(|&c| c < 4));
        // Same-cluster factories sit far closer together than cross-cluster
        // ones: compare mean intra vs inter distances.
        let pos = |id: NodeId| campus.network.nodes()[id.index()].pos;
        let (mut intra, mut inter, mut ni, mut nx) = (0.0, 0.0, 0usize, 0usize);
        for (a, &ca) in campus.factories.iter().zip(&campus.factory_cluster) {
            for (b, &cb) in campus.factories.iter().zip(&campus.factory_cluster) {
                if a >= b {
                    continue;
                }
                let d = pos(*a).distance(&pos(*b));
                if ca == cb {
                    intra += d;
                    ni += 1;
                } else {
                    inter += d;
                    nx += 1;
                }
            }
        }
        let (intra, inter) = (intra / ni as f64, inter / nx as f64);
        assert!(
            inter > 4.0 * intra,
            "clusters not separated: intra {intra:.1} km vs inter {inter:.1} km"
        );
        // One depot lands in each hotspot.
        assert_eq!(campus.depots.len(), 4);
    }

    #[test]
    fn legacy_campus_has_no_cluster_labels() {
        let campus = Campus::generate(&CampusConfig::default());
        assert!(campus.factory_cluster.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one depot")]
    fn zero_depots_panics() {
        let cfg = CampusConfig {
            num_depots: 0,
            ..CampusConfig::default()
        };
        let _ = Campus::generate(&cfg);
    }
}
