//! Synthetic manufacturing campus: depots + factories on a plane.

use dpdp_net::{Node, NodeId, Point, RoadNetwork};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of a synthetic campus.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampusConfig {
    /// Number of depots (the paper's `{w_i}`; vehicles start here).
    pub num_depots: usize,
    /// Number of factories (27 in the paper's campus).
    pub num_factories: usize,
    /// Side length of the square campus area, km.
    pub area_km: f64,
    /// Road distance = Euclidean distance × this factor (>= 1).
    pub detour_factor: f64,
    /// RNG seed for node placement.
    pub seed: u64,
}

impl Default for CampusConfig {
    /// The paper's campus: 27 factories (Pearl River Delta manufacturing
    /// campus), 2 depots, a ~10 km site, mild road detour.
    fn default() -> Self {
        CampusConfig {
            num_depots: 2,
            num_factories: 27,
            area_km: 10.0,
            detour_factor: 1.3,
            seed: 20210527, // arXiv submission date of the paper
        }
    }
}

/// A generated campus: the road network plus the depot/factory id ranges.
///
/// Node layout: depots occupy ids `0..num_depots`, factories occupy
/// `num_depots..num_depots+num_factories`.
#[derive(Debug, Clone)]
pub struct Campus {
    /// The road network over all campus nodes.
    pub network: RoadNetwork,
    /// Ids of the depot nodes.
    pub depots: Vec<NodeId>,
    /// Ids of the factory nodes, in STD-matrix row order.
    pub factories: Vec<NodeId>,
}

impl Campus {
    /// Generates a campus from the given configuration.
    ///
    /// # Panics
    /// Panics if the configuration has zero depots or factories (a campus
    /// without both cannot host any order).
    pub fn generate(config: &CampusConfig) -> Self {
        assert!(config.num_depots > 0, "campus needs at least one depot");
        assert!(
            config.num_factories > 0,
            "campus needs at least one factory"
        );
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut nodes = Vec::with_capacity(config.num_depots + config.num_factories);
        let place = |rng: &mut StdRng| {
            Point::new(
                rng.random_range(0.0..config.area_km),
                rng.random_range(0.0..config.area_km),
            )
        };
        for i in 0..config.num_depots {
            nodes.push(Node::depot(NodeId::from_index(i), place(&mut rng)));
        }
        for i in 0..config.num_factories {
            nodes.push(Node::factory(
                NodeId::from_index(config.num_depots + i),
                place(&mut rng),
            ));
        }
        let network = RoadNetwork::euclidean(nodes, config.detour_factor)
            .expect("generated nodes are dense and detour factor validated");
        let depots = network.depots();
        let factories = network.factories();
        Campus {
            network,
            depots,
            factories,
        }
    }

    /// Number of factories `n`.
    pub fn num_factories(&self) -> usize {
        self.factories.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_campus_matches_paper_shape() {
        let campus = Campus::generate(&CampusConfig::default());
        assert_eq!(campus.num_factories(), 27);
        assert_eq!(campus.depots.len(), 2);
        assert_eq!(campus.network.num_nodes(), 29);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = CampusConfig::default();
        let a = Campus::generate(&cfg);
        let b = Campus::generate(&cfg);
        for (na, nb) in a.network.nodes().iter().zip(b.network.nodes()) {
            assert_eq!(na.pos, nb.pos);
        }
        let mut cfg2 = cfg.clone();
        cfg2.seed += 1;
        let c = Campus::generate(&cfg2);
        assert_ne!(a.network.nodes()[0].pos, c.network.nodes()[0].pos);
    }

    #[test]
    fn distances_respect_detour_factor() {
        let campus = Campus::generate(&CampusConfig::default());
        let nodes = campus.network.nodes();
        let i = campus.factories[0];
        let j = campus.factories[1];
        let euclid = nodes[i.index()].pos.distance(&nodes[j.index()].pos);
        let road = campus.network.distance(i, j);
        assert!((road - euclid * 1.3).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one depot")]
    fn zero_depots_panics() {
        let cfg = CampusConfig {
            num_depots: 0,
            ..CampusConfig::default()
        };
        let _ = Campus::generate(&cfg);
    }
}
