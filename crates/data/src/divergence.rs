//! Divergence measures between demand/capacity vectors.
//!
//! Definition 5 computes the ST Score as the Jensen–Shannon divergence
//! between a route's capacity vector and the predicted demand vector; the
//! paper's supplementary material compares JS against the symmetric KL
//! divergence. Vectors are normalised to probability distributions first
//! (with additive smoothing so empty components stay finite).

use serde::{Deserialize, Serialize};

/// Smoothing constant added to every component before normalisation.
const EPS: f64 = 1e-9;

/// Which divergence to use inside the ST Score.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DivergenceKind {
    /// Jensen–Shannon divergence (the paper's choice; symmetric, bounded by
    /// `ln 2`).
    JensenShannon,
    /// Symmetric KL: `(KL(p||q) + KL(q||p)) / 2`.
    SymmetricKl,
}

/// Normalises a non-negative vector to a probability distribution with
/// additive smoothing. An empty vector normalises to an empty vector; an
/// all-zero vector becomes uniform.
pub fn normalize(v: &[f64]) -> Vec<f64> {
    if v.is_empty() {
        return Vec::new();
    }
    let total: f64 = v.iter().map(|x| x.max(0.0) + EPS).sum();
    v.iter().map(|x| (x.max(0.0) + EPS) / total).collect()
}

/// KL divergence `KL(p || q)` over two probability distributions of the
/// same length. Components are assumed strictly positive (use
/// [`normalize`]).
///
/// # Panics
/// Panics if lengths differ.
pub fn kl_divergence(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distributions must have equal length");
    p.iter()
        .zip(q)
        .filter(|(pi, _)| **pi > 0.0)
        .map(|(pi, qi)| pi * (pi / qi.max(EPS)).ln())
        .sum()
}

/// Symmetric KL divergence `(KL(p||q) + KL(q||p)) / 2`.
pub fn symmetric_kl(p: &[f64], q: &[f64]) -> f64 {
    0.5 * (kl_divergence(p, q) + kl_divergence(q, p))
}

/// Jensen–Shannon divergence: `0.5 KL(p||m) + 0.5 KL(q||m)` with
/// `m = (p+q)/2`. Symmetric and bounded by `ln 2`.
pub fn js_divergence(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distributions must have equal length");
    let m: Vec<f64> = p.iter().zip(q).map(|(a, b)| 0.5 * (a + b)).collect();
    0.5 * kl_divergence(p, &m) + 0.5 * kl_divergence(q, &m)
}

/// Applies the selected divergence to two *unnormalised* non-negative
/// vectors, normalising first. Empty vectors yield 0.
pub fn divergence(kind: DivergenceKind, a: &[f64], b: &[f64]) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let p = normalize(a);
    let q = normalize(b);
    match kind {
        DivergenceKind::JensenShannon => js_divergence(&p, &q),
        DivergenceKind::SymmetricKl => symmetric_kl(&p, &q),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LN2: f64 = std::f64::consts::LN_2;

    #[test]
    fn normalize_sums_to_one() {
        let p = normalize(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[2] > p[1] && p[1] > p[0]);
        // All-zero becomes uniform.
        let u = normalize(&[0.0, 0.0]);
        assert!((u[0] - 0.5).abs() < 1e-9);
        assert!(normalize(&[]).is_empty());
        // Negative entries are clamped to zero.
        let c = normalize(&[-5.0, 1.0]);
        assert!(c[0] < c[1]);
        assert!(c[0] > 0.0);
    }

    #[test]
    fn kl_is_zero_on_identical_distributions() {
        let p = normalize(&[1.0, 4.0, 5.0]);
        assert!(kl_divergence(&p, &p).abs() < 1e-12);
        assert!(js_divergence(&p, &p).abs() < 1e-12);
        assert!(symmetric_kl(&p, &p).abs() < 1e-12);
    }

    #[test]
    fn js_is_symmetric_and_bounded() {
        let p = normalize(&[10.0, 0.0, 0.0]);
        let q = normalize(&[0.0, 0.0, 10.0]);
        let d1 = js_divergence(&p, &q);
        let d2 = js_divergence(&q, &p);
        assert!((d1 - d2).abs() < 1e-12);
        assert!(d1 > 0.0);
        assert!(d1 <= LN2 + 1e-9, "JS must be bounded by ln 2, got {d1}");
        // Disjoint supports approach the bound.
        assert!(d1 > 0.9 * LN2);
    }

    #[test]
    fn kl_is_asymmetric_in_general() {
        let p = normalize(&[9.0, 1.0]);
        let q = normalize(&[1.0, 9.0]);
        let pq = kl_divergence(&p, &q);
        let qp = kl_divergence(&q, &p);
        assert!(pq > 0.0 && qp > 0.0);
        // Symmetrised version is symmetric by construction.
        assert!((symmetric_kl(&p, &q) - symmetric_kl(&q, &p)).abs() < 1e-12);
    }

    #[test]
    fn divergence_handles_unnormalised_and_empty_input() {
        assert_eq!(divergence(DivergenceKind::JensenShannon, &[], &[]), 0.0);
        let d = divergence(DivergenceKind::JensenShannon, &[2.0, 2.0], &[4.0, 4.0]);
        assert!(
            d.abs() < 1e-9,
            "proportional vectors should have ~0 divergence"
        );
        let d = divergence(DivergenceKind::SymmetricKl, &[1.0, 0.0], &[0.0, 1.0]);
        assert!(
            d > 1.0,
            "disjoint mass should diverge strongly under sym-KL"
        );
    }

    #[test]
    fn js_increases_with_mismatch() {
        let demand = normalize(&[5.0, 5.0, 0.0]);
        let aligned = normalize(&[5.0, 5.0, 0.1]);
        let misaligned = normalize(&[0.1, 0.1, 10.0]);
        assert!(js_divergence(&aligned, &demand) < js_divergence(&misaligned, &demand));
    }
}
