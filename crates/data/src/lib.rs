//! Data substrate for the DPDP reproduction.
//!
//! The paper trains and evaluates on four months of proprietary delivery
//! orders from a 27-factory manufacturing campus. This crate replaces that
//! data with a **seeded synthetic generator** that reproduces the structure
//! the method exploits (see DESIGN.md): persistent factory-level demand
//! heterogeneity and a two-peak intra-day profile, drifting slowly from day
//! to day.
//!
//! On top of the generator it implements the paper's spatial-temporal
//! machinery:
//!
//! * [`StdMatrix`] — Definition 1, the `n x T` spatial-temporal distribution
//!   of delivery demand;
//! * [`MeanPredictor`] / [`EwmaPredictor`] — Eq. (3), forecasting the next
//!   day's STD matrix from history;
//! * [`divergence`] — KL / symmetric-KL / JS divergences;
//! * [`StScorer`] — Definitions 2–5, the ST Score of a candidate route.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campus;
pub mod dataset;
pub mod divergence;
pub mod generator;
pub mod predictor;
pub mod st_score;
pub mod std_matrix;

pub use campus::{Campus, CampusConfig};
pub use dataset::{Dataset, DatasetConfig};
pub use divergence::{js_divergence, kl_divergence, normalize, symmetric_kl, DivergenceKind};
pub use generator::{DemandProfile, OrderGenerator, OrderGeneratorConfig};
pub use predictor::{DemandPredictor, EwmaPredictor, MeanPredictor};
pub use st_score::StScorer;
pub use std_matrix::{FactoryIndex, StdMatrix};
