//! The spatial-temporal distribution (STD) matrix of delivery demand —
//! Definition 1 of the paper.

use dpdp_net::{IntervalGrid, NodeId, Order};
use serde::{Deserialize, Serialize};

/// Maps factory node ids to dense STD-matrix row indices.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FactoryIndex {
    rows: Vec<Option<usize>>,
    factories: Vec<NodeId>,
}

impl FactoryIndex {
    /// Builds the index from the factory list (row order = list order).
    pub fn new(factories: &[NodeId]) -> Self {
        let max = factories
            .iter()
            .map(|f| f.index())
            .max()
            .map_or(0, |m| m + 1);
        let mut rows = vec![None; max];
        for (row, f) in factories.iter().enumerate() {
            rows[f.index()] = Some(row);
        }
        FactoryIndex {
            rows,
            factories: factories.to_vec(),
        }
    }

    /// Row index of a factory node, if it is a factory.
    #[inline]
    pub fn row(&self, node: NodeId) -> Option<usize> {
        self.rows.get(node.index()).copied().flatten()
    }

    /// The factory node at a given row.
    #[inline]
    pub fn node(&self, row: usize) -> NodeId {
        self.factories[row]
    }

    /// Number of factories `n`.
    #[inline]
    pub fn num_factories(&self) -> usize {
        self.factories.len()
    }
}

/// The STD matrix `E = [e_{i,j}] ∈ R^{n x T}`: total cargo quantity created
/// at factory `i` within time interval `j` (Definition 1, Eqs. (1)–(2)).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StdMatrix {
    n: usize,
    t: usize,
    data: Vec<f64>,
}

impl StdMatrix {
    /// An all-zero `n x T` matrix.
    pub fn zeros(n: usize, t: usize) -> Self {
        StdMatrix {
            n,
            t,
            data: vec![0.0; n * t],
        }
    }

    /// Builds the STD matrix of one day of orders: `e_{i,j}` sums the
    /// quantities of orders whose **pickup** factory is `i` and whose
    /// creation time falls in interval `j`.
    pub fn from_orders(orders: &[Order], grid: &IntervalGrid, index: &FactoryIndex) -> Self {
        let mut m = Self::zeros(index.num_factories(), grid.num_intervals());
        for o in orders {
            if let Some(row) = index.row(o.pickup) {
                let col = grid.interval_of(o.created);
                m.data[row * m.t + col] += o.quantity;
            }
        }
        m
    }

    /// Number of factory rows `n`.
    #[inline]
    pub fn num_factories(&self) -> usize {
        self.n
    }

    /// Number of interval columns `T`.
    #[inline]
    pub fn num_intervals(&self) -> usize {
        self.t
    }

    /// Element `e_{i,j}`.
    ///
    /// # Panics
    /// Panics if out of range.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.n && col < self.t, "STD index out of range");
        self.data[row * self.t + col]
    }

    /// Mutable element access.
    ///
    /// # Panics
    /// Panics if out of range.
    #[inline]
    pub fn get_mut(&mut self, row: usize, col: usize) -> &mut f64 {
        assert!(row < self.n && col < self.t, "STD index out of range");
        &mut self.data[row * self.t + col]
    }

    /// Sum over all elements (total demand quantity of the day).
    pub fn total(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Per-factory totals (row sums).
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.n)
            .map(|r| self.data[r * self.t..(r + 1) * self.t].iter().sum())
            .collect()
    }

    /// Per-interval totals (column sums).
    pub fn col_sums(&self) -> Vec<f64> {
        let mut sums = vec![0.0; self.t];
        for r in 0..self.n {
            for (c, s) in sums.iter_mut().enumerate() {
                *s += self.data[r * self.t + c];
            }
        }
        sums
    }

    /// Frobenius norm of the difference to another matrix — the `Diff`
    /// metric of the paper's Fig. 9.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn frobenius_diff(&self, other: &StdMatrix) -> f64 {
        assert_eq!(
            (self.n, self.t),
            (other.n, other.t),
            "STD shapes must match"
        );
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }

    /// Element-wise in-place addition.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &StdMatrix) {
        assert_eq!(
            (self.n, self.t),
            (other.n, other.t),
            "STD shapes must match"
        );
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Element-wise in-place scaling.
    pub fn scale(&mut self, factor: f64) {
        for a in self.data.iter_mut() {
            *a *= factor;
        }
    }

    /// Raw row-major data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Renders the matrix as CSV (rows = factories, columns = intervals),
    /// for the Fig. 2 / Fig. 10 regenerators.
    pub fn to_csv(&self) -> String {
        let mut out = String::with_capacity(self.data.len() * 6);
        for r in 0..self.n {
            for c in 0..self.t {
                if c > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{:.3}", self.data[r * self.t + c]));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpdp_net::{OrderId, TimePoint};

    fn index() -> FactoryIndex {
        // Factories are nodes 2,3,4 (rows 0,1,2).
        FactoryIndex::new(&[NodeId(2), NodeId(3), NodeId(4)])
    }

    fn order(id: u32, pickup: u32, q: f64, hours: f64) -> Order {
        Order::new(
            OrderId(id),
            NodeId(pickup),
            NodeId(if pickup == 2 { 3 } else { 2 }),
            q,
            TimePoint::from_hours(hours),
            TimePoint::from_hours(hours + 4.0),
        )
        .unwrap()
    }

    #[test]
    fn factory_index_roundtrip() {
        let idx = index();
        assert_eq!(idx.row(NodeId(2)), Some(0));
        assert_eq!(idx.row(NodeId(4)), Some(2));
        assert_eq!(idx.row(NodeId(0)), None);
        assert_eq!(idx.row(NodeId(99)), None);
        assert_eq!(idx.node(1), NodeId(3));
        assert_eq!(idx.num_factories(), 3);
    }

    #[test]
    fn from_orders_accumulates_by_pickup_and_interval() {
        let grid = IntervalGrid::paper_default();
        let idx = index();
        // 10:00 is interval 60; 10:05 also 60; 10:10 is 61.
        let orders = vec![
            order(0, 2, 3.0, 10.0),
            order(1, 2, 2.0, 10.0 + 5.0 / 60.0),
            order(2, 3, 7.0, 10.0 + 10.0 / 60.0),
        ];
        let m = StdMatrix::from_orders(&orders, &grid, &idx);
        assert_eq!(m.num_factories(), 3);
        assert_eq!(m.num_intervals(), 144);
        assert!((m.get(0, 60) - 5.0).abs() < 1e-12);
        assert!((m.get(1, 61) - 7.0).abs() < 1e-12);
        assert!((m.total() - 12.0).abs() < 1e-12);
        assert_eq!(m.row_sums(), vec![5.0, 7.0, 0.0]);
        let cols = m.col_sums();
        assert!((cols[60] - 5.0).abs() < 1e-12);
        assert!((cols[61] - 7.0).abs() < 1e-12);
    }

    #[test]
    fn frobenius_diff_is_a_metric_on_equal_shapes() {
        let mut a = StdMatrix::zeros(2, 3);
        let mut b = StdMatrix::zeros(2, 3);
        assert_eq!(a.frobenius_diff(&b), 0.0);
        *a.get_mut(0, 0) = 3.0;
        *b.get_mut(1, 2) = 4.0;
        assert!((a.frobenius_diff(&b) - 5.0).abs() < 1e-12);
        assert_eq!(a.frobenius_diff(&b), b.frobenius_diff(&a));
    }

    #[test]
    fn add_and_scale() {
        let mut a = StdMatrix::zeros(1, 2);
        *a.get_mut(0, 0) = 2.0;
        let mut b = StdMatrix::zeros(1, 2);
        *b.get_mut(0, 0) = 4.0;
        *b.get_mut(0, 1) = 6.0;
        a.add_assign(&b);
        a.scale(0.5);
        assert_eq!(a.get(0, 0), 3.0);
        assert_eq!(a.get(0, 1), 3.0);
    }

    #[test]
    fn csv_shape() {
        let m = StdMatrix::zeros(2, 3);
        let csv = m.to_csv();
        assert_eq!(csv.lines().count(), 2);
        assert_eq!(csv.lines().next().unwrap().split(',').count(), 3);
    }

    #[test]
    #[should_panic(expected = "shapes must match")]
    fn shape_mismatch_panics() {
        let a = StdMatrix::zeros(2, 3);
        let b = StdMatrix::zeros(3, 2);
        let _ = a.frobenius_diff(&b);
    }
}
