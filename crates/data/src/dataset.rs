//! Dataset assembly: campus + generator + fleet → ready-to-run instances.
//!
//! Mirrors the paper's experimental data protocol (Section V-B): months of
//! daily order data, a train/test split by day, *sampled* instances of a
//! chosen scale drawn uniformly from a day pool, and *industry-scale*
//! instances that take a full generated day as-is.

use crate::campus::{Campus, CampusConfig};
use crate::generator::{OrderGenerator, OrderGeneratorConfig};
use crate::predictor::{DemandPredictor, MeanPredictor};
use crate::std_matrix::{FactoryIndex, StdMatrix};
use dpdp_net::{FleetConfig, Instance, IntervalGrid, Order, OrderId, TimeDelta};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// Full dataset configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatasetConfig {
    /// Campus layout parameters.
    pub campus: CampusConfig,
    /// Order generation parameters.
    pub generator: OrderGeneratorConfig,
    /// Vehicle capacity `Q`.
    pub capacity: f64,
    /// Fixed cost `mu` per used vehicle.
    pub fixed_cost: f64,
    /// Operating cost `delta` per km.
    pub unit_cost: f64,
    /// Constant travel speed, km/h.
    pub speed_kmh: f64,
    /// Per-stop service time.
    pub service_time: TimeDelta,
    /// Days used for training (e.g. July–September).
    pub train_days: Range<u64>,
    /// Days used for testing (the paper holds out the last 20 days).
    pub test_days: Range<u64>,
}

impl Default for DatasetConfig {
    /// Paper-like defaults: ~4 months of days, the last 20 held out.
    fn default() -> Self {
        DatasetConfig {
            campus: CampusConfig::default(),
            generator: OrderGeneratorConfig::default(),
            capacity: 10.0,
            fixed_cost: 300.0,
            unit_cost: 2.0,
            speed_kmh: 40.0,
            service_time: TimeDelta::from_minutes(5.0),
            train_days: 0..100,
            test_days: 100..120,
        }
    }
}

/// A materialised dataset: the campus and the (lazy, seeded) order stream.
#[derive(Debug, Clone)]
pub struct Dataset {
    campus: Campus,
    generator: OrderGenerator,
    config: DatasetConfig,
    grid: IntervalGrid,
}

impl Dataset {
    /// Builds the dataset (generates the campus; orders are generated on
    /// demand, deterministically per day).
    pub fn new(config: DatasetConfig) -> Self {
        let campus = Campus::generate(&config.campus);
        let generator = OrderGenerator::new(&campus, config.generator.clone());
        Dataset {
            campus,
            generator,
            config,
            grid: IntervalGrid::paper_default(),
        }
    }

    /// The generated campus.
    pub fn campus(&self) -> &Campus {
        &self.campus
    }

    /// The dataset configuration.
    pub fn config(&self) -> &DatasetConfig {
        &self.config
    }

    /// The interval grid (paper default: 144 ten-minute intervals).
    pub fn grid(&self) -> IntervalGrid {
        self.grid
    }

    /// Factory-to-row mapping for STD matrices.
    pub fn factory_index(&self) -> FactoryIndex {
        FactoryIndex::new(&self.campus.factories)
    }

    /// All orders of one day.
    pub fn day_orders(&self, day: u64) -> Vec<Order> {
        self.generator.generate_day(day)
    }

    /// Builds a fleet of `k` vehicles over the campus depots.
    pub fn fleet(&self, k: usize) -> FleetConfig {
        FleetConfig::homogeneous(
            k,
            &self.campus.depots,
            self.config.capacity,
            self.config.fixed_cost,
            self.config.unit_cost,
            self.config.speed_kmh,
            self.config.service_time,
        )
        .expect("dataset config validated at construction")
    }

    /// An *industry-scale* instance: one full day of orders, as generated.
    pub fn day_instance(&self, day: u64, num_vehicles: usize) -> Instance {
        Instance::new(
            self.campus.network.clone(),
            self.fleet(num_vehicles),
            self.grid,
            self.day_orders(day),
        )
        .expect("generated orders are valid for the campus")
    }

    /// A *sampled* instance: `num_orders` orders drawn uniformly (without
    /// replacement) from the pool of `days`, keeping their creation times.
    /// This matches the paper's "various scales of instances constructed by
    /// uniformly sampling" protocol.
    pub fn sampled_instance(
        &self,
        days: Range<u64>,
        num_orders: usize,
        num_vehicles: usize,
        seed: u64,
    ) -> Instance {
        let mut pool: Vec<Order> = days.flat_map(|d| self.day_orders(d)).collect();
        assert!(
            pool.len() >= num_orders,
            "pool of {} orders cannot supply {num_orders}",
            pool.len()
        );
        let mut rng = StdRng::seed_from_u64(seed);
        // Partial Fisher–Yates: the first `num_orders` entries become the
        // uniform sample.
        for i in 0..num_orders {
            let j = rng.random_range(i..pool.len());
            pool.swap(i, j);
        }
        pool.truncate(num_orders);
        for (i, o) in pool.iter_mut().enumerate() {
            o.id = OrderId::from_index(i);
        }
        Instance::new(
            self.campus.network.clone(),
            self.fleet(num_vehicles),
            self.grid,
            pool,
        )
        .expect("sampled orders remain valid")
    }

    /// STD matrices for a range of days, oldest first.
    pub fn std_history(&self, days: Range<u64>) -> Vec<StdMatrix> {
        let index = self.factory_index();
        days.map(|d| StdMatrix::from_orders(&self.day_orders(d), &self.grid, &index))
            .collect()
    }

    /// Predicted STD matrix for `day` using the paper's mean aggregate over
    /// the `k` preceding days (Eq. (3)).
    pub fn predicted_std(&self, day: u64, k: usize) -> StdMatrix {
        let start = day.saturating_sub(k as u64);
        let history = self.std_history(start..day.max(1));
        MeanPredictor::new(k).predict(&history)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Dataset {
        let mut cfg = DatasetConfig::default();
        cfg.generator.orders_per_day = 60;
        Dataset::new(cfg)
    }

    #[test]
    fn day_instance_shapes() {
        let ds = small();
        let inst = ds.day_instance(0, 10);
        assert_eq!(inst.num_vehicles(), 10);
        assert!(inst.num_orders() > 30);
        // Orders dense and sorted.
        for (i, o) in inst.orders().iter().enumerate() {
            assert_eq!(o.id.index(), i);
        }
    }

    #[test]
    fn sampled_instance_is_deterministic_and_correctly_sized() {
        let ds = small();
        let a = ds.sampled_instance(0..3, 40, 5, 99);
        let b = ds.sampled_instance(0..3, 40, 5, 99);
        assert_eq!(a.num_orders(), 40);
        assert_eq!(a.orders(), b.orders());
        let c = ds.sampled_instance(0..3, 40, 5, 100);
        assert_ne!(a.orders(), c.orders());
    }

    #[test]
    #[should_panic(expected = "cannot supply")]
    fn oversampling_panics() {
        let ds = small();
        let _ = ds.sampled_instance(0..1, 100_000, 5, 0);
    }

    #[test]
    fn std_history_and_prediction() {
        let ds = small();
        let hist = ds.std_history(0..4);
        assert_eq!(hist.len(), 4);
        for m in &hist {
            assert_eq!(m.num_factories(), 27);
            assert_eq!(m.num_intervals(), 144);
            assert!(m.total() > 0.0);
        }
        let pred = ds.predicted_std(4, 3);
        assert_eq!(pred.num_factories(), 27);
        // Prediction total should be near the mean of the last 3 days.
        let mean: f64 = hist[1..].iter().map(|m| m.total()).sum::<f64>() / 3.0;
        assert!((pred.total() - mean).abs() < 1e-6);
    }

    #[test]
    fn predicted_matrix_correlates_with_actual_next_day() {
        // Individual 10-minute cells are sparse, but per-factory demand
        // recurs day over day: the predicted row sums should align with the
        // actual next day far better than a uniform spread would.
        let ds = small();
        let actual = ds.std_history(5..6).pop().unwrap();
        let pred = ds.predicted_std(5, 4);
        let cosine = |a: &[f64], b: &[f64]| -> f64 {
            let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
            let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
            let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
            dot / (na * nb)
        };
        let sim = cosine(&pred.row_sums(), &actual.row_sums());
        assert!(
            sim > 0.8,
            "factory-level prediction similarity {sim} too low"
        );
        let uniform = vec![1.0; 27];
        let baseline = cosine(&uniform, &actual.row_sums());
        assert!(
            sim > baseline,
            "prediction ({sim}) no better than uniform ({baseline})"
        );
    }
}
