//! Property-based tests for routes, schedules and insertion enumeration.

use dpdp_net::*;
use dpdp_routing::*;
use proptest::prelude::*;

/// A random campus-like fixture: depot + factories, fleet, and orders.
#[derive(Debug, Clone)]
struct Fixture {
    net: RoadNetwork,
    fleet: FleetConfig,
    orders: Vec<Order>,
}

fn arb_fixture() -> impl Strategy<Value = Fixture> {
    (
        proptest::collection::vec((0.0f64..50.0, 0.0f64..50.0), 4..8),
        proptest::collection::vec((0.5f64..5.0, 0.0f64..12.0, 4.0f64..24.0), 1..6),
        1.0f64..1.5,
    )
        .prop_map(|(pts, order_params, detour)| {
            let nodes: Vec<Node> = pts
                .iter()
                .enumerate()
                .map(|(i, &(x, y))| {
                    if i == 0 {
                        Node::depot(NodeId::from_index(i), Point::new(x, y))
                    } else {
                        Node::factory(NodeId::from_index(i), Point::new(x, y))
                    }
                })
                .collect();
            let nf = nodes.len() - 1;
            let net = RoadNetwork::euclidean(nodes, detour).unwrap();
            let fleet = FleetConfig::homogeneous(
                2,
                &[NodeId(0)],
                10.0,
                300.0,
                2.0,
                40.0,
                TimeDelta::from_minutes(3.0),
            )
            .unwrap();
            let orders: Vec<Order> = order_params
                .iter()
                .enumerate()
                .map(|(i, &(q, created_h, slack_h))| {
                    let p = 1 + (i % nf);
                    let d = 1 + ((i + 1) % nf);
                    let (p, d) = if p == d {
                        (p, 1 + ((p) % nf).max(1))
                    } else {
                        (p, d)
                    };
                    let d = if p == d { 1 + (p % nf) } else { d };
                    // Guarantee distinct pickup/delivery.
                    let d = if p == d {
                        if p == 1 {
                            2
                        } else {
                            1
                        }
                    } else {
                        d
                    };
                    Order::new(
                        OrderId(i as u32),
                        NodeId::from_index(p),
                        NodeId::from_index(d),
                        q,
                        TimePoint::from_hours(created_h),
                        TimePoint::from_hours(created_h + slack_h),
                    )
                    .unwrap()
                })
                .collect();
            Fixture { net, fleet, orders }
        })
}

/// Builds a view whose route greedily accumulates the first `n` orders.
fn accumulate(fix: &Fixture, n: usize) -> VehicleView {
    let mut view = VehicleView::idle_at_depot(VehicleId(0), NodeId(0));
    for order in fix.orders.iter().take(n) {
        if let Some(best) = best_insertion(&view, order, &fix.net, &fix.fleet, &fix.orders) {
            view.route = best.candidate.route;
            view.used = true;
        }
    }
    view
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any candidate returned by the insertion enumeration re-simulates
    /// feasibly, has exactly the original stops plus the new pair, and is at
    /// least as long as the current route (metric distances).
    #[test]
    fn insertion_candidates_are_sound(fix in arb_fixture()) {
        let n = fix.orders.len();
        prop_assume!(n >= 2);
        let view = accumulate(&fix, n - 1);
        let current = view.route.length(&fix.net, view.anchor_node, view.depot);
        let order = &fix.orders[n - 1];
        for cand in enumerate_insertions(&view, order, &fix.net, &fix.fleet, &fix.orders) {
            // Re-simulation agrees.
            let sched = simulate_schedule(&view, &cand.route, &fix.net, &fix.fleet, &fix.orders)
                .expect("candidate must be feasible");
            prop_assert!((sched.total_length - cand.schedule.total_length).abs() < 1e-9);
            // Stop multiset: original + pickup + delivery.
            prop_assert_eq!(cand.route.len(), view.route.len() + 2);
            let mut extra: Vec<Stop> = cand.route.stops().to_vec();
            for s in view.route.stops() {
                let pos = extra.iter().position(|x| x == s).expect("original stop kept");
                extra.remove(pos);
            }
            extra.sort_by_key(|s| s.action.is_pickup());
            prop_assert_eq!(extra.len(), 2);
            prop_assert_eq!(extra[1], Stop::pickup(order.pickup, order.id));
            prop_assert_eq!(extra[0], Stop::delivery(order.delivery, order.id));
            // Monotone length.
            prop_assert!(cand.length() >= current - 1e-9);
        }
    }

    /// `best_insertion` returns the minimum-length candidate of the full
    /// enumeration.
    #[test]
    fn best_insertion_is_argmin(fix in arb_fixture()) {
        let n = fix.orders.len();
        let view = accumulate(&fix, n.saturating_sub(1));
        let order = &fix.orders[n - 1];
        let all = enumerate_insertions(&view, order, &fix.net, &fix.fleet, &fix.orders);
        let best = best_insertion(&view, order, &fix.net, &fix.fleet, &fix.orders);
        match (all.is_empty(), best) {
            (true, None) => {}
            (false, Some(b)) => {
                let min = all.iter().map(|c| c.length()).fold(f64::INFINITY, f64::min);
                prop_assert!((b.length() - min).abs() < 1e-9);
                prop_assert_eq!(b.num_feasible, all.len());
            }
            (empty, b) => prop_assert!(false, "mismatch: empty={empty}, best={:?}", b.map(|x| x.length())),
        }
    }

    /// The incremental evaluator agrees with the naive reference on the
    /// full feasibility set, the candidate lengths and the exact winner
    /// (positions and bit-identical length) for random fixtures.
    #[test]
    fn incremental_sweep_matches_enumeration(fix in arb_fixture()) {
        let n = fix.orders.len();
        let view = accumulate(&fix, n.saturating_sub(1));
        let order = &fix.orders[n - 1];
        let all = enumerate_insertions(&view, order, &fix.net, &fix.fleet, &fix.orders);
        let cache = ScheduleCache::build(&view, &fix.net, &fix.fleet, &fix.orders);
        prop_assert!(cache.is_feasible(), "accumulated routes are feasible");
        let mut swept = Vec::new();
        sweep_insertions(&cache, &view, order, &fix.net, &fix.fleet, &fix.orders, |c| {
            swept.push(c)
        });
        prop_assert_eq!(swept.len(), all.len(), "feasibility sets differ");
        for (s, c) in swept.iter().zip(&all) {
            prop_assert_eq!((s.pickup_pos, s.delivery_pos), (c.pickup_pos, c.delivery_pos));
            prop_assert!((s.length - c.length()).abs() < 1e-9);
        }
        let fast = best_insertion(&view, order, &fix.net, &fix.fleet, &fix.orders);
        let slow = best_insertion_naive(&view, order, &fix.net, &fix.fleet, &fix.orders);
        match (fast, slow) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                prop_assert_eq!(
                    (a.candidate.pickup_pos, a.candidate.delivery_pos),
                    (b.candidate.pickup_pos, b.candidate.delivery_pos)
                );
                prop_assert_eq!(a.length().to_bits(), b.length().to_bits());
                prop_assert_eq!(a.num_feasible, b.num_feasible);
            }
            (a, b) => prop_assert!(
                false,
                "winner presence diverged: incremental={:?} naive={:?}",
                a.map(|x| x.length()),
                b.map(|x| x.length())
            ),
        }
    }

    /// Schedules are temporally coherent: arrivals never precede the
    /// previous departure, service never starts before arrival, the load
    /// stays within [0, Q], and the LIFO stack discipline holds throughout.
    #[test]
    fn schedules_are_temporally_coherent(fix in arb_fixture()) {
        let view = accumulate(&fix, fix.orders.len());
        let sched = simulate_schedule(&view, &view.route, &fix.net, &fix.fleet, &fix.orders);
        prop_assume!(view.route.len() >= 2);
        let sched = sched.expect("accumulated route must stay feasible");
        let mut prev_departure = view.anchor_time;
        let mut stack: Vec<OrderId> = Vec::new();
        for t in &sched.timings {
            prop_assert!(t.arrival >= prev_departure);
            prop_assert!(t.service_start >= t.arrival);
            prop_assert!(t.departure >= t.service_start);
            prop_assert!(t.load_after >= -1e-9);
            prop_assert!(t.load_after <= fix.fleet.capacity + 1e-9);
            match t.stop.action {
                StopAction::Pickup(o) => stack.push(o),
                StopAction::Delivery(o) => {
                    prop_assert_eq!(stack.pop(), Some(o), "LIFO order violated");
                }
            }
            prev_departure = t.departure;
        }
        prop_assert!(stack.is_empty(), "cargo left on board");
        prop_assert!(sched.max_load <= fix.fleet.capacity + 1e-9);
    }

    /// Route length equals the schedule's driven length for any feasible
    /// accumulated route.
    #[test]
    fn route_length_matches_schedule(fix in arb_fixture()) {
        let view = accumulate(&fix, fix.orders.len());
        if let Ok(sched) =
            simulate_schedule(&view, &view.route, &fix.net, &fix.fleet, &fix.orders)
        {
            let len = view.route.length(&fix.net, view.anchor_node, view.depot);
            prop_assert!((len - sched.total_length).abs() < 1e-9);
        }
    }

    /// `with_insertion` at every legal position pair preserves the relative
    /// order of pre-existing stops.
    #[test]
    fn with_insertion_preserves_relative_order(
        fix in arb_fixture(),
        raw_i in 0usize..20,
        raw_j in 0usize..20,
    ) {
        let view = accumulate(&fix, fix.orders.len().saturating_sub(1));
        let n = view.route.len();
        let i = raw_i % (n + 1);
        let j = i + (raw_j % (n + 1 - i));
        let p = Stop::pickup(NodeId(1), OrderId(999));
        let d = Stop::delivery(NodeId(2), OrderId(999));
        let inserted = view.route.with_insertion(p, i, d, j);
        let filtered: Vec<Stop> = inserted
            .stops()
            .iter()
            .filter(|s| s.action.order() != OrderId(999))
            .copied()
            .collect();
        prop_assert_eq!(filtered.as_slice(), view.route.stops());
    }
}
