//! Randomized parity: the incremental O(n²) insertion evaluator must agree
//! with the naive enumerate-and-resimulate reference on every randomly
//! generated scenario — feasibility count, the full feasible position set,
//! per-candidate lengths (within 1e-9), and the winning candidate's exact
//! `(pickup_pos, delivery_pos)` and bit-identical route length.
//!
//! Scenarios cover idle vehicles at the depot and in-service vehicles
//! advanced partway through their route with non-empty onboard LIFO stacks,
//! over random geometry, capacities, speeds, service times and deadline
//! tightness (including zero-feasible epochs).

use dpdp_net::{
    FleetConfig, Node, NodeId, Order, OrderId, Point, RoadNetwork, TimeDelta, TimePoint, VehicleId,
};
use dpdp_routing::{
    best_insertion, best_insertion_naive, enumerate_insertions, simulate_schedule, sweep_best,
    sweep_best_aos, sweep_insertions, sweep_insertions_aos, AosScheduleCache, ScheduleCache,
    StopAction, VehicleView,
};

/// Minimal deterministic RNG (xorshift64*), independent of any shimmed
/// external crate.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform f64 in `[0, 1)`.
    fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform f64 in `[lo, hi)`.
    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }

    /// Uniform usize in `[0, n)`.
    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

struct Scenario {
    net: RoadNetwork,
    fleet: FleetConfig,
    orders: Vec<Order>,
}

fn scenario(rng: &mut Rng) -> Scenario {
    let num_factories = 4 + rng.below(6);
    let mut nodes = vec![Node::depot(NodeId(0), Point::new(0.0, 0.0))];
    for f in 0..num_factories {
        nodes.push(Node::factory(
            NodeId::from_index(f + 1),
            Point::new(rng.range(0.0, 60.0), rng.range(0.0, 60.0)),
        ));
    }
    let net = RoadNetwork::euclidean(nodes, rng.range(1.0, 1.4)).unwrap();
    let capacity = rng.range(8.0, 20.0);
    let service = if rng.f64() < 0.3 {
        TimeDelta::ZERO
    } else {
        TimeDelta::from_seconds(rng.range(60.0, 420.0))
    };
    let fleet = FleetConfig::homogeneous(
        1,
        &[NodeId(0)],
        capacity,
        300.0,
        2.0,
        rng.range(30.0, 70.0),
        service,
    )
    .unwrap();
    let num_orders = 5 + rng.below(6);
    let orders = (0..num_orders)
        .map(|i| {
            let p = 1 + rng.below(num_factories);
            let mut d = 1 + rng.below(num_factories);
            if d == p {
                d = 1 + (p % num_factories);
            }
            let created = rng.range(0.0, 10.0);
            // Mix loose and tight deadlines so infeasible candidates (and
            // whole infeasible epochs) occur regularly.
            let slack = if rng.f64() < 0.35 {
                rng.range(0.4, 2.0)
            } else {
                rng.range(3.0, 14.0)
            };
            Order::new(
                OrderId(i as u32),
                NodeId::from_index(p),
                NodeId::from_index(d),
                rng.range(0.5, capacity * 0.7),
                TimePoint::from_hours(created),
                TimePoint::from_hours(created + slack),
            )
            .unwrap()
        })
        .collect();
    Scenario { net, fleet, orders }
}

/// Builds a view carrying all but the last order (greedy reference
/// insertions), then optionally advances it `advance` stops into service,
/// replaying the onboard LIFO stack exactly as the simulator would.
fn make_view(sc: &Scenario, rng: &mut Rng, advance: bool) -> Option<VehicleView> {
    let mut view = VehicleView::idle_at_depot(VehicleId(0), NodeId(0));
    for order in &sc.orders[..sc.orders.len() - 1] {
        if let Some(best) = best_insertion_naive(&view, order, &sc.net, &sc.fleet, &sc.orders) {
            view.route = best.candidate.route;
            view.used = true;
        }
    }
    if !advance {
        return Some(view);
    }
    if view.route.is_empty() {
        return None;
    }
    let schedule = simulate_schedule(&view, &view.route, &sc.net, &sc.fleet, &sc.orders)
        .expect("accumulated route is feasible");
    let m = 1 + rng.below(view.route.len());
    for timing in &schedule.timings[..m] {
        let stop = view.route.pop_front().expect("route has m stops");
        assert_eq!(stop, timing.stop);
        match stop.action {
            StopAction::Pickup(id) => {
                let q = sc.orders[id.index()].quantity;
                view.onboard.push((id, q));
            }
            StopAction::Delivery(_) => {
                view.onboard.pop();
            }
        }
        view.anchor_node = stop.node;
        view.anchor_time = timing.departure;
    }
    Some(view)
}

fn assert_parity(sc: &Scenario, view: &VehicleView, label: &str) {
    let probe = sc.orders.last().unwrap();
    let naive = enumerate_insertions(view, probe, &sc.net, &sc.fleet, &sc.orders);
    let cache = ScheduleCache::build(view, &sc.net, &sc.fleet, &sc.orders);
    assert!(cache.is_feasible(), "{label}: base route must be feasible");
    assert_eq!(cache.len(), view.route.len(), "{label}: cache length");

    // Full feasibility-set parity: same pairs in the same enumeration
    // order, lengths within 1e-9 of the simulated candidate lengths.
    let mut swept = Vec::new();
    sweep_insertions(&cache, view, probe, &sc.net, &sc.fleet, &sc.orders, |c| {
        swept.push(c)
    });
    assert_eq!(
        swept.len(),
        naive.len(),
        "{label}: feasibility count diverged (route n = {})",
        view.route.len()
    );
    for (s, c) in swept.iter().zip(&naive) {
        assert_eq!(
            (s.pickup_pos, s.delivery_pos),
            (c.pickup_pos, c.delivery_pos),
            "{label}: feasible sets diverged"
        );
        assert!(
            (s.length - c.length()).abs() < 1e-9,
            "{label}: length mismatch at ({}, {}): {} vs {}",
            s.pickup_pos,
            s.delivery_pos,
            s.length,
            c.length()
        );
    }

    // SoA-vs-AoS layout parity: the retained array-of-structs reference
    // must produce the identical candidate stream — positions AND
    // bit-identical scores — and the identical winner. This is the direct
    // witness that the batched-leg-table rewrite changed no arithmetic.
    let aos = AosScheduleCache::build(view, &sc.net, &sc.fleet, &sc.orders);
    assert!(aos.is_feasible(), "{label}: AoS cache feasibility");
    assert_eq!(
        aos.base_length().to_bits(),
        cache.base_length().to_bits(),
        "{label}: base length not bit-identical across layouts"
    );
    let mut aos_swept = Vec::new();
    sweep_insertions_aos(&aos, view, probe, &sc.net, &sc.fleet, &sc.orders, |c| {
        aos_swept.push(c)
    });
    assert_eq!(aos_swept.len(), swept.len(), "{label}: AoS/SoA counts");
    for (a, s) in aos_swept.iter().zip(&swept) {
        assert_eq!(
            (a.pickup_pos, a.delivery_pos),
            (s.pickup_pos, s.delivery_pos),
            "{label}: AoS/SoA candidate streams diverged"
        );
        assert_eq!(
            a.length.to_bits(),
            s.length.to_bits(),
            "{label}: AoS/SoA score not bit-identical at ({}, {})",
            s.pickup_pos,
            s.delivery_pos
        );
    }
    let aos_best = sweep_best_aos(&aos, view, probe, &sc.net, &sc.fleet, &sc.orders);
    let soa_best = sweep_best(&cache, view, probe, &sc.net, &sc.fleet, &sc.orders);
    assert_eq!(
        aos_best.num_feasible, soa_best.num_feasible,
        "{label}: AoS/SoA num_feasible"
    );
    match (aos_best.best, soa_best.best) {
        (None, None) => {}
        (Some(a), Some(s)) => {
            assert_eq!(
                (a.pickup_pos, a.delivery_pos),
                (s.pickup_pos, s.delivery_pos),
                "{label}: AoS/SoA winners diverged"
            );
            assert_eq!(
                a.length.to_bits(),
                s.length.to_bits(),
                "{label}: AoS/SoA winning score not bit-identical"
            );
        }
        (a, s) => panic!("{label}: AoS/SoA winner presence diverged: {a:?} vs {s:?}"),
    }

    // Winner parity: identical positions, bit-identical length, identical
    // bookkeeping counts.
    let fast = best_insertion(view, probe, &sc.net, &sc.fleet, &sc.orders);
    let slow = best_insertion_naive(view, probe, &sc.net, &sc.fleet, &sc.orders);
    match (fast, slow) {
        (None, None) => {}
        (Some(a), Some(b)) => {
            assert_eq!(
                (a.candidate.pickup_pos, a.candidate.delivery_pos),
                (b.candidate.pickup_pos, b.candidate.delivery_pos),
                "{label}: winning positions diverged"
            );
            assert_eq!(a.candidate.route, b.candidate.route, "{label}: routes");
            assert_eq!(
                a.length().to_bits(),
                b.length().to_bits(),
                "{label}: winning length not bit-identical"
            );
            assert_eq!(a.num_feasible, b.num_feasible, "{label}: num_feasible");
            assert_eq!(
                a.num_enumerated, b.num_enumerated,
                "{label}: num_enumerated"
            );
        }
        (a, b) => panic!(
            "{label}: one path found a winner, the other did not: \
             incremental = {:?}, naive = {:?}",
            a.map(|x| x.length()),
            b.map(|x| x.length())
        ),
    }
}

#[test]
fn incremental_matches_naive_on_random_idle_routes() {
    let mut rng = Rng::new(0xD1D5_2024);
    let mut nonempty = 0;
    for case in 0..300 {
        let sc = scenario(&mut rng);
        let view = make_view(&sc, &mut rng, false).unwrap();
        if view.route.len() >= 4 {
            nonempty += 1;
        }
        assert_parity(&sc, &view, &format!("idle case {case}"));
    }
    assert!(
        nonempty >= 150,
        "generator degenerated: only {nonempty} multi-stop routes"
    );
}

#[test]
fn incremental_matches_naive_on_in_service_vehicles() {
    let mut rng = Rng::new(0xBEEF_0042);
    let mut with_stack = 0;
    for case in 0..300 {
        let sc = scenario(&mut rng);
        let Some(view) = make_view(&sc, &mut rng, true) else {
            continue;
        };
        if !view.onboard.is_empty() {
            with_stack += 1;
        }
        assert_parity(&sc, &view, &format!("in-service case {case}"));
    }
    assert!(
        with_stack >= 60,
        "generator degenerated: only {with_stack} views had cargo on board"
    );
}

/// Deadline-starved scenarios where whole epochs are infeasible: both paths
/// must agree on the (frequently empty) feasible set.
#[test]
fn incremental_matches_naive_under_tight_deadlines() {
    let mut rng = Rng::new(0x7EA_0001);
    let mut infeasible_epochs = 0;
    for case in 0..200 {
        let mut sc = scenario(&mut rng);
        // Clamp every deadline towards creation: most insertions die.
        for o in &mut sc.orders {
            let slack_h = rng.range(0.05, 0.6);
            o.deadline = o.created + TimeDelta::from_hours(slack_h);
        }
        let view = make_view(&sc, &mut rng, false).unwrap();
        let probe = sc.orders.last().unwrap();
        if enumerate_insertions(&view, probe, &sc.net, &sc.fleet, &sc.orders).is_empty() {
            infeasible_epochs += 1;
        }
        assert_parity(&sc, &view, &format!("tight case {case}"));
    }
    assert!(
        infeasible_epochs >= 20,
        "generator degenerated: only {infeasible_epochs} zero-feasible cases"
    );
}
