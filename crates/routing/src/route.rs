//! The remaining route of a vehicle.

use crate::stop::{Stop, StopAction};
use dpdp_net::{NodeId, OrderId, RoadNetwork};
use serde::{Deserialize, Serialize};

/// The remaining stop sequence of a vehicle. The route starts wherever the
/// vehicle currently is (its *anchor*, tracked separately by
/// [`crate::VehicleView`]) and implicitly ends with a return to the depot —
/// the back-to-depot constraint is therefore structural and cannot be
/// violated.
///
/// Internally the stops live in a `Vec` behind a consumed-prefix index:
/// [`Route::pop_front`] — called once per executed leg by the simulator's
/// advance loop — bumps the index instead of shifting the whole vector, so
/// advancing is O(1) rather than the O(n) `Vec::remove(0)` shift. Equality
/// and cloning always operate on the *remaining* stops (a clone trims the
/// consumed prefix), so the representation is invisible to callers.
#[derive(Debug, Default, Serialize, Deserialize)]
pub struct Route {
    stops: Vec<Stop>,
    /// Index of the first remaining stop; everything before it has been
    /// executed and popped.
    head: usize,
}

impl Clone for Route {
    fn clone(&self) -> Route {
        // Trim the consumed prefix: snapshots (one per vehicle per epoch)
        // carry only the live tail.
        Route {
            stops: self.stops[self.head..].to_vec(),
            head: 0,
        }
    }
}

impl PartialEq for Route {
    fn eq(&self, other: &Route) -> bool {
        self.stops() == other.stops()
    }
}

impl Eq for Route {}

impl Route {
    /// An empty route (vehicle idles and returns to its depot).
    pub fn empty() -> Self {
        Route::default()
    }

    /// Builds a route from stops.
    pub fn from_stops(stops: Vec<Stop>) -> Self {
        Route { stops, head: 0 }
    }

    /// The stops in visit order.
    #[inline]
    pub fn stops(&self) -> &[Stop] {
        &self.stops[self.head..]
    }

    /// Number of remaining stops.
    #[inline]
    pub fn len(&self) -> usize {
        self.stops.len() - self.head
    }

    /// True if no stops remain.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.head == self.stops.len()
    }

    /// Removes and returns the first stop, if any. O(1): the stop is
    /// consumed by advancing the front index, not by shifting the vector.
    pub fn pop_front(&mut self) -> Option<Stop> {
        let stop = self.stops.get(self.head).copied()?;
        self.head += 1;
        Some(stop)
    }

    /// The first stop, if any.
    pub fn front(&self) -> Option<&Stop> {
        self.stops.get(self.head)
    }

    /// Returns a new route with `pickup` inserted at `pickup_pos` and
    /// `delivery` inserted so that it ends up at position `delivery_pos + 1`
    /// relative to the original stop list (i.e. `delivery_pos >= pickup_pos`
    /// counts positions in the *original* route).
    ///
    /// # Panics
    /// Panics if positions are out of range or `delivery_pos < pickup_pos`.
    pub fn with_insertion(
        &self,
        pickup: Stop,
        pickup_pos: usize,
        delivery: Stop,
        delivery_pos: usize,
    ) -> Route {
        let live = self.stops();
        assert!(pickup_pos <= live.len(), "pickup_pos out of range");
        assert!(delivery_pos <= live.len(), "delivery_pos out of range");
        assert!(delivery_pos >= pickup_pos, "delivery before pickup");
        let mut stops = Vec::with_capacity(live.len() + 2);
        stops.extend_from_slice(&live[..pickup_pos]);
        stops.push(pickup);
        stops.extend_from_slice(&live[pickup_pos..delivery_pos]);
        stops.push(delivery);
        stops.extend_from_slice(&live[delivery_pos..]);
        Route { stops, head: 0 }
    }

    /// The full node sequence `anchor -> stops... -> depot`.
    pub fn node_sequence(&self, anchor: NodeId, depot: NodeId) -> Vec<NodeId> {
        let mut seq = Vec::with_capacity(self.len() + 2);
        seq.push(anchor);
        seq.extend(self.stops().iter().map(|s| s.node));
        seq.push(depot);
        seq
    }

    /// Length of the remaining route in km: from `anchor` through every stop
    /// and back to `depot`. An empty route anchored at the depot has length 0.
    pub fn length(&self, net: &RoadNetwork, anchor: NodeId, depot: NodeId) -> f64 {
        net.path_length(&self.node_sequence(anchor, depot))
    }

    /// Removes every remaining stop of `order` from the route (route
    /// surgery for order cancellations and breakdown recovery), returning
    /// how many stops were removed (0, 1 or 2).
    ///
    /// Removing stops never invalidates a route on a metric network — every
    /// remaining arrival can only get earlier — and the LIFO discipline is
    /// preserved because a pickup/delivery pair brackets a contiguous stack
    /// interval: deleting both endpoints leaves every other pair properly
    /// nested. The consumed-prefix head is normalised away, so the result
    /// behaves exactly like a fresh route over the surviving stops.
    pub fn remove_order(&mut self, order: OrderId) -> usize {
        let before = self.len();
        let live: Vec<Stop> = self
            .stops()
            .iter()
            .filter(|s| s.action.order() != order)
            .copied()
            .collect();
        let removed = before - live.len();
        self.stops = live;
        self.head = 0;
        removed
    }

    /// Orders with a pickup stop still in this route.
    pub fn pending_pickups(&self) -> Vec<OrderId> {
        self.stops()
            .iter()
            .filter_map(|s| match s.action {
                StopAction::Pickup(o) => Some(o),
                StopAction::Delivery(_) => None,
            })
            .collect()
    }

    /// Orders with a delivery stop still in this route.
    pub fn pending_deliveries(&self) -> Vec<OrderId> {
        self.stops()
            .iter()
            .filter_map(|s| match s.action {
                StopAction::Delivery(o) => Some(o),
                StopAction::Pickup(_) => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpdp_net::{Node, Point, RoadNetwork};

    fn line_net() -> RoadNetwork {
        // Nodes 0(depot),1,2,3 on a line at x = 0,1,2,3.
        let nodes = vec![
            Node::depot(NodeId(0), Point::new(0.0, 0.0)),
            Node::factory(NodeId(1), Point::new(1.0, 0.0)),
            Node::factory(NodeId(2), Point::new(2.0, 0.0)),
            Node::factory(NodeId(3), Point::new(3.0, 0.0)),
        ];
        RoadNetwork::euclidean(nodes, 1.0).unwrap()
    }

    #[test]
    fn empty_route_at_depot_has_zero_length() {
        let net = line_net();
        let r = Route::empty();
        assert_eq!(r.length(&net, NodeId(0), NodeId(0)), 0.0);
        // Empty route away from depot: must still drive home.
        assert!((r.length(&net, NodeId(2), NodeId(0)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn length_includes_depot_return() {
        let net = line_net();
        let r = Route::from_stops(vec![
            Stop::pickup(NodeId(1), OrderId(0)),
            Stop::delivery(NodeId(3), OrderId(0)),
        ]);
        // 0 -> 1 -> 3 -> 0 = 1 + 2 + 3 = 6.
        assert!((r.length(&net, NodeId(0), NodeId(0)) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn insertion_positions_are_relative_to_original() {
        let r = Route::from_stops(vec![
            Stop::pickup(NodeId(1), OrderId(0)),
            Stop::delivery(NodeId(2), OrderId(0)),
        ]);
        let p = Stop::pickup(NodeId(3), OrderId(1));
        let d = Stop::delivery(NodeId(1), OrderId(1));
        // Insert pickup at 1 and delivery at 1: P0 [P1 D1] D0.
        let r2 = r.with_insertion(p, 1, d, 1);
        assert_eq!(
            r2.stops(),
            &[
                Stop::pickup(NodeId(1), OrderId(0)),
                p,
                d,
                Stop::delivery(NodeId(2), OrderId(0)),
            ]
        );
        // Insert around everything: [P1] P0 D0 [D1].
        let r3 = r.with_insertion(p, 0, d, 2);
        assert_eq!(r3.stops()[0], p);
        assert_eq!(r3.stops()[3], d);
        assert_eq!(r3.len(), 4);
    }

    #[test]
    #[should_panic(expected = "delivery before pickup")]
    fn insertion_rejects_delivery_before_pickup() {
        let r = Route::from_stops(vec![Stop::pickup(NodeId(1), OrderId(0))]);
        let p = Stop::pickup(NodeId(2), OrderId(1));
        let d = Stop::delivery(NodeId(3), OrderId(1));
        let _ = r.with_insertion(p, 1, d, 0);
    }

    #[test]
    fn pending_accessors() {
        let r = Route::from_stops(vec![
            Stop::pickup(NodeId(1), OrderId(0)),
            Stop::delivery(NodeId(2), OrderId(0)),
            Stop::delivery(NodeId(3), OrderId(9)),
        ]);
        assert_eq!(r.pending_pickups(), vec![OrderId(0)]);
        assert_eq!(r.pending_deliveries(), vec![OrderId(0), OrderId(9)]);
    }

    #[test]
    fn popped_route_behaves_like_fresh_tail() {
        // The consumed-prefix representation must be invisible: a partly
        // executed route equals (and clones to) the fresh tail route.
        let mut r = Route::from_stops(vec![
            Stop::pickup(NodeId(1), OrderId(0)),
            Stop::delivery(NodeId(2), OrderId(0)),
            Stop::pickup(NodeId(3), OrderId(1)),
            Stop::delivery(NodeId(1), OrderId(1)),
        ]);
        r.pop_front();
        r.pop_front();
        let tail = Route::from_stops(vec![
            Stop::pickup(NodeId(3), OrderId(1)),
            Stop::delivery(NodeId(1), OrderId(1)),
        ]);
        assert_eq!(r, tail);
        assert_eq!(r.len(), 2);
        assert_eq!(r.stops(), tail.stops());
        assert_eq!(r.front(), tail.front());
        let cloned = r.clone();
        assert_eq!(cloned, tail);
        // Insertions count positions relative to the remaining stops.
        let p = Stop::pickup(NodeId(2), OrderId(2));
        let d = Stop::delivery(NodeId(3), OrderId(2));
        assert_eq!(
            r.with_insertion(p, 0, d, 2),
            tail.with_insertion(p, 0, d, 2)
        );
        let net = line_net();
        assert_eq!(
            r.length(&net, NodeId(0), NodeId(0)),
            tail.length(&net, NodeId(0), NodeId(0))
        );
        assert_eq!(r.pending_pickups(), vec![OrderId(1)]);
    }

    #[test]
    fn remove_order_excises_both_stops_and_normalises_head() {
        let mut r = Route::from_stops(vec![
            Stop::pickup(NodeId(1), OrderId(0)),
            Stop::pickup(NodeId(2), OrderId(1)),
            Stop::delivery(NodeId(3), OrderId(1)),
            Stop::delivery(NodeId(2), OrderId(0)),
        ]);
        assert_eq!(r.remove_order(OrderId(1)), 2);
        assert_eq!(
            r.stops(),
            &[
                Stop::pickup(NodeId(1), OrderId(0)),
                Stop::delivery(NodeId(2), OrderId(0)),
            ]
        );
        // Removing an absent order is a no-op.
        assert_eq!(r.remove_order(OrderId(9)), 0);
        assert_eq!(r.len(), 2);
        // A partially executed route only loses the remaining stop.
        let mut r = Route::from_stops(vec![
            Stop::pickup(NodeId(1), OrderId(0)),
            Stop::delivery(NodeId(2), OrderId(0)),
            Stop::pickup(NodeId(3), OrderId(1)),
            Stop::delivery(NodeId(1), OrderId(1)),
        ]);
        r.pop_front();
        assert_eq!(r.remove_order(OrderId(0)), 1);
        assert_eq!(r.len(), 2);
        assert_eq!(r.pending_pickups(), vec![OrderId(1)]);
        assert_eq!(r.pending_deliveries(), vec![OrderId(1)]);
    }

    #[test]
    fn pop_front_consumes_in_order() {
        let mut r = Route::from_stops(vec![
            Stop::pickup(NodeId(1), OrderId(0)),
            Stop::delivery(NodeId(2), OrderId(0)),
        ]);
        assert_eq!(r.pop_front(), Some(Stop::pickup(NodeId(1), OrderId(0))));
        assert_eq!(r.front(), Some(&Stop::delivery(NodeId(2), OrderId(0))));
        assert_eq!(r.pop_front(), Some(Stop::delivery(NodeId(2), OrderId(0))));
        assert_eq!(r.pop_front(), None);
    }
}
