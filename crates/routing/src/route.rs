//! The remaining route of a vehicle.

use crate::stop::{Stop, StopAction};
use dpdp_net::{NodeId, OrderId, RoadNetwork};
use serde::{Deserialize, Serialize};

/// The remaining stop sequence of a vehicle. The route starts wherever the
/// vehicle currently is (its *anchor*, tracked separately by
/// [`crate::VehicleView`]) and implicitly ends with a return to the depot —
/// the back-to-depot constraint is therefore structural and cannot be
/// violated.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Route {
    stops: Vec<Stop>,
}

impl Route {
    /// An empty route (vehicle idles and returns to its depot).
    pub fn empty() -> Self {
        Route::default()
    }

    /// Builds a route from stops.
    pub fn from_stops(stops: Vec<Stop>) -> Self {
        Route { stops }
    }

    /// The stops in visit order.
    #[inline]
    pub fn stops(&self) -> &[Stop] {
        &self.stops
    }

    /// Number of remaining stops.
    #[inline]
    pub fn len(&self) -> usize {
        self.stops.len()
    }

    /// True if no stops remain.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.stops.is_empty()
    }

    /// Removes and returns the first stop, if any.
    pub fn pop_front(&mut self) -> Option<Stop> {
        if self.stops.is_empty() {
            None
        } else {
            Some(self.stops.remove(0))
        }
    }

    /// The first stop, if any.
    pub fn front(&self) -> Option<&Stop> {
        self.stops.first()
    }

    /// Returns a new route with `pickup` inserted at `pickup_pos` and
    /// `delivery` inserted so that it ends up at position `delivery_pos + 1`
    /// relative to the original stop list (i.e. `delivery_pos >= pickup_pos`
    /// counts positions in the *original* route).
    ///
    /// # Panics
    /// Panics if positions are out of range or `delivery_pos < pickup_pos`.
    pub fn with_insertion(
        &self,
        pickup: Stop,
        pickup_pos: usize,
        delivery: Stop,
        delivery_pos: usize,
    ) -> Route {
        assert!(pickup_pos <= self.stops.len(), "pickup_pos out of range");
        assert!(
            delivery_pos <= self.stops.len(),
            "delivery_pos out of range"
        );
        assert!(delivery_pos >= pickup_pos, "delivery before pickup");
        let mut stops = Vec::with_capacity(self.stops.len() + 2);
        stops.extend_from_slice(&self.stops[..pickup_pos]);
        stops.push(pickup);
        stops.extend_from_slice(&self.stops[pickup_pos..delivery_pos]);
        stops.push(delivery);
        stops.extend_from_slice(&self.stops[delivery_pos..]);
        Route { stops }
    }

    /// The full node sequence `anchor -> stops... -> depot`.
    pub fn node_sequence(&self, anchor: NodeId, depot: NodeId) -> Vec<NodeId> {
        let mut seq = Vec::with_capacity(self.stops.len() + 2);
        seq.push(anchor);
        seq.extend(self.stops.iter().map(|s| s.node));
        seq.push(depot);
        seq
    }

    /// Length of the remaining route in km: from `anchor` through every stop
    /// and back to `depot`. An empty route anchored at the depot has length 0.
    pub fn length(&self, net: &RoadNetwork, anchor: NodeId, depot: NodeId) -> f64 {
        net.path_length(&self.node_sequence(anchor, depot))
    }

    /// Orders with a pickup stop still in this route.
    pub fn pending_pickups(&self) -> Vec<OrderId> {
        self.stops
            .iter()
            .filter_map(|s| match s.action {
                StopAction::Pickup(o) => Some(o),
                StopAction::Delivery(_) => None,
            })
            .collect()
    }

    /// Orders with a delivery stop still in this route.
    pub fn pending_deliveries(&self) -> Vec<OrderId> {
        self.stops
            .iter()
            .filter_map(|s| match s.action {
                StopAction::Delivery(o) => Some(o),
                StopAction::Pickup(_) => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpdp_net::{Node, Point, RoadNetwork};

    fn line_net() -> RoadNetwork {
        // Nodes 0(depot),1,2,3 on a line at x = 0,1,2,3.
        let nodes = vec![
            Node::depot(NodeId(0), Point::new(0.0, 0.0)),
            Node::factory(NodeId(1), Point::new(1.0, 0.0)),
            Node::factory(NodeId(2), Point::new(2.0, 0.0)),
            Node::factory(NodeId(3), Point::new(3.0, 0.0)),
        ];
        RoadNetwork::euclidean(nodes, 1.0).unwrap()
    }

    #[test]
    fn empty_route_at_depot_has_zero_length() {
        let net = line_net();
        let r = Route::empty();
        assert_eq!(r.length(&net, NodeId(0), NodeId(0)), 0.0);
        // Empty route away from depot: must still drive home.
        assert!((r.length(&net, NodeId(2), NodeId(0)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn length_includes_depot_return() {
        let net = line_net();
        let r = Route::from_stops(vec![
            Stop::pickup(NodeId(1), OrderId(0)),
            Stop::delivery(NodeId(3), OrderId(0)),
        ]);
        // 0 -> 1 -> 3 -> 0 = 1 + 2 + 3 = 6.
        assert!((r.length(&net, NodeId(0), NodeId(0)) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn insertion_positions_are_relative_to_original() {
        let r = Route::from_stops(vec![
            Stop::pickup(NodeId(1), OrderId(0)),
            Stop::delivery(NodeId(2), OrderId(0)),
        ]);
        let p = Stop::pickup(NodeId(3), OrderId(1));
        let d = Stop::delivery(NodeId(1), OrderId(1));
        // Insert pickup at 1 and delivery at 1: P0 [P1 D1] D0.
        let r2 = r.with_insertion(p, 1, d, 1);
        assert_eq!(
            r2.stops(),
            &[
                Stop::pickup(NodeId(1), OrderId(0)),
                p,
                d,
                Stop::delivery(NodeId(2), OrderId(0)),
            ]
        );
        // Insert around everything: [P1] P0 D0 [D1].
        let r3 = r.with_insertion(p, 0, d, 2);
        assert_eq!(r3.stops()[0], p);
        assert_eq!(r3.stops()[3], d);
        assert_eq!(r3.len(), 4);
    }

    #[test]
    #[should_panic(expected = "delivery before pickup")]
    fn insertion_rejects_delivery_before_pickup() {
        let r = Route::from_stops(vec![Stop::pickup(NodeId(1), OrderId(0))]);
        let p = Stop::pickup(NodeId(2), OrderId(1));
        let d = Stop::delivery(NodeId(3), OrderId(1));
        let _ = r.with_insertion(p, 1, d, 0);
    }

    #[test]
    fn pending_accessors() {
        let r = Route::from_stops(vec![
            Stop::pickup(NodeId(1), OrderId(0)),
            Stop::delivery(NodeId(2), OrderId(0)),
            Stop::delivery(NodeId(3), OrderId(9)),
        ]);
        assert_eq!(r.pending_pickups(), vec![OrderId(0)]);
        assert_eq!(r.pending_deliveries(), vec![OrderId(0), OrderId(9)]);
    }

    #[test]
    fn pop_front_consumes_in_order() {
        let mut r = Route::from_stops(vec![
            Stop::pickup(NodeId(1), OrderId(0)),
            Stop::delivery(NodeId(2), OrderId(0)),
        ]);
        assert_eq!(r.pop_front(), Some(Stop::pickup(NodeId(1), OrderId(0))));
        assert_eq!(r.front(), Some(&Stop::delivery(NodeId(2), OrderId(0))));
        assert_eq!(r.pop_front(), Some(Stop::delivery(NodeId(2), OrderId(0))));
        assert_eq!(r.pop_front(), None);
    }
}
