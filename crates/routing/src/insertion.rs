//! Insertion enumeration: every way to add an order to a route.
//!
//! Step 2 of the paper's Algorithm 2 constructs "all possible temporary
//! routes … via inserting the pickup and delivery node of order `o` into
//! vehicle `k`'s current route in an enumeration way". For a route with `n`
//! remaining stops there are `(n+1)(n+2)/2` position pairs.
//!
//! Two implementations coexist:
//!
//! * [`enumerate_insertions`] / [`best_insertion_naive`] — the **reference**
//!   path: every candidate clones the route and re-validates it with
//!   [`simulate_schedule`] (O(n) work and two allocations per pair, O(n³)
//!   per call). Kept as the authoritative oracle and the parity baseline.
//! * [`best_insertion`] — the **production** path: delegates to the
//!   incremental evaluator in [`crate::incremental`], which scores every
//!   pair allocation-free from cached prefix/suffix passes (O(n²) per call)
//!   and materializes only the winner. It returns the identical winning
//!   position pair and length as the reference (see the parity notes on
//!   [`crate::incremental`]).

use crate::route::Route;
use crate::schedule::{simulate_schedule, Schedule};
use crate::stop::Stop;
use crate::view::VehicleView;
use dpdp_net::{FleetConfig, Order, RoadNetwork};
use serde::{Deserialize, Serialize};

/// One feasible insertion candidate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InsertionCandidate {
    /// Index (in the original stop list) where the pickup was inserted.
    pub pickup_pos: usize,
    /// Index (in the original stop list) before which the delivery was
    /// inserted; `>= pickup_pos`.
    pub delivery_pos: usize,
    /// The resulting route.
    pub route: Route,
    /// Its simulated schedule.
    pub schedule: Schedule,
}

impl InsertionCandidate {
    /// Total remaining length of the candidate route (km, anchor to depot).
    #[inline]
    pub fn length(&self) -> f64 {
        self.schedule.total_length
    }
}

/// The shortest feasible insertion (step 9 of Algorithm 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BestInsertion {
    /// The winning candidate.
    pub candidate: InsertionCandidate,
    /// Number of feasible candidates among all enumerated position pairs.
    pub num_feasible: usize,
    /// Number of enumerated position pairs.
    pub num_enumerated: usize,
}

impl BestInsertion {
    /// Length of the best route, `d^i_{t,k}`.
    #[inline]
    pub fn length(&self) -> f64 {
        self.candidate.length()
    }
}

/// Enumerates all feasible insertions of `order` into the vehicle's
/// remaining route. Returns feasible candidates in enumeration order.
pub fn enumerate_insertions(
    view: &VehicleView,
    order: &Order,
    net: &RoadNetwork,
    fleet: &FleetConfig,
    orders: &[Order],
) -> Vec<InsertionCandidate> {
    let n = view.route.len();
    let pickup = Stop::pickup(order.pickup, order.id);
    let delivery = Stop::delivery(order.delivery, order.id);
    let mut feasible = Vec::new();
    for i in 0..=n {
        for j in i..=n {
            let route = view.route.with_insertion(pickup, i, delivery, j);
            if let Ok(schedule) = simulate_schedule(view, &route, net, fleet, orders) {
                feasible.push(InsertionCandidate {
                    pickup_pos: i,
                    delivery_pos: j,
                    route,
                    schedule,
                });
            }
        }
    }
    feasible
}

/// Finds the shortest feasible insertion of `order` into the vehicle's
/// remaining route, or `None` if no position pair satisfies all constraints.
///
/// This is the O(n²) incremental path: one [`crate::ScheduleCache`] build
/// plus one allocation-free sweep, with only the winner materialized (and
/// oracle-validated) — see [`crate::incremental`]. Callers evaluating many
/// orders against the same view should build the cache once and use
/// [`crate::best_insertion_cached`] directly.
pub fn best_insertion(
    view: &VehicleView,
    order: &Order,
    net: &RoadNetwork,
    fleet: &FleetConfig,
    orders: &[Order],
) -> Option<BestInsertion> {
    let cache = crate::incremental::ScheduleCache::build(view, net, fleet, orders);
    crate::incremental::best_insertion_cached(&cache, view, order, net, fleet, orders)
}

/// Reference implementation of [`best_insertion`]: full enumeration with a
/// per-candidate [`simulate_schedule`] (O(n³) per call).
///
/// Ties in length are broken towards the earlier enumeration position, and
/// candidates are ordered with [`f64::total_cmp`] so a pathological
/// instance producing non-finite lengths degrades deterministically
/// (non-finite candidates sort last) instead of panicking mid-epoch.
pub fn best_insertion_naive(
    view: &VehicleView,
    order: &Order,
    net: &RoadNetwork,
    fleet: &FleetConfig,
    orders: &[Order],
) -> Option<BestInsertion> {
    let n = view.route.len();
    let num_enumerated = (n + 1) * (n + 2) / 2;
    let candidates = enumerate_insertions(view, order, net, fleet, orders);
    let num_feasible = candidates.len();
    candidates
        .into_iter()
        .min_by(|a, b| a.length().total_cmp(&b.length()))
        .map(|candidate| BestInsertion {
            candidate,
            num_feasible,
            num_enumerated,
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpdp_net::{Node, NodeId, OrderId, Point, TimeDelta, TimePoint, VehicleId};

    fn setup() -> (RoadNetwork, FleetConfig) {
        let nodes = vec![
            Node::depot(NodeId(0), Point::new(0.0, 0.0)),
            Node::factory(NodeId(1), Point::new(10.0, 0.0)),
            Node::factory(NodeId(2), Point::new(20.0, 0.0)),
            Node::factory(NodeId(3), Point::new(30.0, 0.0)),
        ];
        let net = RoadNetwork::euclidean(nodes, 1.0).unwrap();
        let fleet =
            FleetConfig::homogeneous(1, &[NodeId(0)], 10.0, 500.0, 2.0, 60.0, TimeDelta::ZERO)
                .unwrap();
        (net, fleet)
    }

    fn order(id: u32, p: u32, d: u32, q: f64, deadline_h: f64) -> Order {
        Order::new(
            OrderId(id),
            NodeId(p),
            NodeId(d),
            q,
            TimePoint::ZERO,
            TimePoint::from_hours(deadline_h),
        )
        .unwrap()
    }

    #[test]
    fn empty_route_has_single_insertion() {
        let (net, fleet) = setup();
        let o = order(0, 1, 2, 5.0, 24.0);
        let orders = vec![o.clone()];
        let view = VehicleView::idle_at_depot(VehicleId(0), NodeId(0));
        let cands = enumerate_insertions(&view, &o, &net, &fleet, &orders);
        assert_eq!(cands.len(), 1);
        // 0 -> 1 -> 2 -> 0: 10 + 10 + 20 = 40 km.
        assert!((cands[0].length() - 40.0).abs() < 1e-9);
        let best = best_insertion(&view, &o, &net, &fleet, &orders).unwrap();
        assert_eq!(best.num_enumerated, 1);
        assert_eq!(best.num_feasible, 1);
    }

    #[test]
    fn best_insertion_picks_hitchhike() {
        let (net, fleet) = setup();
        // Existing order 0: 1 -> 3. New order 1: 2 -> 3 lies on the way.
        let orders = vec![order(0, 1, 3, 3.0, 24.0), order(1, 2, 3, 3.0, 24.0)];
        let mut view = VehicleView::idle_at_depot(VehicleId(0), NodeId(0));
        view.route = Route::from_stops(vec![
            Stop::pickup(NodeId(1), OrderId(0)),
            Stop::delivery(NodeId(3), OrderId(0)),
        ]);
        let base = view.route.length(&net, NodeId(0), NodeId(0));
        let best = best_insertion(&view, &orders[1], &net, &fleet, &orders).unwrap();
        // The optimal plan picks up order 1 at node 2 en route and delivers
        // both at node 3 — zero extra distance.
        assert!(
            (best.length() - base).abs() < 1e-9,
            "expected hitchhike with no detour, got {} vs {}",
            best.length(),
            base
        );
        // And the LIFO order must be respected in the winning route: order 1
        // (picked second) is delivered first.
        let stops = best.candidate.route.stops();
        let d1 = stops
            .iter()
            .position(|s| *s == Stop::delivery(NodeId(3), OrderId(1)))
            .unwrap();
        let d0 = stops
            .iter()
            .position(|s| *s == Stop::delivery(NodeId(3), OrderId(0)))
            .unwrap();
        assert!(d1 < d0, "LIFO: later pickup must be delivered first");
    }

    #[test]
    fn infeasible_when_capacity_blocks_everything() {
        let (net, fleet) = setup();
        let orders = vec![order(0, 1, 3, 8.0, 24.0), order(1, 2, 3, 8.0, 24.0)];
        let mut view = VehicleView::idle_at_depot(VehicleId(0), NodeId(0));
        view.route = Route::from_stops(vec![
            Stop::pickup(NodeId(1), OrderId(0)),
            Stop::delivery(NodeId(3), OrderId(0)),
        ]);
        // 8 + 8 > 10 so the only feasible insertions serve the new order
        // entirely before or after order 0; both exist, so still feasible.
        let best = best_insertion(&view, &orders[1], &net, &fleet, &orders).unwrap();
        assert!(best.num_feasible < best.num_enumerated);

        // With a tight deadline on order 0, serving 1 first is impossible
        // and serving it after misses 1's own deadline -> infeasible.
        let orders = vec![order(0, 1, 3, 8.0, 0.7), order(1, 2, 3, 8.0, 0.7)];
        let best = best_insertion(&view, &orders[1], &net, &fleet, &orders);
        assert!(best.is_none());
    }

    #[test]
    fn enumeration_count_matches_formula() {
        let (net, fleet) = setup();
        let orders = vec![
            order(0, 1, 2, 1.0, 24.0),
            order(1, 2, 3, 1.0, 24.0),
            order(2, 1, 3, 1.0, 24.0),
        ];
        let mut view = VehicleView::idle_at_depot(VehicleId(0), NodeId(0));
        view.route = Route::from_stops(vec![
            Stop::pickup(NodeId(1), OrderId(0)),
            Stop::delivery(NodeId(2), OrderId(0)),
            Stop::pickup(NodeId(2), OrderId(1)),
            Stop::delivery(NodeId(3), OrderId(1)),
        ]);
        let best = best_insertion(&view, &orders[2], &net, &fleet, &orders).unwrap();
        // n = 4 -> 5*6/2 = 15 position pairs.
        assert_eq!(best.num_enumerated, 15);
        assert!(best.num_feasible >= 1);
        assert!(best.num_feasible <= 15);
    }
}
