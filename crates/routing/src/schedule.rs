//! Schedule simulation: the feasibility oracle for candidate routes.
//!
//! [`simulate_schedule`] walks a vehicle's remaining route stop by stop,
//! tracking time (constant travel speed plus per-stop service time, waiting
//! allowed before an order's creation time), the LIFO cargo stack and the
//! load, and reports either a full [`Schedule`] or the first
//! [`Violation`] encountered.

use crate::constraints::Violation;
use crate::route::Route;
use crate::stop::{Stop, StopAction};
use crate::view::VehicleView;
use dpdp_net::{FleetConfig, Order, OrderId, RoadNetwork, TimePoint};
use serde::{Deserialize, Serialize};

/// Timing of one stop in a simulated schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StopTiming {
    /// The stop.
    pub stop: Stop,
    /// Arrival time at the stop's node.
    pub arrival: TimePoint,
    /// When service starts (arrival, or the order's creation time if the
    /// vehicle has to wait for the cargo to exist).
    pub service_start: TimePoint,
    /// When the vehicle leaves the stop.
    pub departure: TimePoint,
    /// Load on board after the stop's action.
    pub load_after: f64,
}

/// A feasible simulated schedule for a remaining route.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    /// Per-stop timings, in visit order.
    pub timings: Vec<StopTiming>,
    /// Total driven distance from the anchor through all stops back to the
    /// depot, km.
    pub total_length: f64,
    /// Time the vehicle arrives back at its depot.
    pub return_time: TimePoint,
    /// Maximum load reached anywhere along the route.
    pub max_load: f64,
}

/// Looks up an order in a dense-by-id order slice.
fn lookup(orders: &[Order], id: OrderId) -> Result<&Order, Violation> {
    match orders.get(id.index()) {
        Some(o) if o.id == id => Ok(o),
        _ => Err(Violation::UnknownOrder(id)),
    }
}

/// Simulates `route` for the vehicle described by `view`, starting from the
/// view's anchor with the view's onboard stack. Checks the time-window,
/// capacity and LIFO constraints; the back-to-depot constraint is structural
/// but the simulator verifies the stack empties before the depot return.
///
/// `orders` must be dense by id (`orders[i].id.index() == i`), which
/// [`dpdp_net::Instance`] guarantees.
///
/// # Errors
/// Returns the first [`Violation`] encountered along the route.
pub fn simulate_schedule(
    view: &VehicleView,
    route: &Route,
    net: &RoadNetwork,
    fleet: &FleetConfig,
    orders: &[Order],
) -> Result<Schedule, Violation> {
    let mut node = view.anchor_node;
    let mut time = view.anchor_time;
    let mut stack: Vec<(OrderId, f64)> = view.onboard.clone();
    let mut load: f64 = stack.iter().map(|(_, q)| q).sum();
    let mut total_length = 0.0;
    let mut max_load = load;
    let mut timings = Vec::with_capacity(route.len());

    for &stop in route.stops() {
        let leg = net.distance(node, stop.node);
        total_length += leg;
        time += fleet.travel_time(leg);
        node = stop.node;
        let arrival = time;

        let order = lookup(orders, stop.action.order())?;
        let (service_start, load_after) = match stop.action {
            StopAction::Pickup(id) => {
                // Cargo only exists from the order's creation time; the
                // vehicle may wait at the factory.
                let start = arrival.max(order.created);
                let new_load = load + order.quantity;
                if new_load > fleet.capacity + 1e-9 {
                    return Err(Violation::Capacity {
                        order: id,
                        load: new_load,
                        capacity: fleet.capacity,
                    });
                }
                stack.push((id, order.quantity));
                load = new_load;
                max_load = max_load.max(load);
                (start, load)
            }
            StopAction::Delivery(id) => {
                if arrival > order.deadline {
                    return Err(Violation::TimeWindow {
                        order: id,
                        arrival,
                        deadline: order.deadline,
                    });
                }
                match stack.last() {
                    Some(&(top, qty)) if top == id => {
                        stack.pop();
                        load -= qty;
                    }
                    _ => return Err(Violation::Lifo { order: id }),
                }
                (arrival, load)
            }
        };

        time = service_start + fleet.service_time;
        timings.push(StopTiming {
            stop,
            arrival,
            service_start,
            departure: time,
            load_after,
        });
    }

    if !stack.is_empty() {
        return Err(Violation::IncompleteRoute {
            undelivered: stack.into_iter().map(|(o, _)| o).collect(),
        });
    }

    let home = net.distance(node, view.depot);
    total_length += home;
    time += fleet.travel_time(home);

    Ok(Schedule {
        timings,
        total_length,
        return_time: time,
        max_load,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpdp_net::{Node, NodeId, Point, TimeDelta, VehicleId};

    /// Line network: depot at 0 km, factories at 10, 20, 30 km.
    fn setup() -> (RoadNetwork, FleetConfig) {
        let nodes = vec![
            Node::depot(NodeId(0), Point::new(0.0, 0.0)),
            Node::factory(NodeId(1), Point::new(10.0, 0.0)),
            Node::factory(NodeId(2), Point::new(20.0, 0.0)),
            Node::factory(NodeId(3), Point::new(30.0, 0.0)),
        ];
        let net = RoadNetwork::euclidean(nodes, 1.0).unwrap();
        // 60 km/h so that 10 km = 10 minutes; 5-minute service.
        let fleet = FleetConfig::homogeneous(
            1,
            &[NodeId(0)],
            10.0,
            500.0,
            2.0,
            60.0,
            TimeDelta::from_minutes(5.0),
        )
        .unwrap();
        (net, fleet)
    }

    fn order(id: u32, p: u32, d: u32, q: f64, created_h: f64, deadline_h: f64) -> Order {
        Order::new(
            OrderId(id),
            NodeId(p),
            NodeId(d),
            q,
            TimePoint::from_hours(created_h),
            TimePoint::from_hours(deadline_h),
        )
        .unwrap()
    }

    fn idle() -> VehicleView {
        VehicleView::idle_at_depot(VehicleId(0), NodeId(0))
    }

    #[test]
    fn simple_feasible_route_times_and_length() {
        let (net, fleet) = setup();
        let orders = vec![order(0, 1, 2, 5.0, 0.0, 10.0)];
        let route = Route::from_stops(vec![
            Stop::pickup(NodeId(1), OrderId(0)),
            Stop::delivery(NodeId(2), OrderId(0)),
        ]);
        let s = simulate_schedule(&idle(), &route, &net, &fleet, &orders).unwrap();
        // 0 -> 10km -> 10min arrival; +5 service; -> 10km -> 10 min; arrival 25min.
        assert!((s.timings[0].arrival.seconds() - 600.0).abs() < 1e-6);
        assert!((s.timings[0].departure.seconds() - 900.0).abs() < 1e-6);
        assert!((s.timings[1].arrival.seconds() - 1500.0).abs() < 1e-6);
        // Length: 10 + 10 + 20(home) = 40 km.
        assert!((s.total_length - 40.0).abs() < 1e-9);
        assert!((s.max_load - 5.0).abs() < 1e-12);
        // Return: depart delivery at 1500+300=1800, 20km home = 20min -> 3000s.
        assert!((s.return_time.seconds() - 3000.0).abs() < 1e-6);
    }

    #[test]
    fn vehicle_waits_for_order_creation() {
        let (net, fleet) = setup();
        // Order created at 1h but vehicle arrives at 10 min.
        let orders = vec![order(0, 1, 2, 5.0, 1.0, 10.0)];
        let route = Route::from_stops(vec![
            Stop::pickup(NodeId(1), OrderId(0)),
            Stop::delivery(NodeId(2), OrderId(0)),
        ]);
        let s = simulate_schedule(&idle(), &route, &net, &fleet, &orders).unwrap();
        assert!((s.timings[0].arrival.seconds() - 600.0).abs() < 1e-6);
        // Waits until 1 h, then services.
        assert!((s.timings[0].service_start.seconds() - 3600.0).abs() < 1e-6);
    }

    #[test]
    fn late_delivery_is_a_time_window_violation() {
        let (net, fleet) = setup();
        // Deadline 20 minutes but drive+service needs 25.
        let orders = vec![order(0, 1, 2, 5.0, 0.0, 20.0 / 60.0)];
        let route = Route::from_stops(vec![
            Stop::pickup(NodeId(1), OrderId(0)),
            Stop::delivery(NodeId(2), OrderId(0)),
        ]);
        let err = simulate_schedule(&idle(), &route, &net, &fleet, &orders).unwrap_err();
        assert!(matches!(err, Violation::TimeWindow { order, .. } if order == OrderId(0)));
    }

    #[test]
    fn overload_is_a_capacity_violation() {
        let (net, fleet) = setup();
        let orders = vec![
            order(0, 1, 3, 6.0, 0.0, 10.0),
            order(1, 2, 3, 6.0, 0.0, 10.0),
        ];
        // Pick up both (6 + 6 > 10) before delivering.
        let route = Route::from_stops(vec![
            Stop::pickup(NodeId(1), OrderId(0)),
            Stop::pickup(NodeId(2), OrderId(1)),
            Stop::delivery(NodeId(3), OrderId(1)),
            Stop::delivery(NodeId(3), OrderId(0)),
        ]);
        let err = simulate_schedule(&idle(), &route, &net, &fleet, &orders).unwrap_err();
        assert!(matches!(err, Violation::Capacity { order, .. } if order == OrderId(1)));
    }

    #[test]
    fn interleaved_deliveries_violate_lifo() {
        let (net, fleet) = setup();
        let orders = vec![
            order(0, 1, 3, 2.0, 0.0, 10.0),
            order(1, 2, 3, 2.0, 0.0, 10.0),
        ];
        // P0 P1 D0 D1: delivering order 0 while order 1 is on top.
        let route = Route::from_stops(vec![
            Stop::pickup(NodeId(1), OrderId(0)),
            Stop::pickup(NodeId(2), OrderId(1)),
            Stop::delivery(NodeId(3), OrderId(0)),
            Stop::delivery(NodeId(3), OrderId(1)),
        ]);
        let err = simulate_schedule(&idle(), &route, &net, &fleet, &orders).unwrap_err();
        assert!(matches!(err, Violation::Lifo { order } if order == OrderId(0)));

        // Nested P0 P1 D1 D0 is fine.
        let route = Route::from_stops(vec![
            Stop::pickup(NodeId(1), OrderId(0)),
            Stop::pickup(NodeId(2), OrderId(1)),
            Stop::delivery(NodeId(3), OrderId(1)),
            Stop::delivery(NodeId(3), OrderId(0)),
        ]);
        assert!(simulate_schedule(&idle(), &route, &net, &fleet, &orders).is_ok());
    }

    #[test]
    fn delivering_unknown_or_unloaded_order_fails() {
        let (net, fleet) = setup();
        let orders = vec![order(0, 1, 2, 2.0, 0.0, 10.0)];
        // Deliver without pickup: stack empty -> LIFO violation.
        let route = Route::from_stops(vec![Stop::delivery(NodeId(2), OrderId(0))]);
        let err = simulate_schedule(&idle(), &route, &net, &fleet, &orders).unwrap_err();
        assert!(matches!(err, Violation::Lifo { .. }));
        // Reference to an order that does not exist.
        let route = Route::from_stops(vec![Stop::pickup(NodeId(1), OrderId(9))]);
        let err = simulate_schedule(&idle(), &route, &net, &fleet, &orders).unwrap_err();
        assert!(matches!(err, Violation::UnknownOrder(OrderId(9))));
    }

    #[test]
    fn pickup_without_delivery_is_incomplete() {
        let (net, fleet) = setup();
        let orders = vec![order(0, 1, 2, 2.0, 0.0, 10.0)];
        let route = Route::from_stops(vec![Stop::pickup(NodeId(1), OrderId(0))]);
        let err = simulate_schedule(&idle(), &route, &net, &fleet, &orders).unwrap_err();
        assert!(
            matches!(err, Violation::IncompleteRoute { ref undelivered } if undelivered == &[OrderId(0)])
        );
    }

    #[test]
    fn onboard_stack_respected_for_in_service_vehicle() {
        let (net, fleet) = setup();
        let orders = vec![
            order(0, 1, 3, 4.0, 0.0, 10.0),
            order(1, 2, 3, 4.0, 0.0, 10.0),
        ];
        // Vehicle already carries order 0, anchored at node 2.
        let mut view = idle();
        view.anchor_node = NodeId(2);
        view.anchor_time = TimePoint::from_hours(1.0);
        view.onboard = vec![(OrderId(0), 4.0)];
        // Must deliver 1 before 0 if it picks up 1 (LIFO).
        let route = Route::from_stops(vec![
            Stop::pickup(NodeId(2), OrderId(1)),
            Stop::delivery(NodeId(3), OrderId(1)),
            Stop::delivery(NodeId(3), OrderId(0)),
        ]);
        let s = simulate_schedule(&view, &route, &net, &fleet, &orders).unwrap();
        assert!((s.max_load - 8.0).abs() < 1e-12);
        // Delivering 0 first violates LIFO because 1 would be loaded on top…
        let bad = Route::from_stops(vec![
            Stop::pickup(NodeId(2), OrderId(1)),
            Stop::delivery(NodeId(3), OrderId(0)),
            Stop::delivery(NodeId(3), OrderId(1)),
        ]);
        assert!(simulate_schedule(&view, &bad, &net, &fleet, &orders).is_err());
    }

    #[test]
    fn empty_route_drives_home_only() {
        let (net, fleet) = setup();
        let mut view = idle();
        view.anchor_node = NodeId(2);
        view.anchor_time = TimePoint::from_hours(2.0);
        let s = simulate_schedule(&view, &Route::empty(), &net, &fleet, &[]).unwrap();
        assert!((s.total_length - 20.0).abs() < 1e-9);
        assert!(s.timings.is_empty());
        assert!((s.return_time.seconds() - (7200.0 + 1200.0)).abs() < 1e-6);
    }
}
