//! Route stops: a node plus a pickup or delivery action.

use dpdp_net::{NodeId, OrderId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// What a vehicle does at a stop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StopAction {
    /// Load the cargo of the given order (`↑` in the paper's Fig. 1).
    Pickup(OrderId),
    /// Unload the cargo of the given order (`↓`).
    Delivery(OrderId),
}

impl StopAction {
    /// The order this action belongs to.
    #[inline]
    pub fn order(self) -> OrderId {
        match self {
            StopAction::Pickup(o) | StopAction::Delivery(o) => o,
        }
    }

    /// True if this is a pickup.
    #[inline]
    pub fn is_pickup(self) -> bool {
        matches!(self, StopAction::Pickup(_))
    }
}

/// One stop of a route: visit `node` and perform `action` there.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Stop {
    /// Node to visit.
    pub node: NodeId,
    /// Pickup or delivery performed at the node.
    pub action: StopAction,
}

impl Stop {
    /// A pickup stop.
    #[inline]
    pub fn pickup(node: NodeId, order: OrderId) -> Self {
        Stop {
            node,
            action: StopAction::Pickup(order),
        }
    }

    /// A delivery stop.
    #[inline]
    pub fn delivery(node: NodeId, order: OrderId) -> Self {
        Stop {
            node,
            action: StopAction::Delivery(order),
        }
    }
}

impl fmt::Display for Stop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.action {
            StopAction::Pickup(o) => write!(f, "{}↑{}", self.node, o),
            StopAction::Delivery(o) => write!(f, "{}↓{}", self.node, o),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let p = Stop::pickup(NodeId(1), OrderId(7));
        assert!(p.action.is_pickup());
        assert_eq!(p.action.order(), OrderId(7));
        let d = Stop::delivery(NodeId(2), OrderId(7));
        assert!(!d.action.is_pickup());
        assert_eq!(d.action.order(), OrderId(7));
    }

    #[test]
    fn display() {
        assert_eq!(Stop::pickup(NodeId(1), OrderId(2)).to_string(), "N1↑O2");
        assert_eq!(Stop::delivery(NodeId(3), OrderId(4)).to_string(), "N3↓O4");
    }
}
