//! Array-of-structs **reference** implementation of the incremental sweep.
//!
//! This module preserves the original `ScheduleCache` layout — one
//! `CachedStop` record per stop, fields interleaved — together with the
//! original per-candidate sweep that resolves every distance and travel
//! time through scalar [`RoadNetwork::distance`] /
//! [`FleetConfig::travel_time`] calls. The optimized path in
//! [`crate::incremental`] restructures the same computation as
//! struct-of-arrays with batched leg tables; **both paths are kept in
//! bit-exact lockstep** (same arithmetic operations in the same order on
//! the same matrix elements), which this module exists to witness:
//!
//! * the randomized parity suites assert [`sweep_best_aos`] and
//!   [`crate::sweep_best`] pick bit-identical winners;
//! * the criterion benches and the `table1` wall-time ratchet time the two
//!   layouts against each other, so the SoA path's speedup is measured
//!   against this exact pre-optimization implementation on the same
//!   machine (a machine-independent ratio, unlike an absolute wall-time
//!   baseline).
//!
//! Algorithmic documentation (forward/backward passes, slack recurrence,
//! LIFO pruning, near-tie re-ranking) lives in [`crate::incremental`]; the
//! two modules differ only in memory layout and kernel batching.

use crate::incremental::{InsertionSweep, ScoredInsertion};
use crate::stop::StopAction;
use crate::view::VehicleView;
use dpdp_net::{FleetConfig, NodeId, Order, OrderId, RoadNetwork, TimePoint};

/// Per-stop record of the forward and backward passes (interleaved layout).
#[derive(Debug, Clone, Copy)]
struct CachedStop {
    /// The stop's node.
    node: NodeId,
    /// Whether the stop is a pickup (false: delivery).
    is_pickup: bool,
    /// Quantity moved at the stop (the order's quantity).
    quantity: f64,
    /// The order's creation time (pickups wait for it).
    created: TimePoint,
    /// The order's delivery deadline (checked at deliveries).
    deadline: TimePoint,
    /// Arrival time at the stop in the base schedule.
    arrival: TimePoint,
    /// Departure time from the stop in the base schedule.
    departure: TimePoint,
    /// Load on board after the stop's action.
    load_after: f64,
    /// Backward-pass deadline slack (seconds).
    slack: f64,
}

/// Array-of-structs schedule cache: the original layout, retained as the
/// parity and performance reference for [`crate::ScheduleCache`].
#[derive(Debug, Clone)]
pub struct AosScheduleCache {
    stops: Vec<CachedStop>,
    feasible: bool,
    base_length: f64,
    initial_load: f64,
}

impl AosScheduleCache {
    /// Runs the forward and backward passes over `view`'s base route,
    /// mirroring [`crate::simulate_schedule`] operation for operation
    /// (see [`crate::ScheduleCache::build`] for the shared contract).
    pub fn build(
        view: &VehicleView,
        net: &RoadNetwork,
        fleet: &FleetConfig,
        orders: &[Order],
    ) -> AosScheduleCache {
        let initial_load: f64 = view.onboard.iter().map(|(_, q)| q).sum();
        let n = view.route.len();
        let mut cache = AosScheduleCache {
            stops: Vec::with_capacity(n),
            feasible: false,
            base_length: 0.0,
            initial_load,
        };

        // Forward pass: the exact walk of `simulate_schedule`.
        let mut node = view.anchor_node;
        let mut time = view.anchor_time;
        let mut stack: Vec<(OrderId, f64)> = view.onboard.clone();
        let mut load = initial_load;
        let mut total_length = 0.0;
        for &stop in view.route.stops() {
            let leg = net.distance(node, stop.node);
            total_length += leg;
            time += fleet.travel_time(leg);
            node = stop.node;
            let arrival = time;
            let Some(order) = lookup(orders, stop.action.order()) else {
                return cache; // UnknownOrder: base infeasible.
            };
            let (service_start, is_pickup) = match stop.action {
                StopAction::Pickup(id) => {
                    let start = arrival.max(order.created);
                    let new_load = load + order.quantity;
                    if new_load > fleet.capacity + 1e-9 {
                        return cache; // Capacity: base infeasible.
                    }
                    stack.push((id, order.quantity));
                    load = new_load;
                    (start, true)
                }
                StopAction::Delivery(id) => {
                    if arrival > order.deadline {
                        return cache; // TimeWindow: base infeasible.
                    }
                    match stack.last() {
                        Some(&(top, qty)) if top == id => {
                            stack.pop();
                            load -= qty;
                        }
                        _ => return cache, // LIFO: base infeasible.
                    }
                    (arrival, false)
                }
            };
            time = service_start + fleet.service_time;
            cache.stops.push(CachedStop {
                node,
                is_pickup,
                quantity: order.quantity,
                created: order.created,
                deadline: order.deadline,
                arrival,
                departure: time,
                load_after: load,
                slack: f64::INFINITY,
            });
        }
        if !stack.is_empty() {
            return cache; // IncompleteRoute: base infeasible.
        }
        total_length += net.distance(node, view.depot);
        cache.base_length = total_length;

        // Backward pass: deadline slack per position.
        let mut slack = f64::INFINITY;
        for s in cache.stops.iter_mut().rev() {
            if s.is_pickup {
                let wait = (s.departure - fleet.service_time - s.arrival).seconds();
                slack += wait; // ∞ + wait = ∞
            } else {
                slack = slack.min((s.deadline - s.arrival).seconds());
            }
            s.slack = slack;
        }

        cache.feasible = true;
        cache
    }

    /// Whether the base route simulates feasibly.
    #[inline]
    pub fn is_feasible(&self) -> bool {
        self.feasible
    }

    /// Total base route length, bit-identical to [`crate::Route::length`].
    #[inline]
    pub fn base_length(&self) -> f64 {
        self.base_length
    }

    /// Number of stops of the cached base route.
    #[inline]
    pub fn len(&self) -> usize {
        self.stops.len()
    }

    /// Whether the cached base route has no stops.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.stops.is_empty()
    }
}

/// Dense-by-id order lookup (the exact check `simulate_schedule` performs).
fn lookup(orders: &[Order], id: OrderId) -> Option<&Order> {
    orders.get(id.index()).filter(|o| o.id == id)
}

/// Reference sweep over the interleaved cache: evaluates every
/// pickup/delivery position pair with per-candidate scalar
/// distance/travel-time calls, calling `on_feasible` for each feasible pair
/// in enumeration order. Semantics identical to [`crate::sweep_insertions`].
pub fn sweep_insertions_aos(
    cache: &AosScheduleCache,
    view: &VehicleView,
    order: &Order,
    net: &RoadNetwork,
    fleet: &FleetConfig,
    orders: &[Order],
    mut on_feasible: impl FnMut(ScoredInsertion),
) -> usize {
    debug_assert!(cache.feasible, "sweep over an infeasible base route");
    debug_assert_eq!(cache.len(), view.route.len(), "cache/view mismatch");
    let Some(probe) = lookup(orders, order.id) else {
        return 0;
    };
    let pickup_node = order.pickup;
    let delivery_node = order.delivery;
    let n = cache.stops.len();
    let cap = fleet.capacity + 1e-9;
    let mut num_feasible = 0;

    for i in 0..=n {
        let (prev_node, prev_dep, load_before) = if i > 0 {
            let s = &cache.stops[i - 1];
            (s.node, s.departure, s.load_after)
        } else {
            (view.anchor_node, view.anchor_time, cache.initial_load)
        };
        let new_load = load_before + probe.quantity;
        if new_load > cap {
            continue;
        }
        let arr_p = prev_dep + fleet.travel_time(net.distance(prev_node, pickup_node));
        let dep_p = arr_p.max(probe.created) + fleet.service_time;
        let next_i = if i < n {
            cache.stops[i].node
        } else {
            view.depot
        };

        // Candidate (i, i).
        let arr_d = dep_p + fleet.travel_time(net.distance(pickup_node, delivery_node));
        if arr_d <= probe.deadline {
            let suffix_ok = i == n || {
                let dep_d = arr_d + fleet.service_time;
                let arr_next = dep_d + fleet.travel_time(net.distance(delivery_node, next_i));
                (arr_next - cache.stops[i].arrival).seconds() <= cache.stops[i].slack
            };
            if suffix_ok {
                let delta = net.distance(prev_node, pickup_node)
                    + net.distance(pickup_node, delivery_node)
                    + net.distance(delivery_node, next_i)
                    - net.distance(prev_node, next_i);
                num_feasible += 1;
                on_feasible(ScoredInsertion {
                    pickup_pos: i,
                    delivery_pos: i,
                    length: cache.base_length + delta,
                });
            }
        }
        if i == n {
            continue;
        }

        // Candidates (i, j > i).
        let delta_pickup = net.distance(prev_node, pickup_node) + net.distance(pickup_node, next_i)
            - net.distance(prev_node, next_i);
        let mut cur_node = pickup_node;
        let mut cur_dep = dep_p;
        let mut load = new_load;
        let mut depth: usize = 0;
        for j in (i + 1)..=n {
            let s = &cache.stops[j - 1];
            let arr = cur_dep + fleet.travel_time(net.distance(cur_node, s.node));
            let service_start = if s.is_pickup {
                let segment_load = load + s.quantity;
                if segment_load > cap {
                    break;
                }
                load = segment_load;
                depth += 1;
                arr.max(s.created)
            } else {
                if arr > s.deadline {
                    break;
                }
                if depth == 0 {
                    break;
                }
                depth -= 1;
                load -= s.quantity;
                arr
            };
            cur_dep = service_start + fleet.service_time;
            cur_node = s.node;

            if depth != 0 {
                continue;
            }
            let arr_d = cur_dep + fleet.travel_time(net.distance(cur_node, delivery_node));
            if arr_d > probe.deadline {
                continue;
            }
            let next_j = if j < n {
                cache.stops[j].node
            } else {
                view.depot
            };
            let suffix_ok = j == n || {
                let dep_d = arr_d + fleet.service_time;
                let arr_next = dep_d + fleet.travel_time(net.distance(delivery_node, next_j));
                (arr_next - cache.stops[j].arrival).seconds() <= cache.stops[j].slack
            };
            if suffix_ok {
                let delta_delivery = net.distance(cur_node, delivery_node)
                    + net.distance(delivery_node, next_j)
                    - net.distance(cur_node, next_j);
                num_feasible += 1;
                on_feasible(ScoredInsertion {
                    pickup_pos: i,
                    delivery_pos: j,
                    length: cache.base_length + (delta_pickup + delta_delivery),
                });
            }
        }
    }
    num_feasible
}

/// View-based exact candidate length fold (naive leg order), used to
/// resolve ranking near-ties exactly as [`crate::sweep_best`] does.
fn exact_candidate_length(
    view: &VehicleView,
    pickup: NodeId,
    delivery: NodeId,
    net: &RoadNetwork,
    i: usize,
    j: usize,
) -> f64 {
    let stops = view.route.stops();
    let mut prev = view.anchor_node;
    let mut total = 0.0;
    let leg = |next: NodeId, total: &mut f64, prev: &mut NodeId| {
        *total += net.distance(*prev, next);
        *prev = next;
    };
    for s in &stops[..i] {
        leg(s.node, &mut total, &mut prev);
    }
    leg(pickup, &mut total, &mut prev);
    for s in &stops[i..j] {
        leg(s.node, &mut total, &mut prev);
    }
    leg(delivery, &mut total, &mut prev);
    for s in &stops[j..] {
        leg(s.node, &mut total, &mut prev);
    }
    leg(view.depot, &mut total, &mut prev);
    total
}

/// Reference argmin over [`sweep_insertions_aos`]: identical two-tier
/// ranking (1e-9 relative near-tie band, lazy exact-length re-rank,
/// first-wins `total_cmp`) to [`crate::sweep_best`], so the two paths pick
/// bit-identical winners.
pub fn sweep_best_aos(
    cache: &AosScheduleCache,
    view: &VehicleView,
    order: &Order,
    net: &RoadNetwork,
    fleet: &FleetConfig,
    orders: &[Order],
) -> InsertionSweep {
    let n = view.route.len();
    let mut best: Option<(ScoredInsertion, Option<f64>)> = None;
    let num_feasible = sweep_insertions_aos(cache, view, order, net, fleet, orders, |cand| {
        let Some((winner, winner_exact)) = &mut best else {
            best = Some((cand, None));
            return;
        };
        let eps = 1e-9 * winner.length.abs().max(1.0);
        let (replace, cand_exact) = if cand.length < winner.length - eps {
            (true, None)
        } else if cand.length > winner.length + eps {
            (false, None)
        } else {
            let we = *winner_exact.get_or_insert_with(|| {
                exact_candidate_length(
                    view,
                    order.pickup,
                    order.delivery,
                    net,
                    winner.pickup_pos,
                    winner.delivery_pos,
                )
            });
            let ce = exact_candidate_length(
                view,
                order.pickup,
                order.delivery,
                net,
                cand.pickup_pos,
                cand.delivery_pos,
            );
            (ce.total_cmp(&we) == std::cmp::Ordering::Less, Some(ce))
        };
        if replace {
            best = Some((cand, cand_exact));
        }
    });
    InsertionSweep {
        best: best.map(|(cand, _)| cand),
        num_feasible,
        num_enumerated: (n + 1) * (n + 2) / 2,
    }
}
