//! Constraint violations reported by the schedule simulator.

use dpdp_net::{OrderId, TimePoint};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Why a candidate route is infeasible.
///
/// The four enterprise constraints of Section III: time windows, capacity,
/// LIFO loading and back-to-depot (the latter is structural — see
/// [`crate::Route`] — so it appears here only as [`Violation::IncompleteRoute`],
/// i.e. returning to the depot while still loaded).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Violation {
    /// A delivery would arrive after the order's latest delivery time.
    TimeWindow {
        /// The late order.
        order: OrderId,
        /// When the vehicle would arrive.
        arrival: TimePoint,
        /// The order's deadline.
        deadline: TimePoint,
    },
    /// Loading the order would exceed vehicle capacity.
    Capacity {
        /// The order being loaded.
        order: OrderId,
        /// Load after the pickup.
        load: f64,
        /// Vehicle capacity `Q`.
        capacity: f64,
    },
    /// Unloading would violate the Last-In-First-Out stack discipline.
    Lifo {
        /// The order whose delivery is not on top of the stack.
        order: OrderId,
    },
    /// A stop referenced an order the planner does not know about.
    UnknownOrder(OrderId),
    /// The route ends (returns to depot) while cargo is still on board.
    IncompleteRoute {
        /// Orders still loaded at the end of the route.
        undelivered: Vec<OrderId>,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::TimeWindow {
                order,
                arrival,
                deadline,
            } => write!(
                f,
                "time window violated for {order}: arrival {arrival} after deadline {deadline}"
            ),
            Violation::Capacity {
                order,
                load,
                capacity,
            } => write!(
                f,
                "capacity violated loading {order}: load {load} exceeds capacity {capacity}"
            ),
            Violation::Lifo { order } => {
                write!(f, "LIFO violated: {order} is not on top of the cargo stack")
            }
            Violation::UnknownOrder(order) => write!(f, "unknown order {order}"),
            Violation::IncompleteRoute { undelivered } => {
                write!(
                    f,
                    "route returns to depot with {} undelivered order(s)",
                    undelivered.len()
                )
            }
        }
    }
}

impl std::error::Error for Violation {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violations_render() {
        let v = Violation::Lifo { order: OrderId(3) };
        assert!(v.to_string().contains("LIFO"));
        let v = Violation::Capacity {
            order: OrderId(1),
            load: 12.0,
            capacity: 10.0,
        };
        assert!(v.to_string().contains("12"));
        let v = Violation::IncompleteRoute {
            undelivered: vec![OrderId(0), OrderId(1)],
        };
        assert!(v.to_string().contains("2 undelivered"));
    }
}
