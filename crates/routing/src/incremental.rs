//! Incremental O(n²) insertion evaluation: prefix/suffix schedule caching.
//!
//! The naive Algorithm 2 sweep ([`crate::enumerate_insertions`]) clones the
//! route and re-simulates it from scratch for every one of the
//! `(n+1)(n+2)/2` pickup/delivery position pairs — O(n) work and two heap
//! allocations per candidate, O(n³) per `(order, vehicle)` pair. This module
//! removes the per-candidate re-simulation:
//!
//! 1. **Forward pass** ([`ScheduleCache::build`], once per view): walks the
//!    base route exactly like [`crate::simulate_schedule`], recording per
//!    stop the arrival/departure times, the load after the stop, the wait
//!    absorbed at the stop and the cumulative route length. O(n).
//! 2. **Backward pass** (same call): per-position *deadline slack* — the
//!    largest delay that can be injected into the arrival at position `p`
//!    without violating any downstream delivery deadline. Waits at pickups
//!    absorb delay, so the recurrence is `slack[p] = slack[p+1] + wait_p`
//!    for pickups and `slack[p] = min(deadline_p - arrival_p, slack[p+1])`
//!    for deliveries (`slack[n] = ∞`: the depot return is unconstrained).
//!    O(n).
//! 3. **Sweep** ([`sweep_insertions`]): for each pickup position `i` the
//!    evaluator re-walks the route *once*, pushing the pickup's detour delay
//!    and extra load through stops `i..j`, so extending the delivery
//!    position `j` by one costs O(1): the delivery candidate is checked
//!    against the new order's own deadline, and everything *after* `j` is
//!    checked with a single comparison against the cached `slack[j]`.
//!    Position pairs that provably violate the LIFO stack discipline are
//!    pruned without evaluation: a base delivery reached while the new
//!    cargo is on top of the stack kills every later `j` for that `i`.
//!
//! Total: O(n²) per `(order, vehicle)` pair with O(n) allocations — down
//! from O(n³) with O(n²) allocations — and the cache is reusable across
//! every order of a decision epoch (see `dpdp_sim::DecisionBatch`).
//!
//! # Memory layout: struct of arrays + batched leg tables
//!
//! The cache stores its per-stop quantities as parallel flat arrays (one
//! `Vec<f64>` per field — arrivals, departures, loads, slacks, creation
//! times, deadlines, quantities, cumulative lengths — plus a node vector
//! and a pickup/delivery mask) rather than a vector of per-stop records.
//! The sweep's hot loops each touch only two or three of those fields, so
//! the SoA layout turns every scan into contiguous, cache-line-dense,
//! vectorizable traversals instead of strided walks over interleaved
//! records.
//!
//! Leg quantities are batched exactly where batching amortizes real reuse,
//! and stay lazy where it would not:
//!
//! * **Base legs** (`d(prev_i, next_i)` and their travel times) are
//!   persisted *in the cache* at build time ([`dpdp_net::RoadNetwork::
//!   leg_distances`] + [`dpdp_net::FleetConfig::travel_times_secs`], plus
//!   the final home-to-depot leg), so every sweep of the epoch reads them
//!   for free — the cost is amortized across all probe orders of the
//!   vehicle, not just across positions of one sweep.
//! * **Probe legs** (pickup and delivery detour legs) stay lazy scalar
//!   calls like the reference path, evaluated only past the capacity /
//!   deadline / LIFO prunes. Batching them eagerly was measured to be a
//!   net loss: the sweep is pruning-dominated, so an eager five-table
//!   per-sweep fill made it ~1.7× *slower* than the AoS reference on the
//!   metro-style fixtures, and even a delivery-only two-table fill still
//!   trailed by ~5–10%. Only quantities reused across the whole sweep
//!   (`d(pickup, delivery)`, `d(delivery, depot)`) are hoisted.
//!
//! Each cached leg entry is the identical f64 the scalar calls produce and
//! all sums/comparisons keep their original order, so the optimized sweep
//! is **bit-identical** to the retained array-of-structs reference in
//! [`crate::aos`] (asserted candidate by candidate in the parity suites)
//! while doing strictly less work per visited pair: the base-leg travel
//! times the reference re-derives with a matrix read and a division on
//! every segment advance are single array loads here, and the sweep itself
//! allocates nothing.
//!
//! All sweep time arithmetic happens on raw f64 seconds: `TimePoint` /
//! `TimeDelta` are exact newtypes over finite f64 seconds whose operators
//! are plain f64 ops, so unwrapping them changes no bit of any result.
//!
//! # Determinism and parity with the naive enumerator
//!
//! The sweep is *bit-deterministic* (pure f64 arithmetic in a fixed order,
//! independent of thread count) and is kept in lockstep with the naive
//! reference path:
//!
//! * the prefix quantities (arrivals, departures, loads, cumulative length)
//!   are accumulated in exactly the order [`crate::simulate_schedule`] uses,
//!   so they are bit-identical to the naive walk;
//! * in-segment checks (capacity with the extra load, deadlines under the
//!   pickup detour delay, LIFO depth) re-walk the touched stops with the
//!   same operations the simulator performs, so they are bit-identical too.
//!   The one step that is mathematically equivalent but *not* bitwise
//!   equal to re-simulation is the suffix check: a single
//!   `delay <= slack[j]` comparison stands in for re-deriving every
//!   downstream arrival, so on a knife-edge instance where a downstream
//!   arrival lands within an ulp of its deadline (or a downstream load
//!   within an ulp of the capacity fuzz) the two paths can classify that
//!   candidate differently. A wrongful *accept* can only surface through
//!   the winner and is caught by the oracle fallback below; a wrongful
//!   *reject* is the one theoretical gap in the feasibility-set parity —
//!   never observed across the randomized suites, and impossible on
//!   instances whose arrivals do not graze deadlines at ulp precision;
//! * candidates are ranked by the classic detour delta
//!   `d(a,p) + d(p,b) − d(a,b)`; near-ties within a 1e-9 relative band —
//!   far above any f64 summation error, so outside the band delta order
//!   provably equals length order — are re-ranked on lazily computed exact
//!   length folds that are bit-identical to the naive candidate lengths,
//!   with first-wins tie-breaking in enumeration order. The selected
//!   winner is therefore **exactly** the one the naive
//!   `min_by(total_cmp)` picks, degenerate zero-detour ties included;
//! * only the winner materializes a [`crate::Route`] and
//!   [`crate::Schedule`], through one final [`crate::simulate_schedule`]
//!   call — the simulator stays the authoritative oracle, and the winning
//!   length is bit-identical to the naive path's by construction. In the
//!   (never observed) event the oracle rejects the sweep's winner,
//!   [`best_insertion_cached`] falls back to the naive reference wholesale.
//!
//! The randomized parity suite (`tests/incremental_parity.rs`) asserts
//! agreement on feasibility sets, winning positions and lengths across
//! hundreds of random routes, including in-service vehicles with non-empty
//! onboard stacks — and bit-identical winners against the [`crate::aos`]
//! reference layout.

use crate::insertion::{best_insertion_naive, BestInsertion, InsertionCandidate};
use crate::schedule::simulate_schedule;
use crate::stop::{Stop, StopAction};
use crate::view::VehicleView;
use dpdp_net::{FleetConfig, NodeId, Order, OrderId, RoadNetwork};

/// Cached forward/backward passes over a vehicle's base route, stored as
/// struct-of-arrays (see the module docs for the layout rationale).
///
/// Built once per [`VehicleView`] (O(n)); every insertion sweep for that
/// view — one per order in a decision epoch — then runs in O(n²) without
/// touching [`crate::simulate_schedule`] except to materialize the winner.
/// [`ScheduleCache::rebuild`] re-runs the passes in place, reusing every
/// allocation, so per-epoch cache arrays can live in arena scratch.
///
/// The cache is plain data (`Send + Sync`), so one instance can be shared
/// across the scoring threads of a parallel epoch sweep.
#[derive(Debug, Clone, Default)]
pub struct ScheduleCache {
    /// Node of each stop.
    node: Vec<NodeId>,
    /// Pickup (true) / delivery (false) mask.
    is_pickup: Vec<bool>,
    /// Quantity moved at each stop (the order's quantity).
    quantity: Vec<f64>,
    /// Order creation time per stop, raw seconds (pickups wait for it).
    created: Vec<f64>,
    /// Order delivery deadline per stop, raw seconds.
    deadline: Vec<f64>,
    /// Arrival time per stop in the base schedule, raw seconds.
    arrival: Vec<f64>,
    /// Departure time per stop in the base schedule, raw seconds.
    departure: Vec<f64>,
    /// Load on board after each stop's action.
    load_after: Vec<f64>,
    /// Backward-pass deadline slack (seconds) per position.
    slack: Vec<f64>,
    /// Cumulative route length through each stop (anchor leg included),
    /// bit-identical to the prefix sums of the naive left-to-right fold.
    cum_len: Vec<f64>,
    /// Whether the base route itself simulates feasibly. When false the
    /// cached passes are meaningless and callers must fall back to the
    /// naive reference path.
    feasible: bool,
    /// Total base route length (anchor through all stops, home to depot),
    /// bit-identical to [`crate::Route::length`].
    base_length: f64,
    /// Load on board at the anchor (sum of the onboard stack).
    initial_load: f64,
    /// Persisted base-leg distances, batch-filled at build time: entry
    /// `i < n` is `d(prev_i, stops[i])` (with `prev_0` the anchor), entry
    /// `n` the final home-to-depot leg. On a feasible cache this is exactly
    /// the `d_base` table of every sweep (`n + 1` entries), so sweeps read
    /// it instead of re-gathering it — the fill cost is amortized across
    /// all probe orders of the epoch.
    leg_dist: Vec<f64>,
    /// `travel_time(leg_dist)` in raw seconds, same layout and
    /// amortization as [`ScheduleCache::leg_dist`]. Entry `n` is computed
    /// for layout symmetry; no sweep reads it (no candidate traverses the
    /// displaced depot leg).
    leg_tt: Vec<f64>,
    /// Build scratch: the LIFO stack replay.
    stack: Vec<(OrderId, f64)>,
}

impl ScheduleCache {
    /// Runs the forward and backward passes over `view`'s base route.
    ///
    /// Mirrors [`crate::simulate_schedule`] operation for operation, so the
    /// cached prefix quantities are bit-identical to the naive walk. A base
    /// route that does not simulate feasibly (which committed routes never
    /// are) yields a cache with [`ScheduleCache::is_feasible`] `== false`.
    pub fn build(
        view: &VehicleView,
        net: &RoadNetwork,
        fleet: &FleetConfig,
        orders: &[Order],
    ) -> ScheduleCache {
        let mut cache = ScheduleCache::default();
        cache.rebuild(view, net, fleet, orders);
        cache
    }

    /// Re-runs both passes in place, reusing every allocation. Equivalent to
    /// `*self = ScheduleCache::build(...)` but allocation-free once the
    /// arrays have grown to the route size — the workhorse behind per-epoch
    /// cache arenas.
    pub fn rebuild(
        &mut self,
        view: &VehicleView,
        net: &RoadNetwork,
        fleet: &FleetConfig,
        orders: &[Order],
    ) {
        self.clear();
        self.initial_load = view.onboard.iter().map(|(_, q)| q).sum();
        let stops = view.route.stops();
        let n = stops.len();

        // Batched base-leg tables: node[i] = stops[i].node and
        // leg_dist[i] = d(prev_i, node[i]) with prev_0 the anchor, filled
        // through the contiguous row kernels. Each entry is the identical
        // matrix element the scalar walk reads, in the same order.
        self.node.extend(stops.iter().map(|s| s.node));
        self.leg_dist.resize(n, 0.0);
        if n > 0 {
            self.leg_dist[0] = net.distance(view.anchor_node, self.node[0]);
            net.leg_distances(&self.node[..n - 1], &self.node[1..], &mut self.leg_dist[1..]);
        }
        self.leg_tt.resize(n, 0.0);
        fleet.travel_times_secs(&self.leg_dist, &mut self.leg_tt);

        // Forward pass: the exact walk of `simulate_schedule`, on raw f64
        // seconds (TimePoint/TimeDelta ops are plain f64 ops, so the
        // unwrapped arithmetic is bit-identical).
        let service = fleet.service_time.seconds();
        let mut node = view.anchor_node;
        let mut time = view.anchor_time.seconds();
        self.stack.extend_from_slice(&view.onboard);
        let mut load = self.initial_load;
        let mut total_length = 0.0;
        for (p, &stop) in stops.iter().enumerate() {
            total_length += self.leg_dist[p];
            time += self.leg_tt[p];
            node = stop.node;
            let arrival = time;
            let Some(order) = lookup(orders, stop.action.order()) else {
                return; // UnknownOrder: base infeasible.
            };
            let (service_start, is_pickup) = match stop.action {
                StopAction::Pickup(id) => {
                    // `arrival.max(order.created)`, unwrapped.
                    let created = order.created.seconds();
                    let start = if arrival >= created { arrival } else { created };
                    let new_load = load + order.quantity;
                    if new_load > fleet.capacity + 1e-9 {
                        return; // Capacity: base infeasible.
                    }
                    self.stack.push((id, order.quantity));
                    load = new_load;
                    (start, true)
                }
                StopAction::Delivery(id) => {
                    if arrival > order.deadline.seconds() {
                        return; // TimeWindow: base infeasible.
                    }
                    match self.stack.last() {
                        Some(&(top, qty)) if top == id => {
                            self.stack.pop();
                            load -= qty;
                        }
                        _ => return, // LIFO: base infeasible.
                    }
                    (arrival, false)
                }
            };
            time = service_start + service;
            self.is_pickup.push(is_pickup);
            self.quantity.push(order.quantity);
            self.created.push(order.created.seconds());
            self.deadline.push(order.deadline.seconds());
            self.arrival.push(arrival);
            self.departure.push(time);
            self.load_after.push(load);
            self.slack.push(f64::INFINITY);
            self.cum_len.push(total_length);
        }
        if !self.stack.is_empty() {
            return; // IncompleteRoute: base infeasible.
        }
        let depot_leg = net.distance(node, view.depot);
        total_length += depot_leg;
        self.leg_dist.push(depot_leg);
        self.leg_tt.push(fleet.travel_time(depot_leg).seconds());
        self.base_length = total_length;

        // Backward pass: deadline slack per position. Waits at pickups
        // absorb injected delay, deliveries cap it by their own deadline.
        let mut slack = f64::INFINITY;
        for p in (0..n).rev() {
            if self.is_pickup[p] {
                let wait = (self.departure[p] - service) - self.arrival[p];
                slack += wait; // ∞ + wait = ∞
            } else {
                slack = slack.min(self.deadline[p] - self.arrival[p]);
            }
            self.slack[p] = slack;
        }

        self.feasible = true;
    }

    /// Resets every array (capacity retained) and scalar field.
    fn clear(&mut self) {
        self.node.clear();
        self.is_pickup.clear();
        self.quantity.clear();
        self.created.clear();
        self.deadline.clear();
        self.arrival.clear();
        self.departure.clear();
        self.load_after.clear();
        self.slack.clear();
        self.cum_len.clear();
        self.leg_dist.clear();
        self.leg_tt.clear();
        self.stack.clear();
        self.feasible = false;
        self.base_length = 0.0;
        self.initial_load = 0.0;
    }

    /// Whether the base route simulates feasibly. When false every cached
    /// quantity is meaningless and insertion evaluation must go through the
    /// naive reference path (see [`best_insertion_cached`]).
    #[inline]
    pub fn is_feasible(&self) -> bool {
        self.feasible
    }

    /// Total base route length `d_{t,k}` (km, anchor through all stops and
    /// home to the depot), bit-identical to [`crate::Route::length`]. Only
    /// meaningful when [`ScheduleCache::is_feasible`] holds.
    #[inline]
    pub fn base_length(&self) -> f64 {
        self.base_length
    }

    /// Number of stops of the cached base route.
    #[inline]
    pub fn len(&self) -> usize {
        self.arrival.len()
    }

    /// Whether the cached base route has no stops.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.arrival.is_empty()
    }

    /// Backward-pass deadline slack (seconds) at position `p`: the maximum
    /// delay injectable into the arrival at `p` without violating any
    /// delivery deadline from `p` onward.
    ///
    /// # Panics
    /// Panics if `p >= len()`.
    #[inline]
    pub fn slack(&self, p: usize) -> f64 {
        self.slack[p]
    }
}

/// One feasible insertion position pair found by [`sweep_insertions`],
/// scored without materializing the route.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredInsertion {
    /// Index (in the base stop list) where the pickup is inserted.
    pub pickup_pos: usize,
    /// Index (in the base stop list) before which the delivery is inserted;
    /// `>= pickup_pos`.
    pub delivery_pos: usize,
    /// Resulting route length: base length plus the detour delta
    /// `d(a,p) + d(p,b) − d(a,b)`. Mathematically equal to the simulated
    /// candidate length; may differ from it by floating-point rounding, so
    /// the winner's authoritative length comes from the final
    /// [`crate::simulate_schedule`] call.
    pub length: f64,
}

/// Outcome of an incremental insertion sweep (see [`sweep_best`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InsertionSweep {
    /// The shortest feasible insertion under [`f64::total_cmp`] with
    /// first-wins tie-breaking in enumeration order, if any.
    pub best: Option<ScoredInsertion>,
    /// Number of feasible position pairs.
    pub num_feasible: usize,
    /// Number of enumerated position pairs, `(n+1)(n+2)/2`.
    pub num_enumerated: usize,
}

/// Looks up an order in a dense-by-id order slice (the exact check
/// `simulate_schedule` performs; a miss makes every candidate infeasible).
///
/// This *is* the per-epoch order index: `orders` is indexed directly by
/// `OrderId`, so the resolution is O(1) — one bounds check, one load, one
/// id compare — with no hashing or scanning anywhere on the hot path.
fn lookup(orders: &[Order], id: OrderId) -> Option<&Order> {
    orders.get(id.index()).filter(|o| o.id == id)
}

/// Evaluates every pickup/delivery position pair of `order` in `view`'s
/// base route from the cached passes, calling `on_feasible` for each
/// feasible pair in enumeration order (pickup position outer, delivery
/// position inner) and returning the number of feasible pairs.
///
/// This is the allocation-free O(n²) core of the incremental evaluator;
/// [`sweep_best`] layers argmin selection on top and
/// [`best_insertion_cached`] materializes the winner. Bit-identical to the
/// reference [`crate::aos::sweep_insertions_aos`] (see the module docs).
///
/// `cache` must have been built from the same `view` (and the same
/// network/fleet/orders) and be feasible; see
/// [`ScheduleCache::is_feasible`].
///
/// # Panics
/// May panic (index out of range) if `cache` was built from a different
/// route than `view`'s.
pub fn sweep_insertions(
    cache: &ScheduleCache,
    view: &VehicleView,
    order: &Order,
    net: &RoadNetwork,
    fleet: &FleetConfig,
    orders: &[Order],
    mut on_feasible: impl FnMut(ScoredInsertion),
) -> usize {
    debug_assert!(cache.feasible, "sweep over an infeasible base route");
    debug_assert_eq!(cache.len(), view.route.len(), "cache/view mismatch");
    // The naive walk resolves every stop through the dense order table, the
    // inserted pair included: replicate the lookup (node positions come
    // from the argument, quantities and times from the table) and reject
    // everything on a miss, exactly like the per-candidate `UnknownOrder`.
    let Some(probe) = lookup(orders, order.id) else {
        return 0;
    };
    let n = cache.len();

    // Probe scalars, unwrapped to raw seconds once. Per-position probe
    // legs stay lazy (scalar matrix reads, identical to the reference
    // calls): the walk is pruning-dominated, so most positions never touch
    // them — see the module docs for the measured rationale.
    let d_pd = net.distance(order.pickup, order.delivery);
    let tt_pd = fleet.travel_time(d_pd).seconds();
    let d_d_depot = net.distance(order.delivery, view.depot);
    let created = probe.created.seconds();
    let deadline = probe.deadline.seconds();
    let service = fleet.service_time.seconds();
    let anchor_dep = view.anchor_time.seconds();
    let cap = fleet.capacity + 1e-9;
    let mut num_feasible = 0;

    for i in 0..=n {
        // State at the insertion point, straight from the prefix arrays.
        let (prev_dep, load_before, prev_node) = if i > 0 {
            (
                cache.departure[i - 1],
                cache.load_after[i - 1],
                cache.node[i - 1],
            )
        } else {
            (anchor_dep, cache.initial_load, view.anchor_node)
        };
        let new_load = load_before + probe.quantity;
        if new_load > cap {
            // The pickup itself violates capacity: every `j` for this `i`
            // is infeasible — pruned before touching the distance matrix.
            continue;
        }
        // Pickup legs stay lazy: each is read exactly once per position
        // (see the module docs), identical to the scalar reference calls.
        let d_to_p = net.distance(prev_node, order.pickup);
        let arr_p = prev_dep + fleet.travel_time(d_to_p).seconds();
        // `arr_p.max(probe.created) + service_time`, unwrapped.
        let dep_p = (if arr_p >= created { arr_p } else { created }) + service;

        // Candidate (i, i): the delivery immediately follows the pickup.
        // Feasible iff NOT(arrival > deadline), the naive reject condition;
        // times are finite (TimePoint asserts it), so `<=` is equivalent.
        let arr_d = dep_p + tt_pd;
        if arr_d <= deadline {
            let d_from_d = if i == n {
                d_d_depot
            } else {
                net.distance(order.delivery, cache.node[i])
            };
            let suffix_ok = i == n || {
                let dep_d = arr_d + service;
                let arr_next = dep_d + fleet.travel_time(d_from_d).seconds();
                (arr_next - cache.arrival[i]) <= cache.slack[i]
            };
            if suffix_ok {
                let delta = d_to_p + d_pd + d_from_d - cache.leg_dist[i];
                num_feasible += 1;
                on_feasible(ScoredInsertion {
                    pickup_pos: i,
                    delivery_pos: i,
                    length: cache.base_length + delta,
                });
            }
        }
        if i == n {
            continue;
        }

        // Candidates (i, j > i): walk the segment once, advancing the
        // exact running state (time, load, LIFO depth) one stop per `j`.
        let d_from_p = net.distance(order.pickup, cache.node[i]);
        let tt_from_p = fleet.travel_time(d_from_p).seconds();
        let delta_pickup = d_to_p + d_from_p - cache.leg_dist[i];
        let mut cur_dep = dep_p;
        let mut load = new_load;
        // Number of base cargo items stacked on top of the new order's
        // cargo: the delivery can only be placed while this is zero.
        let mut depth: usize = 0;
        for j in (i + 1)..=n {
            // Advance through base stop j-1 under the injected detour. The
            // leg into it leaves the pickup on the first step and then
            // follows the cached base legs (`leg_tt[j-1]` is exactly
            // `travel_time(d(stops[j-2], stops[j-1]))`).
            let p = j - 1;
            let leg_tt = if j == i + 1 { tt_from_p } else { cache.leg_tt[p] };
            let arr = cur_dep + leg_tt;
            let service_start = if cache.is_pickup[p] {
                let segment_load = load + cache.quantity[p];
                if segment_load > cap {
                    // This stop's pickup overloads for every j beyond it.
                    break;
                }
                load = segment_load;
                depth += 1;
                // `arr.max(created[p])`, unwrapped.
                if arr >= cache.created[p] {
                    arr
                } else {
                    cache.created[p]
                }
            } else {
                if arr > cache.deadline[p] {
                    // The detour makes this delivery late for every j
                    // beyond it.
                    break;
                }
                if depth == 0 {
                    // LIFO prune: the base delivery would pop the new
                    // order's cargo — provably infeasible for every j
                    // beyond this stop.
                    break;
                }
                depth -= 1;
                load -= cache.quantity[p];
                arr
            };
            cur_dep = service_start + service;

            if depth != 0 {
                // A base item sits on top of the new cargo: delivering
                // here would violate LIFO. Later j may still be feasible.
                continue;
            }
            // Candidate (i, j): insert the delivery after base stop j-1.
            let d_to_d = net.distance(cache.node[p], order.delivery);
            let arr_d = cur_dep + fleet.travel_time(d_to_d).seconds();
            if arr_d > deadline {
                continue;
            }
            let d_from_d = if j == n {
                d_d_depot
            } else {
                net.distance(order.delivery, cache.node[j])
            };
            let suffix_ok = j == n || {
                let dep_d = arr_d + service;
                let arr_next = dep_d + fleet.travel_time(d_from_d).seconds();
                (arr_next - cache.arrival[j]) <= cache.slack[j]
            };
            if suffix_ok {
                let delta_delivery = d_to_d + d_from_d - cache.leg_dist[j];
                num_feasible += 1;
                on_feasible(ScoredInsertion {
                    pickup_pos: i,
                    delivery_pos: j,
                    length: cache.base_length + (delta_pickup + delta_delivery),
                });
            }
        }
    }
    num_feasible
}

/// The candidate's route length computed as the exact naive fold: the leg
/// distances of `anchor -> stops[..i] -> pickup -> stops[i..j] -> delivery
/// -> stops[j..] -> depot` accumulated left to right, which is
/// operation-for-operation the sum [`crate::simulate_schedule`] builds —
/// bit-identical to the naive candidate's `total_length`. The prefix
/// through `stops[..i]` is read from the cache's cumulative-length array
/// (itself accumulated in the identical order), so the fold is O(n − i);
/// used only to resolve ranking near-ties.
fn exact_candidate_length(
    cache: &ScheduleCache,
    view: &VehicleView,
    pickup: NodeId,
    delivery: NodeId,
    net: &RoadNetwork,
    i: usize,
    j: usize,
) -> f64 {
    let stops = view.route.stops();
    let (mut prev, mut total) = if i > 0 {
        (cache.node[i - 1], cache.cum_len[i - 1])
    } else {
        (view.anchor_node, 0.0)
    };
    let leg = |next: NodeId, total: &mut f64, prev: &mut NodeId| {
        *total += net.distance(*prev, next);
        *prev = next;
    };
    leg(pickup, &mut total, &mut prev);
    for s in &stops[i..j] {
        leg(s.node, &mut total, &mut prev);
    }
    leg(delivery, &mut total, &mut prev);
    for s in &stops[j..] {
        leg(s.node, &mut total, &mut prev);
    }
    leg(view.depot, &mut total, &mut prev);
    total
}

/// Runs [`sweep_insertions`] and keeps the shortest feasible candidate,
/// selecting **exactly** the winner the naive `min_by(total_cmp)` over the
/// full enumeration picks (first-wins on ties in enumeration order).
///
/// Ranking is two-tier: candidates whose detour-delta scores differ by more
/// than a 1e-9 relative band — orders of magnitude above any f64 summation
/// error, so delta order provably equals exact-length order there — are
/// compared on the O(1) scores; candidates inside the band (genuine ties,
/// e.g. zero-detour insertions at coincident nodes, whose delta roundings
/// can disagree by an ulp) are re-ranked on lazily computed
/// exact naive-order length folds, which are bit-identical to the naive
/// lengths. The streaming strict-less comparison then reproduces the naive
/// argmin decision for every pair.
pub fn sweep_best(
    cache: &ScheduleCache,
    view: &VehicleView,
    order: &Order,
    net: &RoadNetwork,
    fleet: &FleetConfig,
    orders: &[Order],
) -> InsertionSweep {
    let n = view.route.len();
    // Running winner plus its lazily materialized exact length.
    let mut best: Option<(ScoredInsertion, Option<f64>)> = None;
    let num_feasible = sweep_insertions(cache, view, order, net, fleet, orders, |cand| {
        let Some((winner, winner_exact)) = &mut best else {
            best = Some((cand, None));
            return;
        };
        let eps = 1e-9 * winner.length.abs().max(1.0);
        let (replace, cand_exact) = if cand.length < winner.length - eps {
            (true, None)
        } else if cand.length > winner.length + eps {
            (false, None)
        } else {
            // Near tie (or non-finite scores): decide exactly as the naive
            // reference would, on bit-identical lengths under total_cmp
            // with first-wins (strict less replaces).
            let we = *winner_exact.get_or_insert_with(|| {
                exact_candidate_length(
                    cache,
                    view,
                    order.pickup,
                    order.delivery,
                    net,
                    winner.pickup_pos,
                    winner.delivery_pos,
                )
            });
            let ce = exact_candidate_length(
                cache,
                view,
                order.pickup,
                order.delivery,
                net,
                cand.pickup_pos,
                cand.delivery_pos,
            );
            (ce.total_cmp(&we) == std::cmp::Ordering::Less, Some(ce))
        };
        if replace {
            best = Some((cand, cand_exact));
        }
    });
    InsertionSweep {
        best: best.map(|(cand, _)| cand),
        num_feasible,
        num_enumerated: (n + 1) * (n + 2) / 2,
    }
}

/// The incremental engine behind [`crate::best_insertion`]: finds the
/// shortest feasible insertion from the cached passes and materializes only
/// the winner (one [`crate::Route`] + one [`crate::simulate_schedule`]
/// call).
///
/// An infeasible `cache`, a probe order whose id already appears in the
/// route or on board (the LIFO depth pruning assumes distinct ids; Algorithm
/// 2 never re-inserts a routed order), or the (never observed) event of the
/// oracle rejecting the sweep's winner all fall back to the naive reference
/// [`best_insertion_naive`], so the result is always oracle-validated.
pub fn best_insertion_cached(
    cache: &ScheduleCache,
    view: &VehicleView,
    order: &Order,
    net: &RoadNetwork,
    fleet: &FleetConfig,
    orders: &[Order],
) -> Option<BestInsertion> {
    let duplicate = view
        .route
        .stops()
        .iter()
        .any(|s| s.action.order() == order.id)
        || view.onboard.iter().any(|&(id, _)| id == order.id);
    if !cache.feasible || duplicate {
        return best_insertion_naive(view, order, net, fleet, orders);
    }
    let sweep = sweep_best(cache, view, order, net, fleet, orders);
    let scored = sweep.best?;
    let pickup = Stop::pickup(order.pickup, order.id);
    let delivery = Stop::delivery(order.delivery, order.id);
    let route = view
        .route
        .with_insertion(pickup, scored.pickup_pos, delivery, scored.delivery_pos);
    match simulate_schedule(view, &route, net, fleet, orders) {
        Ok(schedule) => Some(BestInsertion {
            candidate: InsertionCandidate {
                pickup_pos: scored.pickup_pos,
                delivery_pos: scored.delivery_pos,
                route,
                schedule,
            },
            num_feasible: sweep.num_feasible,
            num_enumerated: sweep.num_enumerated,
        }),
        // The oracle disagrees with the sweep (only reachable on
        // pathological float-boundary instances): defer to the reference
        // implementation wholesale.
        Err(_) => best_insertion_naive(view, order, net, fleet, orders),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insertion::enumerate_insertions;
    use crate::route::Route;
    use dpdp_net::{Node, Point, TimeDelta, TimePoint, VehicleId};

    fn setup() -> (RoadNetwork, FleetConfig) {
        let nodes = vec![
            Node::depot(NodeId(0), Point::new(0.0, 0.0)),
            Node::factory(NodeId(1), Point::new(10.0, 0.0)),
            Node::factory(NodeId(2), Point::new(20.0, 0.0)),
            Node::factory(NodeId(3), Point::new(30.0, 0.0)),
        ];
        let net = RoadNetwork::euclidean(nodes, 1.0).unwrap();
        let fleet = FleetConfig::homogeneous(
            1,
            &[NodeId(0)],
            10.0,
            500.0,
            2.0,
            60.0,
            TimeDelta::from_minutes(5.0),
        )
        .unwrap();
        (net, fleet)
    }

    fn order(id: u32, p: u32, d: u32, q: f64, created_h: f64, deadline_h: f64) -> Order {
        Order::new(
            OrderId(id),
            NodeId(p),
            NodeId(d),
            q,
            TimePoint::from_hours(created_h),
            TimePoint::from_hours(deadline_h),
        )
        .unwrap()
    }

    fn loaded_view(orders: &[Order], net: &RoadNetwork, fleet: &FleetConfig) -> VehicleView {
        let mut view = VehicleView::idle_at_depot(VehicleId(0), NodeId(0));
        for o in &orders[..orders.len() - 1] {
            if let Some(best) = best_insertion_naive(&view, o, net, fleet, orders) {
                view.route = best.candidate.route;
                view.used = true;
            }
        }
        view
    }

    /// The sweep agrees with full enumeration on the feasibility set and
    /// the candidate lengths on a multi-order route.
    #[test]
    fn sweep_matches_enumeration() {
        let (net, fleet) = setup();
        let orders = vec![
            order(0, 1, 3, 3.0, 0.0, 10.0),
            order(1, 2, 3, 3.0, 0.5, 10.0),
            order(2, 3, 1, 2.0, 1.0, 12.0),
            order(3, 1, 2, 4.0, 1.5, 12.0),
        ];
        let view = loaded_view(&orders, &net, &fleet);
        assert!(view.route.len() >= 4, "route: {:?}", view.route.stops());
        let probe = orders.last().unwrap();
        let naive = enumerate_insertions(&view, probe, &net, &fleet, &orders);
        let cache = ScheduleCache::build(&view, &net, &fleet, &orders);
        assert!(cache.is_feasible());
        let mut swept = Vec::new();
        sweep_insertions(&cache, &view, probe, &net, &fleet, &orders, |c| {
            swept.push(c)
        });
        assert_eq!(swept.len(), naive.len(), "feasibility sets differ");
        for (s, c) in swept.iter().zip(&naive) {
            assert_eq!(
                (s.pickup_pos, s.delivery_pos),
                (c.pickup_pos, c.delivery_pos)
            );
            assert!(
                (s.length - c.length()).abs() < 1e-9,
                "length mismatch at ({}, {}): {} vs {}",
                s.pickup_pos,
                s.delivery_pos,
                s.length,
                c.length()
            );
        }
    }

    /// In-service vehicle with a non-empty onboard stack: the LIFO pruning
    /// must agree with the oracle.
    #[test]
    fn sweep_respects_onboard_stack() {
        let (net, fleet) = setup();
        let orders = vec![
            order(0, 1, 3, 4.0, 0.0, 10.0),
            order(1, 2, 3, 4.0, 0.0, 10.0),
        ];
        let mut view = VehicleView::idle_at_depot(VehicleId(0), NodeId(0));
        view.anchor_node = NodeId(2);
        view.anchor_time = TimePoint::from_hours(1.0);
        view.onboard = vec![(OrderId(0), 4.0)];
        view.route = Route::from_stops(vec![Stop::delivery(NodeId(3), OrderId(0))]);
        let probe = &orders[1];
        let naive = enumerate_insertions(&view, probe, &net, &fleet, &orders);
        let cache = ScheduleCache::build(&view, &net, &fleet, &orders);
        assert!(cache.is_feasible());
        let mut swept = Vec::new();
        sweep_insertions(&cache, &view, probe, &net, &fleet, &orders, |c| {
            swept.push(c)
        });
        assert_eq!(swept.len(), naive.len());
        for (s, c) in swept.iter().zip(&naive) {
            assert_eq!(
                (s.pickup_pos, s.delivery_pos),
                (c.pickup_pos, c.delivery_pos)
            );
        }
    }

    /// Base-route infeasibility (here: a stop referencing an unknown order)
    /// marks the cache infeasible and the cached entry point falls back to
    /// the naive reference.
    #[test]
    fn infeasible_base_falls_back_to_naive() {
        let (net, fleet) = setup();
        let orders = vec![order(0, 1, 2, 5.0, 0.0, 10.0)];
        let mut view = VehicleView::idle_at_depot(VehicleId(0), NodeId(0));
        view.route = Route::from_stops(vec![Stop::pickup(NodeId(1), OrderId(7))]);
        let cache = ScheduleCache::build(&view, &net, &fleet, &orders);
        assert!(!cache.is_feasible());
        let incremental = best_insertion_cached(&cache, &view, &orders[0], &net, &fleet, &orders);
        let naive = best_insertion_naive(&view, &orders[0], &net, &fleet, &orders);
        assert_eq!(incremental, naive);
    }

    /// A probe order missing from the dense table is rejected everywhere,
    /// exactly like the naive per-candidate `UnknownOrder` violation.
    #[test]
    fn unknown_probe_order_has_no_candidates() {
        let (net, fleet) = setup();
        let orders = vec![order(0, 1, 2, 5.0, 0.0, 10.0)];
        let ghost = order(9, 1, 2, 1.0, 0.0, 10.0);
        let view = VehicleView::idle_at_depot(VehicleId(0), NodeId(0));
        let cache = ScheduleCache::build(&view, &net, &fleet, &orders);
        let sweep = sweep_best(&cache, &view, &ghost, &net, &fleet, &orders);
        assert_eq!(sweep.num_feasible, 0);
        assert!(sweep.best.is_none());
        assert!(enumerate_insertions(&view, &ghost, &net, &fleet, &orders).is_empty());
    }

    /// The slack table encodes wait absorption: a pickup that waits for its
    /// order's creation absorbs injected delay.
    #[test]
    fn slack_absorbs_waiting_time() {
        let (net, fleet) = setup();
        // Order 0 is created at 2 h; the vehicle arrives at its pickup long
        // before that and waits, so upstream slack exceeds the raw deadline
        // margin by the wait.
        let orders = vec![
            order(0, 2, 3, 2.0, 2.0, 3.0),
            order(1, 1, 2, 2.0, 0.0, 24.0),
        ];
        let mut view = VehicleView::idle_at_depot(VehicleId(0), NodeId(0));
        view.route = Route::from_stops(vec![
            Stop::pickup(NodeId(2), OrderId(0)),
            Stop::delivery(NodeId(3), OrderId(0)),
        ]);
        let cache = ScheduleCache::build(&view, &net, &fleet, &orders);
        assert!(cache.is_feasible());
        // Delivery slack: deadline 3 h, arrival 2 h + 5 min service +
        // 10 min drive = 2:15 -> 45 min of raw slack.
        let delivery_slack = cache.slack(1);
        assert!((delivery_slack - 2700.0).abs() < 1e-6);
        // Pickup slack: the same 45 min plus the wait from 20 min (drive)
        // to 2 h = 100 min of absorption.
        let pickup_slack = cache.slack(0);
        assert!((pickup_slack - (2700.0 + 6000.0)).abs() < 1e-6);
        // And the evaluator exploits it: inserting order 1 entirely before
        // the waiting pickup is free time-wise.
        let best = best_insertion_cached(&cache, &view, &orders[1], &net, &fleet, &orders)
            .expect("feasible");
        assert_eq!(
            (best.candidate.pickup_pos, best.candidate.delivery_pos),
            (0, 0)
        );
    }

    /// `rebuild` into a dirty cache (previously holding a different, longer
    /// route) is bit-identical to a fresh `build`.
    #[test]
    fn rebuild_reuses_allocations_bit_identically() {
        let (net, fleet) = setup();
        let orders = vec![
            order(0, 1, 3, 3.0, 0.0, 10.0),
            order(1, 2, 3, 3.0, 0.5, 10.0),
            order(2, 3, 1, 2.0, 1.0, 12.0),
            order(3, 1, 2, 4.0, 1.5, 12.0),
        ];
        let long_view = loaded_view(&orders, &net, &fleet);
        assert!(long_view.route.len() >= 4);
        let mut short_view = VehicleView::idle_at_depot(VehicleId(0), NodeId(0));
        short_view.route = Route::from_stops(vec![
            Stop::pickup(NodeId(2), OrderId(1)),
            Stop::delivery(NodeId(3), OrderId(1)),
        ]);

        // Dirty the cache with the long route, then rebuild on the short.
        let mut dirty = ScheduleCache::build(&long_view, &net, &fleet, &orders);
        assert!(dirty.is_feasible());
        dirty.rebuild(&short_view, &net, &fleet, &orders);
        let fresh = ScheduleCache::build(&short_view, &net, &fleet, &orders);
        assert_eq!(dirty.is_feasible(), fresh.is_feasible());
        assert_eq!(dirty.len(), fresh.len());
        assert_eq!(
            dirty.base_length().to_bits(),
            fresh.base_length().to_bits()
        );
        for p in 0..fresh.len() {
            assert_eq!(dirty.slack(p).to_bits(), fresh.slack(p).to_bits());
            assert_eq!(dirty.arrival[p].to_bits(), fresh.arrival[p].to_bits());
            assert_eq!(dirty.departure[p].to_bits(), fresh.departure[p].to_bits());
            assert_eq!(dirty.cum_len[p].to_bits(), fresh.cum_len[p].to_bits());
        }
        // And the sweep over the rebuilt cache matches the fresh one.
        let probe = orders.last().unwrap();
        let a = sweep_best(&dirty, &short_view, probe, &net, &fleet, &orders);
        let b = sweep_best(&fresh, &short_view, probe, &net, &fleet, &orders);
        assert_eq!(a, b);
    }
}
