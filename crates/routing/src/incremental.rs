//! Incremental O(n²) insertion evaluation: prefix/suffix schedule caching.
//!
//! The naive Algorithm 2 sweep ([`crate::enumerate_insertions`]) clones the
//! route and re-simulates it from scratch for every one of the
//! `(n+1)(n+2)/2` pickup/delivery position pairs — O(n) work and two heap
//! allocations per candidate, O(n³) per `(order, vehicle)` pair. This module
//! removes the per-candidate re-simulation:
//!
//! 1. **Forward pass** ([`ScheduleCache::build`], once per view): walks the
//!    base route exactly like [`crate::simulate_schedule`], recording per
//!    stop the arrival/departure times, the load after the stop, the wait
//!    absorbed at the stop and the cumulative route length. O(n).
//! 2. **Backward pass** (same call): per-position *deadline slack* — the
//!    largest delay that can be injected into the arrival at position `p`
//!    without violating any downstream delivery deadline. Waits at pickups
//!    absorb delay, so the recurrence is `slack[p] = slack[p+1] + wait_p`
//!    for pickups and `slack[p] = min(deadline_p - arrival_p, slack[p+1])`
//!    for deliveries (`slack[n] = ∞`: the depot return is unconstrained).
//!    O(n).
//! 3. **Sweep** ([`sweep_insertions`]): for each pickup position `i` the
//!    evaluator re-walks the route *once*, pushing the pickup's detour delay
//!    and extra load through stops `i..j`, so extending the delivery
//!    position `j` by one costs O(1): the delivery candidate is checked
//!    against the new order's own deadline, and everything *after* `j` is
//!    checked with a single comparison against the cached `slack[j]`.
//!    Position pairs that provably violate the LIFO stack discipline are
//!    pruned without evaluation: a base delivery reached while the new
//!    cargo is on top of the stack kills every later `j` for that `i`.
//!
//! Total: O(n²) per `(order, vehicle)` pair with O(n) allocations — down
//! from O(n³) with O(n²) allocations — and the cache is reusable across
//! every order of a decision epoch (see `dpdp_sim::DecisionBatch`).
//!
//! # Determinism and parity with the naive enumerator
//!
//! The sweep is *bit-deterministic* (pure f64 arithmetic in a fixed order,
//! independent of thread count) and is kept in lockstep with the naive
//! reference path:
//!
//! * the prefix quantities (arrivals, departures, loads, cumulative length)
//!   are accumulated in exactly the order [`crate::simulate_schedule`] uses,
//!   so they are bit-identical to the naive walk;
//! * in-segment checks (capacity with the extra load, deadlines under the
//!   pickup detour delay, LIFO depth) re-walk the touched stops with the
//!   same operations the simulator performs, so they are bit-identical too.
//!   The one step that is mathematically equivalent but *not* bitwise
//!   equal to re-simulation is the suffix check: a single
//!   `delay <= slack[j]` comparison stands in for re-deriving every
//!   downstream arrival, so on a knife-edge instance where a downstream
//!   arrival lands within an ulp of its deadline (or a downstream load
//!   within an ulp of the capacity fuzz) the two paths can classify that
//!   candidate differently. A wrongful *accept* can only surface through
//!   the winner and is caught by the oracle fallback below; a wrongful
//!   *reject* is the one theoretical gap in the feasibility-set parity —
//!   never observed across the randomized suites, and impossible on
//!   instances whose arrivals do not graze deadlines at ulp precision;
//! * candidates are ranked by the classic detour delta
//!   `d(a,p) + d(p,b) − d(a,b)`; near-ties within a 1e-9 relative band —
//!   far above any f64 summation error, so outside the band delta order
//!   provably equals length order — are re-ranked on lazily computed exact
//!   length folds that are bit-identical to the naive candidate lengths,
//!   with first-wins tie-breaking in enumeration order. The selected
//!   winner is therefore **exactly** the one the naive
//!   `min_by(total_cmp)` picks, degenerate zero-detour ties included;
//! * only the winner materializes a [`crate::Route`] and
//!   [`crate::Schedule`], through one final [`crate::simulate_schedule`]
//!   call — the simulator stays the authoritative oracle, and the winning
//!   length is bit-identical to the naive path's by construction. In the
//!   (never observed) event the oracle rejects the sweep's winner,
//!   [`best_insertion_cached`] falls back to the naive reference wholesale.
//!
//! The randomized parity suite (`tests/incremental_parity.rs`) asserts
//! agreement on feasibility sets, winning positions and lengths across
//! hundreds of random routes, including in-service vehicles with non-empty
//! onboard stacks.

use crate::insertion::{best_insertion_naive, BestInsertion, InsertionCandidate};
use crate::schedule::simulate_schedule;
use crate::stop::{Stop, StopAction};
use crate::view::VehicleView;
use dpdp_net::{FleetConfig, NodeId, Order, OrderId, RoadNetwork, TimePoint};

/// Per-stop data recorded by the forward and backward passes.
#[derive(Debug, Clone, Copy)]
struct CachedStop {
    /// The stop's node.
    node: NodeId,
    /// Whether the stop is a pickup (false: delivery).
    is_pickup: bool,
    /// Quantity moved at the stop (the order's quantity).
    quantity: f64,
    /// The order's creation time (pickups wait for it).
    created: TimePoint,
    /// The order's delivery deadline (checked at deliveries).
    deadline: TimePoint,
    /// Arrival time at the stop in the base schedule.
    arrival: TimePoint,
    /// Departure time from the stop in the base schedule.
    departure: TimePoint,
    /// Load on board after the stop's action.
    load_after: f64,
    /// Backward-pass deadline slack: the maximum delay (seconds) injectable
    /// into the arrival at this stop without violating any delivery
    /// deadline from this stop onward.
    slack: f64,
}

/// Cached forward/backward passes over a vehicle's base route.
///
/// Built once per [`VehicleView`] (O(n)); every insertion sweep for that
/// view — one per order in a decision epoch — then runs in O(n²) without
/// touching [`crate::simulate_schedule`] except to materialize the winner.
///
/// The cache is plain data (`Send + Sync`), so one instance can be shared
/// across the scoring threads of a parallel epoch sweep.
#[derive(Debug, Clone)]
pub struct ScheduleCache {
    stops: Vec<CachedStop>,
    /// Whether the base route itself simulates feasibly. When false the
    /// cached passes are meaningless and callers must fall back to the
    /// naive reference path.
    feasible: bool,
    /// Total base route length (anchor through all stops, home to depot),
    /// bit-identical to [`crate::Route::length`].
    base_length: f64,
    /// Load on board at the anchor (sum of the onboard stack).
    initial_load: f64,
}

impl ScheduleCache {
    /// Runs the forward and backward passes over `view`'s base route.
    ///
    /// Mirrors [`crate::simulate_schedule`] operation for operation, so the
    /// cached prefix quantities are bit-identical to the naive walk. A base
    /// route that does not simulate feasibly (which committed routes never
    /// are) yields a cache with [`ScheduleCache::is_feasible`] `== false`.
    pub fn build(
        view: &VehicleView,
        net: &RoadNetwork,
        fleet: &FleetConfig,
        orders: &[Order],
    ) -> ScheduleCache {
        let initial_load: f64 = view.onboard.iter().map(|(_, q)| q).sum();
        let n = view.route.len();
        let mut cache = ScheduleCache {
            stops: Vec::with_capacity(n),
            feasible: false,
            base_length: 0.0,
            initial_load,
        };

        // Forward pass: the exact walk of `simulate_schedule`.
        let mut node = view.anchor_node;
        let mut time = view.anchor_time;
        let mut stack: Vec<(OrderId, f64)> = view.onboard.clone();
        let mut load = initial_load;
        let mut total_length = 0.0;
        for &stop in view.route.stops() {
            let leg = net.distance(node, stop.node);
            total_length += leg;
            time += fleet.travel_time(leg);
            node = stop.node;
            let arrival = time;
            let Some(order) = lookup(orders, stop.action.order()) else {
                return cache; // UnknownOrder: base infeasible.
            };
            let (service_start, is_pickup) = match stop.action {
                StopAction::Pickup(id) => {
                    let start = arrival.max(order.created);
                    let new_load = load + order.quantity;
                    if new_load > fleet.capacity + 1e-9 {
                        return cache; // Capacity: base infeasible.
                    }
                    stack.push((id, order.quantity));
                    load = new_load;
                    (start, true)
                }
                StopAction::Delivery(id) => {
                    if arrival > order.deadline {
                        return cache; // TimeWindow: base infeasible.
                    }
                    match stack.last() {
                        Some(&(top, qty)) if top == id => {
                            stack.pop();
                            load -= qty;
                        }
                        _ => return cache, // LIFO: base infeasible.
                    }
                    (arrival, false)
                }
            };
            time = service_start + fleet.service_time;
            cache.stops.push(CachedStop {
                node,
                is_pickup,
                quantity: order.quantity,
                created: order.created,
                deadline: order.deadline,
                arrival,
                departure: time,
                load_after: load,
                slack: f64::INFINITY,
            });
        }
        if !stack.is_empty() {
            return cache; // IncompleteRoute: base infeasible.
        }
        total_length += net.distance(node, view.depot);
        cache.base_length = total_length;

        // Backward pass: deadline slack per position. Waits at pickups
        // absorb injected delay, deliveries cap it by their own deadline.
        let mut slack = f64::INFINITY;
        for s in cache.stops.iter_mut().rev() {
            if s.is_pickup {
                let wait = (s.departure - fleet.service_time - s.arrival).seconds();
                slack += wait; // ∞ + wait = ∞
            } else {
                slack = slack.min((s.deadline - s.arrival).seconds());
            }
            s.slack = slack;
        }

        cache.feasible = true;
        cache
    }

    /// Whether the base route simulates feasibly. When false every cached
    /// quantity is meaningless and insertion evaluation must go through the
    /// naive reference path (see [`best_insertion_cached`]).
    #[inline]
    pub fn is_feasible(&self) -> bool {
        self.feasible
    }

    /// Total base route length `d_{t,k}` (km, anchor through all stops and
    /// home to the depot), bit-identical to [`crate::Route::length`]. Only
    /// meaningful when [`ScheduleCache::is_feasible`] holds.
    #[inline]
    pub fn base_length(&self) -> f64 {
        self.base_length
    }

    /// Number of stops of the cached base route.
    #[inline]
    pub fn len(&self) -> usize {
        self.stops.len()
    }

    /// Whether the cached base route has no stops.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.stops.is_empty()
    }
}

/// One feasible insertion position pair found by [`sweep_insertions`],
/// scored without materializing the route.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredInsertion {
    /// Index (in the base stop list) where the pickup is inserted.
    pub pickup_pos: usize,
    /// Index (in the base stop list) before which the delivery is inserted;
    /// `>= pickup_pos`.
    pub delivery_pos: usize,
    /// Resulting route length: base length plus the detour delta
    /// `d(a,p) + d(p,b) − d(a,b)`. Mathematically equal to the simulated
    /// candidate length; may differ from it by floating-point rounding, so
    /// the winner's authoritative length comes from the final
    /// [`crate::simulate_schedule`] call.
    pub length: f64,
}

/// Outcome of an incremental insertion sweep (see [`sweep_best`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InsertionSweep {
    /// The shortest feasible insertion under [`f64::total_cmp`] with
    /// first-wins tie-breaking in enumeration order, if any.
    pub best: Option<ScoredInsertion>,
    /// Number of feasible position pairs.
    pub num_feasible: usize,
    /// Number of enumerated position pairs, `(n+1)(n+2)/2`.
    pub num_enumerated: usize,
}

/// Looks up an order in a dense-by-id order slice (the exact check
/// `simulate_schedule` performs; a miss makes every candidate infeasible).
fn lookup(orders: &[Order], id: OrderId) -> Option<&Order> {
    orders.get(id.index()).filter(|o| o.id == id)
}

/// Evaluates every pickup/delivery position pair of `order` in `view`'s
/// base route from the cached passes, calling `on_feasible` for each
/// feasible pair in enumeration order (pickup position outer, delivery
/// position inner) and returning the number of feasible pairs.
///
/// This is the allocation-free O(n²) core of the incremental evaluator;
/// [`sweep_best`] layers argmin selection on top and
/// [`best_insertion_cached`] materializes the winner.
///
/// `cache` must have been built from the same `view` (and the same
/// network/fleet/orders) and be feasible; see
/// [`ScheduleCache::is_feasible`].
///
/// # Panics
/// May panic (index out of range) if `cache` was built from a different
/// route than `view`'s.
pub fn sweep_insertions(
    cache: &ScheduleCache,
    view: &VehicleView,
    order: &Order,
    net: &RoadNetwork,
    fleet: &FleetConfig,
    orders: &[Order],
    mut on_feasible: impl FnMut(ScoredInsertion),
) -> usize {
    debug_assert!(cache.feasible, "sweep over an infeasible base route");
    debug_assert_eq!(cache.len(), view.route.len(), "cache/view mismatch");
    // The naive walk resolves every stop through the dense order table, the
    // inserted pair included: replicate the lookup (node positions come
    // from the argument, quantities and times from the table) and reject
    // everything on a miss, exactly like the per-candidate `UnknownOrder`.
    let Some(probe) = lookup(orders, order.id) else {
        return 0;
    };
    let pickup_node = order.pickup;
    let delivery_node = order.delivery;
    let n = cache.stops.len();
    let cap = fleet.capacity + 1e-9;
    let mut num_feasible = 0;

    for i in 0..=n {
        // State at the insertion point, straight from the prefix cache.
        let (prev_node, prev_dep, load_before) = if i > 0 {
            let s = &cache.stops[i - 1];
            (s.node, s.departure, s.load_after)
        } else {
            (view.anchor_node, view.anchor_time, cache.initial_load)
        };
        let new_load = load_before + probe.quantity;
        if new_load > cap {
            // The pickup itself violates capacity: every `j` for this `i`
            // is infeasible.
            continue;
        }
        let arr_p = prev_dep + fleet.travel_time(net.distance(prev_node, pickup_node));
        let dep_p = arr_p.max(probe.created) + fleet.service_time;
        let next_i = if i < n {
            cache.stops[i].node
        } else {
            view.depot
        };

        // Candidate (i, i): the delivery immediately follows the pickup.
        // Feasible iff NOT(arrival > deadline), the naive reject condition;
        // times are finite (TimePoint asserts it), so `<=` is equivalent.
        let arr_d = dep_p + fleet.travel_time(net.distance(pickup_node, delivery_node));
        if arr_d <= probe.deadline {
            let suffix_ok = i == n || {
                let dep_d = arr_d + fleet.service_time;
                let arr_next = dep_d + fleet.travel_time(net.distance(delivery_node, next_i));
                (arr_next - cache.stops[i].arrival).seconds() <= cache.stops[i].slack
            };
            if suffix_ok {
                let delta = net.distance(prev_node, pickup_node)
                    + net.distance(pickup_node, delivery_node)
                    + net.distance(delivery_node, next_i)
                    - net.distance(prev_node, next_i);
                num_feasible += 1;
                on_feasible(ScoredInsertion {
                    pickup_pos: i,
                    delivery_pos: i,
                    length: cache.base_length + delta,
                });
            }
        }
        if i == n {
            continue;
        }

        // Candidates (i, j > i): walk the segment once, advancing the
        // exact running state (time, load, LIFO depth) one stop per `j`.
        let delta_pickup = net.distance(prev_node, pickup_node) + net.distance(pickup_node, next_i)
            - net.distance(prev_node, next_i);
        let mut cur_node = pickup_node;
        let mut cur_dep = dep_p;
        let mut load = new_load;
        // Number of base cargo items stacked on top of the new order's
        // cargo: the delivery can only be placed while this is zero.
        let mut depth: usize = 0;
        for j in (i + 1)..=n {
            // Advance through base stop j-1 under the injected detour.
            let s = &cache.stops[j - 1];
            let arr = cur_dep + fleet.travel_time(net.distance(cur_node, s.node));
            let service_start = if s.is_pickup {
                let segment_load = load + s.quantity;
                if segment_load > cap {
                    // This stop's pickup overloads for every j beyond it.
                    break;
                }
                load = segment_load;
                depth += 1;
                arr.max(s.created)
            } else {
                if arr > s.deadline {
                    // The detour makes this delivery late for every j
                    // beyond it.
                    break;
                }
                if depth == 0 {
                    // LIFO prune: the base delivery would pop the new
                    // order's cargo — provably infeasible for every j
                    // beyond this stop.
                    break;
                }
                depth -= 1;
                load -= s.quantity;
                arr
            };
            cur_dep = service_start + fleet.service_time;
            cur_node = s.node;

            if depth != 0 {
                // A base item sits on top of the new cargo: delivering
                // here would violate LIFO. Later j may still be feasible.
                continue;
            }
            // Candidate (i, j): insert the delivery after base stop j-1.
            let arr_d = cur_dep + fleet.travel_time(net.distance(cur_node, delivery_node));
            if arr_d > probe.deadline {
                continue;
            }
            let next_j = if j < n {
                cache.stops[j].node
            } else {
                view.depot
            };
            let suffix_ok = j == n || {
                let dep_d = arr_d + fleet.service_time;
                let arr_next = dep_d + fleet.travel_time(net.distance(delivery_node, next_j));
                (arr_next - cache.stops[j].arrival).seconds() <= cache.stops[j].slack
            };
            if suffix_ok {
                let delta_delivery = net.distance(cur_node, delivery_node)
                    + net.distance(delivery_node, next_j)
                    - net.distance(cur_node, next_j);
                num_feasible += 1;
                on_feasible(ScoredInsertion {
                    pickup_pos: i,
                    delivery_pos: j,
                    length: cache.base_length + (delta_pickup + delta_delivery),
                });
            }
        }
    }
    num_feasible
}

/// The candidate's route length computed as the exact naive fold: the leg
/// distances of `anchor -> stops[..i] -> pickup -> stops[i..j] -> delivery
/// -> stops[j..] -> depot` accumulated left to right, which is
/// operation-for-operation the sum [`crate::simulate_schedule`] builds —
/// bit-identical to the naive candidate's `total_length`. O(n); used only
/// to resolve ranking near-ties.
fn exact_candidate_length(
    view: &VehicleView,
    pickup: NodeId,
    delivery: NodeId,
    net: &RoadNetwork,
    i: usize,
    j: usize,
) -> f64 {
    let stops = view.route.stops();
    let mut prev = view.anchor_node;
    let mut total = 0.0;
    let leg = |next: NodeId, total: &mut f64, prev: &mut NodeId| {
        *total += net.distance(*prev, next);
        *prev = next;
    };
    for s in &stops[..i] {
        leg(s.node, &mut total, &mut prev);
    }
    leg(pickup, &mut total, &mut prev);
    for s in &stops[i..j] {
        leg(s.node, &mut total, &mut prev);
    }
    leg(delivery, &mut total, &mut prev);
    for s in &stops[j..] {
        leg(s.node, &mut total, &mut prev);
    }
    leg(view.depot, &mut total, &mut prev);
    total
}

/// Runs [`sweep_insertions`] and keeps the shortest feasible candidate,
/// selecting **exactly** the winner the naive `min_by(total_cmp)` over the
/// full enumeration picks (first-wins on ties in enumeration order).
///
/// Ranking is two-tier: candidates whose detour-delta scores differ by more
/// than a 1e-9 relative band — orders of magnitude above any f64 summation
/// error, so delta order provably equals exact-length order there — are
/// compared on the O(1) scores; candidates inside the band (genuine ties,
/// e.g. zero-detour insertions at coincident nodes, whose delta roundings
/// can disagree by an ulp) are re-ranked on lazily computed
/// exact naive-order length folds, which are bit-identical to the naive
/// lengths. The streaming strict-less comparison then reproduces the naive
/// argmin decision for every pair.
pub fn sweep_best(
    cache: &ScheduleCache,
    view: &VehicleView,
    order: &Order,
    net: &RoadNetwork,
    fleet: &FleetConfig,
    orders: &[Order],
) -> InsertionSweep {
    let n = view.route.len();
    // Running winner plus its lazily materialized exact length.
    let mut best: Option<(ScoredInsertion, Option<f64>)> = None;
    let num_feasible = sweep_insertions(cache, view, order, net, fleet, orders, |cand| {
        let Some((winner, winner_exact)) = &mut best else {
            best = Some((cand, None));
            return;
        };
        let eps = 1e-9 * winner.length.abs().max(1.0);
        let (replace, cand_exact) = if cand.length < winner.length - eps {
            (true, None)
        } else if cand.length > winner.length + eps {
            (false, None)
        } else {
            // Near tie (or non-finite scores): decide exactly as the naive
            // reference would, on bit-identical lengths under total_cmp
            // with first-wins (strict less replaces).
            let we = *winner_exact.get_or_insert_with(|| {
                exact_candidate_length(
                    view,
                    order.pickup,
                    order.delivery,
                    net,
                    winner.pickup_pos,
                    winner.delivery_pos,
                )
            });
            let ce = exact_candidate_length(
                view,
                order.pickup,
                order.delivery,
                net,
                cand.pickup_pos,
                cand.delivery_pos,
            );
            (ce.total_cmp(&we) == std::cmp::Ordering::Less, Some(ce))
        };
        if replace {
            best = Some((cand, cand_exact));
        }
    });
    InsertionSweep {
        best: best.map(|(cand, _)| cand),
        num_feasible,
        num_enumerated: (n + 1) * (n + 2) / 2,
    }
}

/// The incremental engine behind [`crate::best_insertion`]: finds the
/// shortest feasible insertion from the cached passes and materializes only
/// the winner (one [`crate::Route`] + one [`crate::simulate_schedule`]
/// call).
///
/// An infeasible `cache`, a probe order whose id already appears in the
/// route or on board (the LIFO depth pruning assumes distinct ids; Algorithm
/// 2 never re-inserts a routed order), or the (never observed) event of the
/// oracle rejecting the sweep's winner all fall back to the naive reference
/// [`best_insertion_naive`], so the result is always oracle-validated.
pub fn best_insertion_cached(
    cache: &ScheduleCache,
    view: &VehicleView,
    order: &Order,
    net: &RoadNetwork,
    fleet: &FleetConfig,
    orders: &[Order],
) -> Option<BestInsertion> {
    let duplicate = view
        .route
        .stops()
        .iter()
        .any(|s| s.action.order() == order.id)
        || view.onboard.iter().any(|&(id, _)| id == order.id);
    if !cache.feasible || duplicate {
        return best_insertion_naive(view, order, net, fleet, orders);
    }
    let sweep = sweep_best(cache, view, order, net, fleet, orders);
    let scored = sweep.best?;
    let pickup = Stop::pickup(order.pickup, order.id);
    let delivery = Stop::delivery(order.delivery, order.id);
    let route = view
        .route
        .with_insertion(pickup, scored.pickup_pos, delivery, scored.delivery_pos);
    match simulate_schedule(view, &route, net, fleet, orders) {
        Ok(schedule) => Some(BestInsertion {
            candidate: InsertionCandidate {
                pickup_pos: scored.pickup_pos,
                delivery_pos: scored.delivery_pos,
                route,
                schedule,
            },
            num_feasible: sweep.num_feasible,
            num_enumerated: sweep.num_enumerated,
        }),
        // The oracle disagrees with the sweep (only reachable on
        // pathological float-boundary instances): defer to the reference
        // implementation wholesale.
        Err(_) => best_insertion_naive(view, order, net, fleet, orders),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insertion::enumerate_insertions;
    use crate::route::Route;
    use dpdp_net::{Node, Point, TimeDelta, VehicleId};

    fn setup() -> (RoadNetwork, FleetConfig) {
        let nodes = vec![
            Node::depot(NodeId(0), Point::new(0.0, 0.0)),
            Node::factory(NodeId(1), Point::new(10.0, 0.0)),
            Node::factory(NodeId(2), Point::new(20.0, 0.0)),
            Node::factory(NodeId(3), Point::new(30.0, 0.0)),
        ];
        let net = RoadNetwork::euclidean(nodes, 1.0).unwrap();
        let fleet = FleetConfig::homogeneous(
            1,
            &[NodeId(0)],
            10.0,
            500.0,
            2.0,
            60.0,
            TimeDelta::from_minutes(5.0),
        )
        .unwrap();
        (net, fleet)
    }

    fn order(id: u32, p: u32, d: u32, q: f64, created_h: f64, deadline_h: f64) -> Order {
        Order::new(
            OrderId(id),
            NodeId(p),
            NodeId(d),
            q,
            TimePoint::from_hours(created_h),
            TimePoint::from_hours(deadline_h),
        )
        .unwrap()
    }

    fn loaded_view(orders: &[Order], net: &RoadNetwork, fleet: &FleetConfig) -> VehicleView {
        let mut view = VehicleView::idle_at_depot(VehicleId(0), NodeId(0));
        for o in &orders[..orders.len() - 1] {
            if let Some(best) = best_insertion_naive(&view, o, net, fleet, orders) {
                view.route = best.candidate.route;
                view.used = true;
            }
        }
        view
    }

    /// The sweep agrees with full enumeration on the feasibility set and
    /// the candidate lengths on a multi-order route.
    #[test]
    fn sweep_matches_enumeration() {
        let (net, fleet) = setup();
        let orders = vec![
            order(0, 1, 3, 3.0, 0.0, 10.0),
            order(1, 2, 3, 3.0, 0.5, 10.0),
            order(2, 3, 1, 2.0, 1.0, 12.0),
            order(3, 1, 2, 4.0, 1.5, 12.0),
        ];
        let view = loaded_view(&orders, &net, &fleet);
        assert!(view.route.len() >= 4, "route: {:?}", view.route.stops());
        let probe = orders.last().unwrap();
        let naive = enumerate_insertions(&view, probe, &net, &fleet, &orders);
        let cache = ScheduleCache::build(&view, &net, &fleet, &orders);
        assert!(cache.is_feasible());
        let mut swept = Vec::new();
        sweep_insertions(&cache, &view, probe, &net, &fleet, &orders, |c| {
            swept.push(c)
        });
        assert_eq!(swept.len(), naive.len(), "feasibility sets differ");
        for (s, c) in swept.iter().zip(&naive) {
            assert_eq!(
                (s.pickup_pos, s.delivery_pos),
                (c.pickup_pos, c.delivery_pos)
            );
            assert!(
                (s.length - c.length()).abs() < 1e-9,
                "length mismatch at ({}, {}): {} vs {}",
                s.pickup_pos,
                s.delivery_pos,
                s.length,
                c.length()
            );
        }
    }

    /// In-service vehicle with a non-empty onboard stack: the LIFO pruning
    /// must agree with the oracle.
    #[test]
    fn sweep_respects_onboard_stack() {
        let (net, fleet) = setup();
        let orders = vec![
            order(0, 1, 3, 4.0, 0.0, 10.0),
            order(1, 2, 3, 4.0, 0.0, 10.0),
        ];
        let mut view = VehicleView::idle_at_depot(VehicleId(0), NodeId(0));
        view.anchor_node = NodeId(2);
        view.anchor_time = TimePoint::from_hours(1.0);
        view.onboard = vec![(OrderId(0), 4.0)];
        view.route = Route::from_stops(vec![Stop::delivery(NodeId(3), OrderId(0))]);
        let probe = &orders[1];
        let naive = enumerate_insertions(&view, probe, &net, &fleet, &orders);
        let cache = ScheduleCache::build(&view, &net, &fleet, &orders);
        assert!(cache.is_feasible());
        let mut swept = Vec::new();
        sweep_insertions(&cache, &view, probe, &net, &fleet, &orders, |c| {
            swept.push(c)
        });
        assert_eq!(swept.len(), naive.len());
        for (s, c) in swept.iter().zip(&naive) {
            assert_eq!(
                (s.pickup_pos, s.delivery_pos),
                (c.pickup_pos, c.delivery_pos)
            );
        }
    }

    /// Base-route infeasibility (here: a stop referencing an unknown order)
    /// marks the cache infeasible and the cached entry point falls back to
    /// the naive reference.
    #[test]
    fn infeasible_base_falls_back_to_naive() {
        let (net, fleet) = setup();
        let orders = vec![order(0, 1, 2, 5.0, 0.0, 10.0)];
        let mut view = VehicleView::idle_at_depot(VehicleId(0), NodeId(0));
        view.route = Route::from_stops(vec![Stop::pickup(NodeId(1), OrderId(7))]);
        let cache = ScheduleCache::build(&view, &net, &fleet, &orders);
        assert!(!cache.is_feasible());
        let incremental = best_insertion_cached(&cache, &view, &orders[0], &net, &fleet, &orders);
        let naive = best_insertion_naive(&view, &orders[0], &net, &fleet, &orders);
        assert_eq!(incremental, naive);
    }

    /// A probe order missing from the dense table is rejected everywhere,
    /// exactly like the naive per-candidate `UnknownOrder` violation.
    #[test]
    fn unknown_probe_order_has_no_candidates() {
        let (net, fleet) = setup();
        let orders = vec![order(0, 1, 2, 5.0, 0.0, 10.0)];
        let ghost = order(9, 1, 2, 1.0, 0.0, 10.0);
        let view = VehicleView::idle_at_depot(VehicleId(0), NodeId(0));
        let cache = ScheduleCache::build(&view, &net, &fleet, &orders);
        let sweep = sweep_best(&cache, &view, &ghost, &net, &fleet, &orders);
        assert_eq!(sweep.num_feasible, 0);
        assert!(sweep.best.is_none());
        assert!(enumerate_insertions(&view, &ghost, &net, &fleet, &orders).is_empty());
    }

    /// The slack table encodes wait absorption: a pickup that waits for its
    /// order's creation absorbs injected delay.
    #[test]
    fn slack_absorbs_waiting_time() {
        let (net, fleet) = setup();
        // Order 0 is created at 2 h; the vehicle arrives at its pickup long
        // before that and waits, so upstream slack exceeds the raw deadline
        // margin by the wait.
        let orders = vec![
            order(0, 2, 3, 2.0, 2.0, 3.0),
            order(1, 1, 2, 2.0, 0.0, 24.0),
        ];
        let mut view = VehicleView::idle_at_depot(VehicleId(0), NodeId(0));
        view.route = Route::from_stops(vec![
            Stop::pickup(NodeId(2), OrderId(0)),
            Stop::delivery(NodeId(3), OrderId(0)),
        ]);
        let cache = ScheduleCache::build(&view, &net, &fleet, &orders);
        assert!(cache.is_feasible());
        // Delivery slack: deadline 3 h, arrival 2 h + 5 min service +
        // 10 min drive = 2:15 -> 45 min of raw slack.
        let delivery_slack = cache.stops[1].slack;
        assert!((delivery_slack - 2700.0).abs() < 1e-6);
        // Pickup slack: the same 45 min plus the wait from 20 min (drive)
        // to 2 h = 100 min of absorption.
        let pickup_slack = cache.stops[0].slack;
        assert!((pickup_slack - (2700.0 + 6000.0)).abs() < 1e-6);
        // And the evaluator exploits it: inserting order 1 entirely before
        // the waiting pickup is free time-wise.
        let best = best_insertion_cached(&cache, &view, &orders[1], &net, &fleet, &orders)
            .expect("feasible");
        assert_eq!(
            (best.candidate.pickup_pos, best.candidate.delivery_pos),
            (0, 0)
        );
    }
}
