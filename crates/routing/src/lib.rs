//! Routes, schedules, constraint checks and insertion enumeration.
//!
//! This crate implements the *route planner* of the paper (Algorithm 2):
//! given a vehicle's remaining route and a new order, it enumerates every
//! way of inserting the order's pickup and delivery stops, checks the
//! time-window, capacity, LIFO and back-to-depot constraints by simulating
//! the resulting schedule, and returns the shortest feasible route together
//! with the quantities the MDP state needs (`d_{t,k}`, `d^i_{t,k}`).
//!
//! The central types are:
//!
//! * [`Route`] — the remaining stop sequence of a vehicle (the return to the
//!   depot is implicit and always included in length computations);
//! * [`VehicleView`] — a snapshot of everything the planner needs to know
//!   about a vehicle (anchor position/time, cargo stack, remaining route);
//! * [`simulate_schedule`] — the feasibility oracle;
//! * [`RoutePlanner`] — Algorithm 2.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod constraints;
pub mod insertion;
pub mod planner;
pub mod route;
pub mod schedule;
pub mod stop;
pub mod view;

pub use constraints::Violation;
pub use insertion::{best_insertion, enumerate_insertions, BestInsertion, InsertionCandidate};
pub use planner::{PlannerOutput, RoutePlanner};
pub use route::Route;
pub use schedule::{simulate_schedule, Schedule, StopTiming};
pub use stop::{Stop, StopAction};
pub use view::VehicleView;
