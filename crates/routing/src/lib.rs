//! Routes, schedules, constraint checks and insertion evaluation.
//!
//! This crate implements the *route planner* of the paper (Algorithm 2):
//! given a vehicle's remaining route and a new order, it considers every
//! way of inserting the order's pickup and delivery stops, checks the
//! time-window, capacity, LIFO and back-to-depot constraints, and returns
//! the shortest feasible route together with the quantities the MDP state
//! needs (`d_{t,k}`, `d^i_{t,k}`).
//!
//! The central types are:
//!
//! * [`Route`] — the remaining stop sequence of a vehicle (the return to the
//!   depot is implicit and always included in length computations);
//! * [`VehicleView`] — a snapshot of everything the planner needs to know
//!   about a vehicle (anchor position/time, cargo stack, remaining route);
//! * [`simulate_schedule`] — the feasibility oracle;
//! * [`RoutePlanner`] — Algorithm 2.
//!
//! # Insertion evaluation: O(n²) incremental vs O(n³) reference
//!
//! Candidate scoring has two interchangeable engines (selected by
//! [`PlannerMode`], default incremental):
//!
//! * the **incremental evaluator** ([`incremental`]) precomputes one
//!   forward pass (prefix departure times, loads, cumulative length) and
//!   one backward pass (per-position deadline slack with wait absorption)
//!   over the base route, then scores each of the `(n+1)(n+2)/2` position
//!   pairs allocation-free — O(n²) total per `(order, vehicle)` pair, with
//!   LIFO-violating pairs pruned before evaluation and only the winner
//!   materialized through [`simulate_schedule`];
//! * the **naive reference** ([`enumerate_insertions`],
//!   [`best_insertion_naive`]) clones and re-simulates every candidate —
//!   O(n³) per pair — and remains the authoritative oracle.
//!
//! Both engines return the identical winning `(pickup_pos, delivery_pos)`
//! and route length; the winning length always comes from one final
//! [`simulate_schedule`] call, so it is bit-identical to the reference by
//! construction, and the determinism guarantees of the parallel epoch
//! sweep (bit-identical results at any thread count) carry over unchanged.
//! See [`incremental`] for the invariants and `tests/incremental_parity.rs`
//! for the randomized proof.
//!
//! The incremental evaluator stores its cache as struct-of-arrays and
//! batch-builds per-sweep leg tables through the `dpdp_net` row kernels
//! (see [`incremental`] for the layout); the original interleaved
//! implementation is retained verbatim in [`aos`] as the bit-exact parity
//! and performance reference.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aos;
pub mod constraints;
pub mod incremental;
pub mod insertion;
pub mod planner;
pub mod route;
pub mod schedule;
pub mod stop;
pub mod view;

pub use aos::{sweep_best_aos, sweep_insertions_aos, AosScheduleCache};
pub use constraints::Violation;
pub use incremental::{
    best_insertion_cached, sweep_best, sweep_insertions, InsertionSweep, ScheduleCache,
    ScoredInsertion,
};
pub use insertion::{
    best_insertion, best_insertion_naive, enumerate_insertions, BestInsertion, InsertionCandidate,
};
pub use planner::{
    earliest_delivery_arrival, PlannerMode, PlannerOutput, PruneProbe, RoutePlanner,
    PRUNE_MARGIN_SECS,
};
pub use route::Route;
pub use schedule::{simulate_schedule, Schedule, StopTiming};
pub use stop::{Stop, StopAction};
pub use view::VehicleView;
