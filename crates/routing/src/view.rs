//! Planner-facing snapshot of a vehicle.

use crate::route::Route;
use dpdp_net::{NodeId, OrderId, TimePoint, VehicleId};
use serde::{Deserialize, Serialize};

/// Everything the route planner needs to know about one vehicle at decision
/// time.
///
/// The *anchor* is where the vehicle will next be free to change plans: for
/// an idle vehicle it is the node it is waiting at (now); for an in-service
/// vehicle it is the destination of the leg currently being driven, at the
/// arrival time. This encodes the paper's "no interference with in-service
/// vehicles" rule — insertions can only alter the route from the anchor on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VehicleView {
    /// Which vehicle this is.
    pub vehicle: VehicleId,
    /// Home depot `w_k` the route must end at.
    pub depot: NodeId,
    /// Node from which the remaining route starts.
    pub anchor_node: NodeId,
    /// Time at which the vehicle is (or becomes) available at the anchor.
    pub anchor_time: TimePoint,
    /// Cargo currently on board as a LIFO stack, bottom first:
    /// `(order, quantity)` pairs.
    pub onboard: Vec<(OrderId, f64)>,
    /// Remaining (re-plannable) route from the anchor.
    pub route: Route,
    /// Whether the vehicle has served any order before (the `f_{t,k}` used
    /// flag of the MDP state).
    pub used: bool,
}

impl VehicleView {
    /// A fresh, unused vehicle idling at its depot at time zero.
    pub fn idle_at_depot(vehicle: VehicleId, depot: NodeId) -> Self {
        VehicleView {
            vehicle,
            depot,
            anchor_node: depot,
            anchor_time: TimePoint::ZERO,
            onboard: Vec::new(),
            route: Route::empty(),
            used: false,
        }
    }

    /// Total quantity currently loaded.
    pub fn load(&self) -> f64 {
        self.onboard.iter().map(|(_, q)| q).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_view_defaults() {
        let v = VehicleView::idle_at_depot(VehicleId(3), NodeId(0));
        assert_eq!(v.anchor_node, NodeId(0));
        assert_eq!(v.anchor_time, TimePoint::ZERO);
        assert!(v.route.is_empty());
        assert!(!v.used);
        assert_eq!(v.load(), 0.0);
    }

    #[test]
    fn load_sums_onboard() {
        let mut v = VehicleView::idle_at_depot(VehicleId(0), NodeId(0));
        v.onboard.push((OrderId(0), 3.0));
        v.onboard.push((OrderId(1), 4.5));
        assert!((v.load() - 7.5).abs() < 1e-12);
    }
}
