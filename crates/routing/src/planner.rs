//! The route planner: the paper's Algorithm 2.

use crate::insertion::{best_insertion, BestInsertion};
use crate::view::VehicleView;
use dpdp_net::{FleetConfig, Order, RoadNetwork};
use serde::{Deserialize, Serialize};

/// Output of Algorithm 2 for one `(order, vehicle)` pair.
///
/// Mirrors the paper's outputs: the feasibility flag `fe^i_{t,k}`, the
/// current route length `d_{t,k}`, the best temporary route and its length
/// `d^i_{t,k}`. (The used flag `f_{t,k}` lives on [`VehicleView`]; the ST
/// Score `xi^i_{t,k}` is computed by `dpdp-data` on top of the best route.)
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlannerOutput {
    /// Length of the vehicle's current remaining route, `d_{t,k}` (km).
    pub current_length: f64,
    /// The shortest feasible temporary route, if any.
    pub best: Option<BestInsertion>,
}

impl PlannerOutput {
    /// The feasibility flag `fe^i_{t,k}`.
    #[inline]
    pub fn feasible(&self) -> bool {
        self.best.is_some()
    }

    /// Length of the best temporary route `d^i_{t,k}`, if feasible.
    #[inline]
    pub fn best_length(&self) -> Option<f64> {
        self.best.as_ref().map(|b| b.length())
    }

    /// Incremental distance `Δd^i_{t,k} = d^i_{t,k} - d_{t,k}` caused by
    /// taking the order, if feasible.
    #[inline]
    pub fn incremental_length(&self) -> Option<f64> {
        self.best_length().map(|l| l - self.current_length)
    }
}

/// The route planner (Algorithm 2). Stateless; bundles the problem data it
/// plans against.
#[derive(Debug, Clone, Copy)]
pub struct RoutePlanner<'a> {
    net: &'a RoadNetwork,
    fleet: &'a FleetConfig,
    orders: &'a [Order],
}

impl<'a> RoutePlanner<'a> {
    /// Creates a planner over the given problem data. `orders` must be dense
    /// by id, as guaranteed by [`dpdp_net::Instance`].
    pub fn new(net: &'a RoadNetwork, fleet: &'a FleetConfig, orders: &'a [Order]) -> Self {
        RoutePlanner { net, fleet, orders }
    }

    /// Runs Algorithm 2: checks whether `view`'s vehicle can take `order`,
    /// and if so finds the shortest feasible temporary route.
    pub fn plan(&self, view: &VehicleView, order: &Order) -> PlannerOutput {
        let current_length = view.route.length(self.net, view.anchor_node, view.depot);
        let best = best_insertion(view, order, self.net, self.fleet, self.orders);
        PlannerOutput {
            current_length,
            best,
        }
    }

    /// The network this planner plans against.
    #[inline]
    pub fn network(&self) -> &RoadNetwork {
        self.net
    }

    /// The fleet configuration this planner plans against.
    #[inline]
    pub fn fleet(&self) -> &FleetConfig {
        self.fleet
    }

    /// The dense order table this planner plans against.
    #[inline]
    pub fn orders(&self) -> &[Order] {
        self.orders
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::Route;
    use crate::stop::Stop;
    use dpdp_net::{Node, NodeId, OrderId, Point, TimeDelta, TimePoint, VehicleId};

    fn setup() -> (RoadNetwork, FleetConfig, Vec<Order>) {
        let nodes = vec![
            Node::depot(NodeId(0), Point::new(0.0, 0.0)),
            Node::factory(NodeId(1), Point::new(10.0, 0.0)),
            Node::factory(NodeId(2), Point::new(20.0, 0.0)),
        ];
        let net = RoadNetwork::euclidean(nodes, 1.0).unwrap();
        let fleet =
            FleetConfig::homogeneous(1, &[NodeId(0)], 10.0, 500.0, 2.0, 60.0, TimeDelta::ZERO)
                .unwrap();
        let orders = vec![Order::new(
            OrderId(0),
            NodeId(1),
            NodeId(2),
            5.0,
            TimePoint::ZERO,
            TimePoint::from_hours(24.0),
        )
        .unwrap()];
        (net, fleet, orders)
    }

    #[test]
    fn plan_on_idle_vehicle() {
        let (net, fleet, orders) = setup();
        let planner = RoutePlanner::new(&net, &fleet, &orders);
        let view = VehicleView::idle_at_depot(VehicleId(0), NodeId(0));
        let out = planner.plan(&view, &orders[0]);
        assert!(out.feasible());
        assert_eq!(out.current_length, 0.0);
        assert!((out.best_length().unwrap() - 40.0).abs() < 1e-9);
        assert!((out.incremental_length().unwrap() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn plan_reports_infeasible_without_best() {
        let (net, fleet, mut orders) = setup();
        // Impossible deadline.
        orders[0].deadline = TimePoint::from_seconds(60.0);
        let planner = RoutePlanner::new(&net, &fleet, &orders);
        let view = VehicleView::idle_at_depot(VehicleId(0), NodeId(0));
        let out = planner.plan(&view, &orders[0]);
        assert!(!out.feasible());
        assert_eq!(out.best_length(), None);
        assert_eq!(out.incremental_length(), None);
    }

    #[test]
    fn current_length_reflects_existing_route() {
        let (net, fleet, orders) = setup();
        let planner = RoutePlanner::new(&net, &fleet, &orders);
        let mut view = VehicleView::idle_at_depot(VehicleId(0), NodeId(0));
        view.route = Route::from_stops(vec![
            Stop::pickup(NodeId(1), OrderId(0)),
            Stop::delivery(NodeId(2), OrderId(0)),
        ]);
        // Planning a second copy of the same movement pattern.
        let o2 = Order::new(
            OrderId(1),
            NodeId(1),
            NodeId(2),
            4.0,
            TimePoint::ZERO,
            TimePoint::from_hours(24.0),
        )
        .unwrap();
        let mut all = orders.clone();
        all.push(o2.clone());
        let planner2 = RoutePlanner::new(planner.network(), planner.fleet(), &all);
        let out = planner2.plan(&view, &o2);
        assert!((out.current_length - 40.0).abs() < 1e-9);
        // Best plan hitchhikes: no extra distance.
        assert!(out.incremental_length().unwrap().abs() < 1e-9);
    }
}
