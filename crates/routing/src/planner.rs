//! The route planner: the paper's Algorithm 2.

use crate::incremental::{best_insertion_cached, ScheduleCache};
use crate::insertion::{best_insertion_naive, BestInsertion};
use crate::view::VehicleView;
use dpdp_net::{FleetConfig, NodeId, Order, RoadNetwork, TimeDelta, TimePoint};
use serde::{Deserialize, Serialize};

/// Safety margin (seconds) the geographic infeasibility prune keeps between
/// its lower bound and an order's deadline. The bound's arithmetic differs
/// from the schedule simulator's leg-by-leg accumulation only by float
/// rounding plus the network's metric tolerance
/// ([`dpdp_net::METRIC_TOLERANCE_KM`] per contracted leg) — both orders of
/// magnitude below a second — while genuine geographic hopelessness is
/// minutes to hours, so one second of slack makes the prune exact without
/// costing it any real pruning power.
pub const PRUNE_MARGIN_SECS: f64 = 1.0;

/// Lower bound on the arrival time at `order`'s delivery node over **every**
/// possible insertion of the order into `view`'s remaining route.
///
/// The vehicle cannot reach the pickup before
/// `anchor_time + travel(d(anchor, pickup))` (on a metric network any stop
/// sequence from the anchor to the pickup drives at least the direct
/// distance, and intermediate service times only add), cannot start pickup
/// service before the order exists, and cannot reach the delivery earlier
/// than one service plus the direct pickup→delivery drive later. Only valid
/// as a bound when [`RoadNetwork::is_metric`] holds — callers must gate on
/// it (see [`RoutePlanner::provably_infeasible`]).
pub fn earliest_delivery_arrival(
    view: &VehicleView,
    order: &Order,
    net: &RoadNetwork,
    fleet: &FleetConfig,
) -> TimePoint {
    let to_pickup =
        view.anchor_time + fleet.travel_time(net.distance(view.anchor_node, order.pickup));
    let pickup_service = to_pickup.max(order.created);
    pickup_service
        + fleet.service_time
        + fleet.travel_time(net.distance(order.pickup, order.delivery))
}

/// One order's precomputed prune state (see
/// [`RoutePlanner::prune_probe`]): everything
/// [`RoutePlanner::provably_infeasible`] derives from the order alone,
/// leaving only the vehicle's anchor time and anchor→pickup leg to the
/// per-vehicle call.
#[derive(Debug, Clone, Copy)]
pub struct PruneProbe {
    metric: bool,
    created: TimePoint,
    service: TimeDelta,
    tail: TimeDelta,
    cutoff_secs: f64,
}

impl PruneProbe {
    /// Whether every insertion is provably infeasible for a vehicle free
    /// at `anchor_time` whose direct drive to the pickup takes
    /// `to_pickup`. Bit-identical to
    /// [`RoutePlanner::provably_infeasible`] when `to_pickup` is the
    /// [`RoutePlanner::leg_time`] of the vehicle's anchor→pickup drive.
    #[inline]
    pub fn prunes(&self, anchor_time: TimePoint, to_pickup: TimeDelta) -> bool {
        if !self.metric {
            return false;
        }
        let pickup_service = (anchor_time + to_pickup).max(self.created);
        (pickup_service + self.service + self.tail).seconds() > self.cutoff_secs
    }
}

/// Which insertion evaluator a [`RoutePlanner`] scores candidates with.
///
/// Both modes return the identical winning `(pickup_pos, delivery_pos)`
/// and route length (see [`crate::incremental`] for the parity argument and
/// `tests/incremental_parity.rs` for the randomized proof); `Naive` exists
/// as the always-available reference for parity testing and debugging.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlannerMode {
    /// The O(n²) prefix/suffix-cached evaluator (the default).
    #[default]
    Incremental,
    /// The O(n³) enumerate-and-resimulate reference implementation.
    Naive,
}

/// Output of Algorithm 2 for one `(order, vehicle)` pair.
///
/// Mirrors the paper's outputs: the feasibility flag `fe^i_{t,k}`, the
/// current route length `d_{t,k}`, the best temporary route and its length
/// `d^i_{t,k}`. (The used flag `f_{t,k}` lives on [`VehicleView`]; the ST
/// Score `xi^i_{t,k}` is computed by `dpdp-data` on top of the best route.)
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlannerOutput {
    /// Length of the vehicle's current remaining route, `d_{t,k}` (km).
    pub current_length: f64,
    /// The shortest feasible temporary route, if any. Boxed so the
    /// out-of-line route/schedule payload keeps `PlannerOutput` itself at
    /// pointer size — the epoch sweep materialises a dense `orders ×
    /// vehicles` canvas of these, and at megacity scale (10k vehicles) the
    /// canvas is memcpy-bound on `size_of::<PlannerOutput>()`.
    pub best: Option<Box<BestInsertion>>,
}

impl PlannerOutput {
    /// The feasibility flag `fe^i_{t,k}`.
    #[inline]
    pub fn feasible(&self) -> bool {
        self.best.is_some()
    }

    /// Length of the best temporary route `d^i_{t,k}`, if feasible.
    #[inline]
    pub fn best_length(&self) -> Option<f64> {
        self.best.as_ref().map(|b| b.length())
    }

    /// Incremental distance `Δd^i_{t,k} = d^i_{t,k} - d_{t,k}` caused by
    /// taking the order, if feasible.
    #[inline]
    pub fn incremental_length(&self) -> Option<f64> {
        self.best_length().map(|l| l - self.current_length)
    }
}

/// The route planner (Algorithm 2). Stateless; bundles the problem data it
/// plans against.
#[derive(Debug, Clone, Copy)]
pub struct RoutePlanner<'a> {
    net: &'a RoadNetwork,
    fleet: &'a FleetConfig,
    orders: &'a [Order],
    mode: PlannerMode,
}

impl<'a> RoutePlanner<'a> {
    /// Creates a planner over the given problem data, scoring with the
    /// default [`PlannerMode::Incremental`] evaluator. `orders` must be
    /// dense by id, as guaranteed by [`dpdp_net::Instance`].
    pub fn new(net: &'a RoadNetwork, fleet: &'a FleetConfig, orders: &'a [Order]) -> Self {
        Self::with_mode(net, fleet, orders, PlannerMode::default())
    }

    /// Creates a planner with an explicit insertion evaluator.
    pub fn with_mode(
        net: &'a RoadNetwork,
        fleet: &'a FleetConfig,
        orders: &'a [Order],
        mode: PlannerMode,
    ) -> Self {
        RoutePlanner {
            net,
            fleet,
            orders,
            mode,
        }
    }

    /// The insertion evaluator this planner scores with.
    #[inline]
    pub fn mode(&self) -> PlannerMode {
        self.mode
    }

    /// Builds the reusable prefix/suffix schedule cache for a vehicle view
    /// (O(n)). One cache serves every [`RoutePlanner::plan_cached`] call
    /// against the same view — e.g. all orders of a decision epoch — which
    /// is where the `d_{t,k}` route length and the forward/backward passes
    /// stop being recomputed per order.
    pub fn cache(&self, view: &VehicleView) -> ScheduleCache {
        ScheduleCache::build(view, self.net, self.fleet, self.orders)
    }

    /// In-place variant of [`RoutePlanner::cache`]: re-runs both passes
    /// into an existing cache, reusing its allocations
    /// ([`ScheduleCache::rebuild`]). Bit-identical to a fresh build; the
    /// epoch arena rebuilds its per-vehicle caches through this.
    pub fn cache_into(&self, cache: &mut ScheduleCache, view: &VehicleView) {
        cache.rebuild(view, self.net, self.fleet, self.orders);
    }

    /// Runs Algorithm 2: checks whether `view`'s vehicle can take `order`,
    /// and if so finds the shortest feasible temporary route.
    pub fn plan(&self, view: &VehicleView, order: &Order) -> PlannerOutput {
        match self.mode {
            PlannerMode::Incremental => {
                let cache = self.cache(view);
                self.plan_cached(&cache, view, order)
            }
            PlannerMode::Naive => self.plan_naive(view, order),
        }
    }

    /// Runs Algorithm 2 against a prebuilt [`ScheduleCache`] for `view`
    /// (see [`RoutePlanner::cache`]): the vehicle's current route length
    /// comes from the cache and the candidate sweep is allocation-free.
    ///
    /// In [`PlannerMode::Naive`] the cache is ignored and the reference
    /// path runs instead. An infeasible cache (base route fails the oracle;
    /// committed routes never do) also falls back to the reference path.
    pub fn plan_cached(
        &self,
        cache: &ScheduleCache,
        view: &VehicleView,
        order: &Order,
    ) -> PlannerOutput {
        if self.mode == PlannerMode::Naive || !cache.is_feasible() {
            return self.plan_naive(view, order);
        }
        PlannerOutput {
            current_length: cache.base_length(),
            best: best_insertion_cached(cache, view, order, self.net, self.fleet, self.orders)
                .map(Box::new),
        }
    }

    /// Whether **every** insertion of `order` into `view`'s route is
    /// provably infeasible, without running the candidate sweep.
    ///
    /// True only when the network is metric and the
    /// [`earliest_delivery_arrival`] lower bound already misses the order's
    /// deadline by more than [`PRUNE_MARGIN_SECS`] — in that case the
    /// schedule simulator would reject every position pair with a
    /// time-window violation, so the full Algorithm 2 output is known to be
    /// `best: None` in advance. This is the cross-shard pruning rule of the
    /// region-sharded dispatch pipeline: skipping a pruned `(order,
    /// vehicle)` pair is **bit-identical** to evaluating it.
    ///
    /// On non-metric networks the bound is unsound, so this always returns
    /// `false` (every pair gets the full sweep).
    pub fn provably_infeasible(&self, view: &VehicleView, order: &Order) -> bool {
        self.prune_probe(order).prunes(
            view.anchor_time,
            self.leg_time(view.anchor_node, order.pickup),
        )
    }

    /// Travel time of the direct `from → to` drive — the unit the prune
    /// bound is assembled from.
    #[inline]
    pub fn leg_time(&self, from: NodeId, to: NodeId) -> TimeDelta {
        self.fleet.travel_time(self.net.distance(from, to))
    }

    /// Travel time for a raw distance in km (the fleet's speed model),
    /// for callers that already hold the distance.
    #[inline]
    pub fn travel_time(&self, km: f64) -> TimeDelta {
        self.fleet.travel_time(km)
    }

    /// Precomputes the order-only parts of
    /// [`RoutePlanner::provably_infeasible`] so a sweep classifying one
    /// order against thousands of vehicles pays the pickup→delivery leg
    /// and the deadline cutoff **once**. [`PruneProbe::prunes`] then runs
    /// the identical float expression the unfactored check runs — same
    /// operations in the same order — so the two agree bit for bit.
    pub fn prune_probe(&self, order: &Order) -> PruneProbe {
        PruneProbe {
            metric: self.net.is_metric(),
            created: order.created,
            service: self.fleet.service_time,
            tail: self.leg_time(order.pickup, order.delivery),
            cutoff_secs: order.deadline.seconds() + PRUNE_MARGIN_SECS,
        }
    }

    /// The [`PlannerOutput`] for a pair pruned by
    /// [`RoutePlanner::provably_infeasible`]: `best: None` with the
    /// `current_length` the full evaluation path would have reported —
    /// `cache.base_length()` on the incremental path, the view's route
    /// length on the naive path or when the cache fell back (mirroring
    /// [`RoutePlanner::plan_cached`] exactly, so pruned and evaluated cells
    /// are indistinguishable).
    pub fn pruned_output(
        &self,
        cache: Option<&ScheduleCache>,
        view: &VehicleView,
    ) -> PlannerOutput {
        let current_length = match cache {
            Some(cache) if self.mode != PlannerMode::Naive && cache.is_feasible() => {
                cache.base_length()
            }
            _ => view.route.length(self.net, view.anchor_node, view.depot),
        };
        PlannerOutput {
            current_length,
            best: None,
        }
    }

    /// The reference Algorithm 2: full enumeration with per-candidate
    /// re-simulation.
    fn plan_naive(&self, view: &VehicleView, order: &Order) -> PlannerOutput {
        let current_length = view.route.length(self.net, view.anchor_node, view.depot);
        let best =
            best_insertion_naive(view, order, self.net, self.fleet, self.orders).map(Box::new);
        PlannerOutput {
            current_length,
            best,
        }
    }

    /// The network this planner plans against.
    #[inline]
    pub fn network(&self) -> &RoadNetwork {
        self.net
    }

    /// The fleet configuration this planner plans against.
    #[inline]
    pub fn fleet(&self) -> &FleetConfig {
        self.fleet
    }

    /// The dense order table this planner plans against.
    #[inline]
    pub fn orders(&self) -> &[Order] {
        self.orders
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::Route;
    use crate::stop::Stop;
    use dpdp_net::{Node, NodeId, OrderId, Point, TimeDelta, TimePoint, VehicleId};

    fn setup() -> (RoadNetwork, FleetConfig, Vec<Order>) {
        let nodes = vec![
            Node::depot(NodeId(0), Point::new(0.0, 0.0)),
            Node::factory(NodeId(1), Point::new(10.0, 0.0)),
            Node::factory(NodeId(2), Point::new(20.0, 0.0)),
        ];
        let net = RoadNetwork::euclidean(nodes, 1.0).unwrap();
        let fleet =
            FleetConfig::homogeneous(1, &[NodeId(0)], 10.0, 500.0, 2.0, 60.0, TimeDelta::ZERO)
                .unwrap();
        let orders = vec![Order::new(
            OrderId(0),
            NodeId(1),
            NodeId(2),
            5.0,
            TimePoint::ZERO,
            TimePoint::from_hours(24.0),
        )
        .unwrap()];
        (net, fleet, orders)
    }

    #[test]
    fn plan_on_idle_vehicle() {
        let (net, fleet, orders) = setup();
        let planner = RoutePlanner::new(&net, &fleet, &orders);
        let view = VehicleView::idle_at_depot(VehicleId(0), NodeId(0));
        let out = planner.plan(&view, &orders[0]);
        assert!(out.feasible());
        assert_eq!(out.current_length, 0.0);
        assert!((out.best_length().unwrap() - 40.0).abs() < 1e-9);
        assert!((out.incremental_length().unwrap() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn plan_reports_infeasible_without_best() {
        let (net, fleet, mut orders) = setup();
        // Impossible deadline.
        orders[0].deadline = TimePoint::from_seconds(60.0);
        let planner = RoutePlanner::new(&net, &fleet, &orders);
        let view = VehicleView::idle_at_depot(VehicleId(0), NodeId(0));
        let out = planner.plan(&view, &orders[0]);
        assert!(!out.feasible());
        assert_eq!(out.best_length(), None);
        assert_eq!(out.incremental_length(), None);
    }

    #[test]
    fn planner_modes_agree_and_cache_is_reusable() {
        let (net, fleet, mut orders) = setup();
        orders.push(
            Order::new(
                OrderId(1),
                NodeId(2),
                NodeId(1),
                2.0,
                TimePoint::ZERO,
                TimePoint::from_hours(24.0),
            )
            .unwrap(),
        );
        let incremental = RoutePlanner::new(&net, &fleet, &orders);
        let naive = RoutePlanner::with_mode(&net, &fleet, &orders, PlannerMode::Naive);
        assert_eq!(incremental.mode(), PlannerMode::Incremental);
        let mut view = VehicleView::idle_at_depot(VehicleId(0), NodeId(0));
        view.route = Route::from_stops(vec![
            Stop::pickup(NodeId(1), OrderId(0)),
            Stop::delivery(NodeId(2), OrderId(0)),
        ]);
        // One cache serves every order planned against the same view.
        let cache = incremental.cache(&view);
        for order in &orders {
            let a = incremental.plan(&view, order);
            let b = incremental.plan_cached(&cache, &view, order);
            let c = naive.plan(&view, order);
            assert_eq!(a, b);
            assert_eq!(a, c, "modes diverged for {}", order.id);
        }
    }

    #[test]
    fn provably_infeasible_agrees_with_full_sweep() {
        let (net, fleet, _) = setup();
        let planner_orders: Vec<Order> = (0..40u32)
            .map(|i| {
                // Deadline slack sweeps from hopeless (under a minute) to
                // loose (nearly an hour); pickups alternate between near
                // and far factories.
                let (p, d) = if i % 2 == 0 { (1, 2) } else { (2, 1) };
                let created = TimePoint::from_hours(0.1 * (i % 5) as f64);
                Order::new(
                    OrderId(i),
                    NodeId(p),
                    NodeId(d),
                    1.0,
                    created,
                    created + TimeDelta::from_hours(0.015 * i as f64 + 0.01),
                )
                .unwrap()
            })
            .collect();
        let planner = RoutePlanner::new(&net, &fleet, &planner_orders);
        let mut view = VehicleView::idle_at_depot(VehicleId(0), NodeId(0));
        view.route = Route::from_stops(vec![
            Stop::pickup(NodeId(1), OrderId(0)),
            Stop::delivery(NodeId(2), OrderId(0)),
        ]);
        let mut pruned = 0;
        for order in &planner_orders[1..] {
            let full = planner.plan(&view, order);
            // The memoized probe is the same expression factored: it must
            // agree with the unfactored bound on every pair, bit for bit.
            let unfactored = net.is_metric()
                && earliest_delivery_arrival(&view, order, &net, &fleet).seconds()
                    > order.deadline.seconds() + PRUNE_MARGIN_SECS;
            assert_eq!(
                planner.provably_infeasible(&view, order),
                unfactored,
                "probe diverged from the unfactored bound for {}",
                order.id
            );
            if planner.provably_infeasible(&view, order) {
                pruned += 1;
                assert!(
                    !full.feasible(),
                    "bound pruned a feasible pair for {}",
                    order.id
                );
                let out = planner.pruned_output(Some(&planner.cache(&view)), &view);
                assert_eq!(out, full, "pruned output diverged for {}", order.id);
            }
        }
        assert!(pruned > 0, "the deadline sweep must exercise the prune");
    }

    #[test]
    fn earliest_delivery_bound_matches_direct_insertion() {
        let (net, fleet, orders) = setup();
        let view = VehicleView::idle_at_depot(VehicleId(0), NodeId(0));
        // Empty route: the bound equals the one possible candidate's
        // delivery arrival exactly.
        let bound = earliest_delivery_arrival(&view, &orders[0], &net, &fleet);
        let planner = RoutePlanner::new(&net, &fleet, &orders);
        let best = planner.plan(&view, &orders[0]).best.unwrap();
        let arrival = best.candidate.schedule.timings.last().unwrap().arrival;
        assert!((bound.seconds() - arrival.seconds()).abs() < 1e-9);
    }

    #[test]
    fn non_metric_network_disables_the_prune() {
        let nodes = vec![
            Node::depot(NodeId(0), Point::new(0.0, 0.0)),
            Node::factory(NodeId(1), Point::new(1.0, 0.0)),
            Node::factory(NodeId(2), Point::new(2.0, 0.0)),
        ];
        // The direct depot→2 arc is absurdly long while the detour through
        // node 1 is short: the triangle inequality fails, the
        // direct-distance bound would over-estimate, and the prune must
        // stay off.
        #[rustfmt::skip]
        let dist = vec![
            0.0,   1.0, 500.0,
            1.0,   0.0,   1.0,
            1.0,   1.0,   0.0,
        ];
        let net = RoadNetwork::with_matrix(nodes, dist).unwrap();
        assert!(!net.is_metric());
        let fleet =
            FleetConfig::homogeneous(1, &[NodeId(0)], 10.0, 500.0, 2.0, 60.0, TimeDelta::ZERO)
                .unwrap();
        let orders = vec![
            Order::new(
                OrderId(0),
                NodeId(1),
                NodeId(2),
                1.0,
                TimePoint::ZERO,
                TimePoint::from_hours(1.0),
            )
            .unwrap(),
            Order::new(
                OrderId(1),
                NodeId(2),
                NodeId(1),
                1.0,
                TimePoint::ZERO,
                TimePoint::from_hours(1.0),
            )
            .unwrap(),
        ];
        let planner = RoutePlanner::new(&net, &fleet, &orders);
        // A route already heading through node 1 makes pickup node 2 cheap
        // to reach even though the direct arc says 500 km: the bound would
        // wrongly prune order 1, so the metric gate must keep it off.
        let mut view = VehicleView::idle_at_depot(VehicleId(0), NodeId(0));
        view.route = Route::from_stops(vec![
            Stop::pickup(NodeId(1), OrderId(0)),
            Stop::delivery(NodeId(2), OrderId(0)),
        ]);
        let bound = earliest_delivery_arrival(&view, &orders[1], &net, &fleet);
        assert!(
            bound.seconds() > orders[1].deadline.seconds() + PRUNE_MARGIN_SECS,
            "the unsound bound must actually fire for this test to bite"
        );
        assert!(
            planner.plan(&view, &orders[1]).feasible(),
            "the pair is genuinely feasible through the short detour"
        );
        assert!(!planner.provably_infeasible(&view, &orders[1]));
    }

    #[test]
    fn current_length_reflects_existing_route() {
        let (net, fleet, orders) = setup();
        let planner = RoutePlanner::new(&net, &fleet, &orders);
        let mut view = VehicleView::idle_at_depot(VehicleId(0), NodeId(0));
        view.route = Route::from_stops(vec![
            Stop::pickup(NodeId(1), OrderId(0)),
            Stop::delivery(NodeId(2), OrderId(0)),
        ]);
        // Planning a second copy of the same movement pattern.
        let o2 = Order::new(
            OrderId(1),
            NodeId(1),
            NodeId(2),
            4.0,
            TimePoint::ZERO,
            TimePoint::from_hours(24.0),
        )
        .unwrap();
        let mut all = orders.clone();
        all.push(o2.clone());
        let planner2 = RoutePlanner::new(planner.network(), planner.fleet(), &all);
        let out = planner2.plan(&view, &o2);
        assert!((out.current_length - 40.0).abs() < 1e-9);
        // Best plan hitchhikes: no extra distance.
        assert!(out.incremental_length().unwrap().abs() < 1e-9);
    }
}
