//! The route planner: the paper's Algorithm 2.

use crate::incremental::{best_insertion_cached, ScheduleCache};
use crate::insertion::{best_insertion_naive, BestInsertion};
use crate::view::VehicleView;
use dpdp_net::{FleetConfig, Order, RoadNetwork};
use serde::{Deserialize, Serialize};

/// Which insertion evaluator a [`RoutePlanner`] scores candidates with.
///
/// Both modes return the identical winning `(pickup_pos, delivery_pos)`
/// and route length (see [`crate::incremental`] for the parity argument and
/// `tests/incremental_parity.rs` for the randomized proof); `Naive` exists
/// as the always-available reference for parity testing and debugging.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlannerMode {
    /// The O(n²) prefix/suffix-cached evaluator (the default).
    #[default]
    Incremental,
    /// The O(n³) enumerate-and-resimulate reference implementation.
    Naive,
}

/// Output of Algorithm 2 for one `(order, vehicle)` pair.
///
/// Mirrors the paper's outputs: the feasibility flag `fe^i_{t,k}`, the
/// current route length `d_{t,k}`, the best temporary route and its length
/// `d^i_{t,k}`. (The used flag `f_{t,k}` lives on [`VehicleView`]; the ST
/// Score `xi^i_{t,k}` is computed by `dpdp-data` on top of the best route.)
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlannerOutput {
    /// Length of the vehicle's current remaining route, `d_{t,k}` (km).
    pub current_length: f64,
    /// The shortest feasible temporary route, if any.
    pub best: Option<BestInsertion>,
}

impl PlannerOutput {
    /// The feasibility flag `fe^i_{t,k}`.
    #[inline]
    pub fn feasible(&self) -> bool {
        self.best.is_some()
    }

    /// Length of the best temporary route `d^i_{t,k}`, if feasible.
    #[inline]
    pub fn best_length(&self) -> Option<f64> {
        self.best.as_ref().map(|b| b.length())
    }

    /// Incremental distance `Δd^i_{t,k} = d^i_{t,k} - d_{t,k}` caused by
    /// taking the order, if feasible.
    #[inline]
    pub fn incremental_length(&self) -> Option<f64> {
        self.best_length().map(|l| l - self.current_length)
    }
}

/// The route planner (Algorithm 2). Stateless; bundles the problem data it
/// plans against.
#[derive(Debug, Clone, Copy)]
pub struct RoutePlanner<'a> {
    net: &'a RoadNetwork,
    fleet: &'a FleetConfig,
    orders: &'a [Order],
    mode: PlannerMode,
}

impl<'a> RoutePlanner<'a> {
    /// Creates a planner over the given problem data, scoring with the
    /// default [`PlannerMode::Incremental`] evaluator. `orders` must be
    /// dense by id, as guaranteed by [`dpdp_net::Instance`].
    pub fn new(net: &'a RoadNetwork, fleet: &'a FleetConfig, orders: &'a [Order]) -> Self {
        Self::with_mode(net, fleet, orders, PlannerMode::default())
    }

    /// Creates a planner with an explicit insertion evaluator.
    pub fn with_mode(
        net: &'a RoadNetwork,
        fleet: &'a FleetConfig,
        orders: &'a [Order],
        mode: PlannerMode,
    ) -> Self {
        RoutePlanner {
            net,
            fleet,
            orders,
            mode,
        }
    }

    /// The insertion evaluator this planner scores with.
    #[inline]
    pub fn mode(&self) -> PlannerMode {
        self.mode
    }

    /// Builds the reusable prefix/suffix schedule cache for a vehicle view
    /// (O(n)). One cache serves every [`RoutePlanner::plan_cached`] call
    /// against the same view — e.g. all orders of a decision epoch — which
    /// is where the `d_{t,k}` route length and the forward/backward passes
    /// stop being recomputed per order.
    pub fn cache(&self, view: &VehicleView) -> ScheduleCache {
        ScheduleCache::build(view, self.net, self.fleet, self.orders)
    }

    /// Runs Algorithm 2: checks whether `view`'s vehicle can take `order`,
    /// and if so finds the shortest feasible temporary route.
    pub fn plan(&self, view: &VehicleView, order: &Order) -> PlannerOutput {
        match self.mode {
            PlannerMode::Incremental => {
                let cache = self.cache(view);
                self.plan_cached(&cache, view, order)
            }
            PlannerMode::Naive => self.plan_naive(view, order),
        }
    }

    /// Runs Algorithm 2 against a prebuilt [`ScheduleCache`] for `view`
    /// (see [`RoutePlanner::cache`]): the vehicle's current route length
    /// comes from the cache and the candidate sweep is allocation-free.
    ///
    /// In [`PlannerMode::Naive`] the cache is ignored and the reference
    /// path runs instead. An infeasible cache (base route fails the oracle;
    /// committed routes never do) also falls back to the reference path.
    pub fn plan_cached(
        &self,
        cache: &ScheduleCache,
        view: &VehicleView,
        order: &Order,
    ) -> PlannerOutput {
        if self.mode == PlannerMode::Naive || !cache.is_feasible() {
            return self.plan_naive(view, order);
        }
        PlannerOutput {
            current_length: cache.base_length(),
            best: best_insertion_cached(cache, view, order, self.net, self.fleet, self.orders),
        }
    }

    /// The reference Algorithm 2: full enumeration with per-candidate
    /// re-simulation.
    fn plan_naive(&self, view: &VehicleView, order: &Order) -> PlannerOutput {
        let current_length = view.route.length(self.net, view.anchor_node, view.depot);
        let best = best_insertion_naive(view, order, self.net, self.fleet, self.orders);
        PlannerOutput {
            current_length,
            best,
        }
    }

    /// The network this planner plans against.
    #[inline]
    pub fn network(&self) -> &RoadNetwork {
        self.net
    }

    /// The fleet configuration this planner plans against.
    #[inline]
    pub fn fleet(&self) -> &FleetConfig {
        self.fleet
    }

    /// The dense order table this planner plans against.
    #[inline]
    pub fn orders(&self) -> &[Order] {
        self.orders
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::Route;
    use crate::stop::Stop;
    use dpdp_net::{Node, NodeId, OrderId, Point, TimeDelta, TimePoint, VehicleId};

    fn setup() -> (RoadNetwork, FleetConfig, Vec<Order>) {
        let nodes = vec![
            Node::depot(NodeId(0), Point::new(0.0, 0.0)),
            Node::factory(NodeId(1), Point::new(10.0, 0.0)),
            Node::factory(NodeId(2), Point::new(20.0, 0.0)),
        ];
        let net = RoadNetwork::euclidean(nodes, 1.0).unwrap();
        let fleet =
            FleetConfig::homogeneous(1, &[NodeId(0)], 10.0, 500.0, 2.0, 60.0, TimeDelta::ZERO)
                .unwrap();
        let orders = vec![Order::new(
            OrderId(0),
            NodeId(1),
            NodeId(2),
            5.0,
            TimePoint::ZERO,
            TimePoint::from_hours(24.0),
        )
        .unwrap()];
        (net, fleet, orders)
    }

    #[test]
    fn plan_on_idle_vehicle() {
        let (net, fleet, orders) = setup();
        let planner = RoutePlanner::new(&net, &fleet, &orders);
        let view = VehicleView::idle_at_depot(VehicleId(0), NodeId(0));
        let out = planner.plan(&view, &orders[0]);
        assert!(out.feasible());
        assert_eq!(out.current_length, 0.0);
        assert!((out.best_length().unwrap() - 40.0).abs() < 1e-9);
        assert!((out.incremental_length().unwrap() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn plan_reports_infeasible_without_best() {
        let (net, fleet, mut orders) = setup();
        // Impossible deadline.
        orders[0].deadline = TimePoint::from_seconds(60.0);
        let planner = RoutePlanner::new(&net, &fleet, &orders);
        let view = VehicleView::idle_at_depot(VehicleId(0), NodeId(0));
        let out = planner.plan(&view, &orders[0]);
        assert!(!out.feasible());
        assert_eq!(out.best_length(), None);
        assert_eq!(out.incremental_length(), None);
    }

    #[test]
    fn planner_modes_agree_and_cache_is_reusable() {
        let (net, fleet, mut orders) = setup();
        orders.push(
            Order::new(
                OrderId(1),
                NodeId(2),
                NodeId(1),
                2.0,
                TimePoint::ZERO,
                TimePoint::from_hours(24.0),
            )
            .unwrap(),
        );
        let incremental = RoutePlanner::new(&net, &fleet, &orders);
        let naive = RoutePlanner::with_mode(&net, &fleet, &orders, PlannerMode::Naive);
        assert_eq!(incremental.mode(), PlannerMode::Incremental);
        let mut view = VehicleView::idle_at_depot(VehicleId(0), NodeId(0));
        view.route = Route::from_stops(vec![
            Stop::pickup(NodeId(1), OrderId(0)),
            Stop::delivery(NodeId(2), OrderId(0)),
        ]);
        // One cache serves every order planned against the same view.
        let cache = incremental.cache(&view);
        for order in &orders {
            let a = incremental.plan(&view, order);
            let b = incremental.plan_cached(&cache, &view, order);
            let c = naive.plan(&view, order);
            assert_eq!(a, b);
            assert_eq!(a, c, "modes diverged for {}", order.id);
        }
    }

    #[test]
    fn current_length_reflects_existing_route() {
        let (net, fleet, orders) = setup();
        let planner = RoutePlanner::new(&net, &fleet, &orders);
        let mut view = VehicleView::idle_at_depot(VehicleId(0), NodeId(0));
        view.route = Route::from_stops(vec![
            Stop::pickup(NodeId(1), OrderId(0)),
            Stop::delivery(NodeId(2), OrderId(0)),
        ]);
        // Planning a second copy of the same movement pattern.
        let o2 = Order::new(
            OrderId(1),
            NodeId(1),
            NodeId(2),
            4.0,
            TimePoint::ZERO,
            TimePoint::from_hours(24.0),
        )
        .unwrap();
        let mut all = orders.clone();
        all.push(o2.clone());
        let planner2 = RoutePlanner::new(planner.network(), planner.fleet(), &all);
        let out = planner2.plan(&view, &o2);
        assert!((out.current_length - 40.0).abs() < 1e-9);
        // Best plan hitchhikes: no extra distance.
        assert!(out.incremental_length().unwrap().abs() < 1e-9);
    }
}
