//! Named serving presets: the instance geometries and dispatch policies a
//! session can ask for at `HELLO` time.
//!
//! Every preset has an **empty replay table**: all demand arrives over the
//! wire, so the engine assigns streamed orders the dense ids `0, 1, 2, …`
//! in send order — which is what lets clients target `CANCEL` frames and
//! the parity suite replay the same trace in-process.

use dpdp_baselines::{Baseline1, Baseline2, Baseline3};
use dpdp_net::{FleetConfig, Instance, IntervalGrid, Node, NodeId, Point, RoadNetwork, TimeDelta};
use dpdp_sim::{Dispatcher, FirstFeasible, ShardConfig};

/// The preset names `HELLO` accepts, in the order they are advertised.
pub const PRESET_NAMES: &[&str] = &["line4", "grid9", "ring12"];

/// The dispatch policy names `HELLO` accepts.
pub const POLICY_NAMES: &[&str] = &["baseline1", "baseline2", "baseline3", "first_feasible"];

fn line4() -> Instance {
    // The two-hotspot line city of `examples/live_serve`: a depot and
    // three factories strung along 24 km.
    let nodes = vec![
        Node::depot(NodeId(0), Point::new(0.0, 0.0)),
        Node::factory(NodeId(1), Point::new(8.0, 0.0)),
        Node::factory(NodeId(2), Point::new(16.0, 0.0)),
        Node::factory(NodeId(3), Point::new(24.0, 0.0)),
    ];
    let net = RoadNetwork::euclidean(nodes, 1.0).expect("valid preset network");
    let fleet = FleetConfig::homogeneous(
        3,
        &[NodeId(0)],
        10.0,
        500.0,
        2.0,
        40.0,
        TimeDelta::from_minutes(2.0),
    )
    .expect("valid preset fleet");
    Instance::new(net, fleet, IntervalGrid::paper_default(), vec![]).expect("valid preset")
}

fn grid9() -> Instance {
    // A 3 x 3 factory block on a 20 km square, depot at the corner.
    let mut nodes = vec![Node::depot(NodeId(0), Point::new(0.0, 0.0))];
    for row in 0..3u32 {
        for col in 0..3u32 {
            let id = 1 + row * 3 + col;
            nodes.push(Node::factory(
                NodeId(id),
                Point::new(5.0 + 7.5 * col as f64, 5.0 + 7.5 * row as f64),
            ));
        }
    }
    let net = RoadNetwork::euclidean(nodes, 1.2).expect("valid preset network");
    let fleet = FleetConfig::homogeneous(
        6,
        &[NodeId(0)],
        12.0,
        500.0,
        2.0,
        40.0,
        TimeDelta::from_minutes(2.0),
    )
    .expect("valid preset fleet");
    Instance::new(net, fleet, IntervalGrid::paper_default(), vec![]).expect("valid preset")
}

fn ring12() -> Instance {
    // Twelve factories on a 15 km ring around a central depot — the
    // loadgen workhorse: enough spread that routes stay non-trivial.
    let mut nodes = vec![Node::depot(NodeId(0), Point::new(0.0, 0.0))];
    for i in 0..12u32 {
        let angle = std::f64::consts::TAU * i as f64 / 12.0;
        nodes.push(Node::factory(
            NodeId(1 + i),
            Point::new(15.0 * angle.cos(), 15.0 * angle.sin()),
        ));
    }
    let net = RoadNetwork::euclidean(nodes, 1.1).expect("valid preset network");
    let fleet = FleetConfig::homogeneous(
        8,
        &[NodeId(0)],
        10.0,
        500.0,
        2.0,
        40.0,
        TimeDelta::from_minutes(2.0),
    )
    .expect("valid preset fleet");
    Instance::new(net, fleet, IntervalGrid::paper_default(), vec![]).expect("valid preset")
}

/// Builds the named preset instance, or `None` for an unknown name.
pub fn build_instance(name: &str) -> Option<Instance> {
    match name {
        "line4" => Some(line4()),
        "grid9" => Some(grid9()),
        "ring12" => Some(ring12()),
        _ => None,
    }
}

/// The shard layout each preset's episodes score under, or `None` for an
/// unknown name.
///
/// Sharding never changes decisions — the pruned evaluation is
/// bit-identical to the full sweep — so the registry only tunes how much
/// scoring work each preset's epochs parallelise. The tiny line and grid
/// cities run unsharded; the ring is wide enough to exercise the
/// hierarchical two-level layout, which also keeps the socket-parity
/// suite honest about sharded ≡ unsharded over the wire. A `HELLO` frame
/// may override the registered layout with a flat shard count.
pub fn shard_config(name: &str) -> Option<ShardConfig> {
    match name {
        "line4" | "grid9" => Some(ShardConfig::default()),
        "ring12" => Some(ShardConfig::hierarchical(2, 2).expect("positive region and cell counts")),
        _ => None,
    }
}

/// Builds the named dispatch policy, or `None` for an unknown name.
pub fn build_policy(name: &str) -> Option<Box<dyn Dispatcher>> {
    match name {
        "baseline1" => Some(Box::new(Baseline1)),
        "baseline2" => Some(Box::new(Baseline2)),
        "baseline3" => Some(Box::new(Baseline3::default())),
        "first_feasible" => Some(Box::new(FirstFeasible)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_advertised_preset_builds_with_an_empty_table() {
        for name in PRESET_NAMES {
            let instance = build_instance(name).expect("advertised preset builds");
            assert_eq!(instance.num_orders(), 0, "{name} must stream all demand");
            assert!(instance.num_vehicles() >= 3, "{name} fleet too small");
        }
        assert!(build_instance("mars").is_none());
    }

    #[test]
    fn every_advertised_policy_builds() {
        for name in POLICY_NAMES {
            assert!(build_policy(name).is_some(), "policy {name} must build");
        }
        assert!(build_policy("oracle").is_none());
    }

    #[test]
    fn every_advertised_preset_registers_a_shard_config() {
        for name in PRESET_NAMES {
            assert!(
                shard_config(name).is_some(),
                "preset {name} must register a shard layout"
            );
        }
        assert!(shard_config("mars").is_none());
        // The ring showcases the two-level layout: 2 regions × 2 cells.
        let ring = shard_config("ring12").expect("registered");
        assert_eq!(ring.num_shards(), 4);
        // The tiny cities stay unsharded.
        assert_eq!(shard_config("line4").expect("registered").num_shards(), 1);
    }
}
