//! Wire protocol: line grammar, parsing, and formatting.
//!
//! Both directions speak newline-delimited frames of whitespace-separated
//! ASCII tokens. Times travel as raw **seconds** (`f64`, printed with
//! Rust's shortest round-trip formatting), so a value parsed back from the
//! wire is bit-identical to the one the server computed — the property the
//! socket-parity suite leans on.
//!
//! Client → server frames are [`Command`]s; server → client frames are
//! [`ServerMsg`]s. See the crate docs for the full grammar.

use dpdp_net::{NodeId, OrderId, TimePoint, VehicleId};
use dpdp_sim::{
    CancelOutcome, DecisionReason, DisruptionKind, DisruptionRecord, EpisodeMetrics, EpochInfo,
    RejectionCounts,
};
use std::fmt;

/// A structured protocol error, sent to clients as `ERR <code> <detail>`.
///
/// Malformed frames never tear the connection down: the server replies
/// with one `ERR` line and keeps reading.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError {
    /// Stable machine-readable error class (e.g. `bad-arity`).
    pub code: &'static str,
    /// Human-oriented detail, single line.
    pub detail: String,
}

impl ProtoError {
    /// Builds an error with the given code and detail.
    pub fn new(code: &'static str, detail: impl Into<String>) -> Self {
        ProtoError {
            code,
            detail: detail.into(),
        }
    }

    /// The `ERR ...` line this error travels as.
    pub fn to_line(&self) -> String {
        format!("ERR {} {}", self.code, self.detail)
    }
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code, self.detail)
    }
}

impl std::error::Error for ProtoError {}

/// One parsed client → server frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `HELLO <tenant> <preset> <seed> [policy] [buffer_mins] [shards]` —
    /// opens the session's episode.
    Hello {
        /// Tenant label, echoed back; purely informational.
        tenant: String,
        /// Instance preset name (see [`crate::preset::PRESET_NAMES`]).
        preset: String,
        /// Episode seed.
        seed: u64,
        /// Dispatch policy name (see [`crate::preset::POLICY_NAMES`]).
        policy: String,
        /// Epoch buffering period in minutes; `0` = immediate dispatch.
        buffer_mins: f64,
        /// Optional flat shard-count override; `None` keeps the preset's
        /// registered [`ShardConfig`](dpdp_sim::ShardConfig). Sharding
        /// never changes decisions, only how scoring is partitioned.
        shards: Option<u64>,
    },
    /// `ORDER <pickup> <delivery> <qty> <created_s> <deadline_s>`.
    Order {
        /// Pickup factory node.
        pickup: NodeId,
        /// Delivery factory node.
        delivery: NodeId,
        /// Demand quantity.
        quantity: f64,
        /// Creation time, seconds.
        created: TimePoint,
        /// Delivery deadline, seconds.
        deadline: TimePoint,
    },
    /// `CANCEL <order> <at_s>`.
    Cancel {
        /// The order to cancel (engine-assigned id).
        order: OrderId,
        /// Cancellation instant, seconds.
        at: TimePoint,
    },
    /// `BREAKDOWN <vehicle> <at_s>`.
    Breakdown {
        /// The vehicle that breaks down.
        vehicle: VehicleId,
        /// Breakdown instant, seconds.
        at: TimePoint,
    },
    /// `RECOVER <vehicle> <at_s>`.
    Recover {
        /// The vehicle that comes back into service.
        vehicle: VehicleId,
        /// Recovery instant, seconds.
        at: TimePoint,
    },
    /// `FLUSH <at_s>` — a pure heartbeat advancing virtual time.
    Flush {
        /// The instant virtual time is known to have reached, seconds.
        at: TimePoint,
    },
    /// `DRAIN` — finish the episode gracefully.
    Drain,
    /// `RESUME <tenant> <token> [ack]` — rebuild an interrupted episode
    /// from its command journal. `ack` is the number of episode frames
    /// (`EPOCH` + `DECISION` + `DISRUPT`, in emission order) the client
    /// already received before the interruption; the replay suppresses
    /// exactly that many before streaming live again.
    Resume {
        /// The tenant whose journal to replay.
        tenant: String,
        /// The session token `OK HELLO` issued for that journal.
        token: String,
        /// Count of episode frames already delivered (default 0).
        ack: usize,
    },
    /// `STATS` — ask for a server-health snapshot; answered with one
    /// `STATS` frame, valid before or during an episode.
    Stats,
    /// `PANIC` — debug-only: panic the session thread to exercise the
    /// supervision path. Refused with `ERR debug-disabled` unless the
    /// server was built with debug frames enabled.
    Panic,
}

fn parse_u64(tok: &str, what: &str) -> Result<u64, ProtoError> {
    tok.parse::<u64>()
        .map_err(|_| ProtoError::new("bad-number", format!("{what} `{tok}` is not an integer")))
}

fn parse_u32(tok: &str, what: &str) -> Result<u32, ProtoError> {
    tok.parse::<u32>()
        .map_err(|_| ProtoError::new("bad-number", format!("{what} `{tok}` is not an index")))
}

fn parse_f64(tok: &str, what: &str) -> Result<f64, ProtoError> {
    tok.parse::<f64>()
        .map_err(|_| ProtoError::new("bad-number", format!("{what} `{tok}` is not a number")))
}

/// A wire time: finite, non-negative seconds.
fn parse_time(tok: &str, what: &str) -> Result<TimePoint, ProtoError> {
    let secs = parse_f64(tok, what)?;
    if !secs.is_finite() || secs < 0.0 {
        return Err(ProtoError::new(
            "bad-number",
            format!("{what} `{tok}` must be finite and non-negative seconds"),
        ));
    }
    Ok(TimePoint::from_seconds(secs))
}

fn arity(cmd: &str, got: usize, want: &str) -> ProtoError {
    ProtoError::new("bad-arity", format!("{cmd} takes {want}, got {got}"))
}

/// Parses one client frame. Blank lines are silently skipped (`Ok(None)`).
pub fn parse_command(line: &str) -> Result<Option<Command>, ProtoError> {
    let toks: Vec<&str> = line.split_whitespace().collect();
    let Some((&cmd, args)) = toks.split_first() else {
        return Ok(None);
    };
    let command = match cmd {
        "HELLO" => {
            if !(3..=6).contains(&args.len()) {
                return Err(arity(
                    "HELLO",
                    args.len(),
                    "<tenant> <preset> <seed> [policy] [buffer_mins] [shards]",
                ));
            }
            let buffer_mins = match args.get(4) {
                Some(tok) => {
                    let v = parse_f64(tok, "buffer_mins")?;
                    if !v.is_finite() || v < 0.0 {
                        return Err(ProtoError::new(
                            "bad-number",
                            format!("buffer_mins `{tok}` must be finite and non-negative"),
                        ));
                    }
                    v
                }
                None => 0.0,
            };
            let shards = match args.get(5) {
                Some(tok) => Some(parse_u64(tok, "shards")?),
                None => None,
            };
            Command::Hello {
                tenant: args[0].to_string(),
                preset: args[1].to_string(),
                seed: parse_u64(args[2], "seed")?,
                policy: args.get(3).unwrap_or(&"baseline1").to_string(),
                buffer_mins,
                shards,
            }
        }
        "ORDER" => {
            if args.len() != 5 {
                return Err(arity(
                    "ORDER",
                    args.len(),
                    "<pickup> <delivery> <qty> <created_s> <deadline_s>",
                ));
            }
            Command::Order {
                pickup: NodeId(parse_u32(args[0], "pickup")?),
                delivery: NodeId(parse_u32(args[1], "delivery")?),
                quantity: parse_f64(args[2], "qty")?,
                created: parse_time(args[3], "created_s")?,
                deadline: parse_time(args[4], "deadline_s")?,
            }
        }
        "CANCEL" => {
            if args.len() != 2 {
                return Err(arity("CANCEL", args.len(), "<order> <at_s>"));
            }
            Command::Cancel {
                order: OrderId(parse_u32(args[0], "order")?),
                at: parse_time(args[1], "at_s")?,
            }
        }
        "BREAKDOWN" => {
            if args.len() != 2 {
                return Err(arity("BREAKDOWN", args.len(), "<vehicle> <at_s>"));
            }
            Command::Breakdown {
                vehicle: VehicleId(parse_u32(args[0], "vehicle")?),
                at: parse_time(args[1], "at_s")?,
            }
        }
        "RECOVER" => {
            if args.len() != 2 {
                return Err(arity("RECOVER", args.len(), "<vehicle> <at_s>"));
            }
            Command::Recover {
                vehicle: VehicleId(parse_u32(args[0], "vehicle")?),
                at: parse_time(args[1], "at_s")?,
            }
        }
        "FLUSH" => {
            if args.len() != 1 {
                return Err(arity("FLUSH", args.len(), "<at_s>"));
            }
            Command::Flush {
                at: parse_time(args[0], "at_s")?,
            }
        }
        "DRAIN" => {
            if !args.is_empty() {
                return Err(arity("DRAIN", args.len(), "no arguments"));
            }
            Command::Drain
        }
        "RESUME" => {
            if !(2..=3).contains(&args.len()) {
                return Err(arity("RESUME", args.len(), "<tenant> <token> [ack]"));
            }
            Command::Resume {
                tenant: args[0].to_string(),
                token: args[1].to_string(),
                ack: match args.get(2) {
                    Some(tok) => parse_u64(tok, "ack")? as usize,
                    None => 0,
                },
            }
        }
        "STATS" => {
            if !args.is_empty() {
                return Err(arity("STATS", args.len(), "no arguments"));
            }
            Command::Stats
        }
        "PANIC" => {
            if !args.is_empty() {
                return Err(arity("PANIC", args.len(), "no arguments"));
            }
            Command::Panic
        }
        other => {
            return Err(ProtoError::new(
                "unknown-command",
                format!("`{other}` is not a protocol command"),
            ))
        }
    };
    Ok(Some(command))
}

/// Stable wire name of a [`DecisionReason`].
pub fn reason_name(reason: DecisionReason) -> &'static str {
    match reason {
        DecisionReason::Assigned => "assigned",
        DecisionReason::NoFeasibleVehicle => "no_feasible_vehicle",
        DecisionReason::PolicyRejected => "policy_rejected",
        DecisionReason::InfeasibleChoice => "infeasible_choice",
        DecisionReason::HorizonExceeded => "horizon_exceeded",
        DecisionReason::Cancelled => "cancelled",
        DecisionReason::VehicleLost => "vehicle_lost",
    }
}

/// Inverse of [`reason_name`].
pub fn parse_reason(tok: &str) -> Option<DecisionReason> {
    Some(match tok {
        "assigned" => DecisionReason::Assigned,
        "no_feasible_vehicle" => DecisionReason::NoFeasibleVehicle,
        "policy_rejected" => DecisionReason::PolicyRejected,
        "infeasible_choice" => DecisionReason::InfeasibleChoice,
        "horizon_exceeded" => DecisionReason::HorizonExceeded,
        "cancelled" => DecisionReason::Cancelled,
        "vehicle_lost" => DecisionReason::VehicleLost,
        _ => return None,
    })
}

/// One decision as it travels on the wire — the exact tuple the parity
/// suite compares between a TCP episode and an in-process replay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireDecision {
    /// The decided order (engine-assigned id).
    pub order: OrderId,
    /// The serving vehicle, `None` when rejected.
    pub vehicle: Option<VehicleId>,
    /// Why the decision turned out this way.
    pub reason: DecisionReason,
    /// Decision time, seconds (bit-exact).
    pub time_s: f64,
}

/// Formats a `DECISION` line.
pub fn format_decision(d: &WireDecision) -> String {
    let vehicle = match d.vehicle {
        Some(v) => v.index().to_string(),
        None => "-".to_string(),
    };
    format!(
        "DECISION {} {} {} {}",
        d.order.index(),
        vehicle,
        reason_name(d.reason),
        d.time_s
    )
}

/// Formats an `EPOCH` line.
pub fn format_epoch(e: &EpochInfo) -> String {
    format!("EPOCH {} {} {}", e.index, e.now.seconds(), e.num_orders)
}

/// Formats a `DISRUPT` line.
pub fn format_disruption(d: &DisruptionRecord) -> String {
    let t = d.time.seconds();
    match &d.kind {
        DisruptionKind::OrderCancelled {
            order,
            outcome,
            vehicle,
        } => {
            let outcome = match outcome {
                CancelOutcome::BeforeDispatch => "before_dispatch",
                CancelOutcome::AfterAssignment => "after_assignment",
                CancelOutcome::TooLate => "too_late",
            };
            match vehicle {
                Some(v) => format!(
                    "DISRUPT {t} cancel {} {outcome} {}",
                    order.index(),
                    v.index()
                ),
                None => format!("DISRUPT {t} cancel {} {outcome}", order.index()),
            }
        }
        DisruptionKind::VehicleBreakdown {
            vehicle,
            stranded,
            lost,
        } => format!(
            "DISRUPT {t} breakdown {} stranded={} lost={}",
            vehicle.index(),
            stranded.len(),
            lost.len()
        ),
        DisruptionKind::VehicleRecovered { vehicle } => {
            format!("DISRUPT {t} recover {}", vehicle.index())
        }
    }
}

/// A point-in-time health snapshot of the server, as carried by a `STATS`
/// frame and returned by
/// [`ServerHandle::stats`](crate::ServerHandle::stats).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Sessions currently running (accepted, not yet finished).
    pub active: usize,
    /// Sessions accepted over the server's lifetime.
    pub total: usize,
    /// Session threads that died by panic (supervised: each wrote
    /// `ERR internal` + `BYE` and took nothing else down).
    pub panics: usize,
    /// Connections shed with `ERR overloaded` at the session cap.
    pub shed: usize,
    /// Sessions reaped by the idle deadline (`ERR idle-timeout`).
    pub reaped: usize,
    /// Episodes rebuilt from a journal via `RESUME`.
    pub resumed: usize,
}

/// Formats a `STATS` frame.
pub fn format_stats(s: &StatsSnapshot) -> String {
    format!(
        "STATS active={} total={} panics={} shed={} reaped={} resumed={}",
        s.active, s.total, s.panics, s.shed, s.reaped, s.resumed,
    )
}

fn parse_stats(args: &[&str]) -> Result<StatsSnapshot, ProtoError> {
    let fields: Vec<(&str, &str)> = args.iter().filter_map(|tok| tok.split_once('=')).collect();
    let count = |key: &str| -> Result<usize, ProtoError> {
        let tok = metrics_field(&fields, key)?;
        tok.parse::<usize>()
            .map_err(|_| ProtoError::new("bad-stats", format!("field `{key}` = `{tok}`")))
    };
    Ok(StatsSnapshot {
        active: count("active")?,
        total: count("total")?,
        panics: count("panics")?,
        shed: count("shed")?,
        reaped: count("reaped")?,
        resumed: count("resumed")?,
    })
}

/// Formats the final `METRICS` line from an episode's aggregates.
pub fn format_metrics(m: &EpisodeMetrics) -> String {
    format!(
        "METRICS served={} rejected={} nuv={} ttl={} total_cost={} avg_response_s={} \
         rej_no_feasible={} rej_policy={} rej_infeasible={} rej_horizon={} \
         rej_cancelled={} rej_vehicle_lost={}",
        m.served,
        m.rejected,
        m.nuv,
        m.ttl,
        m.total_cost,
        m.avg_response_secs,
        m.rejections.no_feasible_vehicle,
        m.rejections.policy_rejected,
        m.rejections.infeasible_choice,
        m.rejections.horizon_exceeded,
        m.rejections.cancelled,
        m.rejections.vehicle_lost,
    )
}

/// One parsed server → client frame.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerMsg {
    /// `OK <detail...>` — a positive acknowledgement (handshake).
    Ok(String),
    /// `ERR <code> <detail...>` — a structured protocol error.
    Err {
        /// Stable error class.
        code: String,
        /// Human-oriented detail.
        detail: String,
    },
    /// `DECISION ...` — one committed dispatch decision.
    Decision(WireDecision),
    /// `EPOCH <index> <now_s> <orders>` — a decision epoch opened.
    Epoch {
        /// Zero-based epoch index.
        index: usize,
        /// Epoch decision time, seconds.
        now_s: f64,
        /// Orders flushed at this epoch.
        num_orders: usize,
    },
    /// `DISRUPT <tail...>` — an applied disruption, raw tail preserved.
    Disrupt(String),
    /// `METRICS ...` — the episode's final aggregates.
    Metrics(EpisodeMetrics),
    /// `STATS ...` — a server-health snapshot (reply to a `STATS` ask).
    Stats(StatsSnapshot),
    /// `BYE` — the episode is drained; the server closes after this.
    Bye,
}

fn metrics_field<'a>(fields: &'a [(&'a str, &'a str)], key: &str) -> Result<&'a str, ProtoError> {
    fields
        .iter()
        .find(|(k, _)| *k == key)
        .map(|(_, v)| *v)
        .ok_or_else(|| ProtoError::new("bad-metrics", format!("missing field `{key}`")))
}

fn parse_metrics(args: &[&str]) -> Result<EpisodeMetrics, ProtoError> {
    let fields: Vec<(&str, &str)> = args.iter().filter_map(|tok| tok.split_once('=')).collect();
    let count = |key: &str| -> Result<usize, ProtoError> {
        let tok = metrics_field(&fields, key)?;
        tok.parse::<usize>()
            .map_err(|_| ProtoError::new("bad-metrics", format!("field `{key}` = `{tok}`")))
    };
    let float = |key: &str| -> Result<f64, ProtoError> {
        let tok = metrics_field(&fields, key)?;
        parse_f64(tok, key)
    };
    Ok(EpisodeMetrics {
        served: count("served")?,
        rejected: count("rejected")?,
        nuv: count("nuv")?,
        ttl: float("ttl")?,
        total_cost: float("total_cost")?,
        avg_response_secs: float("avg_response_s")?,
        rejections: RejectionCounts {
            no_feasible_vehicle: count("rej_no_feasible")?,
            policy_rejected: count("rej_policy")?,
            infeasible_choice: count("rej_infeasible")?,
            horizon_exceeded: count("rej_horizon")?,
            cancelled: count("rej_cancelled")?,
            vehicle_lost: count("rej_vehicle_lost")?,
        },
    })
}

/// Parses one server frame (client side). Blank lines yield `Ok(None)`.
pub fn parse_server_msg(line: &str) -> Result<Option<ServerMsg>, ProtoError> {
    let toks: Vec<&str> = line.split_whitespace().collect();
    let Some((&kind, args)) = toks.split_first() else {
        return Ok(None);
    };
    let msg = match kind {
        "OK" => ServerMsg::Ok(args.join(" ")),
        "ERR" => {
            let (code, detail) = args
                .split_first()
                .map(|(c, d)| (c.to_string(), d.join(" ")))
                .unwrap_or_default();
            ServerMsg::Err { code, detail }
        }
        "DECISION" => {
            if args.len() != 4 {
                return Err(arity("DECISION", args.len(), "4 fields"));
            }
            let vehicle = match args[1] {
                "-" => None,
                tok => Some(VehicleId(parse_u32(tok, "vehicle")?)),
            };
            let reason = parse_reason(args[2]).ok_or_else(|| {
                ProtoError::new("bad-reason", format!("unknown reason `{}`", args[2]))
            })?;
            ServerMsg::Decision(WireDecision {
                order: OrderId(parse_u32(args[0], "order")?),
                vehicle,
                reason,
                time_s: parse_f64(args[3], "time_s")?,
            })
        }
        "EPOCH" => {
            if args.len() != 3 {
                return Err(arity("EPOCH", args.len(), "3 fields"));
            }
            ServerMsg::Epoch {
                index: parse_u32(args[0], "index")? as usize,
                now_s: parse_f64(args[1], "now_s")?,
                num_orders: parse_u32(args[2], "orders")? as usize,
            }
        }
        "DISRUPT" => ServerMsg::Disrupt(args.join(" ")),
        "METRICS" => ServerMsg::Metrics(parse_metrics(args)?),
        "STATS" => ServerMsg::Stats(parse_stats(args)?),
        "BYE" => ServerMsg::Bye,
        other => {
            return Err(ProtoError::new(
                "unknown-command",
                format!("`{other}` is not a server frame"),
            ))
        }
    };
    Ok(Some(msg))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_defaults_and_overrides() {
        let cmd = parse_command("HELLO acme line4 7").unwrap().unwrap();
        assert_eq!(
            cmd,
            Command::Hello {
                tenant: "acme".into(),
                preset: "line4".into(),
                seed: 7,
                policy: "baseline1".into(),
                buffer_mins: 0.0,
                shards: None,
            }
        );
        let cmd = parse_command("HELLO t ring12 42 baseline3 10")
            .unwrap()
            .unwrap();
        assert_eq!(
            cmd,
            Command::Hello {
                tenant: "t".into(),
                preset: "ring12".into(),
                seed: 42,
                policy: "baseline3".into(),
                buffer_mins: 10.0,
                shards: None,
            }
        );
        let cmd = parse_command("HELLO t ring12 42 baseline3 10 4")
            .unwrap()
            .unwrap();
        assert_eq!(
            cmd,
            Command::Hello {
                tenant: "t".into(),
                preset: "ring12".into(),
                seed: 42,
                policy: "baseline3".into(),
                buffer_mins: 10.0,
                shards: Some(4),
            }
        );
        assert_eq!(
            parse_command("HELLO t ring12 42 baseline3 10 four")
                .unwrap_err()
                .code,
            "bad-number"
        );
    }

    #[test]
    fn malformed_frames_produce_stable_codes() {
        assert_eq!(parse_command("").unwrap(), None);
        assert_eq!(parse_command("   ").unwrap(), None);
        assert_eq!(parse_command("NOPE 1").unwrap_err().code, "unknown-command");
        assert_eq!(parse_command("ORDER 1 2 3").unwrap_err().code, "bad-arity");
        assert_eq!(
            parse_command("ORDER 1 2 3 x 5").unwrap_err().code,
            "bad-number"
        );
        assert_eq!(parse_command("FLUSH -4").unwrap_err().code, "bad-number");
        assert_eq!(parse_command("FLUSH NaN").unwrap_err().code, "bad-number");
        assert_eq!(parse_command("DRAIN now").unwrap_err().code, "bad-arity");
        assert_eq!(
            parse_command("HELLO t p 9 pol inf").unwrap_err().code,
            "bad-number"
        );
    }

    #[test]
    fn order_frame_round_trips_seconds_exactly() {
        // An awkward decimal: the shortest round-trip printing must come
        // back bit-identical through the wire.
        let created = TimePoint::from_hours(8.17).seconds();
        let line = format!("ORDER 1 2 3.5 {created} {}", created + 21_600.0);
        match parse_command(&line).unwrap().unwrap() {
            Command::Order {
                created: c,
                deadline: d,
                quantity,
                ..
            } => {
                assert_eq!(c.seconds().to_bits(), created.to_bits());
                assert_eq!(d.seconds().to_bits(), (created + 21_600.0).to_bits());
                assert_eq!(quantity, 3.5);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn decision_line_round_trips() {
        let d = WireDecision {
            order: OrderId(17),
            vehicle: Some(VehicleId(3)),
            reason: DecisionReason::Assigned,
            time_s: 29_412.000000000004,
        };
        let line = format_decision(&d);
        match parse_server_msg(&line).unwrap().unwrap() {
            ServerMsg::Decision(back) => {
                assert_eq!(back, d);
                assert_eq!(back.time_s.to_bits(), d.time_s.to_bits());
            }
            other => panic!("unexpected {other:?}"),
        }
        let rej = WireDecision {
            order: OrderId(2),
            vehicle: None,
            reason: DecisionReason::NoFeasibleVehicle,
            time_s: 0.1,
        };
        assert_eq!(
            parse_server_msg(&format_decision(&rej)).unwrap().unwrap(),
            ServerMsg::Decision(rej)
        );
    }

    #[test]
    fn metrics_line_round_trips() {
        let m = EpisodeMetrics {
            nuv: 3,
            ttl: 123.45600000000002,
            total_cost: 1746.912,
            served: 9,
            rejected: 4,
            rejections: RejectionCounts {
                no_feasible_vehicle: 1,
                policy_rejected: 0,
                infeasible_choice: 0,
                horizon_exceeded: 0,
                cancelled: 2,
                vehicle_lost: 1,
            },
            avg_response_secs: 300.5,
        };
        match parse_server_msg(&format_metrics(&m)).unwrap().unwrap() {
            ServerMsg::Metrics(back) => assert_eq!(back, m),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn resume_stats_and_panic_frames_parse() {
        assert_eq!(
            parse_command("RESUME acme tok123").unwrap().unwrap(),
            Command::Resume {
                tenant: "acme".into(),
                token: "tok123".into(),
                ack: 0,
            }
        );
        assert_eq!(
            parse_command("RESUME acme tok123 17").unwrap().unwrap(),
            Command::Resume {
                tenant: "acme".into(),
                token: "tok123".into(),
                ack: 17,
            }
        );
        assert_eq!(
            parse_command("RESUME acme tok123 lots").unwrap_err().code,
            "bad-number"
        );
        assert_eq!(parse_command("RESUME acme").unwrap_err().code, "bad-arity");
        assert_eq!(parse_command("STATS").unwrap().unwrap(), Command::Stats);
        assert_eq!(parse_command("STATS now").unwrap_err().code, "bad-arity");
        assert_eq!(parse_command("PANIC").unwrap().unwrap(), Command::Panic);
        assert_eq!(parse_command("PANIC hard").unwrap_err().code, "bad-arity");
    }

    #[test]
    fn stats_line_round_trips() {
        let s = StatsSnapshot {
            active: 2,
            total: 9,
            panics: 1,
            shed: 3,
            reaped: 4,
            resumed: 5,
        };
        match parse_server_msg(&format_stats(&s)).unwrap().unwrap() {
            ServerMsg::Stats(back) => assert_eq!(back, s),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn every_reason_round_trips() {
        for reason in [
            DecisionReason::Assigned,
            DecisionReason::NoFeasibleVehicle,
            DecisionReason::PolicyRejected,
            DecisionReason::InfeasibleChoice,
            DecisionReason::HorizonExceeded,
            DecisionReason::Cancelled,
            DecisionReason::VehicleLost,
        ] {
            assert_eq!(parse_reason(reason_name(reason)), Some(reason));
        }
        assert_eq!(parse_reason("nope"), None);
    }
}
