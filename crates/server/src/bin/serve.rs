//! Standalone decision service.
//!
//! ```text
//! cargo run --release -p dpdp-server --bin serve -- [--addr HOST:PORT] [--threads N] [--queue N]
//!     [--journal-dir DIR] [--idle-timeout SECS] [--max-sessions N] [--drain-timeout SECS]
//!     [--debug-frames]
//! ```

use dpdp_server::{DecisionServer, ServerConfig};
use std::time::Duration;

const USAGE: &str = "\
options:
  --addr HOST:PORT      listen address (default 127.0.0.1:7878; port 0 = OS-picked)
  --threads N           shared scoring pool width (default 1)
  --queue N             per-session command queue bound (default 64)
  --journal-dir DIR     mirror session journals to DIR (RESUME survives restarts)
  --idle-timeout SECS   reap sockets with no frame for SECS seconds (default: never)
  --max-sessions N      shed connects beyond N live sessions with ERR overloaded
  --drain-timeout SECS  graceful-shutdown episode budget (default 5)
  --debug-frames        honour the PANIC debug frame (crash injection for chaos tests)
  -h, --help            print this help";

fn fail(msg: &str) -> ! {
    eprintln!("serve: {msg}\n{USAGE}");
    std::process::exit(2);
}

fn main() {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut config = ServerConfig::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--addr" => match it.next() {
                Some(v) => addr = v.clone(),
                None => fail("flag `--addr` needs a value"),
            },
            "--threads" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) if v >= 1 => config.threads = v,
                _ => fail("flag `--threads` needs a positive integer"),
            },
            "--queue" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) if v >= 1 => config.queue_depth = v,
                _ => fail("flag `--queue` needs a positive integer"),
            },
            "--journal-dir" => match it.next() {
                Some(v) => config.journal_dir = Some(v.into()),
                None => fail("flag `--journal-dir` needs a directory path"),
            },
            "--idle-timeout" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v > 0.0 => config.idle_timeout = Some(Duration::from_secs_f64(v)),
                _ => fail("flag `--idle-timeout` needs a positive number of seconds"),
            },
            "--max-sessions" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) if v >= 1 => config.max_sessions = Some(v),
                _ => fail("flag `--max-sessions` needs a positive integer"),
            },
            "--drain-timeout" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v > 0.0 => config.drain_timeout = Duration::from_secs_f64(v),
                _ => fail("flag `--drain-timeout` needs a positive number of seconds"),
            },
            "--debug-frames" => config.debug_frames = true,
            "-h" | "--help" => {
                println!("{USAGE}");
                return;
            }
            other => fail(&format!("unknown flag `{other}`")),
        }
    }

    let server = match DecisionServer::bind(&addr, config) {
        Ok(server) => server,
        Err(e) => fail(&format!("cannot bind {addr}: {e}")),
    };
    match server.local_addr() {
        Ok(bound) => println!("dpdp-server listening on {bound}"),
        Err(e) => fail(&format!("cannot read bound address: {e}")),
    }
    if let Err(e) = server.run() {
        eprintln!("serve: accept loop failed: {e}");
        std::process::exit(1);
    }
}
