//! Standalone decision service.
//!
//! ```text
//! cargo run --release -p dpdp-server --bin serve -- [--addr HOST:PORT] [--threads N] [--queue N]
//! ```

use dpdp_server::{DecisionServer, ServerConfig};

const USAGE: &str = "\
options:
  --addr HOST:PORT  listen address (default 127.0.0.1:7878; port 0 = OS-picked)
  --threads N       shared scoring pool width (default 1)
  --queue N         per-session command queue bound (default 64)
  -h, --help        print this help";

fn fail(msg: &str) -> ! {
    eprintln!("serve: {msg}\n{USAGE}");
    std::process::exit(2);
}

fn main() {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut config = ServerConfig::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--addr" => match it.next() {
                Some(v) => addr = v.clone(),
                None => fail("flag `--addr` needs a value"),
            },
            "--threads" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) if v >= 1 => config.threads = v,
                _ => fail("flag `--threads` needs a positive integer"),
            },
            "--queue" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) if v >= 1 => config.queue_depth = v,
                _ => fail("flag `--queue` needs a positive integer"),
            },
            "-h" | "--help" => {
                println!("{USAGE}");
                return;
            }
            other => fail(&format!("unknown flag `{other}`")),
        }
    }

    let server = match DecisionServer::bind(&addr, config) {
        Ok(server) => server,
        Err(e) => fail(&format!("cannot bind {addr}: {e}")),
    };
    match server.local_addr() {
        Ok(bound) => println!("dpdp-server listening on {bound}"),
        Err(e) => fail(&format!("cannot read bound address: {e}")),
    }
    if let Err(e) = server.run() {
        eprintln!("serve: accept loop failed: {e}");
        std::process::exit(1);
    }
}
