//! A blocking wire client for the decision service — the counterpart the
//! examples, parity tests, and the `loadgen` bench drive.

use crate::proto::{parse_server_msg, ProtoError, ServerMsg, WireDecision};
use dpdp_sim::EpisodeMetrics;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Extracts the `token=<tok>` field from an `OK HELLO` / `OK RESUME`
/// detail line. The token is the session's `RESUME` credential.
pub fn token_from_ok_detail(detail: &str) -> Option<&str> {
    detail
        .split_ascii_whitespace()
        .find_map(|field| field.strip_prefix("token="))
}

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The socket died.
    Io(io::Error),
    /// The server spoke a frame this client cannot parse.
    Proto(ProtoError),
    /// The server answered `ERR <code> <detail>`.
    Rejected {
        /// Stable error class.
        code: String,
        /// Human-oriented detail.
        detail: String,
    },
    /// The server closed the connection mid-conversation.
    Closed,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "socket error: {e}"),
            ClientError::Proto(e) => write!(f, "unparseable server frame: {e}"),
            ClientError::Rejected { code, detail } => write!(f, "server said ERR {code} {detail}"),
            ClientError::Closed => write!(f, "server closed the connection"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Everything a drained episode streamed back, split by frame kind.
#[derive(Debug, Default)]
pub struct Episode {
    /// `DECISION` frames, in commit order.
    pub decisions: Vec<WireDecision>,
    /// `EPOCH` frames as `(index, now_s, num_orders)`.
    pub epochs: Vec<(usize, f64, usize)>,
    /// Raw `DISRUPT` tails, in application order.
    pub disruptions: Vec<String>,
    /// `ERR` frames seen while draining, as `(code, detail)`.
    pub errors: Vec<(String, String)>,
    /// The final `METRICS` frame, when the episode drained cleanly.
    pub metrics: Option<EpisodeMetrics>,
}

/// A blocking client over one session connection.
pub struct ServeClient {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl ServeClient {
    /// Connects to a [`DecisionServer`](crate::DecisionServer), retrying
    /// with capped exponential backoff (10 ms doubling to 500 ms, ~5 s
    /// total) while the connection is refused or interrupted. This
    /// closes the classic startup race: a client launched alongside the
    /// server no longer needs to sleep-and-hope before connecting. Any
    /// other error — unroutable address, permission — fails immediately.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<ServeClient> {
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut pause = Duration::from_millis(10);
        loop {
            match Self::connect_once(&addr) {
                Ok(client) => return Ok(client),
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::ConnectionRefused | io::ErrorKind::Interrupted
                    ) && Instant::now() + pause < deadline =>
                {
                    std::thread::sleep(pause);
                    pause = (pause * 2).min(Duration::from_millis(500));
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Connects without retrying — one `connect(2)`, one verdict. The
    /// building block [`connect`](Self::connect) wraps in backoff; use it
    /// directly when a refused connection is the *expected* answer (e.g.
    /// probing that a draining server no longer accepts).
    pub fn connect_once(addr: impl ToSocketAddrs) -> io::Result<ServeClient> {
        let writer = TcpStream::connect(addr)?;
        // Command frames are small and latency-bound: never Nagle them.
        writer.set_nodelay(true)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(ServeClient { writer, reader })
    }

    /// Sends one raw frame (appending the newline). Public so tests can
    /// exercise malformed input.
    pub fn send_line(&mut self, line: &str) -> io::Result<()> {
        let mut frame = String::with_capacity(line.len() + 1);
        frame.push_str(line);
        frame.push('\n');
        self.writer.write_all(frame.as_bytes())
    }

    /// Writes raw bytes with no framing at all. The chaos harness uses
    /// this to drip a frame out byte-by-byte (slow-loris) and to inject
    /// partial garbage; real clients should prefer the typed senders.
    pub fn send_bytes(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.writer.write_all(bytes)
    }

    /// Reads the next server frame; `Ok(None)` on EOF. Blank lines are
    /// skipped.
    pub fn next_msg(&mut self) -> Result<Option<ServerMsg>, ClientError> {
        loop {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                return Ok(None);
            }
            match parse_server_msg(line.trim_end_matches(['\r', '\n'])) {
                Ok(None) => continue,
                Ok(Some(msg)) => return Ok(Some(msg)),
                Err(e) => return Err(ClientError::Proto(e)),
            }
        }
    }

    /// Opens the episode: sends `HELLO` and waits for the server's
    /// verdict. Returns the `OK` detail line on success.
    pub fn hello(
        &mut self,
        tenant: &str,
        preset: &str,
        seed: u64,
        policy: &str,
        buffer_mins: f64,
    ) -> Result<String, ClientError> {
        self.send_line(&format!(
            "HELLO {tenant} {preset} {seed} {policy} {buffer_mins}"
        ))?;
        match self.next_msg()? {
            Some(ServerMsg::Ok(detail)) => Ok(detail),
            Some(ServerMsg::Err { code, detail }) => Err(ClientError::Rejected { code, detail }),
            Some(_) | None => Err(ClientError::Closed),
        }
    }

    /// Resumes an interrupted episode from its journal: sends
    /// `RESUME <tenant> <token> <ack>` and waits for the verdict. `ack`
    /// is the number of episode frames (`EPOCH` + `DECISION` + `DISRUPT`)
    /// this client already received and processed; the server suppresses
    /// re-emission of exactly that prefix, so the stream picks up where
    /// it left off. Returns the `OK RESUME` detail line on success.
    pub fn resume(&mut self, tenant: &str, token: &str, ack: usize) -> Result<String, ClientError> {
        self.send_line(&format!("RESUME {tenant} {token} {ack}"))?;
        match self.next_msg()? {
            Some(ServerMsg::Ok(detail)) => Ok(detail),
            Some(ServerMsg::Err { code, detail }) => Err(ClientError::Rejected { code, detail }),
            Some(_) | None => Err(ClientError::Closed),
        }
    }

    /// Asks the server for its lifetime counters (`STATS` frame). Works
    /// before the handshake and mid-episode alike.
    pub fn stats(&mut self) -> Result<crate::proto::StatsSnapshot, ClientError> {
        self.send_line("STATS")?;
        match self.next_msg()? {
            Some(ServerMsg::Stats(snapshot)) => Ok(snapshot),
            Some(ServerMsg::Err { code, detail }) => Err(ClientError::Rejected { code, detail }),
            Some(_) | None => Err(ClientError::Closed),
        }
    }

    /// Streams one order. Times are raw seconds.
    pub fn order(
        &mut self,
        pickup: u32,
        delivery: u32,
        quantity: f64,
        created_s: f64,
        deadline_s: f64,
    ) -> io::Result<()> {
        self.send_line(&format!(
            "ORDER {pickup} {delivery} {quantity} {created_s} {deadline_s}"
        ))
    }

    /// Cancels a streamed order.
    pub fn cancel(&mut self, order: u32, at_s: f64) -> io::Result<()> {
        self.send_line(&format!("CANCEL {order} {at_s}"))
    }

    /// Breaks a vehicle down.
    pub fn breakdown(&mut self, vehicle: u32, at_s: f64) -> io::Result<()> {
        self.send_line(&format!("BREAKDOWN {vehicle} {at_s}"))
    }

    /// Recovers a broken vehicle.
    pub fn recover(&mut self, vehicle: u32, at_s: f64) -> io::Result<()> {
        self.send_line(&format!("RECOVER {vehicle} {at_s}"))
    }

    /// Sends a time heartbeat.
    pub fn flush(&mut self, at_s: f64) -> io::Result<()> {
        self.send_line(&format!("FLUSH {at_s}"))
    }

    /// Asks the server to drain the episode.
    pub fn drain(&mut self) -> io::Result<()> {
        self.send_line("DRAIN")
    }

    /// Half-closes the connection (no more frames will be sent) without
    /// touching the read side — the wire equivalent of hanging up the
    /// command channel. The server drains the episode exactly as on
    /// `DRAIN`.
    pub fn eof(&mut self) -> io::Result<()> {
        self.writer.shutdown(std::net::Shutdown::Write)
    }

    /// Reads frames until `BYE` (or EOF), bucketing them into an
    /// [`Episode`]. Call after [`drain`](Self::drain) — or right away, to
    /// passively consume a whole episode.
    pub fn collect_episode(&mut self) -> Result<Episode, ClientError> {
        let mut episode = Episode::default();
        while let Some(msg) = self.next_msg()? {
            match msg {
                ServerMsg::Decision(d) => episode.decisions.push(d),
                ServerMsg::Epoch {
                    index,
                    now_s,
                    num_orders,
                } => episode.epochs.push((index, now_s, num_orders)),
                ServerMsg::Disrupt(tail) => episode.disruptions.push(tail),
                ServerMsg::Err { code, detail } => episode.errors.push((code, detail)),
                ServerMsg::Metrics(m) => episode.metrics = Some(m),
                ServerMsg::Ok(_) | ServerMsg::Stats(_) => {}
                ServerMsg::Bye => return Ok(episode),
            }
        }
        Ok(episode)
    }
}
