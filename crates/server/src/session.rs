//! One connection = one session = one live episode.
//!
//! The session thread owns the socket's read half. After the `HELLO`
//! handshake it spawns a scoped *sim thread* running
//! [`Simulator::serve_observed`] over a **bounded** command queue
//! ([`std::sync::mpsc::sync_channel`]) while the session thread keeps
//! parsing frames into [`StreamCommand`]s:
//!
//! ```text
//! socket ──read──> session thread ──sync_channel(depth)──> sim thread ──write──> socket
//! ```
//!
//! Backpressure falls out of the bounded queue: when a tenant produces
//! commands faster than its episode consumes them, `send` blocks the
//! session thread, the socket stops being read, and the kernel's TCP
//! window throttles *that client only* — no shared state, so no other
//! tenant stalls. Protocol errors are answered with `ERR <code> <detail>`
//! lines and the connection stays up; only `DRAIN`, EOF, or an I/O error
//! end the episode (dropping the queue's sender, which the engine treats
//! as end-of-stream — see the EOF contract on [`Simulator::serve`]).
//!
//! [`Simulator::serve`]: dpdp_sim::Simulator::serve
//! [`Simulator::serve_observed`]: dpdp_sim::Simulator::serve_observed
//! [`StreamCommand`]: dpdp_sim::StreamCommand

use crate::preset::{build_instance, build_policy, shard_config, POLICY_NAMES, PRESET_NAMES};
use crate::proto::{
    format_decision, format_disruption, format_epoch, format_metrics, parse_command, Command,
    ProtoError, WireDecision,
};
use dpdp_net::{Instance, Order, OrderId, TimeDelta};
use dpdp_pool::ThreadPool;
use dpdp_sim::{
    BufferingMode, DecisionRecord, DisruptionRecord, EpochInfo, ShardConfig, SimObserver,
    Simulator, StreamCommand,
};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::mpsc::sync_channel;
use std::sync::{Arc, Mutex};

/// Shared per-server session parameters.
pub(crate) struct SessionContext {
    /// The scoring pool every episode shares.
    pub pool: Arc<ThreadPool>,
    /// Bound of each session's command queue (≥ 1).
    pub queue_depth: usize,
}

/// Writes one frame; returns `false` once the client is unreachable.
fn send_line(writer: &Mutex<TcpStream>, line: &str) -> bool {
    let mut guard = writer.lock().expect("wire writer lock");
    let mut frame = String::with_capacity(line.len() + 1);
    frame.push_str(line);
    frame.push('\n');
    guard.write_all(frame.as_bytes()).is_ok()
}

/// Bridges episode observations onto the wire as `EPOCH` / `DECISION` /
/// `DISRUPT` lines. A write failure marks the observer dead: the episode
/// keeps running to a clean drain, it just stops narrating.
struct WireObserver<'w> {
    writer: &'w Mutex<TcpStream>,
    dead: bool,
}

impl WireObserver<'_> {
    fn emit(&mut self, line: &str) {
        if !self.dead {
            self.dead = !send_line(self.writer, line);
        }
    }
}

impl SimObserver for WireObserver<'_> {
    fn on_epoch(&mut self, epoch: &EpochInfo) {
        self.emit(&format_epoch(epoch));
    }

    fn on_decision(&mut self, record: &DecisionRecord<'_>) {
        let a = record.assignment;
        self.emit(&format_decision(&WireDecision {
            order: a.order,
            vehicle: a.vehicle,
            reason: a.reason,
            time_s: a.time.seconds(),
        }));
    }

    fn on_disruption(&mut self, record: &DisruptionRecord) {
        self.emit(&format_disruption(record));
    }
}

/// A validated handshake.
struct Hello {
    tenant: String,
    preset: String,
    seed: u64,
    policy: String,
    buffering: BufferingMode,
    sharding: ShardConfig,
}

/// Largest flat shard count a `HELLO` override may request. Shards beyond
/// the node count waste partition work without changing decisions, and an
/// absurd count is almost certainly a client bug — answer with a
/// structured error instead of silently clamping.
const MAX_WIRE_SHARDS: u64 = 1024;

/// Validates a `HELLO` against the preset/policy registries and resolves
/// the episode's shard layout (registry default, or the frame's override).
fn validate_hello(cmd: Command) -> Result<Hello, ProtoError> {
    let Command::Hello {
        tenant,
        preset,
        seed,
        policy,
        buffer_mins,
        shards,
    } = cmd
    else {
        return Err(ProtoError::new(
            "expected-hello",
            "the first frame must be HELLO <tenant> <preset> <seed> [policy] [buffer_mins] [shards]",
        ));
    };
    if !PRESET_NAMES.contains(&preset.as_str()) {
        return Err(ProtoError::new(
            "unknown-preset",
            format!("`{preset}`; valid presets: {}", PRESET_NAMES.join(", ")),
        ));
    }
    if !POLICY_NAMES.contains(&policy.as_str()) {
        return Err(ProtoError::new(
            "unknown-policy",
            format!("`{policy}`; valid policies: {}", POLICY_NAMES.join(", ")),
        ));
    }
    let sharding = match shards {
        None => shard_config(&preset).expect("advertised presets register a shard layout"),
        Some(n) if n > MAX_WIRE_SHARDS => {
            return Err(ProtoError::new(
                "invalid-shards",
                format!("shard count {n} exceeds the serving cap of {MAX_WIRE_SHARDS}"),
            ));
        }
        Some(n) => ShardConfig::flat(n as usize)
            .map_err(|e| ProtoError::new("invalid-shards", e.to_string()))?,
    };
    let buffering = if buffer_mins > 0.0 {
        BufferingMode::FixedInterval(TimeDelta::from_minutes(buffer_mins))
    } else {
        BufferingMode::Immediate
    };
    Ok(Hello {
        tenant,
        preset,
        seed,
        policy,
        buffering,
        sharding,
    })
}

/// Runs one session to completion. Never panics outward on client
/// misbehaviour — a poisoned socket simply ends the session.
pub(crate) fn run_session(stream: TcpStream, ctx: &SessionContext) {
    // Decision frames are small and latency-bound: never Nagle them.
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut lines = BufReader::new(read_half).lines();
    let writer = Mutex::new(stream);

    // Handshake: keep answering ERR until a valid HELLO (or EOF).
    let hello = loop {
        let Some(Ok(line)) = lines.next() else {
            return; // EOF or I/O error before any episode started
        };
        match parse_command(&line) {
            Ok(None) => continue,
            Ok(Some(cmd)) => match validate_hello(cmd) {
                Ok(hello) => break hello,
                Err(err) => {
                    if !send_line(&writer, &err.to_line()) {
                        return;
                    }
                }
            },
            Err(err) => {
                if !send_line(&writer, &err.to_line()) {
                    return;
                }
            }
        }
    };

    let instance = build_instance(&hello.preset).expect("preset validated at handshake");
    if !send_line(
        &writer,
        &format!(
            "OK HELLO {} preset={} policy={} seed={} orders_base={} vehicles={} shards={}",
            hello.tenant,
            hello.preset,
            hello.policy,
            hello.seed,
            instance.num_orders(),
            instance.num_vehicles(),
            hello.sharding.num_shards(),
        ),
    ) {
        return;
    }

    let (tx, rx) = sync_channel::<StreamCommand>(ctx.queue_depth.max(1));
    std::thread::scope(|scope| {
        let sim_thread = scope.spawn(|| {
            let mut policy = build_policy(&hello.policy).expect("policy validated at handshake");
            let sim = Simulator::builder(&instance)
                .buffering(hello.buffering)
                .sharding(hello.sharding.clone())
                .seed(hello.seed)
                .thread_pool(Arc::clone(&ctx.pool))
                .build()
                .expect("presets build valid simulators");
            let mut observer = WireObserver {
                writer: &writer,
                dead: false,
            };
            let result = sim.serve_observed(rx, policy.as_mut(), &mut [&mut observer]);
            // The episode is drained: final aggregates, then goodbye.
            if send_line(&writer, &format_metrics(&result.metrics)) {
                send_line(&writer, "BYE");
            }
        });

        read_commands(&mut lines, &writer, &instance, tx);
        // Sender dropped (DRAIN / EOF): the sim thread drains remaining
        // epochs and emits METRICS + BYE on its way out.
        let _ = sim_thread.join();
    });
}

/// The post-handshake read loop. Consumes `tx`; returning drops it, which
/// is the engine's end-of-stream signal.
fn read_commands(
    lines: &mut std::io::Lines<BufReader<TcpStream>>,
    writer: &Mutex<TcpStream>,
    instance: &Instance,
    tx: std::sync::mpsc::SyncSender<StreamCommand>,
) {
    // Streamed orders get ids dense after the (empty) replay table, in
    // send order — tracked here so CANCEL frames can be validated without
    // asking the engine.
    let mut streamed = 0usize;
    for line in lines {
        let Ok(line) = line else {
            return; // connection reset
        };
        let command = match parse_command(&line) {
            Ok(None) => continue,
            Ok(Some(cmd)) => cmd,
            Err(err) => {
                if !send_line(writer, &err.to_line()) {
                    return;
                }
                continue;
            }
        };
        let reply = match command {
            Command::Hello { .. } => Some(ProtoError::new(
                "already-active",
                "this session already runs an episode",
            )),
            Command::Order {
                pickup,
                delivery,
                quantity,
                created,
                deadline,
            } => {
                match Order::new(OrderId(0), pickup, delivery, quantity, created, deadline)
                    .map_err(|e| ProtoError::new("invalid-order", e.to_string()))
                    .and_then(|order| {
                        order
                            .validate_against(&instance.network)
                            .map_err(|e| ProtoError::new("invalid-order", e.to_string()))
                            .map(|_| order)
                    }) {
                    Ok(order) => {
                        if tx.send(StreamCommand::Order(order)).is_err() {
                            return;
                        }
                        streamed += 1;
                        None
                    }
                    Err(err) => Some(err),
                }
            }
            Command::Cancel { order, at } => {
                if order.index() >= instance.num_orders() + streamed {
                    Some(ProtoError::new(
                        "unknown-order",
                        format!("order {} has not been streamed", order.index()),
                    ))
                } else if tx.send(StreamCommand::Cancel { order, at }).is_err() {
                    return;
                } else {
                    None
                }
            }
            Command::Breakdown { vehicle, at } => {
                if vehicle.index() >= instance.num_vehicles() {
                    Some(ProtoError::new(
                        "unknown-vehicle",
                        format!("fleet has {} vehicles", instance.num_vehicles()),
                    ))
                } else if tx.send(StreamCommand::Breakdown { vehicle, at }).is_err() {
                    return;
                } else {
                    None
                }
            }
            Command::Recover { vehicle, at } => {
                if vehicle.index() >= instance.num_vehicles() {
                    Some(ProtoError::new(
                        "unknown-vehicle",
                        format!("fleet has {} vehicles", instance.num_vehicles()),
                    ))
                } else if tx.send(StreamCommand::Recover { vehicle, at }).is_err() {
                    return;
                } else {
                    None
                }
            }
            Command::Flush { at } => {
                if tx.send(StreamCommand::Flush { at }).is_err() {
                    return;
                }
                None
            }
            Command::Drain => return,
        };
        if let Some(err) = reply {
            if !send_line(writer, &err.to_line()) {
                return;
            }
        }
    }
}
