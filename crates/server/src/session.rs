//! One connection = one session = one live episode.
//!
//! The session thread owns the socket's read half. After the `HELLO` (or
//! `RESUME`) handshake it spawns a scoped *sim thread* running
//! [`Simulator::serve_observed`] over a **bounded** command queue
//! ([`std::sync::mpsc::sync_channel`]) while the session thread keeps
//! parsing frames into [`StreamCommand`]s:
//!
//! ```text
//! socket ──read──> session thread ──sync_channel(depth)──> sim thread ──write──> socket
//!                    │ journal append                        │ suppress first `ack` frames on resume
//! ```
//!
//! Backpressure falls out of the bounded queue: when a tenant produces
//! commands faster than its episode consumes them, `send` blocks the
//! session thread, the socket stops being read, and the kernel's TCP
//! window throttles *that client only* — no shared state, so no other
//! tenant stalls. Protocol errors are answered with `ERR <code> <detail>`
//! lines and the connection stays up; only `DRAIN`, EOF, an I/O error, or
//! the idle deadline end the episode (dropping the queue's sender, which
//! the engine treats as end-of-stream — see the EOF contract on
//! [`Simulator::serve`]).
//!
//! Fault tolerance (see the crate docs' failure model):
//!
//! - every accepted command is appended to the tenant's write-ahead
//!   [`Journal`](crate::journal::Journal) *before* it reaches the engine;
//! - `RESUME` rebuilds an interrupted episode by pushing the journaled
//!   commands through a fresh engine first, suppressing re-emission of
//!   the first `ack` already-delivered episode frames;
//! - frames are read through a **bounded** line reader — an oversized
//!   frame draws `ERR frame-too-long` (and is discarded) instead of
//!   growing an unbounded buffer;
//! - a socket idle past [`ServerConfig::idle_timeout`] is reaped with
//!   `ERR idle-timeout` through the ordinary drain path.
//!
//! [`Simulator::serve`]: dpdp_sim::Simulator::serve
//! [`Simulator::serve_observed`]: dpdp_sim::Simulator::serve_observed
//! [`StreamCommand`]: dpdp_sim::StreamCommand
//! [`ServerConfig::idle_timeout`]: crate::ServerConfig::idle_timeout

use crate::journal::{ActiveClaim, Journal, JournalStore, SessionSpec};
use crate::preset::{build_instance, build_policy, shard_config, POLICY_NAMES, PRESET_NAMES};
use crate::proto::{
    format_decision, format_disruption, format_epoch, format_metrics, format_stats, parse_command,
    Command, ProtoError, WireDecision,
};
use crate::server::ServerStats;
use dpdp_net::{Instance, Order, OrderId, TimeDelta};
use dpdp_pool::ThreadPool;
use dpdp_sim::{
    BufferingMode, DecisionRecord, DisruptionRecord, EpochInfo, ShardConfig, SimObserver,
    Simulator, StreamCommand,
};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::sync_channel;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Shared per-server session parameters.
pub(crate) struct SessionContext {
    /// The scoring pool every episode shares.
    pub pool: Arc<ThreadPool>,
    /// Bound of each session's command queue (≥ 1).
    pub queue_depth: usize,
    /// The server's lifetime counters.
    pub stats: Arc<ServerStats>,
    /// The per-tenant write-ahead journal registry.
    pub journals: Arc<JournalStore>,
    /// Per-socket read deadline (`None` = wait forever).
    pub idle_timeout: Option<Duration>,
    /// Whether debug frames (`PANIC`) are honoured.
    pub debug_frames: bool,
}

/// Hard bound on one wire frame. Real frames are tens of bytes; anything
/// near this bound is a bug or an attack, and the reader answers
/// `ERR frame-too-long` instead of buffering without limit.
pub(crate) const MAX_LINE_BYTES: usize = 16 * 1024;

/// One read attempt's outcome, from the bounded line reader.
enum Frame {
    /// A complete line (newline stripped, lossy UTF-8).
    Line(String),
    /// The line exceeded [`MAX_LINE_BYTES`]; it was consumed and dropped.
    TooLong,
    /// Clean end-of-stream.
    Eof,
    /// The idle deadline passed with no complete frame.
    TimedOut,
    /// The connection died (reset, broken pipe, …).
    Lost,
}

/// A line reader with a hard per-line byte bound — the fix for the
/// giant-frame OOM hole: an oversized line is consumed chunk-by-chunk and
/// discarded, never accumulated.
struct LineReader {
    inner: BufReader<TcpStream>,
}

impl LineReader {
    fn new(stream: TcpStream) -> LineReader {
        LineReader {
            inner: BufReader::new(stream),
        }
    }

    fn next_frame(&mut self) -> Frame {
        let mut buf: Vec<u8> = Vec::new();
        let mut overflow = false;
        loop {
            let (consumed, newline_at) = match self.inner.fill_buf() {
                Ok([]) => {
                    // EOF: a final unterminated line still counts.
                    return if overflow {
                        Frame::TooLong
                    } else if buf.is_empty() {
                        Frame::Eof
                    } else {
                        Frame::Line(finish_line(buf))
                    };
                }
                Ok(chunk) => {
                    let newline_at = chunk.iter().position(|&b| b == b'\n');
                    let take = newline_at.map_or(chunk.len(), |p| p);
                    if !overflow {
                        if buf.len() + take > MAX_LINE_BYTES {
                            overflow = true;
                            buf.clear();
                        } else {
                            buf.extend_from_slice(&chunk[..take]);
                        }
                    }
                    (newline_at.map_or(chunk.len(), |p| p + 1), newline_at)
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    return Frame::TimedOut;
                }
                Err(_) => return Frame::Lost,
            };
            self.inner.consume(consumed);
            if newline_at.is_some() {
                return if overflow {
                    Frame::TooLong
                } else {
                    Frame::Line(finish_line(buf))
                };
            }
        }
    }
}

fn finish_line(mut buf: Vec<u8>) -> String {
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    String::from_utf8_lossy(&buf).into_owned()
}

/// Writes one frame; returns `false` once the client is unreachable.
fn send_line(writer: &Mutex<TcpStream>, line: &str) -> bool {
    let mut guard = writer.lock().expect("wire writer lock");
    let mut frame = String::with_capacity(line.len() + 1);
    frame.push_str(line);
    frame.push('\n');
    guard.write_all(frame.as_bytes()).is_ok()
}

/// Bridges episode observations onto the wire as `EPOCH` / `DECISION` /
/// `DISRUPT` lines. A write failure marks the observer dead: the episode
/// keeps running to a clean drain, it just stops narrating. On a resumed
/// episode, the first `skip` frames — the ones the client acknowledged
/// receiving before the interruption — are suppressed: the replay is
/// deterministic, so frame `ack` onward is exactly the continuation.
struct WireObserver<'w> {
    writer: &'w Mutex<TcpStream>,
    dead: bool,
    skip: usize,
}

impl WireObserver<'_> {
    fn emit(&mut self, line: &str) {
        if self.skip > 0 {
            self.skip -= 1;
            return;
        }
        if !self.dead {
            self.dead = !send_line(self.writer, line);
        }
    }
}

impl SimObserver for WireObserver<'_> {
    fn on_epoch(&mut self, epoch: &EpochInfo) {
        self.emit(&format_epoch(epoch));
    }

    fn on_decision(&mut self, record: &DecisionRecord<'_>) {
        let a = record.assignment;
        self.emit(&format_decision(&WireDecision {
            order: a.order,
            vehicle: a.vehicle,
            reason: a.reason,
            time_s: a.time.seconds(),
        }));
    }

    fn on_disruption(&mut self, record: &DisruptionRecord) {
        self.emit(&format_disruption(record));
    }
}

/// Largest flat shard count a `HELLO` override may request. Shards beyond
/// the node count waste partition work without changing decisions, and an
/// absurd count is almost certainly a client bug — answer with a
/// structured error instead of silently clamping.
const MAX_WIRE_SHARDS: u64 = 1024;

/// Resolves a validated spec's buffering mode and shard layout — shared
/// by the `HELLO` and `RESUME` paths so a resumed episode is configured
/// exactly like the original.
fn resolve_spec(spec: &SessionSpec) -> Result<(BufferingMode, ShardConfig), ProtoError> {
    if !PRESET_NAMES.contains(&spec.preset.as_str()) {
        return Err(ProtoError::new(
            "unknown-preset",
            format!(
                "`{}`; valid presets: {}",
                spec.preset,
                PRESET_NAMES.join(", ")
            ),
        ));
    }
    if !POLICY_NAMES.contains(&spec.policy.as_str()) {
        return Err(ProtoError::new(
            "unknown-policy",
            format!(
                "`{}`; valid policies: {}",
                spec.policy,
                POLICY_NAMES.join(", ")
            ),
        ));
    }
    let sharding = match spec.shards {
        None => shard_config(&spec.preset).expect("advertised presets register a shard layout"),
        Some(n) if n > MAX_WIRE_SHARDS => {
            return Err(ProtoError::new(
                "invalid-shards",
                format!("shard count {n} exceeds the serving cap of {MAX_WIRE_SHARDS}"),
            ));
        }
        Some(n) => ShardConfig::flat(n as usize)
            .map_err(|e| ProtoError::new("invalid-shards", e.to_string()))?,
    };
    let buffering = if spec.buffer_mins > 0.0 {
        BufferingMode::FixedInterval(TimeDelta::from_minutes(spec.buffer_mins))
    } else {
        BufferingMode::Immediate
    };
    Ok((buffering, sharding))
}

/// A claimed, validated way into an episode: fresh (`HELLO`) or rebuilt
/// from a journal (`RESUME`).
struct Opening {
    spec: SessionSpec,
    buffering: BufferingMode,
    sharding: ShardConfig,
    journal: Arc<Mutex<Journal>>,
    claim: ActiveClaim,
    /// Journaled commands to re-inject before going live (empty on HELLO).
    replay: Vec<StreamCommand>,
    /// Episode frames to suppress during the replay.
    ack: usize,
    token: String,
}

fn open_hello(cmd: Command, ctx: &SessionContext) -> Result<Opening, ProtoError> {
    let Command::Hello {
        tenant,
        preset,
        seed,
        policy,
        buffer_mins,
        shards,
    } = cmd
    else {
        unreachable!("caller matched Command::Hello");
    };
    let spec = SessionSpec {
        tenant,
        preset,
        seed,
        policy,
        buffer_mins,
        shards,
    };
    let (buffering, sharding) = resolve_spec(&spec)?;
    let journal = ctx.journals.open(spec.clone())?;
    let token = journal.lock().expect("fresh journal lock").token.clone();
    Ok(Opening {
        spec,
        buffering,
        sharding,
        claim: ActiveClaim(Arc::clone(&journal)),
        journal,
        replay: Vec::new(),
        ack: 0,
        token,
    })
}

fn open_resume(
    tenant: &str,
    token: &str,
    ack: usize,
    ctx: &SessionContext,
) -> Result<Opening, ProtoError> {
    let journal = ctx.journals.resume(tenant, token)?;
    let claim = ActiveClaim(Arc::clone(&journal));
    let (spec, replay) = {
        let guard = journal.lock().unwrap_or_else(|p| p.into_inner());
        (guard.spec.clone(), guard.commands.clone())
    };
    // A file-loaded journal re-validates like a fresh HELLO would; a
    // registry drift (e.g. a journal written by a newer server) draws the
    // same structured errors. The claim guard releases on the error path.
    let (buffering, sharding) = resolve_spec(&spec)?;
    drop(claim);
    Ok(Opening {
        spec,
        buffering,
        sharding,
        claim: ActiveClaim(Arc::clone(&journal)),
        journal,
        replay,
        ack,
        token: token.to_string(),
    })
}

/// How the command stream ended — decides the journal's fate.
#[derive(PartialEq, Eq)]
enum StreamEnd {
    /// Explicit `DRAIN`: the episode completed; the journal is finished.
    Drained,
    /// EOF, reset, reap, or send failure: the journal stays resumable.
    Interrupted,
}

/// Runs one session to completion. Never panics outward on client
/// misbehaviour — a poisoned socket simply ends the session. (A genuine
/// panic — engine bug, or an injected `PANIC` debug frame — unwinds into
/// the supervisor in `server.rs`, which answers `ERR internal` and keeps
/// the process serving.)
pub(crate) fn run_session(stream: TcpStream, ctx: &SessionContext) {
    // Decision frames are small and latency-bound: never Nagle them.
    let _ = stream.set_nodelay(true);
    // The idle deadline applies from the first byte: a connection that
    // never completes a handshake is reaped like a mid-episode ghost.
    if ctx.idle_timeout.is_some() {
        let _ = stream.set_read_timeout(ctx.idle_timeout);
    }
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = LineReader::new(read_half);
    let writer = Mutex::new(stream);

    // Handshake: keep answering ERR until a valid HELLO or RESUME (or
    // EOF, or the idle deadline).
    let opening = loop {
        let line = match reader.next_frame() {
            Frame::Eof | Frame::Lost => return,
            Frame::TimedOut => {
                ctx.stats.reaped.fetch_add(1, Ordering::AcqRel);
                let _ = send_line(
                    &writer,
                    "ERR idle-timeout no frame before the idle deadline",
                );
                return;
            }
            Frame::TooLong => {
                if !send_line(&writer, &frame_too_long().to_line()) {
                    return;
                }
                continue;
            }
            Frame::Line(line) => line,
        };
        let attempt = match parse_command(&line) {
            Ok(None) => continue,
            Ok(Some(Command::Stats)) => {
                if !send_line(&writer, &format_stats(&ctx.stats.snapshot())) {
                    return;
                }
                continue;
            }
            Ok(Some(Command::Panic)) => {
                if ctx.debug_frames {
                    panic!("PANIC debug frame: injected session crash");
                }
                Err(debug_disabled())
            }
            Ok(Some(cmd @ Command::Hello { .. })) => open_hello(cmd, ctx),
            Ok(Some(Command::Resume { tenant, token, ack })) => {
                open_resume(&tenant, &token, ack, ctx)
            }
            Ok(Some(_)) => Err(ProtoError::new(
                "expected-hello",
                "the first frame must be HELLO <tenant> <preset> <seed> [policy] [buffer_mins] \
                 [shards] or RESUME <tenant> <token> [ack]",
            )),
            Err(err) => Err(err),
        };
        match attempt {
            Ok(opening) => break opening,
            Err(err) => {
                if !send_line(&writer, &err.to_line()) {
                    return;
                }
            }
        }
    };

    let resumed = !opening.replay.is_empty() || opening.ack > 0;
    if resumed {
        ctx.stats.resumed.fetch_add(1, Ordering::AcqRel);
    }
    let instance = build_instance(&opening.spec.preset).expect("preset validated at opening");
    let greeting = if resumed {
        format!(
            "OK RESUME {} preset={} policy={} seed={} replayed={} ack={} token={}",
            opening.spec.tenant,
            opening.spec.preset,
            opening.spec.policy,
            opening.spec.seed,
            opening.replay.len(),
            opening.ack,
            opening.token,
        )
    } else {
        format!(
            "OK HELLO {} preset={} policy={} seed={} orders_base={} vehicles={} shards={} token={}",
            opening.spec.tenant,
            opening.spec.preset,
            opening.spec.policy,
            opening.spec.seed,
            instance.num_orders(),
            instance.num_vehicles(),
            opening.sharding.num_shards(),
            opening.token,
        )
    };
    if !send_line(&writer, &greeting) {
        return;
    }

    // Set by an injected PANIC right before unwinding: a crashed session
    // must not narrate a clean drain (METRICS + BYE) on its way down —
    // the supervisor's `ERR internal` + `BYE` is the only farewell.
    let crashed = AtomicBool::new(false);

    let (tx, rx) = sync_channel::<StreamCommand>(ctx.queue_depth.max(1));
    let end = std::thread::scope(|scope| {
        let sim_thread = scope.spawn(|| {
            let mut policy =
                build_policy(&opening.spec.policy).expect("policy validated at opening");
            let sim = Simulator::builder(&instance)
                .buffering(opening.buffering)
                .sharding(opening.sharding.clone())
                .seed(opening.spec.seed)
                .thread_pool(Arc::clone(&ctx.pool))
                .build()
                .expect("presets build valid simulators");
            let mut observer = WireObserver {
                writer: &writer,
                dead: false,
                skip: opening.ack,
            };
            let result = sim.serve_observed(rx, policy.as_mut(), &mut [&mut observer]);
            // The episode is drained: final aggregates, then goodbye.
            if !crashed.load(Ordering::Acquire)
                && send_line(&writer, &format_metrics(&result.metrics))
            {
                send_line(&writer, "BYE");
            }
        });

        // Resume: re-inject the journal through the fresh engine before
        // reading live frames. The bounded queue applies backpressure to
        // the replay exactly as it would to the wire.
        let mut replay_ok = true;
        let mut streamed = 0usize;
        for cmd in &opening.replay {
            if matches!(cmd, StreamCommand::Order(_)) {
                streamed += 1;
            }
            if tx.send(cmd.clone()).is_err() {
                replay_ok = false;
                break;
            }
        }

        let end = if replay_ok {
            read_commands(
                &mut reader,
                &writer,
                &instance,
                tx,
                &opening.journal,
                ctx,
                &crashed,
                streamed,
            )
        } else {
            drop(tx);
            StreamEnd::Interrupted
        };
        // Sender dropped (DRAIN / EOF / reap): the sim thread drains
        // remaining epochs and emits METRICS + BYE on its way out.
        let _ = sim_thread.join();
        end
    });

    drop(opening.claim);
    if end == StreamEnd::Drained {
        ctx.journals.finish(&opening.spec.tenant);
    }
}

fn frame_too_long() -> ProtoError {
    ProtoError::new(
        "frame-too-long",
        format!("frames are capped at {MAX_LINE_BYTES} bytes; the line was discarded"),
    )
}

fn debug_disabled() -> ProtoError {
    ProtoError::new(
        "debug-disabled",
        "PANIC is a debug frame; start the server with debug frames enabled to use it",
    )
}

/// The post-handshake read loop. Consumes `tx`; returning drops it, which
/// is the engine's end-of-stream signal. Every accepted command is
/// journaled before it is forwarded (write-ahead: an accepted command is
/// recovered even if it never reached the engine).
#[allow(clippy::too_many_arguments)] // session-internal plumbing
fn read_commands(
    reader: &mut LineReader,
    writer: &Mutex<TcpStream>,
    instance: &Instance,
    tx: std::sync::mpsc::SyncSender<StreamCommand>,
    journal: &Arc<Mutex<Journal>>,
    ctx: &SessionContext,
    crashed: &AtomicBool,
    mut streamed: usize,
) -> StreamEnd {
    // Streamed orders get ids dense after the (empty) replay table, in
    // send order — tracked here (seeded with the journal's replayed
    // orders) so CANCEL frames can be validated without asking the engine.
    let accept = |cmd: StreamCommand| -> bool {
        journal
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .append(cmd.clone());
        tx.send(cmd).is_ok()
    };
    loop {
        let line = match reader.next_frame() {
            Frame::Eof | Frame::Lost => return StreamEnd::Interrupted,
            Frame::TimedOut => {
                ctx.stats.reaped.fetch_add(1, Ordering::AcqRel);
                let _ = send_line(
                    writer,
                    "ERR idle-timeout no frame before the idle deadline; episode drained, \
                     journal kept for RESUME",
                );
                return StreamEnd::Interrupted;
            }
            Frame::TooLong => {
                if !send_line(writer, &frame_too_long().to_line()) {
                    return StreamEnd::Interrupted;
                }
                continue;
            }
            Frame::Line(line) => line,
        };
        let command = match parse_command(&line) {
            Ok(None) => continue,
            Ok(Some(cmd)) => cmd,
            Err(err) => {
                if !send_line(writer, &err.to_line()) {
                    return StreamEnd::Interrupted;
                }
                continue;
            }
        };
        let reply = match command {
            Command::Hello { .. } | Command::Resume { .. } => Some(ProtoError::new(
                "already-active",
                "this session already runs an episode",
            )),
            Command::Stats => {
                if !send_line(writer, &format_stats(&ctx.stats.snapshot())) {
                    return StreamEnd::Interrupted;
                }
                None
            }
            Command::Panic => {
                if ctx.debug_frames {
                    crashed.store(true, Ordering::Release);
                    panic!("PANIC debug frame: injected session crash");
                }
                Some(debug_disabled())
            }
            Command::Order {
                pickup,
                delivery,
                quantity,
                created,
                deadline,
            } => {
                match Order::new(OrderId(0), pickup, delivery, quantity, created, deadline)
                    .map_err(|e| ProtoError::new("invalid-order", e.to_string()))
                    .and_then(|order| {
                        order
                            .validate_against(&instance.network)
                            .map_err(|e| ProtoError::new("invalid-order", e.to_string()))
                            .map(|_| order)
                    }) {
                    Ok(order) => {
                        if !accept(StreamCommand::Order(order)) {
                            return StreamEnd::Interrupted;
                        }
                        streamed += 1;
                        None
                    }
                    Err(err) => Some(err),
                }
            }
            Command::Cancel { order, at } => {
                if order.index() >= instance.num_orders() + streamed {
                    Some(ProtoError::new(
                        "unknown-order",
                        format!("order {} has not been streamed", order.index()),
                    ))
                } else if !accept(StreamCommand::Cancel { order, at }) {
                    return StreamEnd::Interrupted;
                } else {
                    None
                }
            }
            Command::Breakdown { vehicle, at } => {
                if vehicle.index() >= instance.num_vehicles() {
                    Some(ProtoError::new(
                        "unknown-vehicle",
                        format!("fleet has {} vehicles", instance.num_vehicles()),
                    ))
                } else if !accept(StreamCommand::Breakdown { vehicle, at }) {
                    return StreamEnd::Interrupted;
                } else {
                    None
                }
            }
            Command::Recover { vehicle, at } => {
                if vehicle.index() >= instance.num_vehicles() {
                    Some(ProtoError::new(
                        "unknown-vehicle",
                        format!("fleet has {} vehicles", instance.num_vehicles()),
                    ))
                } else if !accept(StreamCommand::Recover { vehicle, at }) {
                    return StreamEnd::Interrupted;
                } else {
                    None
                }
            }
            Command::Flush { at } => {
                if !accept(StreamCommand::Flush { at }) {
                    return StreamEnd::Interrupted;
                }
                None
            }
            Command::Drain => return StreamEnd::Drained,
        };
        if let Some(err) = reply {
            if !send_line(writer, &err.to_line()) {
                return StreamEnd::Interrupted;
            }
        }
    }
}
