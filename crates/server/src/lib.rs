//! # dpdp-server — a socket front-end for the dispatch simulator
//!
//! The paper's system runs as an *online* service: orders stream in over
//! the network, dispatch decisions stream back. This crate is that
//! front-end for the reproduction — a dependency-free (`std::net` only)
//! TCP decision service in which **one connection is one tenant is one
//! live episode** of [`Simulator::serve`]. Disjoint tenants (cities, in
//! the paper's decomposition) share compute — a single [`dpdp_pool`]
//! scoring pool — but no state.
//!
//! ```text
//! accept loop ── conn ──> session thread ──sync_channel──> sim thread
//!                           │  parses frames                 │ Simulator::serve
//!                           └── ERR replies                  └── DECISION/EPOCH/… frames
//! ```
//!
//! ## Wire protocol
//!
//! Newline-delimited frames of whitespace-separated ASCII tokens; all
//! times are raw **seconds** (`f64`, shortest round-trip printing, so
//! values parse back bit-identically). Client → server:
//!
//! ```text
//! HELLO <tenant> <preset> <seed> [policy] [buffer_mins] [shards]   open the episode
//! RESUME <tenant> <token> [ack]                           rebuild an interrupted episode
//! ORDER <pickup> <delivery> <qty> <created_s> <deadline_s>
//! CANCEL <order> <at_s>
//! BREAKDOWN <vehicle> <at_s>
//! RECOVER <vehicle> <at_s>
//! FLUSH <at_s>                                            time heartbeat
//! STATS                                                   server lifetime counters
//! DRAIN                                                   finish gracefully
//! ```
//!
//! Server → client:
//!
//! ```text
//! OK HELLO <tenant> preset=.. policy=.. seed=.. orders_base=.. vehicles=.. shards=.. token=..
//! OK RESUME <tenant> preset=.. policy=.. seed=.. replayed=.. ack=.. token=..
//! EPOCH <index> <now_s> <orders>
//! DECISION <order> <vehicle|-> <reason> <time_s>
//! DISRUPT <time_s> cancel|breakdown|recover ...
//! METRICS served=.. rejected=.. nuv=.. ttl=.. total_cost=.. avg_response_s=.. rej_*=..
//! STATS active=.. total=.. panics=.. shed=.. reaped=.. resumed=..
//! ERR <code> <detail>
//! BYE
//! ```
//!
//! (A debug-only `PANIC` frame — honoured when the server runs with
//! [`ServerConfig::debug_frames`] — crashes the session thread on
//! purpose so tests and the chaos loadgen can exercise supervision;
//! otherwise it draws `ERR debug-disabled`.)
//!
//! ## Session lifecycle
//!
//! 1. **Handshake** — the first meaningful frame must be `HELLO`; anything
//!    else (or an unknown preset/policy, or an invalid shard count) draws
//!    an `ERR` and the server keeps waiting. On success the server replies
//!    `OK HELLO …` carrying `orders_base`, the id the first streamed order
//!    will get, and `shards`, the resolved shard layout's cell count. Each
//!    preset registers a default [`ShardConfig`](dpdp_sim::ShardConfig)
//!    (see [`preset::shard_config`]); the optional trailing `shards` token
//!    overrides it with a flat layout — sharding partitions scoring work
//!    but never changes decisions, so episodes stay bit-identical across
//!    layouts.
//! 2. **Streaming** — each parsed frame becomes a
//!    [`StreamCommand`](dpdp_sim::StreamCommand) pushed into the episode.
//!    Malformed or invalid frames (bad numbers, unknown vehicle, an order
//!    the instance's road network rejects) are answered with structured
//!    `ERR <code> <detail>` lines and **never** tear the connection down
//!    or reach the engine.
//! 3. **Drain** — on `DRAIN` or EOF the session drops the command queue's
//!    sender; the engine treats the hang-up as end-of-stream, flushes
//!    every remaining buffered epoch, and the session emits the final
//!    `METRICS` frame followed by `BYE`.
//!
//! ## Backpressure
//!
//! Each session's command queue is a *bounded* [`sync_channel`]. A tenant
//! producing faster than its episode decides blocks its own session
//! thread on `send`, which stops that socket from being read and lets the
//! kernel's TCP window throttle that client — and only that client. Slow
//! (or stalled, or vanished) consumers of the decision stream likewise
//! hurt only themselves: a failed write marks the session's observer dead
//! and the episode still drains cleanly server-side.
//!
//! ## Determinism contract
//!
//! An episode is a pure function of the `HELLO` parameters and the
//! ordered command stream. The same `(preset, seed, policy, buffer)` and
//! the same frames — over TCP, or pushed in-process through
//! [`Simulator::serve`], or replayed via
//! [`ReplaySource`](dpdp_sim::ReplaySource) — produce bit-identical
//! decisions and [`EpisodeMetrics`](dpdp_sim::EpisodeMetrics), regardless
//! of pool width, tenant count, or wall-clock timing of the frames. The
//! socket-parity suite in `tests/` enforces exactly this.
//!
//! ## Failure model & recovery
//!
//! The service assumes **fail-stop** faults — dropped connections,
//! panicking sessions, stalled or vanished peers, process restarts (with
//! a file-backed journal dir) — and recovers through the determinism
//! contract above:
//!
//! - **Write-ahead journaling.** A `HELLO` opens a per-tenant
//!   [`journal`] recording the episode spec and every
//!   accepted command *before* it reaches the engine, and answers with a
//!   `token=` credential. Journals live in an in-memory registry by
//!   default; `--journal-dir` mirrors them to disk as replayable wire
//!   transcripts (`TOKEN` line, `HELLO` header, one command per line)
//!   that survive a server restart.
//! - **Deterministic resume.** `RESUME <tenant> <token> [ack]` replays
//!   the journal through a fresh engine. `ack` is the count of episode
//!   frames (`EPOCH` + `DECISION` + `DISRUPT`, in emission order) the
//!   client already received; the server suppresses exactly that prefix
//!   and the stream continues bit-identically where it broke. Only
//!   `DRAIN` finishes (deletes) a journal — EOF, resets, idle reaps, and
//!   panics all leave it resumable. One live session per tenant journal;
//!   a second claim draws `ERR session-active`, a wrong credential
//!   `ERR bad-token`, an unknown tenant `ERR unknown-session`.
//! - **Supervision.** Session threads run under `catch_unwind`: a panic
//!   (engine bug, or an injected `PANIC` debug frame) answers
//!   `ERR internal <payload>` + `BYE`, closes that socket, bumps the
//!   `panics` counter, and the process keeps serving every other tenant.
//! - **Deadlines & shedding.** `--idle-timeout` reaps sockets with no
//!   complete frame before the deadline (`ERR idle-timeout`, journal
//!   kept); frames are capped at 16 KiB (`ERR frame-too-long`);
//!   `--max-sessions` sheds connects beyond the cap with
//!   `ERR overloaded` instead of accepting unservable sockets.
//! - **Graceful drain.** [`ServerHandle::shutdown_drain`] stops
//!   accepting, lets active episodes finish within `--drain-timeout`,
//!   then force-closes stragglers — reporting which via
//!   [`DrainOutcome`].
//!
//! The `session_recovery` test suite proves kill-mid-episode + `RESUME`
//! is bit-identical to an uninterrupted run, and `loadgen --chaos`
//! drives seeded fault injection (kills + resumes, malformed floods,
//! slow-loris writers, idle ghosts, panics) while gating that every
//! tenant still converges to correct metrics.
//!
//! [`Simulator::serve`]: dpdp_sim::Simulator::serve
//! [`sync_channel`]: std::sync::mpsc::sync_channel

#![deny(missing_docs)]

pub mod client;
pub mod journal;
pub mod preset;
pub mod proto;
mod server;
mod session;

pub use client::{token_from_ok_detail, ClientError, Episode, ServeClient};
pub use journal::SessionSpec;
pub use proto::{Command, ProtoError, ServerMsg, StatsSnapshot, WireDecision};
pub use server::{DecisionServer, DrainOutcome, ServerConfig, ServerHandle};
