//! The accept loop: a [`DecisionServer`] binds a TCP listener and hands
//! each connection to a dedicated, **supervised** session thread. All
//! sessions share one [`ThreadPool`] for epoch scoring — compute is
//! pooled, episode state is not (tenants are fully isolated, per the
//! paper's disjoint-city decomposition).
//!
//! Supervision, in three layers:
//!
//! - **Panics die alone.** Each session runs under
//!   [`std::panic::catch_unwind`]; a panicking session answers its own
//!   client `ERR internal <payload>` + `BYE` and increments a counter —
//!   the process, the accept loop, and every other tenant keep serving.
//! - **Load is shed, not queued to death.** With
//!   [`ServerConfig::max_sessions`] set, a connection beyond the cap is
//!   answered `ERR overloaded` and closed instead of being accepted into
//!   a service that cannot serve it.
//! - **Shutdown can drain.** [`ServerHandle::shutdown_drain`] stops
//!   accepting, lets active episodes finish, and force-closes whatever is
//!   still attached when the drain deadline passes.

use crate::journal::JournalStore;
use crate::proto::StatsSnapshot;
use crate::session::{run_session, SessionContext};
use dpdp_pool::ThreadPool;
use std::collections::HashMap;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tunables of a [`DecisionServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Width of the shared scoring pool (1 = serial scoring; decisions are
    /// identical either way, only wall time moves).
    pub threads: usize,
    /// Bound of each session's command queue. Small values apply
    /// backpressure sooner; the bound never affects decisions.
    pub queue_depth: usize,
    /// Directory for file-backed command journals. `None` (the default)
    /// keeps journals in memory: `RESUME` survives dropped connections
    /// but not a server process restart.
    pub journal_dir: Option<PathBuf>,
    /// Per-socket read deadline. A session idle past it is reaped with
    /// `ERR idle-timeout` through the ordinary drain path (its journal
    /// stays resumable). `None` (the default) waits forever.
    pub idle_timeout: Option<Duration>,
    /// Cap on concurrently active sessions. Connections beyond it are
    /// shed with `ERR overloaded` instead of accepted. `None` (the
    /// default) accepts without bound.
    pub max_sessions: Option<usize>,
    /// How long [`ServerHandle::shutdown_drain`] lets active episodes
    /// finish before force-closing their sockets.
    pub drain_timeout: Duration,
    /// Accept debug frames (`PANIC`) — test and chaos harness only.
    pub debug_frames: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            threads: 1,
            queue_depth: 64,
            journal_dir: None,
            idle_timeout: None,
            max_sessions: None,
            drain_timeout: Duration::from_secs(5),
            debug_frames: false,
        }
    }
}

/// Lifetime counters, all monotone except `active`. Snapshot via
/// [`ServerHandle::stats`] or the wire `STATS` frame.
#[derive(Debug, Default)]
pub(crate) struct ServerStats {
    pub(crate) active: AtomicUsize,
    pub(crate) total: AtomicUsize,
    pub(crate) panics: AtomicUsize,
    pub(crate) shed: AtomicUsize,
    pub(crate) reaped: AtomicUsize,
    pub(crate) resumed: AtomicUsize,
}

impl ServerStats {
    pub(crate) fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            active: self.active.load(Ordering::Acquire),
            total: self.total.load(Ordering::Acquire),
            panics: self.panics.load(Ordering::Acquire),
            shed: self.shed.load(Ordering::Acquire),
            reaped: self.reaped.load(Ordering::Acquire),
            resumed: self.resumed.load(Ordering::Acquire),
        }
    }
}

struct Shared {
    ctx: SessionContext,
    shutdown: AtomicBool,
    drain_timeout: Duration,
    session_seq: AtomicU64,
    /// Live session sockets, for force-close at the drain deadline.
    sessions: Mutex<HashMap<u64, TcpStream>>,
}

/// Best-effort farewell on a socket the server is about to close.
fn send_farewell(stream: &TcpStream, lines: &[&str]) {
    let mut stream = stream;
    for line in lines {
        let mut frame = String::with_capacity(line.len() + 1);
        frame.push_str(line);
        frame.push('\n');
        if stream.write_all(frame.as_bytes()).is_err() {
            return;
        }
    }
    let _ = stream.flush();
}

/// A bound, not-yet-running decision service. Call [`run`](Self::run) to
/// serve on the current thread or [`spawn`](Self::spawn) for a background
/// accept loop with a shutdown handle.
pub struct DecisionServer {
    listener: TcpListener,
    shared: Arc<Shared>,
    max_sessions: Option<usize>,
}

impl DecisionServer {
    /// Binds the listener. `addr` may use port 0 to let the OS pick (read
    /// it back with [`local_addr`](Self::local_addr)).
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> io::Result<DecisionServer> {
        let listener = TcpListener::bind(addr)?;
        let shared = Arc::new(Shared {
            ctx: SessionContext {
                pool: Arc::new(ThreadPool::new(config.threads)),
                queue_depth: config.queue_depth.max(1),
                stats: Arc::new(ServerStats::default()),
                journals: Arc::new(JournalStore::new(config.journal_dir)),
                idle_timeout: config.idle_timeout,
                debug_frames: config.debug_frames,
            },
            shutdown: AtomicBool::new(false),
            drain_timeout: config.drain_timeout,
            session_seq: AtomicU64::new(0),
            sessions: Mutex::new(HashMap::new()),
        });
        Ok(DecisionServer {
            listener,
            shared,
            max_sessions: config.max_sessions,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves connections until [`ServerHandle::shutdown`] (or a listener
    /// error). Each accepted socket gets its own named, supervised session
    /// thread; accept errors on individual connections are skipped, not
    /// fatal.
    pub fn run(self) -> io::Result<()> {
        let stats = Arc::clone(&self.shared.ctx.stats);
        loop {
            let (stream, _) = self.listener.accept()?;
            if self.shared.shutdown.load(Ordering::Acquire) {
                return Ok(());
            }
            // Shed load past the session cap: an unservable socket gets a
            // structured refusal, not a seat it would starve in.
            if let Some(cap) = self.max_sessions {
                if stats.active.load(Ordering::Acquire) >= cap {
                    stats.shed.fetch_add(1, Ordering::AcqRel);
                    let _ = stream.set_nodelay(true);
                    send_farewell(
                        &stream,
                        &[&format!("ERR overloaded session cap {cap} reached"), "BYE"],
                    );
                    continue;
                }
            }
            stats.active.fetch_add(1, Ordering::AcqRel);
            stats.total.fetch_add(1, Ordering::AcqRel);
            let id = self.shared.session_seq.fetch_add(1, Ordering::Relaxed);
            if let Ok(clone) = stream.try_clone() {
                self.shared
                    .sessions
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .insert(id, clone);
            }
            let shared = Arc::clone(&self.shared);
            std::thread::Builder::new()
                .name("dpdp-session".into())
                .spawn(move || supervise_session(stream, id, &shared))?;
        }
    }

    /// Moves the accept loop to a background thread and returns a handle
    /// for address discovery, stats, and shutdown.
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let shared = Arc::clone(&self.shared);
        let join = std::thread::Builder::new()
            .name("dpdp-accept".into())
            .spawn(move || {
                let _ = self.run();
            })?;
        Ok(ServerHandle { addr, shared, join })
    }
}

/// Runs one session under [`catch_unwind`](std::panic::catch_unwind): a
/// panic anywhere in the session (frame handling, or a sim-thread panic
/// propagated through the scoped join) is confined to this connection.
/// The supervisor answers the client `ERR internal <payload>` + `BYE`,
/// bumps the panic counter, and releases the bookkeeping the unwound
/// session can no longer release itself.
fn supervise_session(stream: TcpStream, id: u64, shared: &Shared) {
    let farewell = stream.try_clone().ok();
    let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| run_session(stream, &shared.ctx)));
    if outcome.is_err() {
        shared.ctx.stats.panics.fetch_add(1, Ordering::AcqRel);
        let payload = outcome
            .err()
            .map(|e| {
                e.downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| e.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "session panicked".to_string())
            })
            .unwrap_or_default();
        // One line only: the payload must not smuggle frame delimiters.
        let payload = payload.replace(['\n', '\r'], " ");
        if let Some(stream) = &farewell {
            send_farewell(stream, &[&format!("ERR internal {payload}"), "BYE"]);
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
    }
    shared
        .sessions
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .remove(&id);
    shared.ctx.stats.active.fetch_sub(1, Ordering::AcqRel);
}

/// How a [`ServerHandle::shutdown_drain`] ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrainOutcome {
    /// Every active session finished inside the drain deadline.
    Drained,
    /// The deadline passed; this many sessions were force-closed.
    ForcedClose(usize),
}

/// Handle to a spawned [`DecisionServer`].
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    join: JoinHandle<()>,
}

impl ServerHandle {
    /// The address the server listens on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A point-in-time health snapshot (the same numbers the wire `STATS`
    /// frame reports).
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.ctx.stats.snapshot()
    }

    /// Stops accepting and joins the accept thread, with the configured
    /// [`ServerConfig::drain_timeout`]. See
    /// [`shutdown_drain_within`](Self::shutdown_drain_within).
    pub fn shutdown_drain(self) -> DrainOutcome {
        let timeout = self.shared.drain_timeout;
        self.shutdown_drain_within(timeout)
    }

    /// Graceful shutdown: stop accepting (new connects are refused at the
    /// OS level once the listener closes), let active episodes finish on
    /// their own, and — if any are still attached when `timeout` passes —
    /// force-close their sockets, which funnels them through the ordinary
    /// EOF drain path (journals stay resumable by a future server).
    pub fn shutdown_drain_within(self, timeout: Duration) -> DrainOutcome {
        self.stop_accepting();
        let deadline = Instant::now() + timeout;
        let stats = &self.shared.ctx.stats;
        while stats.active.load(Ordering::Acquire) > 0 {
            if Instant::now() >= deadline {
                let sessions = self
                    .shared
                    .sessions
                    .lock()
                    .unwrap_or_else(|p| p.into_inner());
                let forced = sessions.len();
                for stream in sessions.values() {
                    let _ = stream.shutdown(std::net::Shutdown::Both);
                }
                drop(sessions);
                // The force-closed sessions unwind through their normal
                // exit; give them a bounded moment to update the counter.
                let grace = Instant::now() + Duration::from_secs(2);
                while stats.active.load(Ordering::Acquire) > 0 && Instant::now() < grace {
                    std::thread::sleep(Duration::from_millis(2));
                }
                return DrainOutcome::ForcedClose(forced);
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        DrainOutcome::Drained
    }

    /// Stops accepting new connections and joins the accept thread.
    /// Sessions already running drain on their own (their episodes end at
    /// client `DRAIN`/EOF).
    pub fn shutdown(self) {
        self.stop_accepting();
    }

    fn stop_accepting(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
        // Wake the blocking accept with a throwaway connection; the
        // session it would spawn is suppressed by the flag.
        let _ = TcpStream::connect(self.addr);
        // The accept thread exits, dropping the listener: subsequent
        // connects are refused by the OS.
        while !self.join.is_finished() {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}
