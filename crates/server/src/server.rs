//! The accept loop: a [`DecisionServer`] binds a TCP listener and hands
//! each connection to a dedicated session thread. All sessions share one
//! [`ThreadPool`] for epoch scoring — compute is pooled, episode state is
//! not (tenants are fully isolated, per the paper's disjoint-city
//! decomposition).

use crate::session::{run_session, SessionContext};
use dpdp_pool::ThreadPool;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Tunables of a [`DecisionServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Width of the shared scoring pool (1 = serial scoring; decisions are
    /// identical either way, only wall time moves).
    pub threads: usize,
    /// Bound of each session's command queue. Small values apply
    /// backpressure sooner; the bound never affects decisions.
    pub queue_depth: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            threads: 1,
            queue_depth: 64,
        }
    }
}

struct Shared {
    ctx: SessionContext,
    shutdown: AtomicBool,
}

/// A bound, not-yet-running decision service. Call [`run`](Self::run) to
/// serve on the current thread or [`spawn`](Self::spawn) for a background
/// accept loop with a shutdown handle.
pub struct DecisionServer {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl DecisionServer {
    /// Binds the listener. `addr` may use port 0 to let the OS pick (read
    /// it back with [`local_addr`](Self::local_addr)).
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> io::Result<DecisionServer> {
        let listener = TcpListener::bind(addr)?;
        let shared = Arc::new(Shared {
            ctx: SessionContext {
                pool: Arc::new(ThreadPool::new(config.threads)),
                queue_depth: config.queue_depth.max(1),
            },
            shutdown: AtomicBool::new(false),
        });
        Ok(DecisionServer { listener, shared })
    }

    /// The bound address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves connections until [`ServerHandle::shutdown`] (or a listener
    /// error). Each accepted socket gets its own named session thread;
    /// accept errors on individual connections are skipped, not fatal.
    pub fn run(self) -> io::Result<()> {
        loop {
            let (stream, _) = self.listener.accept()?;
            if self.shared.shutdown.load(Ordering::Acquire) {
                return Ok(());
            }
            let shared = Arc::clone(&self.shared);
            std::thread::Builder::new()
                .name("dpdp-session".into())
                .spawn(move || run_session(stream, &shared.ctx))?;
        }
    }

    /// Moves the accept loop to a background thread and returns a handle
    /// for address discovery and shutdown.
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let shared = Arc::clone(&self.shared);
        let join = std::thread::Builder::new()
            .name("dpdp-accept".into())
            .spawn(move || {
                let _ = self.run();
            })?;
        Ok(ServerHandle { addr, shared, join })
    }
}

/// Handle to a spawned [`DecisionServer`].
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    join: JoinHandle<()>,
}

impl ServerHandle {
    /// The address the server listens on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting new connections and joins the accept thread.
    /// Sessions already running drain on their own (their episodes end at
    /// client `DRAIN`/EOF).
    pub fn shutdown(self) {
        self.shared.shutdown.store(true, Ordering::Release);
        // Wake the blocking accept with a throwaway connection; the
        // session it would spawn is suppressed by the flag.
        let _ = TcpStream::connect(self.addr);
        let _ = self.join.join();
    }
}
