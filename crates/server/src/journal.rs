//! Per-tenant write-ahead command journals — the persistence half of the
//! crash-recovery story.
//!
//! An episode is a pure function of its `HELLO` configuration and the
//! ordered command stream (the determinism contract proven by the
//! socket-parity suite). That makes recovery cheap: journal the accepted
//! commands, and an interrupted episode can be rebuilt **bit-identically**
//! by replaying them through a fresh [`Simulator::serve`] — which is
//! exactly what the `RESUME` frame does.
//!
//! A [`JournalStore`] keeps one [`Journal`] per tenant. Journals live in
//! memory; with a backing directory configured
//! ([`ServerConfig::journal_dir`]) each one is also mirrored to a flat
//! text file so episodes survive a server *process* restart, not just a
//! dropped connection. The file format is deliberately the wire format:
//!
//! ```text
//! TOKEN <session token>
//! HELLO <tenant> <preset> <seed> <policy> <buffer_mins> [shards]
//! ORDER <pickup> <delivery> <qty> <created_s> <deadline_s>
//! FLUSH <at_s>
//! ...
//! ```
//!
//! so a journal file is literally a replayable session transcript (times
//! use shortest round-trip `f64` printing and parse back bit-identically).
//!
//! Lifecycle: `HELLO` opens a journal (issuing its token), every accepted
//! command appends, an explicit `DRAIN` finishes it (removed — the episode
//! completed and nothing is left to recover), while EOF, a connection
//! reset, an idle reap, or a session panic all *retain* it for `RESUME`.
//! At most one live session may hold a journal at a time: a `RESUME` (or
//! duplicate `HELLO`) racing an still-attached session is refused with
//! `ERR session-active`.
//!
//! [`Simulator::serve`]: dpdp_sim::Simulator::serve
//! [`ServerConfig::journal_dir`]: crate::ServerConfig::journal_dir

use crate::proto::{parse_command, Command, ProtoError};
use dpdp_net::{Order, OrderId};
use dpdp_sim::StreamCommand;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// The replayable `HELLO` configuration of a session — everything besides
/// the command stream that determines the episode.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSpec {
    /// Tenant label; the journal registry key.
    pub tenant: String,
    /// Instance preset name.
    pub preset: String,
    /// Episode seed.
    pub seed: u64,
    /// Dispatch policy name.
    pub policy: String,
    /// Epoch buffering period in minutes (`0` = immediate).
    pub buffer_mins: f64,
    /// Optional flat shard-count override from the `HELLO` frame.
    pub shards: Option<u64>,
}

impl SessionSpec {
    /// The journal header line — a replayable `HELLO` frame.
    fn header_line(&self) -> String {
        let mut line = format!(
            "HELLO {} {} {} {} {}",
            self.tenant, self.preset, self.seed, self.policy, self.buffer_mins
        );
        if let Some(n) = self.shards {
            line.push(' ');
            line.push_str(&n.to_string());
        }
        line
    }
}

/// Serializes a journaled command back into its wire frame — journal
/// files are session transcripts.
pub fn command_line(cmd: &StreamCommand) -> String {
    match cmd {
        StreamCommand::Order(o) => format!(
            "ORDER {} {} {} {} {}",
            o.pickup.0,
            o.delivery.0,
            o.quantity,
            o.created.seconds(),
            o.deadline.seconds()
        ),
        StreamCommand::Cancel { order, at } => {
            format!("CANCEL {} {}", order.index(), at.seconds())
        }
        StreamCommand::Breakdown { vehicle, at } => {
            format!("BREAKDOWN {} {}", vehicle.index(), at.seconds())
        }
        StreamCommand::Recover { vehicle, at } => {
            format!("RECOVER {} {}", vehicle.index(), at.seconds())
        }
        StreamCommand::Flush { at } => format!("FLUSH {}", at.seconds()),
    }
}

/// Rebuilds a stream command from a parsed journal line. The engine
/// reassigns order ids on arrival, so the placeholder id is irrelevant.
fn command_from_wire(cmd: Command) -> Option<StreamCommand> {
    Some(match cmd {
        Command::Order {
            pickup,
            delivery,
            quantity,
            created,
            deadline,
        } => StreamCommand::Order(
            Order::new(OrderId(0), pickup, delivery, quantity, created, deadline).ok()?,
        ),
        Command::Cancel { order, at } => StreamCommand::Cancel { order, at },
        Command::Breakdown { vehicle, at } => StreamCommand::Breakdown { vehicle, at },
        Command::Recover { vehicle, at } => StreamCommand::Recover { vehicle, at },
        Command::Flush { at } => StreamCommand::Flush { at },
        _ => return None,
    })
}

/// One tenant's write-ahead journal: the `HELLO` spec plus every command
/// the episode accepted so far, in acceptance order.
#[derive(Debug)]
pub struct Journal {
    /// The session configuration a resume must rebuild.
    pub spec: SessionSpec,
    /// The capability token `RESUME` must present.
    pub token: String,
    /// Accepted commands, in order.
    pub commands: Vec<StreamCommand>,
    /// Whether a live session currently holds this journal.
    pub active: bool,
    /// The backing file, when the store is directory-backed.
    file: Option<File>,
}

impl Journal {
    /// Appends one accepted command (and mirrors it to the backing file,
    /// flushed, when one exists). File write failures degrade to
    /// memory-only journaling — serving beats persistence.
    pub fn append(&mut self, cmd: StreamCommand) {
        if let Some(file) = &mut self.file {
            let mut line = command_line(&cmd);
            line.push('\n');
            if file
                .write_all(line.as_bytes())
                .and_then(|_| file.flush())
                .is_err()
            {
                self.file = None;
            }
        }
        self.commands.push(cmd);
    }
}

/// A mutex lock that shrugs off poisoning: a panicked session must never
/// brick its tenant's journal (the whole point is surviving panics).
fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// The per-server journal registry: one [`Journal`] per tenant, optionally
/// mirrored to `dir` (see the module docs for lifecycle and file format).
#[derive(Debug)]
pub struct JournalStore {
    dir: Option<PathBuf>,
    counter: AtomicU64,
    inner: Mutex<HashMap<String, Arc<Mutex<Journal>>>>,
}

/// FNV-1a — enough entropy to make tokens non-guessable by accident (this
/// is crash recovery, not authentication; the crate docs say so).
fn fnv1a(bytes: &[u8], seed: u64) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64 ^ seed;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

/// Journal file name for a tenant: a sanitized prefix for readability plus
/// a hash of the raw name so distinct tenants never collide.
fn file_name(tenant: &str) -> String {
    let sanitized: String = tenant
        .chars()
        .take(48)
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    format!(
        "{sanitized}-{:08x}.journal",
        fnv1a(tenant.as_bytes(), 0) as u32
    )
}

impl JournalStore {
    /// Builds a store; `dir`, when given, is created eagerly so the first
    /// session doesn't pay for (or trip over) it.
    pub fn new(dir: Option<PathBuf>) -> JournalStore {
        if let Some(dir) = &dir {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!(
                    "dpdp-server: cannot create journal dir {}: {e}; journaling stays in-memory",
                    dir.display()
                );
            }
        }
        JournalStore {
            dir,
            counter: AtomicU64::new(0),
            inner: Mutex::new(HashMap::new()),
        }
    }

    fn path_for(&self, tenant: &str) -> Option<PathBuf> {
        self.dir.as_ref().map(|d| d.join(file_name(tenant)))
    }

    fn next_token(&self, tenant: &str) -> String {
        let n = self.counter.fetch_add(1, Ordering::Relaxed) + 1;
        format!("{n:x}-{:08x}", fnv1a(tenant.as_bytes(), n) as u32)
    }

    /// Opens a fresh journal for a `HELLO`, issuing its token. A previous
    /// journal for the tenant is replaced — unless a live session still
    /// holds it (`ERR session-active`).
    pub fn open(&self, spec: SessionSpec) -> Result<Arc<Mutex<Journal>>, ProtoError> {
        let mut map = lock_unpoisoned(&self.inner);
        if let Some(existing) = map.get(&spec.tenant) {
            if lock_unpoisoned(existing).active {
                return Err(ProtoError::new(
                    "session-active",
                    format!("tenant `{}` already has a live session", spec.tenant),
                ));
            }
        }
        let token = self.next_token(&spec.tenant);
        let file = self.path_for(&spec.tenant).and_then(|path| {
            let header = format!("TOKEN {token}\n{}\n", spec.header_line());
            File::create(&path)
                .and_then(|mut f| {
                    f.write_all(header.as_bytes())
                        .and_then(|_| f.flush())
                        .map(|_| f)
                })
                .map_err(|e| {
                    eprintln!(
                        "dpdp-server: cannot write journal {}: {e}; tenant `{}` stays in-memory",
                        path.display(),
                        spec.tenant
                    );
                })
                .ok()
        });
        let tenant = spec.tenant.clone();
        let journal = Arc::new(Mutex::new(Journal {
            spec,
            token,
            commands: Vec::new(),
            active: true,
            file,
        }));
        map.insert(tenant, Arc::clone(&journal));
        Ok(journal)
    }

    /// Parses a journal file back into a [`Journal`] (inactive, file
    /// reopened for appending).
    fn load(&self, tenant: &str) -> Option<Journal> {
        let path = self.path_for(tenant)?;
        let reader = BufReader::new(File::open(&path).ok()?);
        let mut lines = reader.lines();
        let token = lines
            .next()?
            .ok()?
            .strip_prefix("TOKEN ")
            .map(str::to_string)?;
        let header = lines.next()?.ok()?;
        let spec = match parse_command(&header).ok()?? {
            Command::Hello {
                tenant,
                preset,
                seed,
                policy,
                buffer_mins,
                shards,
            } => SessionSpec {
                tenant,
                preset,
                seed,
                policy,
                buffer_mins,
                shards,
            },
            _ => return None,
        };
        if spec.tenant != tenant {
            return None;
        }
        let mut commands = Vec::new();
        for line in lines {
            let cmd = parse_command(&line.ok()?).ok()??;
            commands.push(command_from_wire(cmd)?);
        }
        let file = OpenOptions::new().append(true).open(&path).ok();
        Some(Journal {
            spec,
            token,
            commands,
            active: false,
            file,
        })
    }

    /// Claims a journal for a `RESUME`: looks the tenant up in memory,
    /// falling back to the backing directory (server-restart recovery),
    /// validates the token, and marks the journal active.
    pub fn resume(&self, tenant: &str, token: &str) -> Result<Arc<Mutex<Journal>>, ProtoError> {
        let mut map = lock_unpoisoned(&self.inner);
        let journal = match map.get(tenant) {
            Some(journal) => Arc::clone(journal),
            None => {
                let loaded = self.load(tenant).ok_or_else(|| {
                    ProtoError::new(
                        "unknown-session",
                        format!("no journal for tenant `{tenant}`"),
                    )
                })?;
                let loaded = Arc::new(Mutex::new(loaded));
                map.insert(tenant.to_string(), Arc::clone(&loaded));
                loaded
            }
        };
        let mut guard = lock_unpoisoned(&journal);
        if guard.token != token {
            return Err(ProtoError::new(
                "bad-token",
                format!("token does not match tenant `{tenant}`'s session"),
            ));
        }
        if guard.active {
            return Err(ProtoError::new(
                "session-active",
                format!("tenant `{tenant}` still has a live session"),
            ));
        }
        guard.active = true;
        drop(guard);
        Ok(journal)
    }

    /// Finishes a journal after a clean `DRAIN`: the episode completed,
    /// nothing is left to recover, so the entry (and backing file) go.
    pub fn finish(&self, tenant: &str) {
        lock_unpoisoned(&self.inner).remove(tenant);
        if let Some(path) = self.path_for(tenant) {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// RAII release of a journal's `active` claim. Held by the session for
/// the episode's lifetime; the `Drop` runs during unwinding too, so even
/// a panicked session frees its tenant for `RESUME`.
pub(crate) struct ActiveClaim(pub(crate) Arc<Mutex<Journal>>);

impl Drop for ActiveClaim {
    fn drop(&mut self) {
        lock_unpoisoned(&self.0).active = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpdp_net::{NodeId, TimePoint};

    fn spec(tenant: &str) -> SessionSpec {
        SessionSpec {
            tenant: tenant.into(),
            preset: "ring12".into(),
            seed: 7,
            policy: "baseline1".into(),
            buffer_mins: 10.0,
            shards: Some(3),
        }
    }

    fn order(created_s: f64) -> StreamCommand {
        StreamCommand::Order(
            Order::new(
                OrderId(0),
                NodeId(1),
                NodeId(5),
                2.5,
                TimePoint::from_seconds(created_s),
                TimePoint::from_seconds(created_s + 7_200.0),
            )
            .expect("valid order"),
        )
    }

    #[test]
    fn open_resume_and_finish_enforce_the_claim_protocol() {
        let store = JournalStore::new(None);
        let journal = store.open(spec("acme")).expect("open");
        let token = lock_unpoisoned(&journal).token.clone();

        // Active: neither a duplicate HELLO nor a RESUME may claim it.
        assert_eq!(store.open(spec("acme")).unwrap_err().code, "session-active");
        assert_eq!(
            store.resume("acme", &token).unwrap_err().code,
            "session-active"
        );

        // Released (connection died): RESUME with the right token wins...
        drop(ActiveClaim(Arc::clone(&journal)));
        assert_eq!(store.resume("acme", "wrong").unwrap_err().code, "bad-token");
        let resumed = store.resume("acme", &token).expect("resume");
        assert!(lock_unpoisoned(&resumed).active);

        // ...and a DRAIN finishes it for good.
        drop(ActiveClaim(resumed));
        store.finish("acme");
        assert_eq!(
            store.resume("acme", &token).unwrap_err().code,
            "unknown-session"
        );
        assert_eq!(
            store.resume("ghost", "t").unwrap_err().code,
            "unknown-session"
        );
    }

    #[test]
    fn file_backed_journals_survive_a_store_restart_bit_identically() {
        let dir = std::env::temp_dir().join(format!("dpdp-journal-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = JournalStore::new(Some(dir.clone()));
        let journal = store.open(spec("acme")).expect("open");
        let token;
        {
            let mut guard = lock_unpoisoned(&journal);
            token = guard.token.clone();
            // An awkward decimal exercises round-trip-exact serialization.
            guard.append(order(8.17 * 3600.0));
            guard.append(StreamCommand::Flush {
                at: TimePoint::from_seconds(30_000.5),
            });
            guard.append(StreamCommand::Breakdown {
                vehicle: dpdp_net::VehicleId(2),
                at: TimePoint::from_seconds(31_000.25),
            });
        }
        drop(ActiveClaim(journal));

        // A brand-new store (fresh process) must reload the journal from
        // disk: same spec, same token, bit-identical commands.
        let reborn = JournalStore::new(Some(dir.clone()));
        let resumed = reborn.resume("acme", &token).expect("file-backed resume");
        let guard = lock_unpoisoned(&resumed);
        assert_eq!(guard.spec, spec("acme"));
        assert_eq!(guard.commands.len(), 3);
        match (&guard.commands[0], &order(8.17 * 3600.0)) {
            (StreamCommand::Order(a), StreamCommand::Order(b)) => {
                assert_eq!(a.created.seconds().to_bits(), b.created.seconds().to_bits());
                assert_eq!(
                    a.deadline.seconds().to_bits(),
                    b.deadline.seconds().to_bits()
                );
                assert_eq!(a.quantity, b.quantity);
                assert_eq!((a.pickup, a.delivery), (b.pickup, b.delivery));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            guard.commands[1],
            StreamCommand::Flush {
                at: TimePoint::from_seconds(30_000.5)
            }
        );
        drop(guard);
        drop(ActiveClaim(resumed));
        reborn.finish("acme");
        assert!(
            !dir.join(file_name("acme")).exists(),
            "finish deletes the file"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn distinct_tenants_never_share_a_journal_file() {
        assert_ne!(file_name("a/b"), file_name("a_b"));
        assert_ne!(file_name("t1"), file_name("t2"));
    }
}
