//! Socket-parity suite: a TCP-fed episode must be **bit-identical** —
//! decisions and `EpisodeMetrics` — to the same order trace replayed
//! in-process, for multiple policies and buffering modes; malformed
//! frames draw structured errors without dropping the session; and one
//! tenant's stall or hang-up never perturbs another tenant's episode.

use dpdp_net::TimeDelta;
use dpdp_net::{NodeId, Order, OrderId, TimePoint};
use dpdp_server::{DecisionServer, ServeClient, ServerConfig, WireDecision};
use dpdp_sim::{BufferingMode, EpisodeResult, EventSource, ReplaySource, Simulator};

/// A deterministic trace over the `ring12` preset's factories (ids
/// `1..=12`), with dense ids `0..n` — the ids the engine assigns streamed
/// orders on an empty replay table. Every 7th order gets a deadline too
/// tight to serve, so the trace exercises rejections too.
fn trace(n: usize) -> Vec<Order> {
    (0..n)
        .map(|i| {
            let pickup = 1 + ((i * 5) % 12) as u32;
            let delivery = 1 + ((i * 5 + 4) % 12) as u32;
            let created = TimePoint::from_seconds(8.0 * 3600.0 + 240.0 * i as f64);
            let deadline = if i % 7 == 3 {
                TimePoint::from_seconds(created.seconds() + 600.0)
            } else {
                TimePoint::from_seconds(created.seconds() + 4.0 * 3600.0)
            };
            Order::new(
                OrderId::from_index(i),
                NodeId(pickup),
                NodeId(delivery),
                2.0 + (i % 3) as f64,
                created,
                deadline,
            )
            .expect("valid trace order")
        })
        .collect()
}

/// Replays the trace in-process through the event engine — the reference
/// episode the TCP runs must match bit-for-bit.
fn run_in_process(
    policy_name: &str,
    buffering: BufferingMode,
    seed: u64,
    orders: &[Order],
) -> EpisodeResult {
    let instance = dpdp_server::preset::build_instance("ring12").expect("ring12 preset");
    let mut policy = dpdp_server::preset::build_policy(policy_name).expect("known policy");
    let sim = Simulator::builder(&instance)
        .buffering(buffering)
        .seed(seed)
        .build()
        .expect("valid simulator");
    let sources: Vec<Box<dyn EventSource + '_>> = vec![Box::new(ReplaySource::from_orders(orders))];
    sim.run_events(sources, policy.as_mut(), &mut [])
}

/// Streams the trace over TCP and drains the episode.
fn run_over_tcp(
    addr: std::net::SocketAddr,
    tenant: &str,
    policy_name: &str,
    buffer_mins: f64,
    seed: u64,
    orders: &[Order],
) -> dpdp_server::Episode {
    let mut client = ServeClient::connect(addr).expect("connect");
    client
        .hello(tenant, "ring12", seed, policy_name, buffer_mins)
        .expect("handshake accepted");
    for o in orders {
        client
            .order(
                o.pickup.0,
                o.delivery.0,
                o.quantity,
                o.created.seconds(),
                o.deadline.seconds(),
            )
            .expect("order frame");
    }
    client.drain().expect("drain frame");
    client.collect_episode().expect("episode drains to BYE")
}

fn as_wire(result: &EpisodeResult) -> Vec<WireDecision> {
    result
        .assignments
        .iter()
        .map(|a| WireDecision {
            order: a.order,
            vehicle: a.vehicle,
            reason: a.reason,
            time_s: a.time.seconds(),
        })
        .collect()
}

#[test]
fn tcp_episode_is_bit_identical_to_in_process_replay() {
    // Two policies, two buffering modes, two pool widths: every
    // combination must reproduce the reference episode exactly.
    let orders = trace(24);
    for (policy, buffer_mins) in [("baseline1", 0.0), ("baseline1", 10.0), ("baseline3", 10.0)] {
        let buffering = if buffer_mins > 0.0 {
            BufferingMode::FixedInterval(TimeDelta::from_minutes(buffer_mins))
        } else {
            BufferingMode::Immediate
        };
        let reference = run_in_process(policy, buffering, 11, &orders);
        assert!(
            reference.metrics.served > 0 && reference.metrics.rejected > 0,
            "trace must exercise both outcomes ({policy})"
        );
        for threads in [1, 4] {
            let server = DecisionServer::bind(
                "127.0.0.1:0",
                ServerConfig {
                    threads,
                    queue_depth: 8,
                    ..ServerConfig::default()
                },
            )
            .expect("bind")
            .spawn()
            .expect("spawn");
            let episode = run_over_tcp(server.addr(), "parity", policy, buffer_mins, 11, &orders);
            assert_eq!(episode.errors, vec![], "{policy}: no protocol errors");
            assert_eq!(
                episode.decisions,
                as_wire(&reference),
                "{policy}/threads={threads}: decision streams diverge"
            );
            assert_eq!(
                episode.metrics.as_ref(),
                Some(&reference.metrics),
                "{policy}/threads={threads}: metrics diverge"
            );
            server.shutdown();
        }
    }
}

#[test]
fn a_shard_override_reproduces_the_unsharded_reference_episode() {
    // The ring preset registers a hierarchical layout; a HELLO override
    // swaps in a flat 3-cell one. Neither may move a single decision:
    // sharding partitions scoring work, it never changes outcomes. The
    // reference below is built with the default (unsharded) simulator.
    let orders = trace(24);
    let reference = run_in_process("baseline1", BufferingMode::Immediate, 11, &orders);
    let server = DecisionServer::bind("127.0.0.1:0", ServerConfig::default())
        .expect("bind")
        .spawn()
        .expect("spawn");
    let mut client = ServeClient::connect(server.addr()).expect("connect");
    client
        .send_line("HELLO override ring12 11 baseline1 0 3")
        .expect("send");
    match client.next_msg().expect("handshake frame") {
        Some(dpdp_server::ServerMsg::Ok(detail)) => {
            assert!(
                detail.contains("shards=3"),
                "OK must echo the resolved layout, got `{detail}`"
            );
        }
        other => panic!("expected OK HELLO, got {other:?}"),
    }
    for o in &orders {
        client
            .order(
                o.pickup.0,
                o.delivery.0,
                o.quantity,
                o.created.seconds(),
                o.deadline.seconds(),
            )
            .expect("order frame");
    }
    client.drain().expect("drain");
    let episode = client.collect_episode().expect("drains");
    assert_eq!(episode.errors, vec![]);
    assert_eq!(episode.decisions, as_wire(&reference));
    assert_eq!(episode.metrics, Some(reference.metrics));
    server.shutdown();
}

#[test]
fn eof_drains_like_drain() {
    let orders = trace(10);
    let reference = run_in_process("baseline1", BufferingMode::Immediate, 5, &orders);
    let server = DecisionServer::bind("127.0.0.1:0", ServerConfig::default())
        .expect("bind")
        .spawn()
        .expect("spawn");
    let mut client = ServeClient::connect(server.addr()).expect("connect");
    client
        .hello("hangup", "ring12", 5, "baseline1", 0.0)
        .expect("handshake");
    for o in &orders {
        client
            .order(
                o.pickup.0,
                o.delivery.0,
                o.quantity,
                o.created.seconds(),
                o.deadline.seconds(),
            )
            .expect("order frame");
    }
    // No DRAIN: half-close the socket instead. The server must flush the
    // remaining epochs and still emit METRICS + BYE.
    client.eof().expect("half-close");
    let episode = client.collect_episode().expect("drains on EOF");
    assert_eq!(episode.decisions, as_wire(&reference));
    assert_eq!(episode.metrics, Some(reference.metrics));
    server.shutdown();
}

#[test]
fn malformed_frames_draw_structured_errors_not_disconnects() {
    let server = DecisionServer::bind("127.0.0.1:0", ServerConfig::default())
        .expect("bind")
        .spawn()
        .expect("spawn");
    let mut client = ServeClient::connect(server.addr()).expect("connect");

    let expect_err =
        |client: &mut ServeClient, code: &str| match client.next_msg().expect("readable frame") {
            Some(dpdp_server::ServerMsg::Err { code: got, .. }) => {
                assert_eq!(got, code, "wrong error class")
            }
            other => panic!("expected ERR {code}, got {other:?}"),
        };

    // Pre-handshake garbage: the session answers and keeps waiting.
    client.send_line("DISPATCH ALL THE TRUCKS").expect("send");
    expect_err(&mut client, "unknown-command");
    client.send_line("ORDER 1 2 3 4 5").expect("send");
    expect_err(&mut client, "expected-hello");
    client
        .send_line("HELLO t mars 7 baseline1 0")
        .expect("send");
    expect_err(&mut client, "unknown-preset");
    client.send_line("HELLO t ring12 7 oracle 0").expect("send");
    expect_err(&mut client, "unknown-policy");
    client
        .send_line("HELLO t ring12 7 baseline1 0 0")
        .expect("send");
    expect_err(&mut client, "invalid-shards"); // zero shards
    client
        .send_line("HELLO t ring12 7 baseline1 0 50000")
        .expect("send");
    expect_err(&mut client, "invalid-shards"); // above the serving cap
    client
        .send_line("HELLO t ring12 7 baseline1 0 four")
        .expect("send");
    expect_err(&mut client, "bad-number");

    client
        .hello("t", "ring12", 7, "baseline1", 0.0)
        .expect("handshake");

    // Mid-episode garbage: every class of bad frame is answered in order,
    // and none of them kills the session or leaks into the episode.
    client
        .send_line("HELLO t ring12 7 baseline1 0")
        .expect("send");
    expect_err(&mut client, "already-active");
    client.send_line("ORDER 1 2 3").expect("send");
    expect_err(&mut client, "bad-arity");
    client.send_line("ORDER 1 2 3 x 5").expect("send");
    expect_err(&mut client, "bad-number");
    client.send_line("ORDER 0 2 3 28800 43200").expect("send");
    expect_err(&mut client, "invalid-order"); // node 0 is the depot
    client.send_line("ORDER 1 1 3 28800 43200").expect("send");
    expect_err(&mut client, "invalid-order"); // pickup == delivery
    client.send_line("BREAKDOWN 99 28800").expect("send");
    expect_err(&mut client, "unknown-vehicle");
    client.send_line("CANCEL 0 28800").expect("send");
    expect_err(&mut client, "unknown-order"); // nothing streamed yet

    // The session is still healthy: a real order flows end to end.
    client.order(1, 5, 3.0, 28_800.0, 43_200.0).expect("order");
    client.drain().expect("drain");
    let episode = client.collect_episode().expect("clean drain");
    assert_eq!(episode.errors, vec![], "post-handshake stream was clean");
    assert_eq!(episode.decisions.len(), 1);
    let metrics = episode.metrics.expect("final metrics");
    assert_eq!(metrics.served + metrics.rejected, 1);
    server.shutdown();
}

#[test]
fn a_stalled_tenant_cannot_perturb_another_tenants_episode() {
    let orders = trace(16);
    let reference = run_in_process("baseline1", BufferingMode::Immediate, 3, &orders);
    let server = DecisionServer::bind(
        "127.0.0.1:0",
        ServerConfig {
            threads: 2,
            queue_depth: 4,
            ..ServerConfig::default()
        },
    )
    .expect("bind")
    .spawn()
    .expect("spawn");

    // Tenant A: streams one order, then stalls — never reads its socket,
    // never drains, holds its connection (and its episode) open.
    let mut stalled = ServeClient::connect(server.addr()).expect("connect");
    stalled
        .hello("stalled", "ring12", 99, "baseline3", 0.0)
        .expect("handshake");
    stalled.order(2, 8, 4.0, 30_000.0, 60_000.0).expect("order");

    // Tenants B..E: the full trace, concurrently, all while A is stalled.
    // Every one must reproduce the solo reference bit-for-bit.
    let addr = server.addr();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let orders = &orders;
                scope.spawn(move || {
                    run_over_tcp(addr, &format!("tenant{i}"), "baseline1", 0.0, 3, orders)
                })
            })
            .collect();
        for handle in handles {
            let episode = handle.join().expect("tenant thread");
            assert_eq!(episode.errors, vec![]);
            assert_eq!(episode.decisions, as_wire(&reference));
            assert_eq!(episode.metrics.as_ref(), Some(&reference.metrics));
        }
    });

    // A's abrupt hang-up is just an EOF drain; its episode finishes too.
    drop(stalled);
    server.shutdown();
}

#[test]
fn backpressure_bounds_the_queue_without_losing_or_reordering_commands() {
    // A queue of 2 against 120 rapidly-fired orders: the session thread
    // must block on the bounded queue (not drop, not reorder), and the
    // episode must still equal the in-process reference.
    let orders = trace(120);
    let reference = run_in_process("baseline1", BufferingMode::Immediate, 1, &orders);
    let server = DecisionServer::bind(
        "127.0.0.1:0",
        ServerConfig {
            threads: 1,
            queue_depth: 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind")
    .spawn()
    .expect("spawn");
    let episode = run_over_tcp(server.addr(), "burst", "baseline1", 0.0, 1, &orders);
    assert_eq!(episode.errors, vec![]);
    assert_eq!(episode.decisions, as_wire(&reference));
    assert_eq!(episode.metrics, Some(reference.metrics));
    server.shutdown();
}

#[test]
fn disruptions_ride_the_wire_deterministically() {
    // CANCEL / BREAKDOWN / RECOVER frames must replay exactly like the
    // equivalent in-process stream commands.
    let orders = trace(12);
    let instance = dpdp_server::preset::build_instance("ring12").expect("preset");
    let sim = Simulator::builder(&instance)
        .buffering(BufferingMode::FixedInterval(TimeDelta::from_minutes(10.0)))
        .seed(2)
        .build()
        .expect("simulator");
    let (tx, rx) = std::sync::mpsc::channel();
    for o in &orders {
        tx.send(dpdp_sim::StreamCommand::Order(o.clone()))
            .expect("send");
    }
    tx.send(dpdp_sim::StreamCommand::Breakdown {
        vehicle: dpdp_net::VehicleId(0),
        at: TimePoint::from_seconds(30_500.0),
    })
    .expect("send");
    tx.send(dpdp_sim::StreamCommand::Cancel {
        order: OrderId(5),
        at: TimePoint::from_seconds(30_600.0),
    })
    .expect("send");
    tx.send(dpdp_sim::StreamCommand::Recover {
        vehicle: dpdp_net::VehicleId(0),
        at: TimePoint::from_seconds(33_000.0),
    })
    .expect("send");
    tx.send(dpdp_sim::StreamCommand::Flush {
        at: TimePoint::from_seconds(60_000.0),
    })
    .expect("send");
    drop(tx);
    let mut policy = dpdp_server::preset::build_policy("baseline1").expect("policy");
    // Disruptions rewrite the final assignment log in place (revoked
    // assignments become rejections), so the reference for the *live*
    // DECISION stream is an in-process observer, not `assignments`.
    #[derive(Default)]
    struct Collect(Vec<WireDecision>);
    impl dpdp_sim::SimObserver for Collect {
        fn on_decision(&mut self, record: &dpdp_sim::DecisionRecord<'_>) {
            let a = record.assignment;
            self.0.push(WireDecision {
                order: a.order,
                vehicle: a.vehicle,
                reason: a.reason,
                time_s: a.time.seconds(),
            });
        }
    }
    let mut collect = Collect::default();
    let reference = sim.serve_observed(rx, policy.as_mut(), &mut [&mut collect]);

    let server = DecisionServer::bind("127.0.0.1:0", ServerConfig::default())
        .expect("bind")
        .spawn()
        .expect("spawn");
    let mut client = ServeClient::connect(server.addr()).expect("connect");
    client
        .hello("chaos", "ring12", 2, "baseline1", 10.0)
        .expect("handshake");
    for o in &orders {
        client
            .order(
                o.pickup.0,
                o.delivery.0,
                o.quantity,
                o.created.seconds(),
                o.deadline.seconds(),
            )
            .expect("order frame");
    }
    client.breakdown(0, 30_500.0).expect("breakdown");
    client.cancel(5, 30_600.0).expect("cancel");
    client.recover(0, 33_000.0).expect("recover");
    client.flush(60_000.0).expect("flush");
    client.drain().expect("drain");
    let episode = client.collect_episode().expect("drains");
    assert_eq!(episode.errors, vec![]);
    assert_eq!(
        episode.disruptions.len(),
        3,
        "breakdown/cancel/recover must each be narrated as a DISRUPT frame"
    );
    assert_eq!(episode.decisions, collect.0);
    assert_eq!(episode.metrics, Some(reference.metrics));
    server.shutdown();
}
