//! Fault-tolerance suite: a killed-and-resumed episode must be
//! **bit-identical** — decisions and `EpisodeMetrics` — to the same
//! command stream served uninterrupted; journals survive a server
//! process restart; a panicking session dies alone; idle peers are
//! reaped but stay resumable; load past the session cap is shed; and
//! shutdown drains gracefully (or force-closes at the deadline).

use dpdp_net::{NodeId, Order, OrderId, TimePoint};
use dpdp_server::{
    token_from_ok_detail, ClientError, DecisionServer, DrainOutcome, ServeClient, ServerConfig,
    ServerMsg, WireDecision,
};
use dpdp_sim::{BufferingMode, EpisodeResult, EventSource, ReplaySource, Simulator};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// The socket-parity deterministic trace over `ring12` (ids dense from
/// 0, every 7th order unservably tight so rejections are exercised).
fn trace(n: usize) -> Vec<Order> {
    (0..n)
        .map(|i| {
            let pickup = 1 + ((i * 5) % 12) as u32;
            let delivery = 1 + ((i * 5 + 4) % 12) as u32;
            let created = TimePoint::from_seconds(8.0 * 3600.0 + 240.0 * i as f64);
            let deadline = if i % 7 == 3 {
                TimePoint::from_seconds(created.seconds() + 600.0)
            } else {
                TimePoint::from_seconds(created.seconds() + 4.0 * 3600.0)
            };
            Order::new(
                OrderId::from_index(i),
                NodeId(pickup),
                NodeId(delivery),
                2.0 + (i % 3) as f64,
                created,
                deadline,
            )
            .expect("valid trace order")
        })
        .collect()
}

fn run_in_process(policy_name: &str, seed: u64, orders: &[Order]) -> EpisodeResult {
    let instance = dpdp_server::preset::build_instance("ring12").expect("ring12 preset");
    let mut policy = dpdp_server::preset::build_policy(policy_name).expect("known policy");
    let sim = Simulator::builder(&instance)
        .buffering(BufferingMode::Immediate)
        .seed(seed)
        .build()
        .expect("valid simulator");
    let sources: Vec<Box<dyn EventSource + '_>> = vec![Box::new(ReplaySource::from_orders(orders))];
    sim.run_events(sources, policy.as_mut(), &mut [])
}

fn send_orders(client: &mut ServeClient, orders: &[Order]) {
    for o in orders {
        client
            .order(
                o.pickup.0,
                o.delivery.0,
                o.quantity,
                o.created.seconds(),
                o.deadline.seconds(),
            )
            .expect("order frame");
    }
}

/// Reads episode frames until `want` decisions arrived, returning the
/// episode-frame count (`EPOCH` + `DECISION` + `DISRUPT` — the resume
/// `ack`) and the decisions themselves.
fn read_until_decisions(client: &mut ServeClient, want: usize) -> (usize, Vec<WireDecision>) {
    let mut ack = 0;
    let mut decisions = Vec::new();
    while decisions.len() < want {
        match client
            .next_msg()
            .expect("readable stream")
            .expect("stream stays open")
        {
            ServerMsg::Epoch { .. } | ServerMsg::Disrupt(_) => ack += 1,
            ServerMsg::Decision(d) => {
                ack += 1;
                decisions.push(d);
            }
            ServerMsg::Err { code, detail } => panic!("unexpected ERR {code} {detail}"),
            other => panic!("unexpected frame {other:?}"),
        }
    }
    (ack, decisions)
}

/// Resumes a tenant, retrying while the dying predecessor session still
/// holds the journal claim (`ERR session-active` is a transient verdict
/// right after a kill — the old session drains asynchronously).
fn resume_with_retry(addr: SocketAddr, tenant: &str, token: &str, ack: usize) -> ServeClient {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let mut client = ServeClient::connect(addr).expect("connect");
        match client.resume(tenant, token, ack) {
            Ok(detail) => {
                assert!(
                    detail.contains(&format!("ack={ack}")),
                    "OK RESUME must echo the ack, got `{detail}`"
                );
                return client;
            }
            Err(ClientError::Rejected { code, .. })
                if code == "session-active" && Instant::now() < deadline =>
            {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => panic!("resume failed: {e}"),
        }
    }
}

#[test]
fn kill_and_resume_is_bit_identical_to_an_uninterrupted_run() {
    // The acceptance gate: across pool widths {1,4} and both buffering
    // modes, an episode killed mid-stream and resumed via RESUME must
    // reproduce the uninterrupted run's decision stream and metrics
    // bit-for-bit. Both runs stream the identical command sequence:
    // orders 0..10, a FLUSH heartbeat (so buffered mode has emitted
    // decisions to acknowledge before the kill), orders 10..24, DRAIN.
    let orders = trace(24);
    let flush_at = orders[9].created.seconds() + 1.0;
    for threads in [1usize, 4] {
        for buffer_mins in [0.0, 10.0] {
            let server = DecisionServer::bind(
                "127.0.0.1:0",
                ServerConfig {
                    threads,
                    queue_depth: 8,
                    ..ServerConfig::default()
                },
            )
            .expect("bind")
            .spawn()
            .expect("spawn");
            let label = format!("threads={threads}/buffer={buffer_mins}");

            // Uninterrupted reference, over the same wire.
            let mut reference = ServeClient::connect(server.addr()).expect("connect");
            reference
                .hello("ref", "ring12", 11, "baseline1", buffer_mins)
                .expect("handshake");
            send_orders(&mut reference, &orders[..10]);
            reference.flush(flush_at).expect("flush frame");
            send_orders(&mut reference, &orders[10..]);
            reference.drain().expect("drain frame");
            let expected = reference.collect_episode().expect("reference drains");
            assert_eq!(expected.errors, vec![], "{label}: clean reference");
            assert_eq!(
                expected.decisions.len(),
                24,
                "{label}: one decision per order"
            );

            // Victim: same prefix, then a mid-episode kill (socket drop,
            // no DRAIN) after acknowledging a few frames.
            let mut victim = ServeClient::connect(server.addr()).expect("connect");
            let detail = victim
                .hello("victim", "ring12", 11, "baseline1", buffer_mins)
                .expect("handshake");
            let token = token_from_ok_detail(&detail)
                .expect("OK HELLO carries a token")
                .to_string();
            send_orders(&mut victim, &orders[..10]);
            victim.flush(flush_at).expect("flush frame");
            let (ack, pre_kill) = read_until_decisions(&mut victim, 4);
            drop(victim);

            // Resume: replay + suppression picks the stream up exactly
            // where the client left off.
            let mut resumed = resume_with_retry(server.addr(), "victim", &token, ack);
            send_orders(&mut resumed, &orders[10..]);
            resumed.drain().expect("drain frame");
            let rest = resumed.collect_episode().expect("resumed episode drains");
            assert_eq!(rest.errors, vec![], "{label}: clean resume");

            let mut stitched = pre_kill;
            stitched.extend(rest.decisions);
            assert_eq!(
                stitched, expected.decisions,
                "{label}: stitched decision stream diverges from the uninterrupted run"
            );
            assert_eq!(
                rest.metrics, expected.metrics,
                "{label}: resumed metrics diverge from the uninterrupted run"
            );
            assert!(server.stats().resumed >= 1, "{label}: resume counted");
            server.shutdown();
        }
    }
}

#[test]
fn a_file_backed_journal_survives_a_server_process_restart() {
    let dir = std::env::temp_dir().join(format!("dpdp-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let orders = trace(16);

    // Server #1: stream half the trace, acknowledge three decisions,
    // then kill the client *and* the whole server.
    let first = DecisionServer::bind(
        "127.0.0.1:0",
        ServerConfig {
            journal_dir: Some(dir.clone()),
            ..ServerConfig::default()
        },
    )
    .expect("bind")
    .spawn()
    .expect("spawn");
    let mut reference = ServeClient::connect(first.addr()).expect("connect");
    reference
        .hello("ref", "ring12", 5, "baseline1", 0.0)
        .expect("handshake");
    send_orders(&mut reference, &orders);
    reference.drain().expect("drain frame");
    let expected = reference.collect_episode().expect("reference drains");

    let mut victim = ServeClient::connect(first.addr()).expect("connect");
    let detail = victim
        .hello("phoenix", "ring12", 5, "baseline1", 0.0)
        .expect("handshake");
    let token = token_from_ok_detail(&detail).expect("token").to_string();
    send_orders(&mut victim, &orders[..8]);
    let (ack, pre_kill) = read_until_decisions(&mut victim, 3);
    drop(victim);
    assert_eq!(first.shutdown_drain(), DrainOutcome::Drained);

    // Server #2: a fresh process image — only the journal dir is shared.
    let second = DecisionServer::bind(
        "127.0.0.1:0",
        ServerConfig {
            journal_dir: Some(dir.clone()),
            ..ServerConfig::default()
        },
    )
    .expect("bind")
    .spawn()
    .expect("spawn");
    let mut resumed = resume_with_retry(second.addr(), "phoenix", &token, ack);
    send_orders(&mut resumed, &orders[8..]);
    resumed.drain().expect("drain frame");
    let rest = resumed.collect_episode().expect("resumed episode drains");
    assert_eq!(rest.errors, vec![]);

    let mut stitched = pre_kill;
    stitched.extend(rest.decisions);
    assert_eq!(stitched, expected.decisions, "restart broke the episode");
    assert_eq!(rest.metrics, expected.metrics, "restart broke the metrics");
    second.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_panicking_session_leaves_other_tenants_serving() {
    let orders = trace(24);
    let reference = run_in_process("baseline1", 3, &orders);
    let server = DecisionServer::bind(
        "127.0.0.1:0",
        ServerConfig {
            threads: 2,
            debug_frames: true,
            ..ServerConfig::default()
        },
    )
    .expect("bind")
    .spawn()
    .expect("spawn");

    // Tenant A: two orders in, then an injected crash.
    let mut doomed = ServeClient::connect(server.addr()).expect("connect");
    let detail = doomed
        .hello("doomed", "ring12", 3, "baseline1", 0.0)
        .expect("handshake");
    let token = token_from_ok_detail(&detail).expect("token").to_string();
    send_orders(&mut doomed, &orders[..2]);
    // The engine fires an epoch only once the stream reveals time past
    // it: a FLUSH heartbeat releases both decisions before the crash.
    doomed
        .flush(orders[1].created.seconds() + 1.0)
        .expect("flush frame");
    let (mut ack, pre_panic) = read_until_decisions(&mut doomed, 2);
    doomed.send_line("PANIC").expect("panic frame");
    // The supervisor answers ERR internal + BYE — never a clean METRICS.
    loop {
        match doomed.next_msg().expect("supervised farewell") {
            Some(ServerMsg::Err { code, .. }) if code == "internal" => break,
            Some(ServerMsg::Epoch { .. }) | Some(ServerMsg::Disrupt(_)) => ack += 1,
            Some(ServerMsg::Decision(_)) => panic!("no further decisions were due"),
            Some(ServerMsg::Metrics(_)) => panic!("a crashed session must not report METRICS"),
            Some(other) => panic!("unexpected frame {other:?}"),
            None => panic!("connection closed before ERR internal"),
        }
    }

    // Tenant B, meanwhile: the full trace, bit-identical to the solo
    // reference — the panic stayed inside tenant A's session.
    let mut witness = ServeClient::connect(server.addr()).expect("connect");
    witness
        .hello("witness", "ring12", 3, "baseline1", 0.0)
        .expect("a panicked sibling must not block the handshake");
    send_orders(&mut witness, &orders);
    witness.drain().expect("drain frame");
    let episode = witness.collect_episode().expect("witness drains");
    assert_eq!(episode.errors, vec![]);
    assert_eq!(episode.decisions.len(), reference.assignments.len());
    assert_eq!(episode.metrics.as_ref(), Some(&reference.metrics));
    assert_eq!(server.stats().panics, 1, "the crash was counted");

    // The crashed tenant's journal survived the unwind: resume, drain,
    // and the two-order episode finishes with the correct metrics.
    let two_order_reference = run_in_process("baseline1", 3, &orders[..2]);
    let mut resumed = resume_with_retry(server.addr(), "doomed", &token, ack);
    resumed.drain().expect("drain frame");
    let rest = resumed.collect_episode().expect("resumed episode drains");
    assert_eq!(pre_panic.len(), 2);
    assert_eq!(
        rest.metrics.as_ref(),
        Some(&two_order_reference.metrics),
        "resume after a panic must still complete the episode"
    );
    server.shutdown();
}

#[test]
fn an_oversized_frame_draws_a_structured_error_not_a_teardown() {
    let orders = trace(4);
    let reference = run_in_process("baseline1", 9, &orders);
    let server = DecisionServer::bind("127.0.0.1:0", ServerConfig::default())
        .expect("bind")
        .spawn()
        .expect("spawn");
    let mut client = ServeClient::connect(server.addr()).expect("connect");
    client
        .hello("bigmouth", "ring12", 9, "baseline1", 0.0)
        .expect("handshake");
    // 64 KiB of garbage in one frame: four times the reader's bound.
    client
        .send_line(&"X".repeat(64 * 1024))
        .expect("oversized frame");
    send_orders(&mut client, &orders);
    client.drain().expect("drain frame");
    let episode = client.collect_episode().expect("session survives");
    assert_eq!(
        episode
            .errors
            .iter()
            .map(|(c, _)| c.as_str())
            .collect::<Vec<_>>(),
        vec!["frame-too-long"],
        "exactly one structured refusal"
    );
    assert_eq!(episode.metrics.as_ref(), Some(&reference.metrics));
    server.shutdown();
}

#[test]
fn an_idle_socket_is_reaped_and_its_episode_resumes() {
    let orders = trace(12);
    let reference = run_in_process("baseline1", 21, &orders);
    let server = DecisionServer::bind(
        "127.0.0.1:0",
        ServerConfig {
            idle_timeout: Some(Duration::from_millis(150)),
            ..ServerConfig::default()
        },
    )
    .expect("bind")
    .spawn()
    .expect("spawn");

    let mut ghost = ServeClient::connect(server.addr()).expect("connect");
    let detail = ghost
        .hello("ghost", "ring12", 21, "baseline1", 0.0)
        .expect("handshake");
    let token = token_from_ok_detail(&detail).expect("token").to_string();
    send_orders(&mut ghost, &orders[..5]);
    // Go quiet past the deadline: the server reaps the socket through
    // the drain path (ERR idle-timeout, then the partial episode's
    // METRICS + BYE) and keeps the journal.
    let episode = ghost.collect_episode().expect("reaped episode drains");
    assert_eq!(
        episode
            .errors
            .iter()
            .map(|(c, _)| c.as_str())
            .collect::<Vec<_>>(),
        vec!["idle-timeout"]
    );
    assert_eq!(episode.decisions.len(), 5, "the reaped prefix was decided");
    assert!(server.stats().reaped >= 1, "the reap was counted");

    // Everything the ghost received counts as acknowledged; the resumed
    // session continues with the remaining orders.
    let ack = episode.epochs.len() + episode.decisions.len() + episode.disruptions.len();
    let mut resumed = resume_with_retry(server.addr(), "ghost", &token, ack);
    send_orders(&mut resumed, &orders[5..]);
    resumed.drain().expect("drain frame");
    let rest = resumed.collect_episode().expect("resumed episode drains");
    assert_eq!(rest.errors, vec![]);
    let mut stitched = episode.decisions;
    stitched.extend(rest.decisions);
    assert_eq!(stitched.len(), 12);
    assert_eq!(rest.metrics.as_ref(), Some(&reference.metrics));
    server.shutdown();
}

#[test]
fn connects_beyond_the_session_cap_are_shed_with_overloaded() {
    let orders = trace(8);
    let reference = run_in_process("baseline1", 13, &orders);
    let server = DecisionServer::bind(
        "127.0.0.1:0",
        ServerConfig {
            max_sessions: Some(1),
            ..ServerConfig::default()
        },
    )
    .expect("bind")
    .spawn()
    .expect("spawn");

    let mut seated = ServeClient::connect(server.addr()).expect("connect");
    seated
        .hello("seated", "ring12", 13, "baseline1", 0.0)
        .expect("handshake");

    // One over the cap: a structured refusal, not a silent accept.
    let mut shed = ServeClient::connect(server.addr()).expect("connect");
    match shed.next_msg().expect("refusal frame") {
        Some(ServerMsg::Err { code, .. }) => assert_eq!(code, "overloaded"),
        other => panic!("expected ERR overloaded, got {other:?}"),
    }
    assert_eq!(server.stats().shed, 1);
    drop(shed);

    // The seated tenant is unperturbed — and once it leaves, the seat
    // frees up for the next connection.
    send_orders(&mut seated, &orders);
    seated.drain().expect("drain frame");
    let episode = seated.collect_episode().expect("seated episode drains");
    assert_eq!(episode.metrics.as_ref(), Some(&reference.metrics));
    drop(seated);
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.stats().active > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    let mut next = ServeClient::connect(server.addr()).expect("connect");
    next.hello("next", "ring12", 13, "baseline1", 0.0)
        .expect("the freed seat is usable");
    server.shutdown();
}

#[test]
fn graceful_shutdown_drains_active_episodes_and_refuses_new_connects() {
    let orders = trace(12);
    let reference = run_in_process("baseline1", 17, &orders);
    let server = DecisionServer::bind("127.0.0.1:0", ServerConfig::default())
        .expect("bind")
        .spawn()
        .expect("spawn");
    let addr = server.addr();

    let mut client = ServeClient::connect(addr).expect("connect");
    client
        .hello("drainee", "ring12", 17, "baseline1", 0.0)
        .expect("handshake");
    send_orders(&mut client, &orders);

    // Drain from another thread while the episode is still attached.
    let drainer = std::thread::spawn(move || server.shutdown_drain());
    std::thread::sleep(Duration::from_millis(300));
    assert!(
        ServeClient::connect_once(addr).is_err(),
        "a draining server must refuse new connections"
    );

    // The active episode still finishes cleanly: METRICS + BYE.
    client.drain().expect("drain frame");
    let episode = client
        .collect_episode()
        .expect("episode drains during shutdown");
    assert_eq!(episode.errors, vec![]);
    assert_eq!(episode.metrics.as_ref(), Some(&reference.metrics));
    assert_eq!(drainer.join().expect("drain thread"), DrainOutcome::Drained);
}

#[test]
fn the_drain_deadline_force_closes_stragglers() {
    let server = DecisionServer::bind(
        "127.0.0.1:0",
        ServerConfig {
            drain_timeout: Duration::from_millis(200),
            ..ServerConfig::default()
        },
    )
    .expect("bind")
    .spawn()
    .expect("spawn");
    let mut straggler = ServeClient::connect(server.addr()).expect("connect");
    straggler
        .hello("straggler", "ring12", 1, "baseline1", 0.0)
        .expect("handshake");
    straggler
        .order(2, 8, 4.0, 30_000.0, 60_000.0)
        .expect("order");

    // The straggler never drains: the deadline passes and its socket is
    // force-closed (the client sees the stream end without a BYE).
    let outcome = server.shutdown_drain();
    assert_eq!(outcome, DrainOutcome::ForcedClose(1));
    // A reset mid-read (Err) is just as acceptable as a clean EOF.
    if let Ok(episode) = straggler.collect_episode() {
        assert!(
            episode.metrics.is_none(),
            "no clean drain after force-close"
        );
    }
}

#[test]
fn connect_retries_through_the_server_startup_race() {
    // Reserve a port, release it, and only bind the server there after a
    // deliberate delay: a single connect(2) would be refused, so this
    // passes only through the client's backoff loop.
    let probe = std::net::TcpListener::bind("127.0.0.1:0").expect("probe bind");
    let addr = probe.local_addr().expect("probe addr");
    drop(probe);
    let starter = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(250));
        DecisionServer::bind(addr, ServerConfig::default())
            .expect("delayed bind")
            .spawn()
            .expect("spawn")
    });
    let mut client = ServeClient::connect(addr).expect("backoff rides out the race");
    let server = starter.join().expect("starter thread");
    client
        .hello("early-bird", "ring12", 2, "baseline1", 0.0)
        .expect("handshake");
    client.drain().expect("drain frame");
    assert!(client
        .collect_episode()
        .expect("empty episode")
        .metrics
        .is_some());
    server.shutdown();
}

#[test]
fn resume_verdicts_and_debug_gating_are_structured() {
    let server = DecisionServer::bind("127.0.0.1:0", ServerConfig::default())
        .expect("bind")
        .spawn()
        .expect("spawn");

    // STATS answers before any handshake.
    let mut probe = ServeClient::connect(server.addr()).expect("connect");
    assert!(probe.stats().expect("stats frame").total >= 1);

    // PANIC without --debug-frames is refused, and the session lives on.
    probe.send_line("PANIC").expect("panic frame");
    match probe.next_msg().expect("refusal") {
        Some(ServerMsg::Err { code, .. }) => assert_eq!(code, "debug-disabled"),
        other => panic!("expected ERR debug-disabled, got {other:?}"),
    }

    // Resume verdicts: unknown tenant, wrong token, still-live session.
    match probe.resume("nobody", "deadbeef", 0) {
        Err(ClientError::Rejected { code, .. }) => assert_eq!(code, "unknown-session"),
        other => panic!("expected ERR unknown-session, got {other:?}"),
    }
    let detail = probe
        .hello("holder", "ring12", 4, "baseline1", 0.0)
        .expect("handshake");
    let token = token_from_ok_detail(&detail).expect("token").to_string();

    let mut rival = ServeClient::connect(server.addr()).expect("connect");
    match rival.resume("holder", "wrong-token", 0) {
        Err(ClientError::Rejected { code, .. }) => assert_eq!(code, "bad-token"),
        other => panic!("expected ERR bad-token, got {other:?}"),
    }
    match rival.resume("holder", &token, 0) {
        Err(ClientError::Rejected { code, .. }) => assert_eq!(code, "session-active"),
        other => panic!("expected ERR session-active, got {other:?}"),
    }
    match rival.hello("holder", "ring12", 4, "baseline1", 0.0) {
        Err(ClientError::Rejected { code, .. }) => assert_eq!(code, "session-active"),
        other => panic!("expected ERR session-active, got {other:?}"),
    }
    server.shutdown();
}
