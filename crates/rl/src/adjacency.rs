//! Vehicle adjacency for neighbourhood attention.
//!
//! The paper measures spatial proximity between vehicles by Euclidean
//! distance and selects the `NE` nearest vehicles as each vehicle's
//! neighbours (Section IV-C, "Neighborhood attention").

use dpdp_net::RoadNetwork;
use dpdp_routing::VehicleView;

/// For each vehicle, the indices of its `ne` nearest vehicles (by Euclidean
/// distance between anchor-node positions), **including itself first**.
/// Every list has length `min(ne, K)`.
pub fn nearest_neighbors(views: &[VehicleView], net: &RoadNetwork, ne: usize) -> Vec<Vec<usize>> {
    let k = views.len();
    let take = ne.min(k);
    let positions: Vec<_> = views.iter().map(|v| net.node(v.anchor_node).pos).collect();
    (0..k)
        .map(|i| {
            let mut by_dist: Vec<usize> = (0..k).collect();
            by_dist.sort_by(|&a, &b| {
                // Self always sorts first (distance 0 and tie-break by index
                // equality), then by distance, then by index for determinism.
                let da = positions[i].distance(&positions[a]) + if a == i { -1.0 } else { 0.0 };
                let db = positions[i].distance(&positions[b]) + if b == i { -1.0 } else { 0.0 };
                da.partial_cmp(&db)
                    .expect("distances are finite")
                    .then(a.cmp(&b))
            });
            by_dist.truncate(take);
            by_dist
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpdp_net::{Node, NodeId, Point, VehicleId};

    fn net() -> RoadNetwork {
        let nodes = vec![
            Node::depot(NodeId(0), Point::new(0.0, 0.0)),
            Node::factory(NodeId(1), Point::new(1.0, 0.0)),
            Node::factory(NodeId(2), Point::new(2.0, 0.0)),
            Node::factory(NodeId(3), Point::new(10.0, 0.0)),
        ];
        RoadNetwork::euclidean(nodes, 1.0).unwrap()
    }

    fn view_at(k: u32, node: u32) -> VehicleView {
        let mut v = VehicleView::idle_at_depot(VehicleId(k), NodeId(0));
        v.anchor_node = NodeId(node);
        v
    }

    #[test]
    fn self_is_first_neighbor() {
        let net = net();
        let views = vec![view_at(0, 0), view_at(1, 1), view_at(2, 3)];
        let adj = nearest_neighbors(&views, &net, 2);
        assert_eq!(adj[0][0], 0);
        assert_eq!(adj[1][0], 1);
        assert_eq!(adj[2][0], 2);
    }

    #[test]
    fn nearest_by_position() {
        let net = net();
        let views = vec![view_at(0, 0), view_at(1, 1), view_at(2, 2), view_at(3, 3)];
        let adj = nearest_neighbors(&views, &net, 3);
        // Vehicle 0 at x=0: nearest others are x=1 then x=2.
        assert_eq!(adj[0], vec![0, 1, 2]);
        // Vehicle 3 at x=10: nearest others are x=2 then x=1.
        assert_eq!(adj[3], vec![3, 2, 1]);
    }

    #[test]
    fn ne_larger_than_fleet_is_clamped() {
        let net = net();
        let views = vec![view_at(0, 0), view_at(1, 1)];
        let adj = nearest_neighbors(&views, &net, 10);
        assert_eq!(adj[0].len(), 2);
        assert_eq!(adj[1].len(), 2);
    }

    #[test]
    fn colocated_vehicles_break_ties_by_index() {
        let net = net();
        let views = vec![view_at(0, 1), view_at(1, 1), view_at(2, 1)];
        let adj = nearest_neighbors(&views, &net, 3);
        assert_eq!(adj[1], vec![1, 0, 2]);
    }
}
