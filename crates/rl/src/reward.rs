//! Rewards: Eq. (6)–(8) of the paper.

use serde::{Deserialize, Serialize};

/// Reward parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RewardParams {
    /// Reward scaling factor `alpha`.
    pub alpha: f64,
    /// Fixed cost `mu` of activating a vehicle.
    pub fixed_cost: f64,
    /// Operating cost `delta` per km.
    pub unit_cost: f64,
}

impl RewardParams {
    /// Builds from the fleet's cost model with the given `alpha`.
    pub fn new(alpha: f64, fixed_cost: f64, unit_cost: f64) -> Self {
        RewardParams {
            alpha,
            fixed_cost,
            unit_cost,
        }
    }
}

/// The instant reward of assigning an order to a vehicle:
/// `r = -alpha * (mu * [vehicle newly activated] + delta * Δd)`.
///
/// Note on Eq. (6): the paper writes `mu * f_{t,k}` with `f = 1` when the
/// vehicle *has* been used before, which — read literally — charges the
/// fixed cost for reusing a vehicle and nothing for activating a fresh one,
/// contradicting both the TC definition (`mu` is paid once per *used*
/// vehicle) and the paper's stated goal of reducing NUV. We implement the
/// evidently intended semantics: the fixed cost is charged exactly when a
/// previously unused vehicle is activated (`1 - f`). This matches how the
/// baselines and the TC metric account for `mu` and is recorded in
/// DESIGN.md.
pub fn instant_reward(params: &RewardParams, vehicle_was_used: bool, incremental_km: f64) -> f64 {
    let activation = if vehicle_was_used {
        0.0
    } else {
        params.fixed_cost
    };
    -params.alpha * (activation + params.unit_cost * incremental_km)
}

/// The episode-level long-term reward `r̄` (Eq. (7)): the mean instant
/// reward over all served orders of the episode. Returns 0 for empty input.
pub fn long_term_reward(instant_rewards: &[f64]) -> f64 {
    if instant_rewards.is_empty() {
        return 0.0;
    }
    instant_rewards.iter().sum::<f64>() / instant_rewards.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_vehicle_pays_fixed_cost() {
        let p = RewardParams::new(0.01, 500.0, 2.0);
        let fresh = instant_reward(&p, false, 10.0);
        let reused = instant_reward(&p, true, 10.0);
        assert!((fresh - -0.01 * (500.0 + 20.0)).abs() < 1e-12);
        assert!((reused - -0.01 * 20.0).abs() < 1e-12);
        assert!(reused > fresh, "reusing a vehicle must be cheaper");
    }

    #[test]
    fn zero_detour_on_used_vehicle_is_free() {
        let p = RewardParams::new(1.0, 500.0, 2.0);
        assert_eq!(instant_reward(&p, true, 0.0), 0.0);
    }

    #[test]
    fn long_term_reward_is_the_mean() {
        assert_eq!(long_term_reward(&[]), 0.0);
        assert!((long_term_reward(&[-1.0, -3.0]) - -2.0).abs() < 1e-12);
    }
}
