//! The DQN-family dispatching agent: DQN / DDQN / DGN / DDGN and their
//! ST-aided variants, trained per Algorithm 3.

use crate::qnet::{QNetwork, QNetworkConfig};
use crate::replay::ReplayBuffer;
use crate::reward::{instant_reward, long_term_reward, RewardParams};
use crate::schedule::EpsilonSchedule;
use crate::state::{StateBuilder, StateSnapshot};
use dpdp_data::{StScorer, StdMatrix};
use dpdp_net::{Instance, VehicleId};
use dpdp_nn::{Adam, Graph, Optimizer, ParamStore, Tensor};
use dpdp_sim::{Decision, DecisionBatch, DispatchContext, Dispatcher};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// The model family of the paper's experiments and ablations (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelKind {
    /// Vanilla DQN: single network target, no graph, no ST Score.
    Dqn,
    /// Double DQN.
    Ddqn,
    /// Double DQN + ST Score.
    StDdqn,
    /// Graph (neighbourhood attention) + DQN target.
    Dgn,
    /// Graph + Double DQN.
    Ddgn,
    /// The paper's full model: graph + Double DQN + ST Score.
    StDdgn,
}

impl ModelKind {
    /// `(double, graph, st_score)` switches.
    pub fn flags(self) -> (bool, bool, bool) {
        match self {
            ModelKind::Dqn => (false, false, false),
            ModelKind::Ddqn => (true, false, false),
            ModelKind::StDdqn => (true, false, true),
            ModelKind::Dgn => (false, true, false),
            ModelKind::Ddgn => (true, true, false),
            ModelKind::StDdgn => (true, true, true),
        }
    }

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::Dqn => "DQN",
            ModelKind::Ddqn => "DDQN",
            ModelKind::StDdqn => "ST-DDQN",
            ModelKind::Dgn => "DGN",
            ModelKind::Ddgn => "DDGN",
            ModelKind::StDdgn => "ST-DDGN",
        }
    }

    /// Whether the ST Score feature is enabled.
    pub fn uses_st(self) -> bool {
        self.flags().2
    }
}

/// Hyper-parameters of a DQN-family agent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AgentConfig {
    /// Which family member this is.
    pub kind: ModelKind,
    /// Embedding width.
    pub hidden: usize,
    /// Attention heads.
    pub heads: usize,
    /// Stacked attention blocks.
    pub levels: usize,
    /// Neighbourhood size `NE`.
    pub ne: usize,
    /// Discount factor.
    pub gamma: f64,
    /// Adam learning rate.
    pub lr: f64,
    /// Exploration schedule.
    pub epsilon: EpsilonSchedule,
    /// Replay capacity (transitions).
    pub replay_capacity: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Gradient steps per episode.
    pub updates_per_episode: usize,
    /// Target-network sync period in episodes (Algorithm 3's `T`).
    pub target_sync_period: usize,
    /// Reward scale `alpha`.
    pub reward_alpha: f64,
    /// Distance normalisation for state features, km.
    pub dist_scale: f64,
    /// Seed for weights and exploration.
    pub seed: u64,
}

impl AgentConfig {
    /// Paper-flavoured defaults for the given model kind.
    pub fn new(kind: ModelKind) -> Self {
        AgentConfig {
            kind,
            hidden: 32,
            heads: 4,
            levels: 2,
            ne: 8,
            gamma: 0.9,
            lr: 1e-3,
            epsilon: EpsilonSchedule::linear(0.5, 0.02, 150),
            replay_capacity: 20_000,
            batch_size: 32,
            updates_per_episode: 8,
            target_sync_period: 5,
            reward_alpha: 0.01,
            dist_scale: 50.0,
            seed: 0,
        }
    }
}

/// One stored MDP transition.
#[derive(Debug, Clone)]
struct Transition {
    state: StateSnapshot,
    action: usize,
    reward: f64,
    next: Option<StateSnapshot>,
    terminal: bool,
}

/// A trainable DQN-family dispatcher.
pub struct DqnAgent {
    config: AgentConfig,
    qnet: QNetwork,
    online: ParamStore,
    target: ParamStore,
    optimizer: Adam,
    replay: ReplayBuffer<Transition>,
    state_builder: StateBuilder,
    rng: StdRng,
    episode: usize,
    training: bool,
    reward_params: RewardParams,
    // Per-episode bookkeeping.
    last: Option<(StateSnapshot, usize, f64, usize)>, // state, action, r, interval
    pending: Vec<Transition>,
    episode_instant_rewards: Vec<f64>,
    last_losses: Vec<f64>,
}

impl DqnAgent {
    /// Creates an agent. `scorer` must be provided iff the model kind uses
    /// the ST Score; call [`DqnAgent::set_prediction`] before each episode
    /// to supply the day's predicted STD matrix.
    ///
    /// # Panics
    /// Panics if the ST switch and `scorer` presence disagree.
    pub fn new(config: AgentConfig, num_intervals: usize, scorer: Option<StScorer>) -> Self {
        let (_, graph, st) = config.kind.flags();
        assert_eq!(
            st,
            scorer.is_some(),
            "ST-score models need a scorer; others must not get one"
        );
        let qcfg = QNetworkConfig {
            hidden: config.hidden,
            heads: config.heads,
            levels: config.levels,
            graph,
        };
        let mut online = ParamStore::new(config.seed);
        let qnet = QNetwork::new(&mut online, qcfg);
        let mut target = ParamStore::new(config.seed.wrapping_add(1));
        let _ = QNetwork::new(&mut target, qcfg);
        target.copy_values_from(&online);
        let mut state_builder = StateBuilder::new(config.dist_scale, num_intervals, config.ne);
        if let Some(s) = scorer {
            state_builder = state_builder.with_scorer(s);
        }
        let optimizer = Adam::with_lr(config.lr);
        let replay = ReplayBuffer::new(config.replay_capacity);
        let rng = StdRng::seed_from_u64(config.seed.wrapping_mul(0x9E37_79B9).wrapping_add(17));
        let reward_params = RewardParams::new(config.reward_alpha, 0.0, 0.0);
        DqnAgent {
            config,
            qnet,
            online,
            target,
            optimizer,
            replay,
            state_builder,
            rng,
            episode: 0,
            training: true,
            reward_params,
            last: None,
            pending: Vec::new(),
            episode_instant_rewards: Vec::new(),
            last_losses: Vec::new(),
        }
    }

    /// Supplies the predicted STD matrix for the upcoming episode (no-op
    /// for non-ST models, which have no scorer).
    pub fn set_prediction(&mut self, predicted: Option<StdMatrix>) {
        self.state_builder.set_prediction(predicted);
    }

    /// Enables/disables learning and exploration. In evaluation mode the
    /// agent acts greedily and does not update weights.
    pub fn set_training(&mut self, training: bool) {
        self.training = training;
    }

    /// The agent's configuration.
    pub fn config(&self) -> &AgentConfig {
        &self.config
    }

    /// Episodes completed so far.
    pub fn episodes_completed(&self) -> usize {
        self.episode
    }

    /// Mean TD loss of the most recent training updates.
    pub fn last_loss(&self) -> Option<f64> {
        if self.last_losses.is_empty() {
            None
        } else {
            Some(self.last_losses.iter().sum::<f64>() / self.last_losses.len() as f64)
        }
    }

    /// Read-only access to the online parameters (for checkpointing).
    pub fn params(&self) -> &ParamStore {
        &self.online
    }

    /// Mutable access to the online parameters (for checkpoint loading);
    /// the target network is synced to match.
    pub fn load_params(&mut self, params: &ParamStore) {
        self.online.copy_values_from(params);
        self.target.copy_values_from(params);
    }

    fn epsilon(&self) -> f64 {
        if self.training {
            self.config.epsilon.at(self.episode)
        } else {
            0.0
        }
    }

    /// Epsilon-greedy action choice. When `precomputed` Q-values are given
    /// (from a batched epoch forward) the greedy branch uses them instead
    /// of running a fresh forward pass; both paths are bit-identical.
    fn choose_action(
        &mut self,
        snap: &StateSnapshot,
        precomputed: Option<&[f64]>,
    ) -> Option<usize> {
        let feasible: Vec<usize> = (0..snap.num_vehicles())
            .filter(|&i| snap.feasible[i])
            .collect();
        if feasible.is_empty() {
            return None;
        }
        if self.rng.random_range(0.0..1.0) < self.epsilon() {
            let pick = self.rng.random_range(0..feasible.len());
            return Some(feasible[pick]);
        }
        match precomputed {
            Some(q) => {
                let mut best: Option<(usize, f64)> = None;
                for &i in &feasible {
                    if best.is_none_or(|(_, b)| q[i] > b) {
                        best = Some((i, q[i]));
                    }
                }
                best.map(|(i, _)| i)
            }
            None => self.qnet.greedy_action(&self.online, snap),
        }
    }

    /// The shared per-order decision body: choose, account the reward, and
    /// chain the MDP transition. `snap` must describe `ctx`, and
    /// `precomputed` (if any) must be `snap`'s Q-values.
    fn decide_one(
        &mut self,
        ctx: &DispatchContext<'_>,
        snap: StateSnapshot,
        precomputed: Option<&[f64]>,
    ) -> Option<usize> {
        let action = self.choose_action(&snap, precomputed)?;
        let plan = &ctx.plans[action];
        let delta = plan
            .incremental_length()
            .expect("chosen action is feasible");
        let r = instant_reward(&self.reward_params, ctx.views[action].used, delta);
        self.close_last(Some((&snap, ctx.interval)));
        self.last = Some((snap, action, r, ctx.interval));
        self.episode_instant_rewards.push(r);
        Some(action)
    }

    /// Best feasible Q-value of a snapshot under the given parameters.
    fn max_q(&self, store: &ParamStore, snap: &StateSnapshot) -> Option<f64> {
        let q = self.qnet.q_values(store, snap);
        (0..q.len())
            .filter(|&i| snap.feasible[i])
            .map(|i| q[i])
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }

    fn td_target(&self, t: &Transition) -> f64 {
        if t.terminal {
            return t.reward;
        }
        let next = t.next.as_ref().expect("non-terminal has next state");
        if !next.any_feasible() {
            return t.reward;
        }
        let (double, _, _) = self.config.kind.flags();
        let bootstrap = if double {
            // DDQN: argmax under the online network, value under the target.
            match self.qnet.greedy_action(&self.online, next) {
                Some(a_star) => self.qnet.q_values(&self.target, next)[a_star],
                None => 0.0,
            }
        } else {
            self.max_q(&self.target, next).unwrap_or(0.0)
        };
        t.reward + self.config.gamma * bootstrap
    }

    fn train_step(&mut self) -> Option<f64> {
        if self.replay.is_empty() {
            return None;
        }
        // Sample indices up front to end the immutable borrow of replay.
        let batch: Vec<Transition> = self
            .replay
            .sample(&mut self.rng, self.config.batch_size)
            .into_iter()
            .cloned()
            .collect();
        let b = batch.len() as f64;
        let mut total = 0.0;
        for t in &batch {
            let y = self.td_target(t);
            let mut g = Graph::new();
            let q_all = self.qnet.forward(&mut g, &self.online, &t.state);
            let q_sa = g.gather_rows(q_all, &[t.action]);
            let target = g.constant(Tensor::scalar(y));
            let err = g.mse(q_sa, target);
            total += g.value(err).item();
            let scaled = g.scale(err, 1.0 / b);
            g.backward(scaled, &mut self.online);
        }
        self.optimizer.step(&mut self.online);
        Some(total / b)
    }

    /// Finishes the open transition (if any) with the given successor.
    fn close_last(&mut self, next: Option<(&StateSnapshot, usize)>) {
        if let Some((state, action, r, interval)) = self.last.take() {
            // Algorithm 3 marks the last order of each time interval
            // terminal, bounding bootstrapping within intervals.
            let (next_snap, terminal) = match next {
                Some((snap, next_interval)) => (Some(snap.clone()), next_interval != interval),
                None => (None, true),
            };
            self.pending.push(Transition {
                state,
                action,
                reward: r,
                next: next_snap,
                terminal,
            });
        }
    }
}

impl crate::batch_dispatch::BatchScoredPolicy for DqnAgent {
    type Scores = Vec<f64>;

    fn build_snapshot(&self, ctx: &DispatchContext<'_>) -> StateSnapshot {
        self.state_builder.build(ctx)
    }

    fn score_batch(
        &self,
        snaps: &[StateSnapshot],
        pool: &std::sync::Arc<dpdp_pool::ThreadPool>,
    ) -> Vec<Vec<f64>> {
        self.qnet.q_values_batch(&self.online, snaps, pool)
    }

    fn decide(
        &mut self,
        ctx: &DispatchContext<'_>,
        snap: StateSnapshot,
        precomputed: Option<&Vec<f64>>,
    ) -> Option<usize> {
        self.decide_one(ctx, snap, precomputed.map(Vec::as_slice))
    }
}

impl Dispatcher for DqnAgent {
    fn begin_episode(&mut self, instance: &Instance) {
        self.reward_params = RewardParams::new(
            self.config.reward_alpha,
            instance.fleet.fixed_cost,
            instance.fleet.unit_cost,
        );
        self.last = None;
        self.pending.clear();
        self.episode_instant_rewards.clear();
    }

    fn dispatch(&mut self, ctx: &DispatchContext<'_>) -> Option<VehicleId> {
        let snap = self.state_builder.build(ctx);
        self.decide_one(ctx, snap, None).map(VehicleId::from_index)
    }

    /// Batch-native dispatch: builds every order's joint state against the
    /// shared epoch snapshot and scores them all through **one** Q-network
    /// forward pass ([`QNetwork::q_values_batch`]). Orders then commit
    /// sequentially; once an assignment perturbs the snapshot, later orders
    /// fall back to fresh single-state evaluation, which keeps the
    /// decision stream bit-identical to the legacy per-order path.
    fn dispatch_batch(&mut self, batch: &DecisionBatch<'_>) -> Vec<Decision> {
        crate::batch_dispatch::dispatch_batch_scored(self, batch)
    }

    fn end_episode(&mut self) {
        self.close_last(None);
        // Eq. (7)-(8): add the episode-mean reward to every transition.
        let r_bar = long_term_reward(&self.episode_instant_rewards);
        for mut t in self.pending.drain(..) {
            t.reward += r_bar;
            self.replay.push(t);
        }
        if self.training {
            self.last_losses.clear();
            for _ in 0..self.config.updates_per_episode {
                if let Some(loss) = self.train_step() {
                    self.last_losses.push(loss);
                }
            }
            self.episode += 1;
            if self
                .episode
                .is_multiple_of(self.config.target_sync_period.max(1))
            {
                self.target.copy_values_from(&self.online);
            }
        }
    }

    fn name(&self) -> &str {
        self.config.kind.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpdp_net::{
        FleetConfig, IntervalGrid, Node, NodeId, Order, OrderId, Point, RoadNetwork, TimeDelta,
        TimePoint,
    };
    use dpdp_sim::Simulator;

    fn tiny_instance(orders: usize) -> Instance {
        let nodes = vec![
            Node::depot(NodeId(0), Point::new(0.0, 0.0)),
            Node::factory(NodeId(1), Point::new(5.0, 0.0)),
            Node::factory(NodeId(2), Point::new(10.0, 0.0)),
            Node::factory(NodeId(3), Point::new(5.0, 5.0)),
        ];
        let net = RoadNetwork::euclidean(nodes, 1.0).unwrap();
        let fleet =
            FleetConfig::homogeneous(3, &[NodeId(0)], 10.0, 300.0, 2.0, 40.0, TimeDelta::ZERO)
                .unwrap();
        let mut os = Vec::new();
        for i in 0..orders {
            let (p, d) = if i % 2 == 0 { (1, 2) } else { (3, 1) };
            os.push(
                Order::new(
                    OrderId(i as u32),
                    NodeId(p),
                    NodeId(d),
                    2.0 + (i % 3) as f64,
                    TimePoint::from_hours(8.0 + i as f64 * 0.5),
                    TimePoint::from_hours(14.0 + i as f64 * 0.5),
                )
                .unwrap(),
            );
        }
        Instance::new(net, fleet, IntervalGrid::paper_default(), os).unwrap()
    }

    fn quick_config(kind: ModelKind) -> AgentConfig {
        let mut c = AgentConfig::new(kind);
        c.hidden = 8;
        c.heads = 2;
        c.levels = 1;
        c.batch_size = 8;
        c.updates_per_episode = 2;
        c.epsilon = EpsilonSchedule::linear(0.3, 0.0, 5);
        c
    }

    #[test]
    fn all_kinds_run_episodes_and_fill_replay() {
        for kind in [
            ModelKind::Dqn,
            ModelKind::Ddqn,
            ModelKind::Dgn,
            ModelKind::Ddgn,
        ] {
            let inst = tiny_instance(6);
            let mut agent = DqnAgent::new(quick_config(kind), 144, None);
            let sim = Simulator::builder(&inst).build().unwrap();
            let result = sim.run(&mut agent);
            assert_eq!(result.metrics.served, 6, "{kind:?} should serve all");
            assert_eq!(agent.replay.len(), 6);
            assert_eq!(agent.episodes_completed(), 1);
            assert!(agent.last_loss().is_some());
        }
    }

    #[test]
    #[should_panic(expected = "scorer")]
    fn st_kind_requires_scorer() {
        let _ = DqnAgent::new(quick_config(ModelKind::StDdgn), 144, None);
    }

    #[test]
    fn training_improves_or_holds_on_fixed_instance() {
        let inst = tiny_instance(8);
        let mut cfg = quick_config(ModelKind::Ddgn);
        cfg.updates_per_episode = 4;
        cfg.epsilon = EpsilonSchedule::linear(0.8, 0.0, 40);
        let mut agent = DqnAgent::new(cfg, 144, None);
        let sim = Simulator::builder(&inst).build().unwrap();
        let mut costs = Vec::new();
        for _ in 0..50 {
            let r = sim.run(&mut agent);
            assert_eq!(r.metrics.served, 8, "training run must serve all orders");
            costs.push(r.metrics.total_cost);
        }
        agent.set_training(false);
        let greedy = sim.run(&mut agent).metrics.total_cost;
        // The learned greedy policy should be no worse than the average
        // exploratory episode early in training (deterministic seeds make
        // this a stable regression check, not a statistical one).
        let early = costs[..10].iter().sum::<f64>() / 10.0;
        assert!(
            greedy <= early * 1.25,
            "greedy eval {greedy} much worse than early training mean {early}"
        );
    }

    #[test]
    fn eval_mode_is_deterministic() {
        let inst = tiny_instance(6);
        let mut agent = DqnAgent::new(quick_config(ModelKind::Ddgn), 144, None);
        let sim = Simulator::builder(&inst).build().unwrap();
        for _ in 0..3 {
            sim.run(&mut agent);
        }
        agent.set_training(false);
        let a = sim.run(&mut agent);
        let b = sim.run(&mut agent);
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.assignments, b.assignments);
    }

    #[test]
    fn interval_boundaries_mark_terminals() {
        // Orders 30 minutes apart span different 10-minute intervals, so all
        // non-final transitions should still be terminal per Algorithm 3.
        let inst = tiny_instance(4);
        let mut agent = DqnAgent::new(quick_config(ModelKind::Dqn), 144, None);
        let sim = Simulator::builder(&inst).build().unwrap();
        sim.run(&mut agent);
        // Replay now has 4 transitions, all terminal.
        let mut rng = StdRng::seed_from_u64(0);
        for t in agent.replay.sample(&mut rng, 10) {
            assert!(t.terminal);
        }
    }
}
