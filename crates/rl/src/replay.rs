//! A bounded replay buffer with uniform sampling.

use rand::rngs::StdRng;
use rand::RngExt;

/// A fixed-capacity ring buffer of transitions with uniform sampling
/// (the memory replay `D` of Algorithm 3).
#[derive(Debug, Clone)]
pub struct ReplayBuffer<T> {
    items: Vec<T>,
    capacity: usize,
    next: usize,
}

impl<T> ReplayBuffer<T> {
    /// A buffer holding at most `capacity` transitions.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "replay capacity must be positive");
        ReplayBuffer {
            items: Vec::with_capacity(capacity.min(4096)),
            capacity,
            next: 0,
        }
    }

    /// Inserts a transition, evicting the oldest once full.
    pub fn push(&mut self, item: T) {
        if self.items.len() < self.capacity {
            self.items.push(item);
        } else {
            self.items[self.next] = item;
            self.next = (self.next + 1) % self.capacity;
        }
    }

    /// Number of stored transitions.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Uniformly samples `batch` item references **without replacement**
    /// (or everything, if fewer are stored).
    pub fn sample<'a>(&'a self, rng: &mut StdRng, batch: usize) -> Vec<&'a T> {
        let n = self.items.len();
        let take = batch.min(n);
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..take {
            let j = rng.random_range(i..n);
            idx.swap(i, j);
        }
        idx[..take].iter().map(|&i| &self.items[i]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn push_evicts_oldest_beyond_capacity() {
        let mut buf = ReplayBuffer::new(3);
        for i in 0..5 {
            buf.push(i);
        }
        assert_eq!(buf.len(), 3);
        // 0 and 1 evicted; 2, 3, 4 remain (in some ring order).
        let mut rng = StdRng::seed_from_u64(0);
        let mut got: Vec<i32> = buf.sample(&mut rng, 3).into_iter().copied().collect();
        got.sort_unstable();
        assert_eq!(got, vec![2, 3, 4]);
    }

    #[test]
    fn sample_is_without_replacement_and_clamped() {
        let mut buf = ReplayBuffer::new(10);
        for i in 0..4 {
            buf.push(i);
        }
        let mut rng = StdRng::seed_from_u64(1);
        let s = buf.sample(&mut rng, 100);
        assert_eq!(s.len(), 4);
        let mut got: Vec<i32> = s.into_iter().copied().collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn sampling_is_roughly_uniform() {
        let mut buf = ReplayBuffer::new(4);
        for i in 0..4 {
            buf.push(i);
        }
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            for &&x in &buf.sample(&mut rng, 1) {
                counts[x as usize] += 1;
            }
        }
        for c in counts {
            assert!((700..1300).contains(&c), "counts skewed: {counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _: ReplayBuffer<u8> = ReplayBuffer::new(0);
    }
}
