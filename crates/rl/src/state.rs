//! The route-centric MDP state (Section IV-B).
//!
//! For order `o^i_t`, the joint state is `S^i_t = (s^i_{t,1}, …, s^i_{t,K})`
//! with per-vehicle features
//! `s^i_{t,k} = (d_{t,k}, d^i_{t,k}, ξ^i_{t,k}, f_{t,k}, t)`:
//! current route length, best-insertion route length, ST Score of the best
//! temporary route, used flag, and the time-interval index. Infeasible
//! vehicles get the paper's `-1` sentinel features and are masked out of
//! inference ("constraint embedding").

use crate::adjacency::nearest_neighbors;
use dpdp_data::{StScorer, StdMatrix};
use dpdp_nn::Tensor;
use dpdp_sim::DispatchContext;
use serde::{Deserialize, Serialize};

/// Number of per-vehicle features.
pub const STATE_DIM: usize = 5;

/// A self-contained snapshot of one joint state: everything a Q-network
/// needs to (re)evaluate it later from the replay buffer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StateSnapshot {
    /// `K x 5` feature matrix.
    pub features: Tensor,
    /// Per-vehicle feasibility mask (the constraint embedding).
    pub feasible: Vec<bool>,
    /// Per-vehicle neighbour lists for the graph layers.
    pub neighbors: Vec<Vec<usize>>,
}

impl StateSnapshot {
    /// Number of vehicles `K`.
    pub fn num_vehicles(&self) -> usize {
        self.feasible.len()
    }

    /// Whether any vehicle can take the order.
    pub fn any_feasible(&self) -> bool {
        self.feasible.iter().any(|&f| f)
    }
}

/// Builds [`StateSnapshot`]s from simulator dispatch contexts.
#[derive(Debug, Clone)]
pub struct StateBuilder {
    /// ST scorer; `None` disables the ST-Score feature (the paper's
    /// DQN/DDQN/DGN/DDGN ablations).
    scorer: Option<StScorer>,
    /// Predicted STD matrix for the current day (used with `scorer`).
    predicted: Option<StdMatrix>,
    /// Distances are divided by this scale before entering the network.
    dist_scale: f64,
    /// Interval indices are divided by this (usually `T`).
    interval_scale: f64,
    /// Neighbourhood size `NE`.
    ne: usize,
}

impl StateBuilder {
    /// A builder without ST scoring.
    pub fn new(dist_scale: f64, num_intervals: usize, ne: usize) -> Self {
        assert!(dist_scale > 0.0, "dist_scale must be positive");
        StateBuilder {
            scorer: None,
            predicted: None,
            dist_scale,
            interval_scale: num_intervals.max(1) as f64,
            ne,
        }
    }

    /// Enables the ST-Score feature with the given scorer.
    pub fn with_scorer(mut self, scorer: StScorer) -> Self {
        self.scorer = Some(scorer);
        self
    }

    /// Sets the predicted STD matrix for the upcoming episode.
    pub fn set_prediction(&mut self, predicted: Option<StdMatrix>) {
        self.predicted = predicted;
    }

    /// Whether ST scoring is active (scorer and prediction both present).
    pub fn st_active(&self) -> bool {
        self.scorer.is_some() && self.predicted.is_some()
    }

    /// Builds the joint state for one dispatch decision.
    pub fn build(&self, ctx: &DispatchContext<'_>) -> StateSnapshot {
        let k = ctx.views.len();
        let mut features = Tensor::zeros(k, STATE_DIM);
        let mut feasible = vec![false; k];
        let t_feat = ctx.interval as f64 / self.interval_scale;
        for (i, plan) in ctx.plans.iter().enumerate() {
            let row = i;
            match &plan.best {
                Some(best) => {
                    feasible[i] = true;
                    let xi = match (&self.scorer, &self.predicted) {
                        (Some(scorer), Some(pred)) => scorer.score(
                            &ctx.views[i],
                            &best.candidate.schedule,
                            pred,
                            ctx.fleet.capacity,
                        ),
                        _ => 0.0,
                    };
                    *features.get_mut(row, 0) = plan.current_length / self.dist_scale;
                    *features.get_mut(row, 1) = best.length() / self.dist_scale;
                    *features.get_mut(row, 2) = xi;
                    *features.get_mut(row, 3) = if ctx.views[i].used { 1.0 } else { 0.0 };
                    *features.get_mut(row, 4) = t_feat;
                }
                None => {
                    // The paper's Algorithm 2 sentinel values for infeasible
                    // vehicles; they are masked out of inference anyway.
                    for c in 0..4 {
                        *features.get_mut(row, c) = -1.0;
                    }
                    *features.get_mut(row, 4) = t_feat;
                }
            }
        }
        let neighbors = nearest_neighbors(ctx.views, ctx.net, self.ne);
        StateSnapshot {
            features,
            feasible,
            neighbors,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpdp_data::FactoryIndex;
    use dpdp_net::{
        FleetConfig, IntervalGrid, Node, NodeId, Order, OrderId, Point, RoadNetwork, TimeDelta,
        TimePoint, VehicleId,
    };
    use dpdp_routing::{RoutePlanner, VehicleView};

    fn fixture() -> (RoadNetwork, FleetConfig, Vec<Order>) {
        let nodes = vec![
            Node::depot(NodeId(0), Point::new(0.0, 0.0)),
            Node::factory(NodeId(1), Point::new(10.0, 0.0)),
            Node::factory(NodeId(2), Point::new(20.0, 0.0)),
        ];
        let net = RoadNetwork::euclidean(nodes, 1.0).unwrap();
        let fleet =
            FleetConfig::homogeneous(2, &[NodeId(0)], 10.0, 500.0, 2.0, 60.0, TimeDelta::ZERO)
                .unwrap();
        let orders = vec![Order::new(
            OrderId(0),
            NodeId(1),
            NodeId(2),
            5.0,
            TimePoint::from_hours(10.0),
            TimePoint::from_hours(20.0),
        )
        .unwrap()];
        (net, fleet, orders)
    }

    #[test]
    fn build_fills_features_and_mask() {
        let (net, fleet, orders) = fixture();
        let views = vec![VehicleView::idle_at_depot(VehicleId(0), NodeId(0)), {
            let mut v = VehicleView::idle_at_depot(VehicleId(1), NodeId(0));
            v.used = true;
            v
        }];
        let planner = RoutePlanner::new(&net, &fleet, &orders);
        let plans: Vec<_> = views.iter().map(|v| planner.plan(v, &orders[0])).collect();
        let grid = IntervalGrid::paper_default();
        let ctx = DispatchContext {
            order: &orders[0],
            now: orders[0].created,
            interval: grid.interval_of(orders[0].created),
            views: &views,
            plans: &plans,
            net: &net,
            fleet: &fleet,
            orders: &orders,
        };
        let builder = StateBuilder::new(100.0, 144, 4);
        let snap = builder.build(&ctx);
        assert_eq!(snap.features.shape(), (2, 5));
        assert!(snap.feasible.iter().all(|&f| f));
        assert!(snap.any_feasible());
        // d = 0 (idle at depot), d' = 40 km / 100.
        assert_eq!(snap.features.get(0, 0), 0.0);
        assert!((snap.features.get(0, 1) - 0.4).abs() < 1e-9);
        // Used flags.
        assert_eq!(snap.features.get(0, 3), 0.0);
        assert_eq!(snap.features.get(1, 3), 1.0);
        // 10:00 -> interval 60 of 144.
        assert!((snap.features.get(0, 4) - 60.0 / 144.0).abs() < 1e-9);
        assert_eq!(snap.neighbors.len(), 2);
    }

    #[test]
    fn infeasible_vehicle_gets_sentinels() {
        let (net, fleet, mut orders) = fixture();
        orders[0].deadline = TimePoint::from_hours(10.001); // impossible
        let views = vec![VehicleView::idle_at_depot(VehicleId(0), NodeId(0))];
        let planner = RoutePlanner::new(&net, &fleet, &orders);
        let plans: Vec<_> = views.iter().map(|v| planner.plan(v, &orders[0])).collect();
        let ctx = DispatchContext {
            order: &orders[0],
            now: orders[0].created,
            interval: 60,
            views: &views,
            plans: &plans,
            net: &net,
            fleet: &fleet,
            orders: &orders,
        };
        let snap = StateBuilder::new(100.0, 144, 4).build(&ctx);
        assert!(!snap.any_feasible());
        for c in 0..4 {
            assert_eq!(snap.features.get(0, c), -1.0);
        }
    }

    #[test]
    fn st_feature_requires_scorer_and_prediction() {
        let (net, fleet, orders) = fixture();
        let views = vec![VehicleView::idle_at_depot(VehicleId(0), NodeId(0))];
        let planner = RoutePlanner::new(&net, &fleet, &orders);
        let plans: Vec<_> = views.iter().map(|v| planner.plan(v, &orders[0])).collect();
        let grid = IntervalGrid::paper_default();
        let ctx = DispatchContext {
            order: &orders[0],
            now: orders[0].created,
            interval: 60,
            views: &views,
            plans: &plans,
            net: &net,
            fleet: &fleet,
            orders: &orders,
        };
        // Without prediction the feature stays 0 even with a scorer.
        let index = FactoryIndex::new(&[NodeId(1), NodeId(2)]);
        let builder =
            StateBuilder::new(100.0, 144, 4).with_scorer(StScorer::new(grid, index.clone()));
        assert!(!builder.st_active());
        let snap = builder.build(&ctx);
        assert_eq!(snap.features.get(0, 2), 0.0);
        // With a prediction concentrated away from the route, score > 0.
        let mut b2 = StateBuilder::new(100.0, 144, 4).with_scorer(StScorer::new(grid, index));
        let mut pred = StdMatrix::zeros(2, 144);
        *pred.get_mut(1, 143) = 50.0;
        b2.set_prediction(Some(pred));
        assert!(b2.st_active());
        let snap2 = b2.build(&ctx);
        assert!(snap2.features.get(0, 2) > 0.0);
    }
}
