//! The relational Q-network of the paper (Fig. 4 / Fig. 5).
//!
//! Per vehicle: an initial MLP embeds the 5-feature state; stacked
//! *neighbourhood attention* blocks let each vehicle integrate its `NE`
//! nearest (feasible) vehicles' representations via multi-head scaled
//! dot-product attention; finally the initial and top-level representations
//! are concatenated and mapped to a scalar Q-value. All vehicles share
//! weights ("each vehicle owns its network but shares the same weights").

use crate::state::{StateSnapshot, STATE_DIM};
use dpdp_nn::{Graph, Mlp, MultiHeadAttention, ParamStore, Precision, Var};
use dpdp_pool::ThreadPool;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Q-network architecture parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QNetworkConfig {
    /// Embedding width of the per-vehicle representation.
    pub hidden: usize,
    /// Attention heads per neighbourhood block.
    pub heads: usize,
    /// Number of stacked neighbourhood-attention blocks (the paper uses 2).
    pub levels: usize,
    /// Whether the graph (attention) pathway is enabled; `false` gives the
    /// plain DQN/DDQN ablations.
    pub graph: bool,
}

impl Default for QNetworkConfig {
    fn default() -> Self {
        QNetworkConfig {
            hidden: 32,
            heads: 4,
            levels: 2,
            graph: true,
        }
    }
}

/// The Q-network: maps a joint state (`K x 5`) to per-vehicle Q-values
/// (`K x 1`).
#[derive(Debug, Clone)]
pub struct QNetwork {
    config: QNetworkConfig,
    initial: Mlp,
    attention: Vec<MultiHeadAttention>,
    head: Mlp,
}

impl QNetwork {
    /// Registers all parameters in `store`.
    pub fn new(store: &mut ParamStore, config: QNetworkConfig) -> Self {
        let initial = Mlp::new(store, &[STATE_DIM, config.hidden, config.hidden]);
        let attention = if config.graph {
            (0..config.levels)
                .map(|_| MultiHeadAttention::new(store, config.hidden, config.heads))
                .collect()
        } else {
            Vec::new()
        };
        let head_in = if config.graph {
            2 * config.hidden
        } else {
            config.hidden
        };
        let head = Mlp::new(store, &[head_in, config.hidden, 1]);
        QNetwork {
            config,
            initial,
            attention,
            head,
        }
    }

    /// The architecture configuration.
    pub fn config(&self) -> QNetworkConfig {
        self.config
    }

    /// Forward pass on the tape: returns a `K x 1` Q-value node.
    ///
    /// Infeasible vehicles are excluded from every attention context (the
    /// *constraint embedding*: they take no part in inference), and their
    /// output rows are meaningless — callers must mask them.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, snap: &StateSnapshot) -> Var {
        let k = snap.num_vehicles();
        let x = g.constant(snap.features.clone());
        let h0 = self.initial.forward(g, store, x);
        let top = if self.config.graph {
            // Self-inclusive adjacency mask restricted to feasible
            // neighbours (the constraint embedding: infeasible vehicles
            // take no part in anyone else's inference).
            let mut mask = dpdp_nn::Tensor::zeros(k, k);
            for v in 0..k {
                *mask.get_mut(v, v) = 1.0;
                for &n in &snap.neighbors[v] {
                    if n != v && snap.feasible[n] {
                        *mask.get_mut(v, n) = 1.0;
                    }
                }
            }
            let mut h = h0;
            for attn in &self.attention {
                let out = attn.forward_masked(g, store, h, &mask);
                h = g.relu(out);
            }
            h
        } else {
            h0
        };
        let head_in = if self.config.graph {
            g.concat_cols(&[h0, top])
        } else {
            top
        };
        self.head.forward(g, store, head_in)
    }

    /// Convenience: evaluates Q-values on a throwaway graph and returns them
    /// as a plain vector (infeasible entries set to `f64::NEG_INFINITY`, the
    /// paper's "extremely small negative").
    pub fn q_values(&self, store: &ParamStore, snap: &StateSnapshot) -> Vec<f64> {
        self.q_values_prec(store, snap, Precision::F64)
    }

    fn q_values_prec(
        &self,
        store: &ParamStore,
        snap: &StateSnapshot,
        precision: Precision,
    ) -> Vec<f64> {
        let mut g = Graph::new().with_precision(precision);
        let q = self.forward(&mut g, store, snap);
        let values = g.value(q);
        (0..snap.num_vehicles())
            .map(|i| {
                if snap.feasible[i] {
                    values.get(i, 0)
                } else {
                    f64::NEG_INFINITY
                }
            })
            .collect()
    }

    /// Evaluates many joint states in **one forward pass** by stacking
    /// their feature matrices and running the attention levels under a
    /// block-diagonal neighbourhood mask, so no information leaks between
    /// states. Returns one Q-vector per snapshot, in order.
    ///
    /// Every op involved (row-wise MLPs, masked softmax attention with
    /// exactly-zero masked weights) treats the blocks independently, so the
    /// results are bit-identical to calling [`QNetwork::q_values`] once per
    /// snapshot — the batch/serial parity tests rely on this.
    ///
    /// With the graph pathway enabled the stacked attention is dense over
    /// all `sum K_i` rows, which grows quadratically; to bound that, wide
    /// batches are split into chunks of at most
    /// [`QNetwork::MAX_ATTENTION_ROWS`] rows. Blocks never interact, so the
    /// chunks are independent forwards — they are evaluated concurrently
    /// across `pool` and written back in snapshot order, which cannot
    /// change the results. A single chunk instead hands `pool` to the graph
    /// itself for row-parallel matmuls ([`Graph::with_pool`]).
    pub fn q_values_batch(
        &self,
        store: &ParamStore,
        snaps: &[StateSnapshot],
        pool: &Arc<ThreadPool>,
    ) -> Vec<Vec<f64>> {
        self.q_values_batch_prec(store, snaps, pool, Precision::F64)
    }

    /// [`QNetwork::q_values_batch`] with every matmul demoted to `f32`
    /// ([`Precision::F32`]): inputs are converted once, accumulation runs
    /// in single precision and the products are widened back to `f64` —
    /// roughly half the matmul memory traffic on wide inference batches.
    ///
    /// The contract is **tolerance, not bit-identity**, against the f64
    /// path: per-element divergence is O(2⁻²⁴) relative per accumulation
    /// step (see the `f32_batch_tracks_f64_within_tolerance` test for the
    /// gate this repo holds it to). Within the f32 path itself, results
    /// are bit-identical at any thread count — chunking, stacking and the
    /// f32 row kernel are all scheduling-independent. Because greedy
    /// action selection compares Q-values, callers accepting this path
    /// accept that near-ties (within the tolerance band) may resolve
    /// differently than under f64 — which is why every parity-gated
    /// pipeline keeps the default f64 entry point.
    pub fn q_values_batch_f32(
        &self,
        store: &ParamStore,
        snaps: &[StateSnapshot],
        pool: &Arc<ThreadPool>,
    ) -> Vec<Vec<f64>> {
        self.q_values_batch_prec(store, snaps, pool, Precision::F32)
    }

    fn q_values_batch_prec(
        &self,
        store: &ParamStore,
        snaps: &[StateSnapshot],
        pool: &Arc<ThreadPool>,
        precision: Precision,
    ) -> Vec<Vec<f64>> {
        if !self.config.graph {
            // Row-wise MLPs only: stacking cost is linear, no need to chunk.
            return self.q_values_stacked(store, snaps, pool, precision);
        }
        let mut ranges: Vec<(usize, usize)> = Vec::new();
        let mut start = 0;
        while start < snaps.len() {
            let mut rows = snaps[start].num_vehicles();
            let mut end = start + 1;
            while end < snaps.len() && rows + snaps[end].num_vehicles() <= Self::MAX_ATTENTION_ROWS
            {
                rows += snaps[end].num_vehicles();
                end += 1;
            }
            ranges.push((start, end));
            start = end;
        }
        if ranges.len() <= 1 {
            return self.q_values_stacked(store, snaps, pool, precision);
        }
        let chunks = pool.par_map(ranges.len(), |c| {
            let (lo, hi) = ranges[c];
            // Inner graphs keep the pool: nested par_map is supported (the
            // joiner drains the shared queue) and stays bit-identical, so
            // when there are fewer chunks than threads the spare width
            // still helps with each chunk's matmuls.
            self.q_values_stacked(store, &snaps[lo..hi], pool, precision)
        });
        chunks.into_iter().flatten().collect()
    }

    /// Upper bound on the stacked-attention width per forward pass (rows of
    /// the block-diagonal mask).
    pub const MAX_ATTENTION_ROWS: usize = 256;

    fn q_values_stacked(
        &self,
        store: &ParamStore,
        snaps: &[StateSnapshot],
        pool: &Arc<ThreadPool>,
        precision: Precision,
    ) -> Vec<Vec<f64>> {
        match snaps.len() {
            0 => return Vec::new(),
            1 => return vec![self.q_values_prec(store, &snaps[0], precision)],
            _ => {}
        }
        let total: usize = snaps.iter().map(StateSnapshot::num_vehicles).sum();
        let (features, offsets) = crate::batch_dispatch::stack_features(snaps);
        let mut g = Graph::with_pool(Arc::clone(pool)).with_precision(precision);
        let x = g.constant(features);
        let h0 = self.initial.forward(&mut g, store, x);
        let top = if self.config.graph {
            // Block-diagonal self-inclusive adjacency over feasible
            // neighbours: block b holds snapshot b's mask, all cross-block
            // entries stay zero.
            let mut mask = dpdp_nn::Tensor::zeros(total, total);
            for (snap, &base) in snaps.iter().zip(&offsets) {
                for v in 0..snap.num_vehicles() {
                    *mask.get_mut(base + v, base + v) = 1.0;
                    for &n in &snap.neighbors[v] {
                        if n != v && snap.feasible[n] {
                            *mask.get_mut(base + v, base + n) = 1.0;
                        }
                    }
                }
            }
            let mut h = h0;
            for attn in &self.attention {
                let out = attn.forward_masked(&mut g, store, h, &mask);
                h = g.relu(out);
            }
            h
        } else {
            h0
        };
        let head_in = if self.config.graph {
            g.concat_cols(&[h0, top])
        } else {
            top
        };
        let q = self.head.forward(&mut g, store, head_in);
        let values = g.value(q);
        snaps
            .iter()
            .zip(&offsets)
            .map(|(snap, &base)| {
                (0..snap.num_vehicles())
                    .map(|i| {
                        if snap.feasible[i] {
                            values.get(base + i, 0)
                        } else {
                            f64::NEG_INFINITY
                        }
                    })
                    .collect()
            })
            .collect()
    }

    /// Index of the feasible vehicle with the highest Q-value, if any.
    pub fn greedy_action(&self, store: &ParamStore, snap: &StateSnapshot) -> Option<usize> {
        let q = self.q_values(store, snap);
        let mut best: Option<(usize, f64)> = None;
        for (i, &v) in q.iter().enumerate() {
            if snap.feasible[i] && best.is_none_or(|(_, b)| v > b) {
                best = Some((i, v));
            }
        }
        best.map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpdp_nn::Tensor;

    fn snapshot(k: usize, feasible: Vec<bool>) -> StateSnapshot {
        let features = Tensor::from_vec(
            k,
            STATE_DIM,
            (0..k * STATE_DIM)
                .map(|i| (i as f64 * 0.13).sin())
                .collect(),
        );
        let neighbors = (0..k)
            .map(|i| (0..k).filter(|&j| j != i).take(3).collect())
            .collect();
        StateSnapshot {
            features,
            feasible,
            neighbors,
        }
    }

    #[test]
    fn forward_shapes_with_and_without_graph() {
        for graph in [true, false] {
            let mut store = ParamStore::new(0);
            let net = QNetwork::new(
                &mut store,
                QNetworkConfig {
                    hidden: 8,
                    heads: 2,
                    levels: 2,
                    graph,
                },
            );
            let snap = snapshot(4, vec![true; 4]);
            let mut g = Graph::new();
            let q = net.forward(&mut g, &store, &snap);
            assert_eq!(g.value(q).shape(), (4, 1));
        }
    }

    #[test]
    fn infeasible_vehicles_masked_in_q_values() {
        let mut store = ParamStore::new(1);
        let net = QNetwork::new(&mut store, QNetworkConfig::default());
        let snap = snapshot(3, vec![true, false, true]);
        let q = net.q_values(&store, &snap);
        assert_eq!(q.len(), 3);
        assert_eq!(q[1], f64::NEG_INFINITY);
        assert!(q[0].is_finite() && q[2].is_finite());
        let a = net.greedy_action(&store, &snap).unwrap();
        assert_ne!(a, 1);
    }

    /// The tolerance contract of [`QNetwork::q_values_batch_f32`]: the f32
    /// forward tracks the f64 reference within a small absolute band on
    /// O(1)-magnitude Q-values, masks the same infeasible entries exactly,
    /// and is bit-identical to itself at any thread count.
    #[test]
    fn f32_batch_tracks_f64_within_tolerance() {
        let mut store = ParamStore::new(9);
        let net = QNetwork::new(&mut store, QNetworkConfig::default());
        let snaps: Vec<StateSnapshot> = (0..6)
            .map(|s| {
                let k = 3 + s % 4;
                let feasible = (0..k).map(|i| i != s % k).collect();
                snapshot(k, feasible)
            })
            .collect();
        let pool = Arc::new(ThreadPool::new(2));
        let exact = net.q_values_batch(&store, &snaps, &pool);
        let approx = net.q_values_batch_f32(&store, &snaps, &pool);
        assert_eq!(exact.len(), approx.len());
        for (qe, qa) in exact.iter().zip(&approx) {
            assert_eq!(qe.len(), qa.len());
            for (&e, &a) in qe.iter().zip(qa) {
                if e == f64::NEG_INFINITY {
                    assert_eq!(a, f64::NEG_INFINITY, "masking must be exact");
                } else {
                    assert!((e - a).abs() < 1e-4, "f32 drifted too far: {e} vs {a}");
                    assert!(a.is_finite());
                }
            }
        }
        // The reduced-precision path keeps the thread-count determinism
        // guarantee: widths 1/2/4 agree bit for bit.
        let serial = net.q_values_batch_f32(&store, &snaps, &Arc::new(ThreadPool::new(1)));
        for threads in [2usize, 4] {
            let wide = net.q_values_batch_f32(&store, &snaps, &Arc::new(ThreadPool::new(threads)));
            for (qs, qw) in serial.iter().zip(&wide) {
                for (&s, &w) in qs.iter().zip(qw) {
                    assert!(
                        s.to_bits() == w.to_bits(),
                        "f32 path diverged at width {threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn no_feasible_vehicle_yields_no_action() {
        let mut store = ParamStore::new(2);
        let net = QNetwork::new(&mut store, QNetworkConfig::default());
        let snap = snapshot(2, vec![false, false]);
        assert_eq!(net.greedy_action(&store, &snap), None);
    }

    #[test]
    fn gradients_flow_through_both_pathways() {
        let mut store = ParamStore::new(3);
        let net = QNetwork::new(
            &mut store,
            QNetworkConfig {
                hidden: 8,
                heads: 2,
                levels: 1,
                graph: true,
            },
        );
        let snap = snapshot(3, vec![true; 3]);
        let mut g = Graph::new();
        let q = net.forward(&mut g, &store, &snap);
        let loss = g.sum_all(q);
        g.backward(loss, &mut store);
        let live = (0..store.len())
            .filter(|&i| store.grad(dpdp_nn::ParamId(i)).norm() > 0.0)
            .count();
        assert!(
            live as f64 >= store.len() as f64 * 0.8,
            "only {live}/{} params received gradient",
            store.len()
        );
    }

    #[test]
    fn attention_context_excludes_infeasible_neighbors() {
        // Changing an infeasible neighbour's features must not change a
        // feasible vehicle's Q-value.
        let mut store = ParamStore::new(4);
        let net = QNetwork::new(
            &mut store,
            QNetworkConfig {
                hidden: 8,
                heads: 2,
                levels: 1,
                graph: true,
            },
        );
        let mut snap = snapshot(3, vec![true, false, true]);
        let q1 = net.q_values(&store, &snap);
        // Perturb the infeasible vehicle's features wildly.
        for c in 0..STATE_DIM {
            *snap.features.get_mut(1, c) = 1000.0;
        }
        let q2 = net.q_values(&store, &snap);
        assert!((q1[0] - q2[0]).abs() < 1e-9, "{} vs {}", q1[0], q2[0]);
        assert!((q1[2] - q2[2]).abs() < 1e-9);
    }
}
