//! Capacity-distribution recording (the paper's Fig. 9).
//!
//! A [`SimObserver`] that accumulates, per episode, the spatial-temporal
//! distribution of *assigned delivery capacity*: for every committed
//! assignment, the chosen route's residual-capacity vector is added into an
//! [`StdMatrix`] at the route's `(factory, interval)` coordinates. Comparing
//! this matrix with the demand STD matrix (Frobenius `Diff`) shows whether a
//! policy has learned to move capacity to demand hot spots.
//!
//! Before the observer seam existed this was a `Dispatcher` wrapper that
//! intercepted every policy's choices; now any dispatcher composes with it
//! through [`Simulator::run_observed`] without being wrapped.
//!
//! [`Simulator::run_observed`]: dpdp_sim::Simulator::run_observed

use dpdp_data::{st_score::capacity_vector, FactoryIndex, StdMatrix};
use dpdp_net::IntervalGrid;
use dpdp_sim::{DecisionRecord, SimObserver};

/// An observer that records the capacity STD matrix of each episode.
pub struct CapacityRecorder {
    grid: IntervalGrid,
    index: FactoryIndex,
    current: StdMatrix,
}

impl CapacityRecorder {
    /// Records route coordinates on `grid` over the factories of `index`.
    pub fn new(grid: IntervalGrid, index: FactoryIndex) -> Self {
        let current = StdMatrix::zeros(index.num_factories(), grid.num_intervals());
        CapacityRecorder {
            grid,
            index,
            current,
        }
    }

    /// Takes the capacity matrix accumulated since the last call (or since
    /// construction), resetting the accumulator.
    pub fn take_matrix(&mut self) -> StdMatrix {
        let fresh = StdMatrix::zeros(self.index.num_factories(), self.grid.num_intervals());
        std::mem::replace(&mut self.current, fresh)
    }
}

impl SimObserver for CapacityRecorder {
    fn on_decision(&mut self, record: &DecisionRecord<'_>) {
        let (Some(view), Some(plan)) = (record.view, record.plan) else {
            return; // rejection: no committed route
        };
        let Some(best) = plan.best.as_ref() else {
            return;
        };
        let schedule = &best.candidate.schedule;
        let eta = capacity_vector(view, schedule, record.fleet.capacity);
        for (timing, cap) in schedule.timings.iter().zip(eta) {
            if let Some(row) = self.index.row(timing.stop.node) {
                let col = self.grid.interval_of(timing.arrival);
                *self.current.get_mut(row, col) += cap;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpdp_net::{
        FleetConfig, Instance, Node, NodeId, Order, OrderId, Point, RoadNetwork, TimeDelta,
        TimePoint,
    };
    use dpdp_sim::{dispatcher::FirstFeasible, Simulator};

    #[test]
    fn recorder_accumulates_capacity_at_route_coordinates() {
        let nodes = vec![
            Node::depot(NodeId(0), Point::new(0.0, 0.0)),
            Node::factory(NodeId(1), Point::new(10.0, 0.0)),
            Node::factory(NodeId(2), Point::new(20.0, 0.0)),
        ];
        let net = RoadNetwork::euclidean(nodes, 1.0).unwrap();
        let fleet =
            FleetConfig::homogeneous(1, &[NodeId(0)], 10.0, 300.0, 2.0, 60.0, TimeDelta::ZERO)
                .unwrap();
        let orders = vec![Order::new(
            OrderId(0),
            NodeId(1),
            NodeId(2),
            4.0,
            TimePoint::from_hours(8.0),
            TimePoint::from_hours(20.0),
        )
        .unwrap()];
        let grid = dpdp_net::IntervalGrid::paper_default();
        let inst = Instance::new(net, fleet, grid, orders).unwrap();
        let index = FactoryIndex::new(&[NodeId(1), NodeId(2)]);

        let mut rec = CapacityRecorder::new(grid, index);
        let result = Simulator::builder(&inst)
            .build()
            .unwrap()
            .run_observed(&mut FirstFeasible, &mut [&mut rec]);
        assert_eq!(result.metrics.served, 1);
        let m = rec.take_matrix();
        // Residual 10 at the pickup, 6 at the delivery: total 16.
        assert!((m.total() - 16.0).abs() < 1e-9);
        assert!((m.row_sums()[0] - 10.0).abs() < 1e-9);
        assert!((m.row_sums()[1] - 6.0).abs() < 1e-9);
        // Accumulator resets after take.
        assert_eq!(rec.take_matrix().total(), 0.0);
    }
}
