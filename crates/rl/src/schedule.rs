//! Exploration schedules.

use serde::{Deserialize, Serialize};

/// Linearly decaying epsilon for ε-greedy exploration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpsilonSchedule {
    /// Initial epsilon (episode 0).
    pub start: f64,
    /// Final epsilon (from `decay_episodes` on).
    pub end: f64,
    /// Episodes over which epsilon decays linearly.
    pub decay_episodes: usize,
}

impl EpsilonSchedule {
    /// A linear schedule.
    ///
    /// # Panics
    /// Panics unless `0 <= end <= start <= 1`.
    pub fn linear(start: f64, end: f64, decay_episodes: usize) -> Self {
        assert!(
            (0.0..=1.0).contains(&end) && (0.0..=1.0).contains(&start) && end <= start,
            "need 0 <= end <= start <= 1"
        );
        EpsilonSchedule {
            start,
            end,
            decay_episodes,
        }
    }

    /// A constant schedule (e.g. 0 for greedy evaluation).
    pub fn constant(eps: f64) -> Self {
        Self::linear(eps, eps, 0)
    }

    /// Epsilon at the given episode.
    pub fn at(&self, episode: usize) -> f64 {
        if self.decay_episodes == 0 || episode >= self.decay_episodes {
            return self.end;
        }
        let frac = episode as f64 / self.decay_episodes as f64;
        self.start + (self.end - self.start) * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_decay_endpoints_and_midpoint() {
        let s = EpsilonSchedule::linear(1.0, 0.1, 100);
        assert_eq!(s.at(0), 1.0);
        assert!((s.at(50) - 0.55).abs() < 1e-12);
        assert_eq!(s.at(100), 0.1);
        assert_eq!(s.at(1000), 0.1);
    }

    #[test]
    fn constant_schedule() {
        let s = EpsilonSchedule::constant(0.0);
        assert_eq!(s.at(0), 0.0);
        assert_eq!(s.at(99), 0.0);
    }

    #[test]
    #[should_panic(expected = "0 <= end <= start")]
    fn invalid_schedule_panics() {
        let _ = EpsilonSchedule::linear(0.1, 0.5, 10);
    }
}
