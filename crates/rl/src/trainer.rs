//! The training loop (Algorithm 3) and convergence recording.
//!
//! [`train_observed`] runs a dispatcher for a number of episodes on one
//! instance and **streams** the per-episode NUV/TC curve points (the
//! paper's Fig. 8) — plus, optionally, spatial-temporal capacity snapshots
//! and their Frobenius `Diff` against the demand distribution (Fig. 9) —
//! into a [`TrainObserver`], one call per episode, with nothing retained.
//! This is the training-side leg of the observer-based experiment
//! pipeline: convergence-curve consumers (the `fig8`/`fig9` regenerators)
//! ride the stream instead of scraping a materialized report. [`train`]
//! wraps it with a collecting observer and returns the classic
//! [`TrainReport`].

use crate::recorder::CapacityRecorder;
use dpdp_data::{FactoryIndex, StdMatrix};
use dpdp_net::Instance;
use dpdp_sim::{Dispatcher, SimObserver, Simulator};
use serde::{Deserialize, Serialize};

/// Trainer configuration.
#[derive(Debug, Clone)]
pub struct TrainerConfig {
    /// Number of training episodes.
    pub episodes: usize,
    /// If set, record capacity STD matrices and `Diff` values using this
    /// factory index (Fig. 9).
    pub capacity_index: Option<FactoryIndex>,
    /// Episodes whose capacity matrices should be kept in full (e.g.
    /// `[0, 100, 200]`; the final episode is always kept when recording).
    pub snapshot_episodes: Vec<usize>,
}

impl TrainerConfig {
    /// Plain training without capacity recording.
    pub fn new(episodes: usize) -> Self {
        TrainerConfig {
            episodes,
            capacity_index: None,
            snapshot_episodes: Vec::new(),
        }
    }
}

/// One point of a convergence curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpisodePoint {
    /// Episode index.
    pub episode: usize,
    /// Number of used vehicles.
    pub nuv: usize,
    /// Total cost.
    pub total_cost: f64,
    /// Total travel length, km.
    pub ttl: f64,
    /// Orders served / rejected.
    pub served: usize,
    /// Orders rejected.
    pub rejected: usize,
    /// Frobenius distance between the episode's capacity distribution and
    /// the instance's demand distribution (Fig. 9's `Diff`), when recorded.
    pub capacity_diff: Option<f64>,
}

/// The full output of a training run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Per-episode convergence curve.
    pub points: Vec<EpisodePoint>,
    /// Kept capacity matrices `(episode, matrix)`.
    pub capacity_matrices: Vec<(usize, StdMatrix)>,
    /// The instance's demand STD matrix (for plotting alongside Fig. 10).
    pub demand: Option<StdMatrix>,
}

impl TrainReport {
    /// The best (lowest) total cost reached during training.
    pub fn best_cost(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|p| p.total_cost)
            .min_by(|a, b| a.partial_cmp(b).expect("finite"))
    }

    /// Mean total cost over the final `n` episodes (converged performance).
    pub fn tail_mean_cost(&self, n: usize) -> Option<f64> {
        if self.points.is_empty() {
            return None;
        }
        let take = n.min(self.points.len());
        let tail = &self.points[self.points.len() - take..];
        Some(tail.iter().map(|p| p.total_cost).sum::<f64>() / take as f64)
    }
}

/// A streaming consumer of training progress: one [`EpisodePoint`] per
/// episode, plus the capacity snapshots the [`TrainerConfig`] asked to
/// keep. All methods default to no-ops.
pub trait TrainObserver {
    /// Called after every training episode with its curve point.
    fn on_episode(&mut self, _point: &EpisodePoint) {}

    /// Called with the episode's capacity STD matrix for kept snapshots
    /// (the configured `snapshot_episodes` plus the final episode), when
    /// capacity recording is on.
    fn on_capacity_snapshot(&mut self, _episode: usize, _matrix: &StdMatrix) {}
}

/// Trains `dispatcher` for `config.episodes` episodes on `instance`,
/// streaming every convergence point (and kept capacity snapshot) into
/// `observer` as it happens — no curve is materialized here. Returns the
/// instance's demand STD matrix when capacity recording is on (the
/// reference surface Fig. 9/10 plot `Diff` against).
///
/// The dispatcher learns inside its own `end_episode` hook, so any
/// [`Dispatcher`] can be passed — heuristics simply yield flat curves.
pub fn train_observed(
    dispatcher: &mut dyn Dispatcher,
    instance: &Instance,
    config: &TrainerConfig,
    observer: &mut dyn TrainObserver,
) -> Option<StdMatrix> {
    let sim = Simulator::builder(instance)
        .build()
        .expect("immediate-service simulator always builds");
    let demand = config
        .capacity_index
        .as_ref()
        .map(|index| StdMatrix::from_orders(instance.orders(), &instance.grid, index));
    // The capacity recorder is an episode observer: it composes with any
    // dispatcher without wrapping it.
    let mut recorder = config
        .capacity_index
        .as_ref()
        .map(|index| CapacityRecorder::new(instance.grid, index.clone()));

    for episode in 0..config.episodes {
        let (metrics, cap) = match recorder.as_mut() {
            Some(rec) => {
                let result = sim.run_observed(dispatcher, &mut [rec as &mut dyn SimObserver]);
                (result.metrics, Some(rec.take_matrix()))
            }
            None => (sim.run(dispatcher).metrics, None),
        };
        let capacity_diff = match (&cap, &demand) {
            (Some(c), Some(d)) => Some(c.frobenius_diff(d)),
            _ => None,
        };
        observer.on_episode(&EpisodePoint {
            episode,
            nuv: metrics.nuv,
            total_cost: metrics.total_cost,
            ttl: metrics.ttl,
            served: metrics.served,
            rejected: metrics.rejected,
            capacity_diff,
        });
        if let Some(c) = cap {
            let keep =
                config.snapshot_episodes.contains(&episode) || episode + 1 == config.episodes;
            if keep {
                observer.on_capacity_snapshot(episode, &c);
            }
        }
    }
    demand
}

/// Trains `dispatcher` for `config.episodes` episodes on `instance` and
/// collects the streamed curve into a [`TrainReport`] (see
/// [`train_observed`] for the streaming form).
pub fn train(
    dispatcher: &mut dyn Dispatcher,
    instance: &Instance,
    config: &TrainerConfig,
) -> TrainReport {
    #[derive(Default)]
    struct Collect {
        points: Vec<EpisodePoint>,
        capacity_matrices: Vec<(usize, StdMatrix)>,
    }
    impl TrainObserver for Collect {
        fn on_episode(&mut self, point: &EpisodePoint) {
            self.points.push(point.clone());
        }
        fn on_capacity_snapshot(&mut self, episode: usize, matrix: &StdMatrix) {
            self.capacity_matrices.push((episode, matrix.clone()));
        }
    }
    let mut collect = Collect {
        points: Vec::with_capacity(config.episodes),
        capacity_matrices: Vec::new(),
    };
    let demand = train_observed(dispatcher, instance, config, &mut collect);
    TrainReport {
        points: collect.points,
        capacity_matrices: collect.capacity_matrices,
        demand,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::{AgentConfig, DqnAgent, ModelKind};
    use crate::schedule::EpsilonSchedule;
    use dpdp_net::{
        FleetConfig, IntervalGrid, Node, NodeId, Order, OrderId, Point, RoadNetwork, TimeDelta,
        TimePoint,
    };
    use dpdp_sim::dispatcher::FirstFeasible;

    fn instance() -> Instance {
        let nodes = vec![
            Node::depot(NodeId(0), Point::new(0.0, 0.0)),
            Node::factory(NodeId(1), Point::new(5.0, 0.0)),
            Node::factory(NodeId(2), Point::new(10.0, 0.0)),
        ];
        let net = RoadNetwork::euclidean(nodes, 1.0).unwrap();
        let fleet =
            FleetConfig::homogeneous(2, &[NodeId(0)], 10.0, 300.0, 2.0, 40.0, TimeDelta::ZERO)
                .unwrap();
        let orders = (0..4)
            .map(|i| {
                Order::new(
                    OrderId(i),
                    NodeId(1 + (i % 2)),
                    NodeId(2 - (i % 2)),
                    2.0,
                    TimePoint::from_hours(8.0 + i as f64),
                    TimePoint::from_hours(18.0),
                )
                .unwrap()
            })
            .collect();
        Instance::new(net, fleet, IntervalGrid::paper_default(), orders).unwrap()
    }

    #[test]
    fn heuristic_training_curve_is_flat() {
        let inst = instance();
        let report = train(&mut FirstFeasible, &inst, &TrainerConfig::new(3));
        assert_eq!(report.points.len(), 3);
        let c0 = report.points[0].total_cost;
        for p in &report.points {
            assert_eq!(p.total_cost, c0);
            assert_eq!(p.served, 4);
            assert_eq!(p.capacity_diff, None);
        }
        assert_eq!(report.best_cost(), Some(c0));
        assert_eq!(report.tail_mean_cost(2), Some(c0));
        assert!(report.capacity_matrices.is_empty());
    }

    #[test]
    fn capacity_recording_produces_diffs_and_snapshots() {
        let inst = instance();
        let index = FactoryIndex::new(&[NodeId(1), NodeId(2)]);
        let mut cfg = TrainerConfig::new(3);
        cfg.capacity_index = Some(index);
        cfg.snapshot_episodes = vec![0];
        let report = train(&mut FirstFeasible, &inst, &cfg);
        assert!(report.points.iter().all(|p| p.capacity_diff.is_some()));
        // Snapshot at 0 and final at 2.
        let eps: Vec<usize> = report.capacity_matrices.iter().map(|(e, _)| *e).collect();
        assert_eq!(eps, vec![0, 2]);
        assert!(report.demand.is_some());
        assert!(report.demand.unwrap().total() > 0.0);
    }

    #[test]
    fn dqn_agent_trains_through_the_trainer() {
        let inst = instance();
        let mut cfg = AgentConfig::new(ModelKind::Ddgn);
        cfg.hidden = 8;
        cfg.heads = 2;
        cfg.levels = 1;
        cfg.batch_size = 4;
        cfg.updates_per_episode = 1;
        cfg.epsilon = EpsilonSchedule::constant(0.2);
        let mut agent = DqnAgent::new(cfg, 144, None);
        let report = train(&mut agent, &inst, &TrainerConfig::new(4));
        assert_eq!(report.points.len(), 4);
        assert_eq!(agent.episodes_completed(), 4);
    }
}
