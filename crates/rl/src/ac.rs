//! The Actor-Critic baseline (the paper's "AC" comparator).
//!
//! A per-vehicle policy network (shared weights) produces a logit for each
//! feasible vehicle; actions are sampled from the softmax over feasible
//! logits. A value network estimates `V(S)` by mean-pooling per-vehicle
//! embeddings. Both are updated once per episode from the on-policy
//! trajectory with discounted-return advantages.

use crate::reward::{instant_reward, long_term_reward, RewardParams};
use crate::state::{StateBuilder, StateSnapshot, STATE_DIM};
use dpdp_net::{Instance, VehicleId};
use dpdp_nn::{Adam, Graph, Mlp, Optimizer, ParamStore, Tensor};
use dpdp_sim::{Decision, DecisionBatch, DispatchContext, Dispatcher};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Actor-Critic hyper-parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActorCriticConfig {
    /// Hidden width of both networks.
    pub hidden: usize,
    /// Discount factor.
    pub gamma: f64,
    /// Actor learning rate.
    pub actor_lr: f64,
    /// Critic learning rate.
    pub critic_lr: f64,
    /// Reward scale `alpha`.
    pub reward_alpha: f64,
    /// Distance normalisation for state features, km.
    pub dist_scale: f64,
    /// Neighbourhood size used only for state building (AC has no graph).
    pub ne: usize,
    /// Entropy-free exploration floor: with this probability a uniform
    /// feasible vehicle is chosen during training.
    pub explore_floor: f64,
    /// RNG / weight seed.
    pub seed: u64,
}

impl Default for ActorCriticConfig {
    fn default() -> Self {
        ActorCriticConfig {
            hidden: 32,
            gamma: 0.9,
            actor_lr: 1e-3,
            critic_lr: 1e-3,
            reward_alpha: 0.01,
            dist_scale: 50.0,
            ne: 8,
            explore_floor: 0.05,
            seed: 0,
        }
    }
}

struct Step {
    snap: StateSnapshot,
    action: usize,
    reward: f64,
}

/// The Actor-Critic dispatcher.
pub struct ActorCriticAgent {
    config: ActorCriticConfig,
    actor_params: ParamStore,
    actor: Mlp,
    critic_params: ParamStore,
    critic: Mlp,
    actor_opt: Adam,
    critic_opt: Adam,
    state_builder: StateBuilder,
    rng: StdRng,
    training: bool,
    reward_params: RewardParams,
    trajectory: Vec<Step>,
    episodes: usize,
}

impl ActorCriticAgent {
    /// Creates an AC agent for fleets evaluated on `num_intervals`-interval
    /// days.
    pub fn new(config: ActorCriticConfig, num_intervals: usize) -> Self {
        let mut actor_params = ParamStore::new(config.seed);
        let actor = Mlp::new(
            &mut actor_params,
            &[STATE_DIM, config.hidden, config.hidden, 1],
        );
        let mut critic_params = ParamStore::new(config.seed.wrapping_add(101));
        let critic = Mlp::new(
            &mut critic_params,
            &[STATE_DIM, config.hidden, config.hidden, 1],
        );
        let state_builder = StateBuilder::new(config.dist_scale, num_intervals, config.ne);
        ActorCriticAgent {
            actor_opt: Adam::with_lr(config.actor_lr),
            critic_opt: Adam::with_lr(config.critic_lr),
            config,
            actor_params,
            actor,
            critic_params,
            critic,
            state_builder,
            rng: StdRng::seed_from_u64(31),
            training: true,
            reward_params: RewardParams::new(0.01, 0.0, 0.0),
            trajectory: Vec::new(),
            episodes: 0,
        }
    }

    /// Enables/disables learning and exploration.
    pub fn set_training(&mut self, training: bool) {
        self.training = training;
    }

    /// Episodes completed so far.
    pub fn episodes_completed(&self) -> usize {
        self.episodes
    }

    /// Policy probabilities over feasible vehicles (indices returned
    /// alongside, in ascending vehicle order).
    fn policy(&self, snap: &StateSnapshot) -> (Vec<usize>, Vec<f64>) {
        let feasible: Vec<usize> = (0..snap.num_vehicles())
            .filter(|&i| snap.feasible[i])
            .collect();
        if feasible.is_empty() {
            return (feasible, Vec::new());
        }
        let mut g = Graph::new();
        let x = g.constant(snap.features.clone());
        let logits = self.actor.forward(&mut g, &self.actor_params, x); // K x 1
        let picked = g.gather_rows(logits, &feasible); // F x 1
        let row = g.transpose(picked); // 1 x F
        let probs = g.softmax_rows(row);
        (feasible, g.value(probs).row(0).to_vec())
    }

    /// Actor logits for many joint states in one forward pass (the actor is
    /// a per-vehicle MLP, so stacking rows is exact; the pool chunks its
    /// matmuls row-wise, which cannot change the values). Returns one logit
    /// per vehicle per snapshot.
    fn logits_batch(
        &self,
        snaps: &[StateSnapshot],
        pool: &std::sync::Arc<dpdp_pool::ThreadPool>,
    ) -> Vec<Vec<f64>> {
        let (features, offsets) = crate::batch_dispatch::stack_features(snaps);
        let mut g = Graph::with_pool(std::sync::Arc::clone(pool));
        let x = g.constant(features);
        let logits = self.actor.forward(&mut g, &self.actor_params, x);
        let values = g.value(logits);
        snaps
            .iter()
            .zip(&offsets)
            .map(|(snap, &base)| {
                (0..snap.num_vehicles())
                    .map(|r| values.get(base + r, 0))
                    .collect()
            })
            .collect()
    }

    /// Policy probabilities from precomputed logits, replicating the
    /// graph-side masked softmax bit for bit (gather feasible ascending,
    /// max-subtract, exponentiate, normalise).
    fn policy_from_logits(snap: &StateSnapshot, logits: &[f64]) -> (Vec<usize>, Vec<f64>) {
        let feasible: Vec<usize> = (0..snap.num_vehicles())
            .filter(|&i| snap.feasible[i])
            .collect();
        if feasible.is_empty() {
            return (feasible, Vec::new());
        }
        let picked: Vec<f64> = feasible.iter().map(|&i| logits[i]).collect();
        let max = picked.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = picked.iter().map(|&x| (x - max).exp()).collect();
        let sum: f64 = exps.iter().sum();
        (feasible, exps.iter().map(|&e| e / sum).collect())
    }

    /// The shared per-order decision body: sample (training) or argmax
    /// (evaluation) over the feasible policy, account the reward, and
    /// extend the on-policy trajectory.
    fn decide_one(
        &mut self,
        ctx: &DispatchContext<'_>,
        snap: StateSnapshot,
        feasible: Vec<usize>,
        probs: Vec<f64>,
    ) -> Option<usize> {
        if feasible.is_empty() {
            return None;
        }
        let action = if self.training {
            if self.rng.random_range(0.0..1.0) < self.config.explore_floor {
                feasible[self.rng.random_range(0..feasible.len())]
            } else {
                // Sample from the policy.
                let mut u = self.rng.random_range(0.0..1.0);
                let mut pick = feasible[feasible.len() - 1];
                for (i, &p) in probs.iter().enumerate() {
                    if u < p {
                        pick = feasible[i];
                        break;
                    }
                    u -= p;
                }
                pick
            }
        } else {
            // Greedy: most probable feasible vehicle.
            let best = probs
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                .map(|(i, _)| i)
                .expect("non-empty");
            feasible[best]
        };
        let delta = ctx.plans[action]
            .incremental_length()
            .expect("chosen action is feasible");
        let reward = instant_reward(&self.reward_params, ctx.views[action].used, delta);
        if self.training {
            self.trajectory.push(Step {
                snap,
                action,
                reward,
            });
        }
        Some(action)
    }

    fn value_of(&self, snap: &StateSnapshot) -> f64 {
        let feasible: Vec<usize> = (0..snap.num_vehicles())
            .filter(|&i| snap.feasible[i])
            .collect();
        if feasible.is_empty() {
            return 0.0;
        }
        let mut g = Graph::new();
        let x = g.constant(snap.features.clone());
        let v = self.critic.forward(&mut g, &self.critic_params, x);
        let picked = g.gather_rows(v, &feasible);
        let pooled = g.mean_all(picked);
        g.value(pooled).item()
    }

    fn update(&mut self) {
        if self.trajectory.is_empty() {
            return;
        }
        // Eq. (7)-(8): add the episode-mean reward to every step.
        let rewards: Vec<f64> = self.trajectory.iter().map(|s| s.reward).collect();
        let r_bar = long_term_reward(&rewards);
        // Discounted returns from final rewards.
        let n = self.trajectory.len();
        let mut returns = vec![0.0; n];
        let mut acc = 0.0;
        for i in (0..n).rev() {
            acc = (self.trajectory[i].reward + r_bar) + self.config.gamma * acc;
            returns[i] = acc;
        }
        let inv_n = 1.0 / n as f64;
        for (step, &ret) in self.trajectory.iter().zip(&returns) {
            let advantage = ret - self.value_of(&step.snap);
            let feasible: Vec<usize> = (0..step.snap.num_vehicles())
                .filter(|&i| step.snap.feasible[i])
                .collect();
            let pos = feasible
                .iter()
                .position(|&i| i == step.action)
                .expect("chosen action was feasible");
            // Actor: minimise -log pi(a|S) * advantage.
            let mut g = Graph::new();
            let x = g.constant(step.snap.features.clone());
            let logits = self.actor.forward(&mut g, &self.actor_params, x);
            let picked = g.gather_rows(logits, &feasible);
            let row = g.transpose(picked);
            let probs = g.softmax_rows(row);
            let p_a = g.slice_cols(probs, pos, 1);
            let log_p = g.ln(p_a);
            let loss = g.scale(log_p, -advantage * inv_n);
            g.backward(loss, &mut self.actor_params);
            // Critic: minimise (V(S) - G)^2.
            let mut gc = Graph::new();
            let xc = gc.constant(step.snap.features.clone());
            let v = self.critic.forward(&mut gc, &self.critic_params, xc);
            let picked_v = gc.gather_rows(v, &feasible);
            let pooled = gc.mean_all(picked_v);
            let target = gc.constant(Tensor::scalar(ret));
            let vloss = gc.mse(pooled, target);
            let scaled = gc.scale(vloss, inv_n);
            gc.backward(scaled, &mut self.critic_params);
        }
        self.actor_opt.step(&mut self.actor_params);
        self.critic_opt.step(&mut self.critic_params);
        self.trajectory.clear();
    }
}

impl crate::batch_dispatch::BatchScoredPolicy for ActorCriticAgent {
    /// Per-vehicle actor logits.
    type Scores = Vec<f64>;

    fn build_snapshot(&self, ctx: &DispatchContext<'_>) -> StateSnapshot {
        self.state_builder.build(ctx)
    }

    fn score_batch(
        &self,
        snaps: &[StateSnapshot],
        pool: &std::sync::Arc<dpdp_pool::ThreadPool>,
    ) -> Vec<Vec<f64>> {
        self.logits_batch(snaps, pool)
    }

    fn decide(
        &mut self,
        ctx: &DispatchContext<'_>,
        snap: StateSnapshot,
        precomputed: Option<&Vec<f64>>,
    ) -> Option<usize> {
        let (feasible, probs) = match precomputed {
            Some(logits) => Self::policy_from_logits(&snap, logits),
            None => self.policy(&snap),
        };
        self.decide_one(ctx, snap, feasible, probs)
    }
}

impl Dispatcher for ActorCriticAgent {
    fn begin_episode(&mut self, instance: &Instance) {
        self.reward_params = RewardParams::new(
            self.config.reward_alpha,
            instance.fleet.fixed_cost,
            instance.fleet.unit_cost,
        );
        self.trajectory.clear();
    }

    fn dispatch(&mut self, ctx: &DispatchContext<'_>) -> Option<VehicleId> {
        let snap = self.state_builder.build(ctx);
        let (feasible, probs) = self.policy(&snap);
        self.decide_one(ctx, snap, feasible, probs)
            .map(VehicleId::from_index)
    }

    /// Batch-native dispatch: one actor forward pass scores every order of
    /// the epoch against the shared snapshot; orders commit sequentially
    /// and fall back to fresh evaluation once an assignment perturbs the
    /// snapshot, keeping the decision stream identical to the per-order
    /// path.
    fn dispatch_batch(&mut self, batch: &DecisionBatch<'_>) -> Vec<Decision> {
        crate::batch_dispatch::dispatch_batch_scored(self, batch)
    }

    fn end_episode(&mut self) {
        if self.training {
            self.update();
            self.episodes += 1;
        }
    }

    fn name(&self) -> &str {
        "AC"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpdp_net::{
        FleetConfig, IntervalGrid, Node, NodeId, Order, OrderId, Point, RoadNetwork, TimeDelta,
        TimePoint,
    };
    use dpdp_sim::Simulator;

    fn instance() -> Instance {
        let nodes = vec![
            Node::depot(NodeId(0), Point::new(0.0, 0.0)),
            Node::factory(NodeId(1), Point::new(5.0, 0.0)),
            Node::factory(NodeId(2), Point::new(10.0, 0.0)),
        ];
        let net = RoadNetwork::euclidean(nodes, 1.0).unwrap();
        let fleet =
            FleetConfig::homogeneous(2, &[NodeId(0)], 10.0, 300.0, 2.0, 40.0, TimeDelta::ZERO)
                .unwrap();
        let orders = (0..5)
            .map(|i| {
                Order::new(
                    OrderId(i),
                    NodeId(1 + (i % 2)),
                    NodeId(2 - (i % 2)),
                    2.0,
                    TimePoint::from_hours(8.0 + i as f64),
                    TimePoint::from_hours(16.0 + i as f64),
                )
                .unwrap()
            })
            .collect();
        Instance::new(net, fleet, IntervalGrid::paper_default(), orders).unwrap()
    }

    #[test]
    fn ac_runs_and_learns_without_panicking() {
        let inst = instance();
        let mut agent = ActorCriticAgent::new(ActorCriticConfig::default(), 144);
        let sim = Simulator::builder(&inst).build().unwrap();
        for _ in 0..5 {
            let r = sim.run(&mut agent);
            assert_eq!(r.metrics.served, 5);
        }
        assert_eq!(agent.episodes_completed(), 5);
    }

    #[test]
    fn eval_mode_is_deterministic_and_does_not_learn() {
        let inst = instance();
        let mut agent = ActorCriticAgent::new(ActorCriticConfig::default(), 144);
        let sim = Simulator::builder(&inst).build().unwrap();
        sim.run(&mut agent);
        agent.set_training(false);
        let a = sim.run(&mut agent);
        let b = sim.run(&mut agent);
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(agent.episodes_completed(), 1);
    }

    #[test]
    fn policy_probabilities_are_normalised() {
        let inst = instance();
        let mut agent = ActorCriticAgent::new(ActorCriticConfig::default(), 144);
        // Run one episode to exercise the policy path, then inspect via a
        // fabricated snapshot from the first decision of a fresh run.
        let sim = Simulator::builder(&inst).build().unwrap();
        sim.run(&mut agent);
        // Build a snapshot manually.
        let snap = StateSnapshot {
            features: Tensor::zeros(2, STATE_DIM),
            feasible: vec![true, true],
            neighbors: vec![vec![0, 1], vec![1, 0]],
        };
        let (feasible, probs) = agent.policy(&snap);
        assert_eq!(feasible, vec![0, 1]);
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }
}
