//! Deep reinforcement learning for DPDP: the paper's route-centric MDP
//! (Section IV-B), the relational Q-networks (Section IV-C) and the training
//! loop (Algorithm 3).
//!
//! One [`AgentConfig`] covers the whole model family of the paper's
//! experiments and ablations via three switches:
//!
//! | model    | `double` | `graph` | `st_score` |
//! |----------|----------|---------|------------|
//! | DQN      | no       | no      | no         |
//! | DDQN     | yes      | no      | no         |
//! | ST-DDQN  | yes      | no      | yes        |
//! | DGN      | no       | yes     | no         |
//! | DDGN     | yes      | yes     | no         |
//! | ST-DDGN  | yes      | yes     | yes        |
//!
//! The Actor-Critic baseline is a separate agent ([`ActorCriticAgent`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ac;
pub mod adjacency;
pub mod agent;
mod batch_dispatch;
pub mod qnet;
pub mod recorder;
pub mod replay;
pub mod reward;
pub mod schedule;
pub mod state;
pub mod trainer;

pub use ac::{ActorCriticAgent, ActorCriticConfig};
pub use adjacency::nearest_neighbors;
pub use agent::{AgentConfig, DqnAgent, ModelKind};
pub use qnet::{QNetwork, QNetworkConfig};
pub use recorder::CapacityRecorder;
pub use replay::ReplayBuffer;
pub use reward::{instant_reward, RewardParams};
pub use schedule::EpsilonSchedule;
pub use state::{StateBuilder, StateSnapshot};
pub use trainer::{train, train_observed, EpisodePoint, TrainObserver, TrainReport, TrainerConfig};
