//! Shared batch-dispatch scaffolding for the learned agents.
//!
//! Both [`DqnAgent`](crate::agent::DqnAgent) and
//! [`ActorCriticAgent`](crate::ac::ActorCriticAgent) follow the same
//! epoch-commit protocol: build every order's joint state against the
//! shared epoch snapshot, score them all in **one** network forward pass,
//! then commit orders sequentially — falling back to fresh per-order
//! evaluation once an assignment perturbs the snapshot, which keeps the
//! decision stream bit-identical to the legacy per-order path. The subtle
//! invariants (precomputed scores are valid only until the first
//! assignment; each prebuilt snapshot is consumed exactly once; `resolve`
//! runs in batch order) live here, once.
//!
//! Region sharding (`SimulatorBuilder::sharding`) is transparent to this
//! protocol: the joint states built through [`DecisionBatch::map_contexts`]
//! read the batch's merged plan matrix, in which cross-shard pairs pruned
//! by the exact infeasibility bound carry the same `best: None` (and so
//! the same `-1` sentinel features and feasibility mask) a full evaluation
//! would have produced — agents see identical states and emit identical
//! decisions at every shard count (`tests/batch_parity.rs`).

use crate::state::{StateSnapshot, STATE_DIM};
use dpdp_net::VehicleId;
use dpdp_nn::Tensor;
use dpdp_pool::ThreadPool;
use dpdp_sim::{Decision, DecisionBatch, DispatchContext};
use std::sync::Arc;

/// Stacks snapshot feature matrices into one `(sum K_i) x STATE_DIM`
/// tensor, returning each snapshot's starting row. Shared by every batched
/// forward (DQN Q-values, AC logits) so the parity-critical stacking logic
/// exists once.
pub(crate) fn stack_features(snaps: &[StateSnapshot]) -> (Tensor, Vec<usize>) {
    let total: usize = snaps.iter().map(StateSnapshot::num_vehicles).sum();
    let mut features = Tensor::zeros(total, STATE_DIM);
    let mut offsets = Vec::with_capacity(snaps.len());
    let mut row = 0;
    for snap in snaps {
        offsets.push(row);
        for r in 0..snap.num_vehicles() {
            for c in 0..STATE_DIM {
                *features.get_mut(row + r, c) = snap.features.get(r, c);
            }
        }
        row += snap.num_vehicles();
    }
    (features, offsets)
}

/// A learned policy that can score a whole epoch in one forward pass.
pub(crate) trait BatchScoredPolicy {
    /// Precomputed per-order scores (Q-values, logits, …).
    type Scores;

    /// Builds the joint state for one order's context.
    fn build_snapshot(&self, ctx: &DispatchContext<'_>) -> StateSnapshot;

    /// Scores every snapshot in a single network forward pass, optionally
    /// spreading chunked forward work across `pool`. Must be bit-identical
    /// to scoring each snapshot alone, for any pool width.
    fn score_batch(&self, snaps: &[StateSnapshot], pool: &Arc<ThreadPool>) -> Vec<Self::Scores>;

    /// The per-order decision body (choice, reward accounting, trajectory
    /// bookkeeping). `precomputed`, when given, holds `snap`'s scores from
    /// [`BatchScoredPolicy::score_batch`]; `None` means score afresh.
    fn decide(
        &mut self,
        ctx: &DispatchContext<'_>,
        snap: StateSnapshot,
        precomputed: Option<&Self::Scores>,
    ) -> Option<usize>;
}

/// Drives one decision epoch for a [`BatchScoredPolicy`].
///
/// The pre-commit phase is parallel: every order's joint state is built
/// against the shared epoch snapshot across the batch's thread pool
/// ([`DecisionBatch::map_contexts`]), then scored in one (pool-chunked)
/// network forward. The commit phase stays sequential by construction —
/// that is what keeps the decision stream bit-identical to the legacy
/// per-order path.
pub(crate) fn dispatch_batch_scored<P: BatchScoredPolicy + Sync>(
    policy: &mut P,
    batch: &DecisionBatch<'_>,
) -> Vec<Decision> {
    let shared = &*policy;
    let built: Vec<StateSnapshot> = batch.map_contexts(|_, ctx| shared.build_snapshot(ctx));
    let scores = policy.score_batch(&built, batch.pool());
    let mut snaps: Vec<Option<StateSnapshot>> = built.into_iter().map(Some).collect();
    let mut stale = false;
    (0..batch.len())
        .map(|i| {
            let action = if stale {
                batch.with_context(i, |ctx| {
                    let snap = policy.build_snapshot(ctx);
                    policy.decide(ctx, snap, None)
                })
            } else {
                let snap = snaps[i].take().expect("each snapshot consumed once");
                batch.with_context(i, |ctx| policy.decide(ctx, snap, Some(&scores[i])))
            };
            let decision = batch.resolve(i, action.map(VehicleId::from_index));
            if decision.is_assigned() {
                stale = true;
            }
            decision
        })
        .collect()
}
