//! A small dependency-free scoped thread pool for deterministic data
//! parallelism.
//!
//! The build environment is offline (no rayon), so this crate provides the
//! minimal slice of a work-stealing pool the DPDP hot loops need:
//!
//! * [`ThreadPool::scope`] — spawn closures that **borrow** the caller's
//!   stack (crossbeam-style scoped threads); the scope joins every task
//!   before returning and re-raises the first task panic on the caller.
//! * [`ThreadPool::par_map`] — evaluate `f(0..n)` across the pool's
//!   threads, each result written into its pre-indexed slot. Because slot
//!   `i` always holds exactly `f(i)`, the output is **bit-identical to the
//!   serial loop regardless of thread count or interleaving** — the
//!   property the simulator's batch/serial parity tests are built on.
//!
//! Tasks are pushed to a shared injector queue and *claimed* (stolen) by
//! whichever worker goes idle first, so load balances dynamically at chunk
//! granularity; scheduling order never influences results, only wall time.
//! A pool of one thread ([`ThreadPool::serial`]) spawns no workers and runs
//! everything inline on the caller, giving exact legacy behaviour.
//!
//! The joining thread participates in the work: while a scope has pending
//! tasks it drains the injector itself, so scopes may be entered reentrantly
//! from inside a task (nested [`ThreadPool::par_map`] cannot deadlock —
//! every joiner makes progress on whatever work remains).

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A closure queued for execution, paired with the scope it reports to.
struct Task {
    /// The erased-lifetime task body. Safety: the owning [`Scope`] joins
    /// (waits for `Join::pending` to reach zero) before any borrow the
    /// closure captured can expire, so running it is sound even though the
    /// box is typed `'static`.
    body: Box<dyn FnOnce() + Send + 'static>,
    join: Arc<Join>,
}

impl Task {
    /// Runs the body under `catch_unwind` and reports completion (and any
    /// panic payload) to the scope.
    fn run(self) {
        let result = catch_unwind(AssertUnwindSafe(self.body));
        self.join.complete(result.err());
    }
}

/// Per-scope join state: how many spawned tasks are still outstanding, and
/// the first panic payload captured from any of them.
struct Join {
    state: Mutex<JoinState>,
    done: Condvar,
}

struct JoinState {
    pending: usize,
    panic: Option<Box<dyn std::any::Any + Send>>,
}

impl Join {
    fn new() -> Arc<Join> {
        Arc::new(Join {
            state: Mutex::new(JoinState {
                pending: 0,
                panic: None,
            }),
            done: Condvar::new(),
        })
    }

    fn add_task(&self) {
        self.state.lock().expect("join lock poisoned").pending += 1;
    }

    fn complete(&self, panic: Option<Box<dyn std::any::Any + Send>>) {
        let mut state = self.state.lock().expect("join lock poisoned");
        state.pending -= 1;
        if state.panic.is_none() {
            state.panic = panic;
        }
        if state.pending == 0 {
            self.done.notify_all();
        }
    }
}

/// The shared injector queue workers block on.
struct Injector {
    queue: Mutex<InjectorState>,
    work: Condvar,
}

struct InjectorState {
    tasks: VecDeque<Task>,
    shutdown: bool,
}

impl Injector {
    fn push(&self, task: Task) {
        let mut state = self.queue.lock().expect("injector lock poisoned");
        state.tasks.push_back(task);
        self.work.notify_one();
    }

    fn try_pop(&self) -> Option<Task> {
        self.queue
            .lock()
            .expect("injector lock poisoned")
            .tasks
            .pop_front()
    }

    /// Worker loop body: blocks until a task is available or shutdown.
    fn pop_blocking(&self) -> Option<Task> {
        let mut state = self.queue.lock().expect("injector lock poisoned");
        loop {
            if let Some(task) = state.tasks.pop_front() {
                return Some(task);
            }
            if state.shutdown {
                return None;
            }
            state = self.work.wait(state).expect("injector lock poisoned");
        }
    }
}

/// A scoped thread pool of a fixed width.
///
/// `threads` counts the caller too: a pool of width `n` spawns `n - 1`
/// workers and the thread that enters [`ThreadPool::scope`] or
/// [`ThreadPool::par_map`] contributes the remaining lane. Width 1 spawns
/// nothing and runs every closure inline — exact serial semantics with zero
/// synchronisation.
pub struct ThreadPool {
    injector: Arc<Injector>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.threads)
            .finish()
    }
}

impl ThreadPool {
    /// Creates a pool that uses `threads` threads in total (including the
    /// calling thread at scope-join time).
    ///
    /// # Panics
    /// Panics if `threads == 0`.
    pub fn new(threads: usize) -> ThreadPool {
        assert!(threads >= 1, "a thread pool needs at least one thread");
        let injector = Arc::new(Injector {
            queue: Mutex::new(InjectorState {
                tasks: VecDeque::new(),
                shutdown: false,
            }),
            work: Condvar::new(),
        });
        let workers = (0..threads - 1)
            .map(|i| {
                let injector = Arc::clone(&injector);
                std::thread::Builder::new()
                    .name(format!("dpdp-pool-{i}"))
                    .spawn(move || {
                        while let Some(task) = injector.pop_blocking() {
                            task.run();
                        }
                    })
                    .expect("failed to spawn pool worker")
            })
            .collect();
        ThreadPool {
            injector,
            workers,
            threads,
        }
    }

    /// A width-1 pool: no workers, everything runs inline on the caller.
    pub fn serial() -> ThreadPool {
        ThreadPool::new(1)
    }

    /// Total thread width (callers + workers).
    #[inline]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether this pool actually runs anything concurrently.
    #[inline]
    pub fn is_parallel(&self) -> bool {
        self.threads > 1
    }

    /// Runs `f` with a [`Scope`] on which borrowing tasks can be spawned,
    /// then joins: every spawned task is guaranteed to have finished before
    /// `scope` returns. The calling thread helps execute queued tasks while
    /// it waits.
    ///
    /// If a task panics, the scope still joins every other task and then
    /// re-raises the first panic on the caller. A panic in `f` itself also
    /// joins before propagating (so no spawned borrow can dangle).
    pub fn scope<'env, R>(&self, f: impl FnOnce(&Scope<'_, 'env>) -> R) -> R {
        let scope = Scope {
            pool: self,
            join: Join::new(),
            _env: PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        self.join_scope(&scope.join);
        let task_panic = scope
            .join
            .state
            .lock()
            .expect("join lock poisoned")
            .panic
            .take();
        match result {
            // A panic in `f` wins: its tasks were still joined above.
            Err(payload) => resume_unwind(payload),
            Ok(value) => {
                if let Some(payload) = task_panic {
                    resume_unwind(payload);
                }
                value
            }
        }
    }

    /// Evaluates `f(i)` for every `i in 0..n` and returns the results in
    /// index order. Work is split into chunks claimed dynamically by the
    /// pool's threads; each result lands in its pre-indexed slot, so the
    /// output equals the serial `(0..n).map(f).collect()` **exactly**, for
    /// any thread count.
    pub fn par_map<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if self.threads == 1 || n <= 1 {
            return (0..n).map(f).collect();
        }
        let mut out: Vec<Option<T>> = Vec::with_capacity(n);
        out.resize_with(n, || None);
        // Oversubscribe chunks 4x so late-finishing threads can steal the
        // remainder; chunk boundaries depend only on (n, width), never on
        // timing.
        let chunk = n.div_ceil((self.threads * 4).min(n)).max(1);
        let f = &f;
        self.scope(|s| {
            for (ci, slots) in out.chunks_mut(chunk).enumerate() {
                let base = ci * chunk;
                s.spawn(move || {
                    for (off, slot) in slots.iter_mut().enumerate() {
                        *slot = Some(f(base + off));
                    }
                });
            }
        });
        out.into_iter()
            .map(|slot| slot.expect("scope join fills every slot"))
            .collect()
    }

    /// Joins a scope: drains the injector (helping with whatever work is
    /// queued, this scope's or another's) until the scope's pending count
    /// hits zero.
    fn join_scope(&self, join: &Arc<Join>) {
        loop {
            if let Some(task) = self.injector.try_pop() {
                task.run();
                continue;
            }
            let state = join.state.lock().expect("join lock poisoned");
            if state.pending == 0 {
                return;
            }
            // Tasks of this scope are running on other threads (anything
            // queued was drained above and the scope can no longer grow);
            // wait for their completion signals.
            let (state, timeout) = join
                .done
                .wait_timeout(state, std::time::Duration::from_millis(1))
                .expect("join lock poisoned");
            if state.pending == 0 {
                return;
            }
            drop(state);
            // On timeout, re-check the injector: a nested scope may have
            // queued new work we can help with.
            let _ = timeout;
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut state = self.injector.queue.lock().expect("injector lock poisoned");
            state.shutdown = true;
        }
        self.injector.work.notify_all();
        for worker in self.workers.drain(..) {
            // A worker that panicked outside `Task::run` is already
            // accounted for; don't double-panic in drop.
            let _ = worker.join();
        }
    }
}

/// Handle for spawning borrowing tasks inside [`ThreadPool::scope`].
///
/// The `'env` lifetime is invariant (the classic scoped-thread trick): every
/// borrow a task captures must outlive the `scope` call, and the scope joins
/// all tasks before returning, so those borrows are live for as long as any
/// task can run.
pub struct Scope<'pool, 'env> {
    pool: &'pool ThreadPool,
    join: Arc<Join>,
    _env: PhantomData<&'env mut &'env ()>,
}

impl<'pool, 'env> Scope<'pool, 'env> {
    /// Queues `task` for execution on the pool. It may borrow anything that
    /// outlives `'env`; the enclosing [`ThreadPool::scope`] call joins it
    /// before returning.
    pub fn spawn(&self, task: impl FnOnce() + Send + 'env) {
        self.join.add_task();
        let body: Box<dyn FnOnce() + Send + 'env> = Box::new(task);
        // SAFETY: the task may borrow data of lifetime 'env. `scope` joins
        // (blocks until `Join::pending == 0`) before it returns, and 'env
        // outlives the `scope` call by construction of the invariant
        // lifetime, so every borrow is live whenever the body can run.
        let body: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(body) };
        self.pool.injector.push(Task {
            body,
            join: Arc::clone(&self.join),
        });
    }

    /// Width of the owning pool.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_map_matches_serial_for_any_width() {
        let serial: Vec<u64> = (0..257)
            .map(|i| (i as u64).wrapping_mul(0x9e37) ^ 7)
            .collect();
        for threads in [1, 2, 3, 4, 8] {
            let pool = ThreadPool::new(threads);
            let parallel = pool.par_map(257, |i| (i as u64).wrapping_mul(0x9e37) ^ 7);
            assert_eq!(parallel, serial, "width {threads} diverged");
        }
    }

    #[test]
    fn par_map_handles_edge_sizes() {
        let pool = ThreadPool::new(4);
        assert_eq!(pool.par_map(0, |i| i), Vec::<usize>::new());
        assert_eq!(pool.par_map(1, |i| i * 10), vec![0]);
        assert_eq!(pool.par_map(3, |i| i + 1), vec![1, 2, 3]);
    }

    #[test]
    fn scope_joins_every_task_before_returning() {
        let pool = ThreadPool::new(4);
        let mut slots = [false; 100];
        pool.scope(|s| {
            for slot in slots.iter_mut() {
                s.spawn(move || {
                    *slot = true;
                });
            }
        });
        // If the scope returned before a task ran, its slot would still be
        // false (and the borrow above would have been unsound).
        assert!(slots.iter().all(|&b| b), "scope returned before joining");
    }

    #[test]
    fn scope_tasks_actually_run_on_workers() {
        // Deterministically force worker execution: the caller blocks on
        // the channel *inside* the scope closure (before it ever joins and
        // drains the queue), so only a worker thread can run the task.
        let pool = ThreadPool::new(4);
        let caller = std::thread::current().id();
        let (tx, rx) = std::sync::mpsc::channel();
        pool.scope(|s| {
            s.spawn(move || {
                tx.send(std::thread::current().id()).unwrap();
            });
            let worker = rx.recv().expect("task must run while caller waits");
            assert_ne!(worker, caller, "task ran on the calling thread");
        });
    }

    #[test]
    fn task_panic_propagates_to_the_caller_after_join() {
        let pool = ThreadPool::new(4);
        let finished = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                for i in 0..16 {
                    let finished = &finished;
                    s.spawn(move || {
                        if i == 7 {
                            panic!("boom from task 7");
                        }
                        finished.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
        }));
        let payload = result.expect_err("task panic must propagate");
        let message = payload
            .downcast_ref::<&str>()
            .copied()
            .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
            .unwrap_or("");
        assert!(message.contains("boom"), "unexpected payload {message:?}");
        // Every non-panicking task still completed before the unwind.
        assert_eq!(finished.load(Ordering::SeqCst), 15);
        // The pool survives a task panic and stays usable.
        assert_eq!(pool.par_map(4, |i| i * 2), vec![0, 2, 4, 6]);
    }

    #[test]
    fn par_map_panic_propagates() {
        let pool = ThreadPool::new(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.par_map(32, |i| {
                if i == 13 {
                    panic!("unlucky");
                }
                i
            })
        }));
        assert!(result.is_err(), "par_map must re-raise task panics");
    }

    #[test]
    fn nested_par_map_completes() {
        let pool = ThreadPool::new(4);
        let out = pool.par_map(8, |i| pool.par_map(8, |j| i * j).iter().sum::<usize>());
        let expect: Vec<usize> = (0..8).map(|i| (0..8).map(|j| i * j).sum()).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn serial_pool_runs_inline() {
        let pool = ThreadPool::serial();
        assert_eq!(pool.threads(), 1);
        assert!(!pool.is_parallel());
        let caller = std::thread::current().id();
        let same_thread = pool.par_map(10, |i| (std::thread::current().id() == caller, i));
        assert!(same_thread.iter().all(|&(same, _)| same));
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_width_pool_is_rejected() {
        let _ = ThreadPool::new(0);
    }
}
