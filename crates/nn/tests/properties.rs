//! Property-based tests for the autodiff substrate: random graphs checked
//! against finite differences, tensor algebra laws, optimizer behaviour.

use dpdp_nn::{Graph, ParamStore, Tensor};
use proptest::prelude::*;

fn arb_tensor(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-2.0f64..2.0, rows * cols)
        .prop_map(move |data| Tensor::from_vec(rows, cols, data))
}

/// Central-difference check of d(loss)/d(input) for a generic builder that
/// returns `(input_var, loss_var)`.
fn fd_check(
    build: impl Fn(&mut Graph, &Tensor) -> (dpdp_nn::Var, dpdp_nn::Var),
    input: &Tensor,
) -> Result<(), String> {
    let mut g = Graph::new();
    let (input_var, loss) = build(&mut g, input);
    g.backward_graph_only(loss);
    let analytic = g.grad(input_var).clone();
    let eps = 1e-6;
    for r in 0..input.rows() {
        for c in 0..input.cols() {
            let mut plus = input.clone();
            *plus.get_mut(r, c) += eps;
            let mut minus = input.clone();
            *minus.get_mut(r, c) -= eps;
            let mut gp = Graph::new();
            let (_, lp) = build(&mut gp, &plus);
            let mut gm = Graph::new();
            let (_, lm) = build(&mut gm, &minus);
            let fd = (gp.value(lp).item() - gm.value(lm).item()) / (2.0 * eps);
            let a = analytic.get(r, c);
            if (fd - a).abs() > 1e-4 * (1.0 + fd.abs().max(a.abs())) {
                return Err(format!("grad mismatch at ({r},{c}): fd={fd} analytic={a}"));
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Matmul distributes over addition: (A + B) C = AC + BC.
    #[test]
    fn matmul_distributes(a in arb_tensor(3, 4), b in arb_tensor(3, 4), c in arb_tensor(4, 2)) {
        let mut sum = a.clone();
        sum.add_assign(&b);
        let lhs = sum.matmul(&c);
        let mut rhs = a.matmul(&c);
        rhs.add_assign(&b.matmul(&c));
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-9);
    }

    /// (AB)^T = B^T A^T.
    #[test]
    fn transpose_of_product(a in arb_tensor(3, 4), b in arb_tensor(4, 2)) {
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-9);
    }

    /// Softmax rows are probability distributions regardless of input
    /// scale, and the op is shift-invariant per row.
    #[test]
    fn softmax_is_a_distribution(x in arb_tensor(4, 5), shift in -100.0f64..100.0) {
        let mut g = Graph::new();
        let xv = g.constant(x.clone());
        let y = g.softmax_rows(xv);
        let shifted = x.map(|v| v + shift);
        let xv2 = g.constant(shifted);
        let y2 = g.softmax_rows(xv2);
        for r in 0..4 {
            let s: f64 = g.value(y).row(r).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-9);
            for c in 0..5 {
                let a = g.value(y).get(r, c);
                prop_assert!(a >= 0.0);
                prop_assert!((a - g.value(y2).get(r, c)).abs() < 1e-9, "shift invariance");
            }
        }
    }

    /// A random composite graph (linear -> relu -> softmax -> weighted sum)
    /// matches finite differences.
    #[test]
    fn random_composite_graph_grads(x in arb_tensor(2, 3), w in arb_tensor(3, 3), s in 0.1f64..3.0) {
        // Stay away from the ReLU kink, where finite differences are
        // ill-defined.
        let pre = x.matmul(&w);
        prop_assume!(pre.data().iter().all(|v| v.abs() > 1e-3));
        let build = |g: &mut Graph, input: &Tensor| {
            let xv = g.constant(input.clone());
            let wv = g.constant(w.clone());
            let h = g.matmul(xv, wv);
            let r = g.relu(h);
            let sm = g.softmax_rows(r);
            let scaled = g.scale(sm, s);
            let prod = g.mul(scaled, scaled);
            (xv, g.sum_all(prod))
        };
        fd_check(build, &x).map_err(TestCaseError::fail)?;
    }

    /// Masked softmax always yields zero exactly at masked positions and a
    /// distribution over the rest.
    #[test]
    fn masked_softmax_distribution(
        x in arb_tensor(3, 4),
        mask_bits in proptest::collection::vec(proptest::bool::ANY, 12),
    ) {
        let mask = Tensor::from_vec(
            3, 4,
            mask_bits.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect(),
        );
        let mut g = Graph::new();
        let xv = g.constant(x);
        let y = g.masked_softmax_rows(xv, &mask);
        for r in 0..3 {
            let allowed: f64 = mask.row(r).iter().sum();
            let sum: f64 = g.value(y).row(r).iter().sum();
            if allowed == 0.0 {
                prop_assert_eq!(sum, 0.0);
            } else {
                prop_assert!((sum - 1.0).abs() < 1e-9);
            }
            for c in 0..4 {
                if mask.get(r, c) == 0.0 {
                    prop_assert_eq!(g.value(y).get(r, c), 0.0);
                }
            }
        }
    }

    /// Gradient accumulation is linear: running backward twice doubles the
    /// parameter gradient.
    #[test]
    fn grad_accumulation_is_linear(x in arb_tensor(1, 3), w0 in arb_tensor(3, 1)) {
        let mut store = ParamStore::new(0);
        let w = store.add(w0);
        let run = |store: &mut ParamStore| {
            let mut g = Graph::new();
            let xv = g.constant(x.clone());
            let wv = g.param(store, w);
            let y = g.matmul(xv, wv);
            let loss = g.sum_all(y);
            g.backward(loss, store);
        };
        run(&mut store);
        let once = store.grad(w).clone();
        run(&mut store);
        let mut twice = once.clone();
        twice.add_assign(&once);
        prop_assert!(store.grad(w).max_abs_diff(&twice) < 1e-9);
    }

    /// SGD on a convex quadratic from any start converges toward the
    /// optimum (distance strictly decreases over 50 steps).
    #[test]
    fn sgd_descends_quadratics(start in -10.0f64..10.0, target in -10.0f64..10.0) {
        use dpdp_nn::{Optimizer, Sgd};
        prop_assume!((start - target).abs() > 1e-3);
        let mut store = ParamStore::new(0);
        let w = store.add(Tensor::scalar(start));
        let mut sgd = Sgd::new(0.05);
        for _ in 0..50 {
            let mut g = Graph::new();
            let wv = g.param(&store, w);
            let t = g.constant(Tensor::scalar(target));
            let loss = g.mse(wv, t);
            g.backward(loss, &mut store);
            sgd.step(&mut store);
        }
        let end = store.value(w).item();
        prop_assert!((end - target).abs() < (start - target).abs() * 0.1);
    }

    /// Checkpoint serialisation roundtrips arbitrary parameter shapes.
    #[test]
    fn checkpoint_roundtrip(shapes in proptest::collection::vec((1usize..6, 1usize..6), 1..5)) {
        use dpdp_nn::serialize::{load_params, save_params};
        let mut a = ParamStore::new(1);
        let mut b = ParamStore::new(2);
        for &(r, c) in &shapes {
            a.add_xavier(r, c);
            b.add_xavier(r, c);
        }
        let bytes = save_params(&a);
        load_params(&mut b, &bytes).unwrap();
        for i in 0..a.len() {
            let id = dpdp_nn::ParamId(i);
            prop_assert!(a.value(id).max_abs_diff(b.value(id)) == 0.0);
        }
    }
}
