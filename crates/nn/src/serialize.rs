//! Binary (de)serialisation of parameter stores — checkpointing trained
//! policies.
//!
//! Format (little-endian): magic `b"DPNN"`, version u32, count u32, then per
//! parameter: rows u32, cols u32, `rows*cols` f64 values. Only values are
//! stored; gradients and optimizer moments reset on load.

use crate::params::ParamStore;
use crate::tensor::Tensor;
use bytes::{Buf, BufMut, Bytes, BytesMut};

const MAGIC: &[u8; 4] = b"DPNN";
const VERSION: u32 = 1;

/// Serialisation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SerializeError {
    /// The byte stream is not a parameter checkpoint.
    BadMagic,
    /// Unknown format version.
    BadVersion(u32),
    /// The stream ended early or the declared shapes are inconsistent.
    Truncated,
    /// The checkpoint layout does not match the receiving store.
    LayoutMismatch {
        /// Parameter position that disagrees.
        index: usize,
    },
}

impl std::fmt::Display for SerializeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SerializeError::BadMagic => write!(f, "not a DPNN checkpoint"),
            SerializeError::BadVersion(v) => write!(f, "unknown checkpoint version {v}"),
            SerializeError::Truncated => write!(f, "checkpoint truncated"),
            SerializeError::LayoutMismatch { index } => {
                write!(f, "checkpoint layout mismatch at parameter {index}")
            }
        }
    }
}

impl std::error::Error for SerializeError {}

/// Serialises every parameter value into a byte buffer.
pub fn save_params(store: &ParamStore) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u32_le(store.len() as u32);
    for i in 0..store.len() {
        let t = store.value(crate::params::ParamId(i));
        buf.put_u32_le(t.rows() as u32);
        buf.put_u32_le(t.cols() as u32);
        for &v in t.data() {
            buf.put_f64_le(v);
        }
    }
    buf.freeze()
}

/// Loads parameter values into an existing store with the same layout
/// (shapes must match position by position).
///
/// # Errors
/// Returns a [`SerializeError`] on malformed input or layout mismatch.
pub fn load_params(store: &mut ParamStore, bytes: &[u8]) -> Result<(), SerializeError> {
    let mut buf = bytes;
    if buf.remaining() < 12 {
        return Err(SerializeError::Truncated);
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(SerializeError::BadMagic);
    }
    let version = buf.get_u32_le();
    if version != VERSION {
        return Err(SerializeError::BadVersion(version));
    }
    let count = buf.get_u32_le() as usize;
    if count != store.len() {
        return Err(SerializeError::LayoutMismatch { index: 0 });
    }
    for i in 0..count {
        if buf.remaining() < 8 {
            return Err(SerializeError::Truncated);
        }
        let rows = buf.get_u32_le() as usize;
        let cols = buf.get_u32_le() as usize;
        let id = crate::params::ParamId(i);
        if store.value(id).shape() != (rows, cols) {
            return Err(SerializeError::LayoutMismatch { index: i });
        }
        if buf.remaining() < rows * cols * 8 {
            return Err(SerializeError::Truncated);
        }
        let mut t = Tensor::zeros(rows, cols);
        for v in t.data_mut() {
            *v = buf.get_f64_le();
        }
        store.set_value(id, t);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_values() {
        let mut a = ParamStore::new(1);
        a.add_xavier(3, 4);
        a.add_xavier(1, 4);
        let bytes = save_params(&a);

        let mut b = ParamStore::new(2);
        b.add_xavier(3, 4);
        b.add_xavier(1, 4);
        assert_ne!(
            a.value(crate::params::ParamId(0)),
            b.value(crate::params::ParamId(0))
        );
        load_params(&mut b, &bytes).unwrap();
        for i in 0..2 {
            assert_eq!(
                a.value(crate::params::ParamId(i)),
                b.value(crate::params::ParamId(i))
            );
        }
    }

    #[test]
    fn rejects_garbage_and_mismatch() {
        let mut store = ParamStore::new(0);
        store.add_xavier(2, 2);
        assert_eq!(
            load_params(&mut store, b"nope"),
            Err(SerializeError::Truncated)
        );
        assert_eq!(
            load_params(&mut store, b"XXXXXXXXXXXXXXXX"),
            Err(SerializeError::BadMagic)
        );
        // Save a 2x2 store, try to load into a 3x3 store.
        let bytes = save_params(&store);
        let mut other = ParamStore::new(0);
        other.add_xavier(3, 3);
        assert!(matches!(
            load_params(&mut other, &bytes),
            Err(SerializeError::LayoutMismatch { .. })
        ));
        // Truncated payload.
        let cut = &bytes[..bytes.len() - 4];
        let mut same = ParamStore::new(0);
        same.add_xavier(2, 2);
        assert_eq!(load_params(&mut same, cut), Err(SerializeError::Truncated));
    }
}
