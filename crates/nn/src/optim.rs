//! Optimizers: SGD and Adam over a [`ParamStore`].

use crate::params::ParamStore;

/// A first-order optimizer: consumes accumulated gradients and updates
/// parameter values in place, then clears the gradients.
pub trait Optimizer {
    /// Applies one update step using the store's accumulated gradients.
    fn step(&mut self, store: &mut ParamStore);
}

/// Plain stochastic gradient descent, optionally with gradient clipping by
/// global norm.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f64,
    /// If set, gradients are scaled so their global L2 norm is at most this.
    pub clip_norm: Option<f64>,
}

impl Sgd {
    /// SGD with the given learning rate and no clipping.
    pub fn new(lr: f64) -> Self {
        Sgd {
            lr,
            clip_norm: None,
        }
    }
}

fn global_grad_norm(store: &ParamStore) -> f64 {
    store
        .params()
        .iter()
        .map(|p| {
            let n = p.grad.norm();
            n * n
        })
        .sum::<f64>()
        .sqrt()
}

fn clip_scale(store: &ParamStore, clip: Option<f64>) -> f64 {
    match clip {
        Some(max) => {
            let norm = global_grad_norm(store);
            if norm > max && norm > 0.0 {
                max / norm
            } else {
                1.0
            }
        }
        None => 1.0,
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, store: &mut ParamStore) {
        let scale = clip_scale(store, self.clip_norm);
        for p in store.params_mut() {
            for (w, g) in p.value.data_mut().iter_mut().zip(p.grad.data()) {
                *w -= self.lr * scale * g;
            }
        }
        store.zero_grads();
    }
}

/// Adam (Kingma & Ba) with bias correction and optional global-norm clipping.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Numerical stabiliser.
    pub eps: f64,
    /// If set, gradients are scaled so their global L2 norm is at most this.
    pub clip_norm: Option<f64>,
    t: u64,
}

impl Adam {
    /// Adam with standard hyper-parameters and the given learning rate.
    pub fn with_lr(lr: f64) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            clip_norm: None,
            t: 0,
        }
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

impl Optimizer for Adam {
    fn step(&mut self, store: &mut ParamStore) {
        self.t += 1;
        let scale = clip_scale(store, self.clip_norm);
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for p in store.params_mut() {
            let n = p.value.data().len();
            for i in 0..n {
                let g = p.grad.data()[i] * scale;
                let m = self.beta1 * p.m.data()[i] + (1.0 - self.beta1) * g;
                let v = self.beta2 * p.v.data()[i] + (1.0 - self.beta2) * g * g;
                p.m.data_mut()[i] = m;
                p.v.data_mut()[i] = v;
                let m_hat = m / bc1;
                let v_hat = v / bc2;
                p.value.data_mut()[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
        store.zero_grads();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use crate::tensor::Tensor;

    /// Minimise f(w) = (w - 3)^2 starting from w = 0.
    fn quadratic_descent(opt: &mut dyn Optimizer, iters: usize) -> f64 {
        let mut store = ParamStore::new(0);
        let w = store.add(Tensor::scalar(0.0));
        for _ in 0..iters {
            let mut g = Graph::new();
            let wv = g.param(&store, w);
            let target = g.constant(Tensor::scalar(3.0));
            let loss = g.mse(wv, target);
            g.backward(loss, &mut store);
            opt.step(&mut store);
        }
        store.value(w).item()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let w = quadratic_descent(&mut Sgd::new(0.1), 100);
        assert!((w - 3.0).abs() < 1e-6, "w = {w}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let w = quadratic_descent(&mut Adam::with_lr(0.1), 500);
        assert!((w - 3.0).abs() < 1e-3, "w = {w}");
    }

    #[test]
    fn step_clears_gradients() {
        let mut store = ParamStore::new(0);
        let w = store.add(Tensor::scalar(1.0));
        store.accumulate_grad(w, &Tensor::scalar(2.0));
        Sgd::new(0.5).step(&mut store);
        assert_eq!(store.value(w).item(), 0.0);
        assert_eq!(store.grad(w).item(), 0.0);
    }

    #[test]
    fn clipping_bounds_update_magnitude() {
        let mut store = ParamStore::new(0);
        let w = store.add(Tensor::scalar(0.0));
        store.accumulate_grad(w, &Tensor::scalar(1000.0));
        let mut sgd = Sgd::new(1.0);
        sgd.clip_norm = Some(1.0);
        sgd.step(&mut store);
        assert!((store.value(w).item() + 1.0).abs() < 1e-9);
    }

    #[test]
    fn adam_counts_steps() {
        let mut adam = Adam::with_lr(0.01);
        let mut store = ParamStore::new(0);
        store.add(Tensor::scalar(0.0));
        assert_eq!(adam.steps(), 0);
        adam.step(&mut store);
        adam.step(&mut store);
        assert_eq!(adam.steps(), 2);
    }
}
