//! Trainable parameter storage with accumulated gradients and optimizer
//! state.

use crate::init::xavier_uniform;
use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Handle to a parameter inside a [`ParamStore`]. The raw index is public
/// so callers can iterate a store's parameters (e.g. for gradient
/// diagnostics); indices are assigned in registration order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(pub usize);

/// One trainable parameter: value, accumulated gradient, and Adam moments.
#[derive(Debug, Clone)]
pub(crate) struct Param {
    pub value: Tensor,
    pub grad: Tensor,
    pub m: Tensor,
    pub v: Tensor,
}

/// Owns every trainable tensor of a model, its gradients and optimizer
/// state, plus the seed used for initialisation (so model construction is
/// fully deterministic given a seed).
#[derive(Debug, Clone)]
pub struct ParamStore {
    params: Vec<Param>,
    seed: u64,
    init_counter: u64,
}

impl ParamStore {
    /// Creates an empty store seeded for deterministic initialisation.
    pub fn new(seed: u64) -> Self {
        ParamStore {
            params: Vec::new(),
            seed,
            init_counter: 0,
        }
    }

    /// Registers an explicitly-initialised parameter.
    pub fn add(&mut self, value: Tensor) -> ParamId {
        let (r, c) = value.shape();
        self.params.push(Param {
            value,
            grad: Tensor::zeros(r, c),
            m: Tensor::zeros(r, c),
            v: Tensor::zeros(r, c),
        });
        ParamId(self.params.len() - 1)
    }

    /// Registers a Xavier-uniform initialised `rows x cols` parameter.
    /// Each registration draws from a fresh stream derived from the store
    /// seed and a registration counter, so initialisation depends only on
    /// the seed and the order of registrations.
    pub fn add_xavier(&mut self, rows: usize, cols: usize) -> ParamId {
        self.init_counter += 1;
        let stream = self
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(self.init_counter));
        let mut rng = StdRng::seed_from_u64(stream);
        let t = xavier_uniform(rows, cols, &mut rng);
        self.add(t)
    }

    /// Registers an all-zero parameter (e.g. biases).
    pub fn add_zeros(&mut self, rows: usize, cols: usize) -> ParamId {
        self.add(Tensor::zeros(rows, cols))
    }

    /// The current value of a parameter.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.params[id.0].value
    }

    /// Overwrites the value of a parameter (e.g. target-network sync).
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn set_value(&mut self, id: ParamId, value: Tensor) {
        assert_eq!(
            self.params[id.0].value.shape(),
            value.shape(),
            "set_value shape mismatch"
        );
        self.params[id.0].value = value;
    }

    /// The accumulated gradient of a parameter.
    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.params[id.0].grad
    }

    /// Adds `grad` into the parameter's accumulated gradient.
    pub fn accumulate_grad(&mut self, id: ParamId, grad: &Tensor) {
        self.params[id.0].grad.add_assign(grad);
    }

    /// Zeroes all accumulated gradients.
    pub fn zero_grads(&mut self) {
        for p in &mut self.params {
            let (r, c) = p.value.shape();
            p.grad = Tensor::zeros(r, c);
        }
    }

    /// Number of parameters (tensors).
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total number of scalar weights.
    pub fn num_scalars(&self) -> usize {
        self.params
            .iter()
            .map(|p| p.value.rows() * p.value.cols())
            .sum()
    }

    /// Copies every parameter *value* from another store (shapes must
    /// match): used to sync a DDQN target network from the online network.
    ///
    /// # Panics
    /// Panics if the stores have different layouts.
    pub fn copy_values_from(&mut self, other: &ParamStore) {
        assert_eq!(
            self.params.len(),
            other.params.len(),
            "stores must have the same number of parameters"
        );
        for (dst, src) in self.params.iter_mut().zip(&other.params) {
            assert_eq!(
                dst.value.shape(),
                src.value.shape(),
                "parameter shape mismatch"
            );
            dst.value = src.value.clone();
        }
    }

    pub(crate) fn params_mut(&mut self) -> &mut [Param] {
        &mut self.params
    }

    pub(crate) fn params(&self) -> &[Param] {
        &self.params
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_and_grads() {
        let mut s = ParamStore::new(0);
        let w = s.add_xavier(3, 4);
        let b = s.add_zeros(1, 4);
        assert_eq!(s.len(), 2);
        assert_eq!(s.num_scalars(), 16);
        assert_eq!(s.value(w).shape(), (3, 4));
        assert_eq!(s.value(b).data(), &[0.0; 4]);

        s.accumulate_grad(b, &Tensor::full(1, 4, 2.0));
        s.accumulate_grad(b, &Tensor::full(1, 4, 1.0));
        assert_eq!(s.grad(b).data(), &[3.0; 4]);
        s.zero_grads();
        assert_eq!(s.grad(b).data(), &[0.0; 4]);
    }

    #[test]
    fn initialisation_is_deterministic_per_seed() {
        let mut a = ParamStore::new(7);
        let mut b = ParamStore::new(7);
        assert_eq!(a.add_xavier(4, 4).0, b.add_xavier(4, 4).0);
        assert_eq!(a.value(ParamId(0)), b.value(ParamId(0)));
        let mut c = ParamStore::new(8);
        c.add_xavier(4, 4);
        assert_ne!(a.value(ParamId(0)), c.value(ParamId(0)));
    }

    #[test]
    fn copy_values_syncs_target_network() {
        let mut online = ParamStore::new(1);
        let w = online.add_xavier(2, 2);
        let mut target = ParamStore::new(2);
        let wt = target.add_xavier(2, 2);
        assert_ne!(online.value(w), target.value(wt));
        target.copy_values_from(&online);
        assert_eq!(online.value(w), target.value(wt));
    }
}
