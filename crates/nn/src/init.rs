//! Weight initialisation.

use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::RngExt;

/// Xavier/Glorot uniform initialisation: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`. Keeps activations and gradients at
/// comparable scale across layers.
pub fn xavier_uniform(rows: usize, cols: usize, rng: &mut StdRng) -> Tensor {
    let a = (6.0 / (rows + cols) as f64).sqrt();
    let data = (0..rows * cols).map(|_| rng.random_range(-a..a)).collect();
    Tensor::from_vec(rows, cols, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn xavier_bounds_and_spread() {
        let mut rng = StdRng::seed_from_u64(0);
        let t = xavier_uniform(50, 50, &mut rng);
        let a = (6.0 / 100.0f64).sqrt();
        for &x in t.data() {
            assert!(x.abs() <= a);
        }
        // Not degenerate.
        let mean: f64 = t.data().iter().sum::<f64>() / t.data().len() as f64;
        assert!(mean.abs() < a / 5.0);
        assert!(t.norm() > 0.0);
    }
}
