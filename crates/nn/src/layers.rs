//! Layers: linear, MLP, and multi-head scaled dot-product attention.

use crate::graph::{Graph, Var};
use crate::params::{ParamId, ParamStore};

/// A fully-connected layer `y = x W + b`.
#[derive(Debug, Clone)]
pub struct Linear {
    w: ParamId,
    b: ParamId,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Registers a Xavier-initialised `in_dim -> out_dim` layer in `store`.
    pub fn new(store: &mut ParamStore, in_dim: usize, out_dim: usize) -> Self {
        Linear {
            w: store.add_xavier(in_dim, out_dim),
            b: store.add_zeros(1, out_dim),
            in_dim,
            out_dim,
        }
    }

    /// Applies the layer to a `m x in_dim` input.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, x: Var) -> Var {
        debug_assert_eq!(g.value(x).cols(), self.in_dim, "Linear input width");
        let w = g.param(store, self.w);
        let b = g.param(store, self.b);
        let xw = g.matmul(x, w);
        g.add_row(xw, b)
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }
}

/// A multi-layer perceptron with ReLU activations between layers (none after
/// the last).
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Linear>,
}

impl Mlp {
    /// Builds an MLP with the given layer widths, e.g. `[5, 32, 32]` is
    /// `5 -> 32 -> 32` with one hidden ReLU.
    ///
    /// # Panics
    /// Panics if fewer than two widths are given.
    pub fn new(store: &mut ParamStore, widths: &[usize]) -> Self {
        assert!(
            widths.len() >= 2,
            "MLP needs at least input and output widths"
        );
        let layers = widths
            .windows(2)
            .map(|w| Linear::new(store, w[0], w[1]))
            .collect();
        Mlp { layers }
    }

    /// Applies the MLP to a `m x widths[0]` input.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, x: Var) -> Var {
        let mut h = x;
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward(g, store, h);
            if i + 1 < self.layers.len() {
                h = g.relu(h);
            }
        }
        h
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("non-empty").out_dim()
    }
}

/// Multi-head scaled dot-product attention (Vaswani et al.), the building
/// block of the paper's neighbourhood attention module (Fig. 5).
///
/// `forward(query m x d, context n x d)` returns `m x d`: each query row
/// attends over all context rows.
#[derive(Debug, Clone)]
pub struct MultiHeadAttention {
    wq: ParamId,
    wk: ParamId,
    wv: ParamId,
    out: Linear,
    d_model: usize,
    heads: usize,
}

impl MultiHeadAttention {
    /// Registers an attention block with `heads` heads over `d_model`-wide
    /// representations.
    ///
    /// # Panics
    /// Panics unless `heads` divides `d_model`.
    pub fn new(store: &mut ParamStore, d_model: usize, heads: usize) -> Self {
        assert!(
            heads > 0 && d_model.is_multiple_of(heads),
            "heads must divide d_model"
        );
        MultiHeadAttention {
            wq: store.add_xavier(d_model, d_model),
            wk: store.add_xavier(d_model, d_model),
            wv: store.add_xavier(d_model, d_model),
            out: Linear::new(store, d_model, d_model),
            d_model,
            heads,
        }
    }

    /// Applies attention: `query` is `m x d_model`, `context` is
    /// `n x d_model`; the result is `m x d_model`.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, query: Var, context: Var) -> Var {
        debug_assert_eq!(g.value(query).cols(), self.d_model, "query width");
        debug_assert_eq!(g.value(context).cols(), self.d_model, "context width");
        let wq = g.param(store, self.wq);
        let wk = g.param(store, self.wk);
        let wv = g.param(store, self.wv);
        let q = g.matmul(query, wq);
        let k = g.matmul(context, wk);
        let v = g.matmul(context, wv);
        let dk = self.d_model / self.heads;
        let scale = 1.0 / (dk as f64).sqrt();
        let mut head_outputs = Vec::with_capacity(self.heads);
        for h in 0..self.heads {
            let qh = g.slice_cols(q, h * dk, dk);
            let kh = g.slice_cols(k, h * dk, dk);
            let vh = g.slice_cols(v, h * dk, dk);
            let kt = g.transpose(kh);
            let scores = g.matmul(qh, kt);
            let scaled = g.scale(scores, scale);
            let attn = g.softmax_rows(scaled);
            head_outputs.push(g.matmul(attn, vh));
        }
        let concat = g.concat_cols(&head_outputs);
        self.out.forward(g, store, concat)
    }

    /// Masked **self**-attention over a `K x d_model` batch: row `i` attends
    /// only to rows `j` with `mask[i][j] != 0`. This is the batched form of
    /// the paper's neighbourhood attention, where `mask` is the (self-
    /// inclusive) adjacency matrix. Fully-masked rows produce zero attention
    /// output (only the output layer's bias survives).
    pub fn forward_masked(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        x: Var,
        mask: &crate::tensor::Tensor,
    ) -> Var {
        debug_assert_eq!(g.value(x).cols(), self.d_model, "input width");
        let wq = g.param(store, self.wq);
        let wk = g.param(store, self.wk);
        let wv = g.param(store, self.wv);
        let q = g.matmul(x, wq);
        let k = g.matmul(x, wk);
        let v = g.matmul(x, wv);
        let dk = self.d_model / self.heads;
        let scale = 1.0 / (dk as f64).sqrt();
        let mut head_outputs = Vec::with_capacity(self.heads);
        for h in 0..self.heads {
            let qh = g.slice_cols(q, h * dk, dk);
            let kh = g.slice_cols(k, h * dk, dk);
            let vh = g.slice_cols(v, h * dk, dk);
            let kt = g.transpose(kh);
            let scores = g.matmul(qh, kt);
            let scaled = g.scale(scores, scale);
            let attn = g.masked_softmax_rows(scaled, mask);
            head_outputs.push(g.matmul(attn, vh));
        }
        let concat = g.concat_cols(&head_outputs);
        self.out.forward(g, store, concat)
    }

    /// Representation width.
    pub fn d_model(&self) -> usize {
        self.d_model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;

    #[test]
    fn linear_shapes_and_values() {
        let mut store = ParamStore::new(0);
        let l = Linear::new(&mut store, 3, 2);
        // Overwrite with known weights.
        store.set_value(
            crate::params::ParamId(0),
            Tensor::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]),
        );
        store.set_value(
            crate::params::ParamId(1),
            Tensor::from_rows(&[&[0.5, -0.5]]),
        );
        let mut g = Graph::new();
        let x = g.constant(Tensor::from_rows(&[&[1.0, 2.0, 3.0]]));
        let y = l.forward(&mut g, &store, x);
        assert_eq!(g.value(y).data(), &[4.5, 4.5]);
    }

    #[test]
    fn mlp_reduces_loss_with_sgd() {
        use crate::optim::{Optimizer, Sgd};
        let mut store = ParamStore::new(3);
        let mlp = Mlp::new(&mut store, &[2, 16, 1]);
        let mut sgd = Sgd::new(0.05);
        // Learn XOR-ish soft targets.
        let xs = Tensor::from_rows(&[&[0.0, 0.0], &[0.0, 1.0], &[1.0, 0.0], &[1.0, 1.0]]);
        let ys = Tensor::from_rows(&[&[0.0], &[1.0], &[1.0], &[0.0]]);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..400 {
            let mut g = Graph::new();
            let x = g.constant(xs.clone());
            let y = g.constant(ys.clone());
            let pred = mlp.forward(&mut g, &store, x);
            let loss = g.mse(pred, y);
            last = g.value(loss).item();
            first.get_or_insert(last);
            g.backward(loss, &mut store);
            sgd.step(&mut store);
        }
        assert!(
            last < first.unwrap() * 0.2,
            "MLP failed to learn: {} -> {last}",
            first.unwrap()
        );
        assert!(last < 0.05, "final loss too high: {last}");
    }

    #[test]
    fn attention_output_shape_and_grad_flow() {
        let mut store = ParamStore::new(1);
        let attn = MultiHeadAttention::new(&mut store, 8, 2);
        let mut g = Graph::new();
        // Varied inputs so softmax is non-uniform and all projections matter.
        let q = g.constant(Tensor::from_vec(
            3,
            8,
            (0..24).map(|i| (i as f64 * 0.37).sin()).collect(),
        ));
        let ctx = g.constant(Tensor::from_vec(
            5,
            8,
            (0..40).map(|i| (i as f64 * 0.61).cos()).collect(),
        ));
        let y = attn.forward(&mut g, &store, q, ctx);
        assert_eq!(g.value(y).shape(), (3, 8));
        let loss = g.sum_all(y);
        g.backward(loss, &mut store);
        // Every attention parameter must receive gradient.
        let grads_nonzero = (0..store.len())
            .filter(|i| store.grad(crate::params::ParamId(*i)).norm() > 0.0)
            .count();
        // wq receives zero gradient only if attention is perfectly uniform
        // AND values identical; with nonzero inputs expect most params hit.
        assert!(
            grads_nonzero >= store.len() - 1,
            "{grads_nonzero}/{}",
            store.len()
        );
    }

    #[test]
    fn attention_attends_to_matching_context() {
        // With identity-like weights, a query equal to one context row should
        // attend mostly to that row after softmax scaling.
        let mut store = ParamStore::new(2);
        let d = 4;
        let attn = MultiHeadAttention::new(&mut store, d, 1);
        // Force Wq = Wk = Wv = 10*I, output layer = identity.
        let eye10 = {
            let mut t = Tensor::zeros(d, d);
            for i in 0..d {
                *t.get_mut(i, i) = 10.0;
            }
            t
        };
        let eye = {
            let mut t = Tensor::zeros(d, d);
            for i in 0..d {
                *t.get_mut(i, i) = 1.0;
            }
            t
        };
        store.set_value(crate::params::ParamId(0), eye10.clone()); // wq
        store.set_value(crate::params::ParamId(1), eye10); // wk
        store.set_value(crate::params::ParamId(2), eye.clone()); // wv
        store.set_value(crate::params::ParamId(3), eye); // out.w
        let mut g = Graph::new();
        let q = g.constant(Tensor::from_rows(&[&[1.0, 0.0, 0.0, 0.0]]));
        let ctx = g.constant(Tensor::from_rows(&[
            &[1.0, 0.0, 0.0, 0.0],
            &[0.0, 1.0, 0.0, 0.0],
            &[0.0, 0.0, 1.0, 0.0],
        ]));
        let y = attn.forward(&mut g, &store, q, ctx);
        let out = g.value(y);
        // Output should be dominated by the first context row's value.
        assert!(
            out.get(0, 0) > 0.9,
            "expected strong attention on matching row, got {:?}",
            out
        );
        assert!(out.get(0, 1) < 0.1);
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn invalid_head_count_panics() {
        let mut store = ParamStore::new(0);
        let _ = MultiHeadAttention::new(&mut store, 6, 4);
    }
}
