//! Dense row-major 2-D tensors.

use dpdp_pool::ThreadPool;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense row-major matrix of `f64`. Vectors are `1 x n` or `n x 1`
/// tensors; scalars are `1 x 1`.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Tensor {
    /// An all-zero `rows x cols` tensor.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// A tensor filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f64) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Builds from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must match shape");
        Tensor { rows, cols, data }
    }

    /// Builds from row slices.
    ///
    /// # Panics
    /// Panics if rows have unequal lengths or the input is empty.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "from_rows needs at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "all rows must have equal length");
            data.extend_from_slice(r);
        }
        Tensor {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// A `1 x 1` scalar tensor.
    pub fn scalar(v: f64) -> Self {
        Tensor::from_vec(1, 1, vec![v])
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Element access.
    ///
    /// # Panics
    /// Panics if out of range.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "tensor index out of range");
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    ///
    /// # Panics
    /// Panics if out of range.
    #[inline]
    pub fn get_mut(&mut self, r: usize, c: usize) -> &mut f64 {
        assert!(r < self.rows && c < self.cols, "tensor index out of range");
        &mut self.data[r * self.cols + c]
    }

    /// Raw row-major data.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// One row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row out of range");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The single value of a `1 x 1` tensor.
    ///
    /// # Panics
    /// Panics if the tensor is not `1 x 1`.
    pub fn item(&self) -> f64 {
        assert_eq!(self.shape(), (1, 1), "item() requires a 1x1 tensor");
        self.data[0]
    }

    /// The matmul kernel for output rows `[r0, r1)`, written into `block`
    /// (a zeroed `(r1 - r0) x other.cols` slice). The **single** source of
    /// the accumulation order: both [`Tensor::matmul`] and
    /// [`Tensor::matmul_pooled`] delegate here, so the serial and
    /// chunk-parallel products cannot drift apart bitwise.
    fn matmul_rows(&self, other: &Tensor, r0: usize, r1: usize, block: &mut [f64]) {
        let n = other.cols;
        for i in r0..r1 {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let row_b = &other.data[k * n..(k + 1) * n];
                let row_o = &mut block[(i - r0) * n..(i - r0 + 1) * n];
                for (o, b) in row_o.iter_mut().zip(row_b) {
                    *o += a * b;
                }
            }
        }
    }

    /// Matrix product `self @ other`.
    ///
    /// # Panics
    /// Panics if inner dimensions disagree.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols,
            other.rows,
            "matmul shape mismatch: {:?} @ {:?}",
            self.shape(),
            other.shape()
        );
        let mut out = Tensor::zeros(self.rows, other.cols);
        self.matmul_rows(other, 0, self.rows, &mut out.data);
        out
    }

    /// Matrix product `self @ other`, evaluated across `pool`'s threads in
    /// row chunks. Every chunk runs the very same row kernel as
    /// [`Tensor::matmul`] (the private `matmul_rows` is shared), so the
    /// result is **bit-identical to the serial product for any thread
    /// count**. Falls back to the serial kernel on a width-1 pool or a
    /// small left-hand side.
    ///
    /// # Panics
    /// Panics if inner dimensions disagree.
    pub fn matmul_pooled(&self, other: &Tensor, pool: &ThreadPool) -> Tensor {
        const MIN_PARALLEL_ROWS: usize = 16;
        if !pool.is_parallel() || self.rows < MIN_PARALLEL_ROWS {
            return self.matmul(other);
        }
        assert_eq!(
            self.cols,
            other.rows,
            "matmul shape mismatch: {:?} @ {:?}",
            self.shape(),
            other.shape()
        );
        let n = other.cols;
        let chunk = self.rows.div_ceil((pool.threads() * 4).min(self.rows));
        let mut out = Tensor::zeros(self.rows, n);
        // Each task writes its disjoint row range of the output in place —
        // no per-chunk buffers or final copy.
        pool.scope(|s| {
            for (ci, block) in out.data.chunks_mut(chunk * n).enumerate() {
                let r0 = ci * chunk;
                let r1 = (r0 + chunk).min(self.rows);
                s.spawn(move || self.matmul_rows(other, r0, r1, block));
            }
        });
        out
    }

    /// Row-major copy of the data demoted to `f32`.
    fn to_f32(&self) -> Vec<f32> {
        self.data.iter().map(|&x| x as f32).collect()
    }

    /// Matrix product `self @ other` computed **entirely in `f32`**:
    /// inputs are demoted once, accumulation runs in single precision, and
    /// the result is widened back to `f64`. Roughly halves the memory
    /// traffic of the f64 kernel on large inference batches.
    ///
    /// This is an *approximate* product — each element differs from
    /// [`Tensor::matmul`] by O(2⁻²⁴) relative error per accumulation step.
    /// It is deterministic (fixed loop order, no FMA contraction), but it
    /// is **not** interchangeable with the f64 kernel on any parity-gated
    /// path; see [`crate::Precision`] for the opt-in contract.
    ///
    /// # Panics
    /// Panics if inner dimensions disagree.
    pub fn matmul_f32(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols,
            other.rows,
            "matmul shape mismatch: {:?} @ {:?}",
            self.shape(),
            other.shape()
        );
        let a = self.to_f32();
        let b = other.to_f32();
        let n = other.cols;
        let mut out = vec![0f32; self.rows * n];
        matmul_rows_f32(&a, self.cols, &b, n, 0, self.rows, &mut out);
        Tensor::from_vec(self.rows, n, out.iter().map(|&x| x as f64).collect())
    }

    /// [`Tensor::matmul_f32`] evaluated across `pool`'s threads in row
    /// chunks. Every chunk runs the same f32 row kernel, so the result is
    /// **bit-identical to the serial f32 product for any thread count** —
    /// the determinism guarantee of [`Tensor::matmul_pooled`] carries over
    /// to the reduced-precision path unchanged. Falls back to the serial
    /// f32 kernel on a width-1 pool or a small left-hand side.
    ///
    /// # Panics
    /// Panics if inner dimensions disagree.
    pub fn matmul_f32_pooled(&self, other: &Tensor, pool: &ThreadPool) -> Tensor {
        const MIN_PARALLEL_ROWS: usize = 16;
        if !pool.is_parallel() || self.rows < MIN_PARALLEL_ROWS {
            return self.matmul_f32(other);
        }
        assert_eq!(
            self.cols,
            other.rows,
            "matmul shape mismatch: {:?} @ {:?}",
            self.shape(),
            other.shape()
        );
        let a = self.to_f32();
        let b = other.to_f32();
        let n = other.cols;
        let chunk = self.rows.div_ceil((pool.threads() * 4).min(self.rows));
        let mut out = vec![0f32; self.rows * n];
        let (a_ref, b_ref) = (&a, &b);
        pool.scope(|s| {
            for (ci, block) in out.chunks_mut(chunk * n).enumerate() {
                let r0 = ci * chunk;
                let r1 = (r0 + chunk).min(self.rows);
                s.spawn(move || matmul_rows_f32(a_ref, self.cols, b_ref, n, r0, r1, block));
            }
        });
        Tensor::from_vec(self.rows, n, out.iter().map(|&x| x as f64).collect())
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Element-wise in-place addition.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "add shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Element-wise in-place scale.
    pub fn scale_assign(&mut self, s: f64) {
        for a in self.data.iter_mut() {
            *a *= s;
        }
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Tensor {
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Largest absolute element difference to another tensor.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn max_abs_diff(&self, other: &Tensor) -> f64 {
        assert_eq!(self.shape(), other.shape(), "shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

/// The f32 matmul kernel for output rows `[r0, r1)` of `a @ b`, written
/// into `block`. The **single** source of the f32 accumulation order:
/// [`Tensor::matmul_f32`] and [`Tensor::matmul_f32_pooled`] both delegate
/// here, mirroring how the f64 pair shares `matmul_rows` — so the serial
/// and chunk-parallel f32 products cannot drift apart bitwise.
fn matmul_rows_f32(a: &[f32], a_cols: usize, b: &[f32], n: usize, r0: usize, r1: usize, block: &mut [f32]) {
    for i in r0..r1 {
        for k in 0..a_cols {
            let av = a[i * a_cols + k];
            if av == 0.0 {
                continue;
            }
            let row_b = &b[k * n..(k + 1) * n];
            let row_o = &mut block[(i - r0) * n..(i - r0 + 1) * n];
            for (o, bv) in row_o.iter_mut().zip(row_b) {
                *o += av * bv;
            }
        }
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Tensor {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(6) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:9.4} ", self.get(r, c))?;
            }
            writeln!(f, "{}", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 6 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(t.shape(), (2, 2));
        assert_eq!(t.get(0, 1), 2.0);
        assert_eq!(t.row(1), &[3.0, 4.0]);
        assert_eq!(Tensor::scalar(5.0).item(), 5.0);
        assert_eq!(Tensor::full(2, 2, 7.0).get(1, 1), 7.0);
    }

    #[test]
    #[should_panic(expected = "length must match")]
    fn bad_from_vec_panics() {
        let _ = Tensor::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Tensor::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
        // Identity.
        let i = Tensor::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        assert_eq!(a.matmul(&i), a);
        // Rectangular.
        let r = Tensor::from_rows(&[&[1.0, 0.0, 2.0]]);
        let s = Tensor::from_rows(&[&[1.0], &[1.0], &[1.0]]);
        assert_eq!(r.matmul(&s).item(), 3.0);
    }

    #[test]
    fn matmul_pooled_is_bit_identical_to_serial() {
        // Awkward sizes around the chunk boundaries, values whose products
        // are not exactly representable — the parallel kernel must still
        // agree bit for bit because each row keeps the serial loop order.
        let a = Tensor::from_vec(
            37,
            19,
            (0..37 * 19)
                .map(|i| ((i as f64) * 0.37).sin() / 3.0)
                .collect(),
        );
        let b = Tensor::from_vec(
            19,
            23,
            (0..19 * 23)
                .map(|i| ((i as f64) * 0.73).cos() / 7.0)
                .collect(),
        );
        let serial = a.matmul(&b);
        for threads in [1, 2, 4] {
            let pool = dpdp_pool::ThreadPool::new(threads);
            let pooled = a.matmul_pooled(&b, &pool);
            assert!(
                serial.data() == pooled.data(),
                "pooled matmul diverged at width {threads}"
            );
        }
    }

    #[test]
    fn matmul_f32_tracks_f64_within_tolerance() {
        let a = Tensor::from_vec(
            23,
            17,
            (0..23 * 17)
                .map(|i| ((i as f64) * 0.41).sin() * 2.0)
                .collect(),
        );
        let b = Tensor::from_vec(
            17,
            29,
            (0..17 * 29)
                .map(|i| ((i as f64) * 0.59).cos() * 1.5)
                .collect(),
        );
        let exact = a.matmul(&b);
        let approx = a.matmul_f32(&b);
        assert_eq!(exact.shape(), approx.shape());
        // 17 accumulation steps of O(1) magnitudes: well inside a 1e-4
        // absolute band, but never exactly equal on non-trivial inputs.
        assert!(exact.max_abs_diff(&approx) < 1e-4);
        assert!(exact.max_abs_diff(&approx) > 0.0);
    }

    #[test]
    fn matmul_f32_pooled_is_bit_identical_to_serial_f32() {
        let a = Tensor::from_vec(
            37,
            19,
            (0..37 * 19)
                .map(|i| ((i as f64) * 0.37).sin() / 3.0)
                .collect(),
        );
        let b = Tensor::from_vec(
            19,
            23,
            (0..19 * 23)
                .map(|i| ((i as f64) * 0.73).cos() / 7.0)
                .collect(),
        );
        let serial = a.matmul_f32(&b);
        for threads in [1, 2, 4] {
            let pool = dpdp_pool::ThreadPool::new(threads);
            let pooled = a.matmul_f32_pooled(&b, &pool);
            assert!(
                serial.data() == pooled.data(),
                "pooled f32 matmul diverged at width {threads}"
            );
        }
    }

    #[test]
    fn transpose_involution() {
        let a = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let at = a.transpose();
        assert_eq!(at.shape(), (3, 2));
        assert_eq!(at.get(2, 1), 6.0);
        assert_eq!(at.transpose(), a);
    }

    #[test]
    fn arithmetic_helpers() {
        let mut a = Tensor::from_rows(&[&[1.0, -2.0]]);
        a.add_assign(&Tensor::from_rows(&[&[1.0, 1.0]]));
        assert_eq!(a.data(), &[2.0, -1.0]);
        a.scale_assign(2.0);
        assert_eq!(a.data(), &[4.0, -2.0]);
        let m = a.map(f64::abs);
        assert_eq!(m.data(), &[4.0, 2.0]);
        assert!((m.norm() - 20f64.sqrt()).abs() < 1e-12);
        assert_eq!(a.max_abs_diff(&m), 4.0);
    }
}
