//! The autodiff tape: eager forward evaluation, reverse-mode backward.
//!
//! A [`Graph`] is rebuilt for every forward pass (define-by-run). Operations
//! append nodes to the tape and compute values eagerly; [`Graph::backward`]
//! walks the tape in reverse, accumulating gradients, and flushes the
//! gradients of parameter-bound leaves into the [`ParamStore`].

use crate::params::{ParamId, ParamStore};
use crate::tensor::Tensor;
use dpdp_pool::ThreadPool;
use std::sync::Arc;

/// Handle to a node in a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(usize);

/// Floating-point width of a graph's forward matmul kernels.
///
/// Everything else on the tape (element-wise ops, softmax, reductions, the
/// whole backward pass) always runs in `f64`; this knob only selects which
/// matmul kernel [`Graph::matmul`] calls.
///
/// * [`Precision::F64`] (default) is the exact path every parity-gated
///   pipeline uses: training, serial/batch equivalence tests, episode
///   determinism.
/// * [`Precision::F32`] demotes matmul inputs to `f32`, accumulates in
///   single precision and widens the product back to `f64`
///   ([`Tensor::matmul_f32`]) — an opt-in inference speedup for chunked
///   batch forwards. Results differ from the f64 path by O(2⁻²⁴) relative
///   error per accumulation step, so callers **must** gate it behind an
///   explicit tolerance (see the f32/f64 parity test in `dpdp-rl`) and
///   never feed it into a path that promises bit-identical outputs.
///   Within the f32 path itself results remain bit-identical at any
///   thread count ([`Tensor::matmul_f32_pooled`]).
///
/// Gradients are not defined through the f32 forward: call
/// [`Graph::backward`] only on `F64` graphs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Precision {
    /// Exact double-precision matmuls (the default).
    #[default]
    F64,
    /// Single-precision matmul inputs and accumulation, widened back to
    /// `f64`. Inference only; tolerance-gated.
    F32,
}

#[derive(Debug, Clone)]
enum Op {
    Leaf,
    MatMul(Var, Var),
    Add(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    AddRow(Var, Var),
    Scale(Var, f64),
    Relu(Var),
    SoftmaxRows(Var),
    MaskedSoftmaxRows(Var, Tensor),
    Transpose(Var),
    SliceCols(Var, usize, usize),
    ConcatCols(Vec<Var>),
    ConcatRows(Vec<Var>),
    GatherRows(Var, Vec<usize>),
    MeanAll(Var),
    SumAll(Var),
    Ln(Var),
}

#[derive(Debug, Clone)]
struct Node {
    value: Tensor,
    grad: Tensor,
    op: Op,
}

/// A tape-based autodiff graph.
#[derive(Debug, Default)]
pub struct Graph {
    nodes: Vec<Node>,
    bindings: Vec<(ParamId, usize)>,
    pool: Option<Arc<ThreadPool>>,
    precision: Precision,
}

impl Graph {
    /// An empty tape.
    pub fn new() -> Self {
        Graph::default()
    }

    /// An empty tape whose forward matmuls are chunked across `pool`'s
    /// threads ([`Tensor::matmul_pooled`]). Values are bit-identical to a
    /// pool-less graph — the pool only changes wall time — so inference
    /// batches can opt in freely without perturbing training parity.
    pub fn with_pool(pool: Arc<ThreadPool>) -> Self {
        Graph {
            pool: Some(pool),
            ..Graph::default()
        }
    }

    /// Selects the forward matmul precision (builder-style). See
    /// [`Precision`] for the tolerance contract; the default is
    /// [`Precision::F64`].
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    fn push(&mut self, value: Tensor, op: Op) -> Var {
        let (r, c) = value.shape();
        self.nodes.push(Node {
            value,
            grad: Tensor::zeros(r, c),
            op,
        });
        Var(self.nodes.len() - 1)
    }

    /// The current value of a node.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// The gradient of a node (valid after [`Graph::backward`]).
    pub fn grad(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].grad
    }

    /// Number of tape nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    // ---- leaves -----------------------------------------------------------

    /// A constant leaf (inputs, targets). Gradients are computed but not
    /// propagated anywhere.
    pub fn constant(&mut self, value: Tensor) -> Var {
        self.push(value, Op::Leaf)
    }

    /// A parameter leaf: copies the current value in and records the binding
    /// so `backward` accumulates the gradient into the store.
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> Var {
        let v = self.push(store.value(id).clone(), Op::Leaf);
        self.bindings.push((id, v.0));
        v
    }

    // ---- ops --------------------------------------------------------------

    /// Matrix product `a @ b`, through the kernel the graph's
    /// [`Precision`] selects.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let value = match (self.precision, &self.pool) {
            (Precision::F64, Some(pool)) => self.value(a).matmul_pooled(self.value(b), pool),
            (Precision::F64, None) => self.value(a).matmul(self.value(b)),
            (Precision::F32, Some(pool)) => self.value(a).matmul_f32_pooled(self.value(b), pool),
            (Precision::F32, None) => self.value(a).matmul_f32(self.value(b)),
        };
        self.push(value, Op::MatMul(a, b))
    }

    /// Element-wise sum of same-shape tensors.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let mut value = self.value(a).clone();
        value.add_assign(self.value(b));
        self.push(value, Op::Add(a, b))
    }

    /// Element-wise difference `a - b` of same-shape tensors.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        assert_eq!(self.value(a).shape(), self.value(b).shape(), "sub shape");
        let bt = self.value(b).clone();
        let value = Tensor::from_vec(
            bt.rows(),
            bt.cols(),
            self.value(a)
                .data()
                .iter()
                .zip(bt.data())
                .map(|(x, y)| x - y)
                .collect(),
        );
        self.push(value, Op::Sub(a, b))
    }

    /// Hadamard (element-wise) product of same-shape tensors.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        assert_eq!(self.value(a).shape(), self.value(b).shape(), "mul shape");
        let bt = self.value(b).clone();
        let value = Tensor::from_vec(
            bt.rows(),
            bt.cols(),
            self.value(a)
                .data()
                .iter()
                .zip(bt.data())
                .map(|(x, y)| x * y)
                .collect(),
        );
        self.push(value, Op::Mul(a, b))
    }

    /// Adds a `1 x n` row vector to every row of an `m x n` matrix
    /// (bias broadcast).
    pub fn add_row(&mut self, a: Var, b: Var) -> Var {
        let (m, n) = self.value(a).shape();
        assert_eq!(self.value(b).shape(), (1, n), "add_row wants a 1x{n} bias");
        let mut value = self.value(a).clone();
        let bias = self.value(b).clone();
        for r in 0..m {
            for c in 0..n {
                *value.get_mut(r, c) += bias.get(0, c);
            }
        }
        self.push(value, Op::AddRow(a, b))
    }

    /// Scalar multiple `a * s`.
    pub fn scale(&mut self, a: Var, s: f64) -> Var {
        let value = self.value(a).map(|x| x * s);
        self.push(value, Op::Scale(a, s))
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let value = self.value(a).map(|x| x.max(0.0));
        self.push(value, Op::Relu(a))
    }

    /// Row-wise softmax (numerically stabilised).
    pub fn softmax_rows(&mut self, a: Var) -> Var {
        let t = self.value(a);
        let (m, n) = t.shape();
        let mut value = Tensor::zeros(m, n);
        for r in 0..m {
            let row = t.row(r);
            let max = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let exps: Vec<f64> = row.iter().map(|&x| (x - max).exp()).collect();
            let sum: f64 = exps.iter().sum();
            for (c, &e) in exps.iter().enumerate() {
                *value.get_mut(r, c) = e / sum;
            }
        }
        self.push(value, Op::SoftmaxRows(a))
    }

    /// Row-wise softmax restricted to entries where `mask` is non-zero;
    /// masked entries get probability 0. A fully-masked row becomes all
    /// zeros. `mask` must have the same shape as the input and is treated
    /// as a constant (no gradient flows into it).
    pub fn masked_softmax_rows(&mut self, a: Var, mask: &Tensor) -> Var {
        let t = self.value(a);
        let (m, n) = t.shape();
        assert_eq!(mask.shape(), (m, n), "mask shape must match input");
        let mut value = Tensor::zeros(m, n);
        for r in 0..m {
            let row = t.row(r);
            let mrow = mask.row(r);
            let max = row
                .iter()
                .zip(mrow)
                .filter(|(_, &keep)| keep != 0.0)
                .map(|(&x, _)| x)
                .fold(f64::NEG_INFINITY, f64::max);
            if max == f64::NEG_INFINITY {
                continue; // fully masked row
            }
            let mut sum = 0.0;
            let mut exps = vec![0.0; n];
            for c in 0..n {
                if mrow[c] != 0.0 {
                    exps[c] = (row[c] - max).exp();
                    sum += exps[c];
                }
            }
            for (c, &e) in exps.iter().enumerate() {
                *value.get_mut(r, c) = e / sum;
            }
        }
        self.push(value, Op::MaskedSoftmaxRows(a, mask.clone()))
    }

    /// Transpose.
    pub fn transpose(&mut self, a: Var) -> Var {
        let value = self.value(a).transpose();
        self.push(value, Op::Transpose(a))
    }

    /// Columns `[start, start + len)` of a matrix.
    pub fn slice_cols(&mut self, a: Var, start: usize, len: usize) -> Var {
        let t = self.value(a);
        let (m, n) = t.shape();
        assert!(start + len <= n, "slice_cols out of range");
        let mut value = Tensor::zeros(m, len);
        for r in 0..m {
            for c in 0..len {
                *value.get_mut(r, c) = t.get(r, start + c);
            }
        }
        self.push(value, Op::SliceCols(a, start, len))
    }

    /// Horizontal concatenation of matrices with equal row counts.
    pub fn concat_cols(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat_cols needs at least one part");
        let m = self.value(parts[0]).rows();
        let total: usize = parts.iter().map(|&p| self.value(p).cols()).sum();
        let mut value = Tensor::zeros(m, total);
        let mut off = 0;
        for &p in parts {
            let t = self.value(p).clone();
            assert_eq!(t.rows(), m, "concat_cols row mismatch");
            for r in 0..m {
                for c in 0..t.cols() {
                    *value.get_mut(r, off + c) = t.get(r, c);
                }
            }
            off += t.cols();
        }
        self.push(value, Op::ConcatCols(parts.to_vec()))
    }

    /// Vertical concatenation of matrices with equal column counts.
    pub fn concat_rows(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat_rows needs at least one part");
        let n = self.value(parts[0]).cols();
        let total: usize = parts.iter().map(|&p| self.value(p).rows()).sum();
        let mut value = Tensor::zeros(total, n);
        let mut off = 0;
        for &p in parts {
            let t = self.value(p).clone();
            assert_eq!(t.cols(), n, "concat_rows column mismatch");
            for r in 0..t.rows() {
                for c in 0..n {
                    *value.get_mut(off + r, c) = t.get(r, c);
                }
            }
            off += t.rows();
        }
        self.push(value, Op::ConcatRows(parts.to_vec()))
    }

    /// Natural logarithm, element-wise. Inputs must be strictly positive.
    pub fn ln(&mut self, a: Var) -> Var {
        let value = self.value(a).map(|x| x.max(1e-300).ln());
        self.push(value, Op::Ln(a))
    }

    /// Row gather: `out[i, :] = a[indices[i], :]`. Rows may repeat.
    pub fn gather_rows(&mut self, a: Var, indices: &[usize]) -> Var {
        let t = self.value(a);
        let n = t.cols();
        let mut value = Tensor::zeros(indices.len(), n);
        for (i, &idx) in indices.iter().enumerate() {
            assert!(idx < t.rows(), "gather_rows index out of range");
            for c in 0..n {
                *value.get_mut(i, c) = t.get(idx, c);
            }
        }
        self.push(value, Op::GatherRows(a, indices.to_vec()))
    }

    /// Mean over all elements (a `1 x 1` result).
    pub fn mean_all(&mut self, a: Var) -> Var {
        let t = self.value(a);
        let n = (t.rows() * t.cols()) as f64;
        let value = Tensor::scalar(t.data().iter().sum::<f64>() / n);
        self.push(value, Op::MeanAll(a))
    }

    /// Sum over all elements (a `1 x 1` result).
    pub fn sum_all(&mut self, a: Var) -> Var {
        let t = self.value(a);
        let value = Tensor::scalar(t.data().iter().sum::<f64>());
        self.push(value, Op::SumAll(a))
    }

    /// Mean-squared-error between same-shape tensors (a `1 x 1` result).
    pub fn mse(&mut self, pred: Var, target: Var) -> Var {
        let d = self.sub(pred, target);
        let sq = self.mul(d, d);
        self.mean_all(sq)
    }

    // ---- backward ----------------------------------------------------------

    /// Runs reverse-mode accumulation from `loss` (which must be `1 x 1`)
    /// without touching any parameter store. Node gradients are then
    /// available through [`Graph::grad`].
    pub fn backward_graph_only(&mut self, loss: Var) {
        assert_eq!(
            self.nodes[loss.0].value.shape(),
            (1, 1),
            "backward requires a scalar loss"
        );
        for node in &mut self.nodes {
            let (r, c) = node.value.shape();
            node.grad = Tensor::zeros(r, c);
        }
        *self.nodes[loss.0].grad.get_mut(0, 0) = 1.0;

        for i in (0..self.nodes.len()).rev() {
            let grad = self.nodes[i].grad.clone();
            if grad.data().iter().all(|&g| g == 0.0) {
                continue;
            }
            let op = self.nodes[i].op.clone();
            match op {
                Op::Leaf => {}
                Op::MatMul(a, b) => {
                    let da = grad.matmul(&self.nodes[b.0].value.transpose());
                    let db = self.nodes[a.0].value.transpose().matmul(&grad);
                    self.nodes[a.0].grad.add_assign(&da);
                    self.nodes[b.0].grad.add_assign(&db);
                }
                Op::Add(a, b) => {
                    self.nodes[a.0].grad.add_assign(&grad);
                    self.nodes[b.0].grad.add_assign(&grad);
                }
                Op::Sub(a, b) => {
                    self.nodes[a.0].grad.add_assign(&grad);
                    let neg = grad.map(|x| -x);
                    self.nodes[b.0].grad.add_assign(&neg);
                }
                Op::Mul(a, b) => {
                    let bv = self.nodes[b.0].value.clone();
                    let av = self.nodes[a.0].value.clone();
                    let da = Tensor::from_vec(
                        grad.rows(),
                        grad.cols(),
                        grad.data()
                            .iter()
                            .zip(bv.data())
                            .map(|(g, x)| g * x)
                            .collect(),
                    );
                    let db = Tensor::from_vec(
                        grad.rows(),
                        grad.cols(),
                        grad.data()
                            .iter()
                            .zip(av.data())
                            .map(|(g, x)| g * x)
                            .collect(),
                    );
                    self.nodes[a.0].grad.add_assign(&da);
                    self.nodes[b.0].grad.add_assign(&db);
                }
                Op::AddRow(a, b) => {
                    self.nodes[a.0].grad.add_assign(&grad);
                    let (m, n) = grad.shape();
                    let mut db = Tensor::zeros(1, n);
                    for r in 0..m {
                        for c in 0..n {
                            *db.get_mut(0, c) += grad.get(r, c);
                        }
                    }
                    self.nodes[b.0].grad.add_assign(&db);
                }
                Op::Scale(a, s) => {
                    let da = grad.map(|x| x * s);
                    self.nodes[a.0].grad.add_assign(&da);
                }
                Op::Relu(a) => {
                    let av = &self.nodes[a.0].value;
                    let da = Tensor::from_vec(
                        grad.rows(),
                        grad.cols(),
                        grad.data()
                            .iter()
                            .zip(av.data())
                            .map(|(g, x)| if *x > 0.0 { *g } else { 0.0 })
                            .collect(),
                    );
                    self.nodes[a.0].grad.add_assign(&da);
                }
                Op::SoftmaxRows(a) => {
                    let y = self.nodes[i].value.clone();
                    let (m, n) = y.shape();
                    let mut da = Tensor::zeros(m, n);
                    for r in 0..m {
                        let dot: f64 = (0..n).map(|c| grad.get(r, c) * y.get(r, c)).sum();
                        for c in 0..n {
                            *da.get_mut(r, c) = y.get(r, c) * (grad.get(r, c) - dot);
                        }
                    }
                    self.nodes[a.0].grad.add_assign(&da);
                }
                Op::MaskedSoftmaxRows(a, _mask) => {
                    // Identical Jacobian to softmax: masked entries have
                    // y = 0, which zeroes their rows/columns automatically.
                    let y = self.nodes[i].value.clone();
                    let (m, n) = y.shape();
                    let mut da = Tensor::zeros(m, n);
                    for r in 0..m {
                        let dot: f64 = (0..n).map(|c| grad.get(r, c) * y.get(r, c)).sum();
                        for c in 0..n {
                            *da.get_mut(r, c) = y.get(r, c) * (grad.get(r, c) - dot);
                        }
                    }
                    self.nodes[a.0].grad.add_assign(&da);
                }
                Op::Transpose(a) => {
                    let da = grad.transpose();
                    self.nodes[a.0].grad.add_assign(&da);
                }
                Op::SliceCols(a, start, len) => {
                    let (m, _) = grad.shape();
                    let an = self.nodes[a.0].value.cols();
                    let mut da = Tensor::zeros(m, an);
                    for r in 0..m {
                        for c in 0..len {
                            *da.get_mut(r, start + c) = grad.get(r, c);
                        }
                    }
                    self.nodes[a.0].grad.add_assign(&da);
                }
                Op::ConcatCols(parts) => {
                    let mut off = 0;
                    for p in parts {
                        let (m, n) = self.nodes[p.0].value.shape();
                        let mut dp = Tensor::zeros(m, n);
                        for r in 0..m {
                            for c in 0..n {
                                *dp.get_mut(r, c) = grad.get(r, off + c);
                            }
                        }
                        self.nodes[p.0].grad.add_assign(&dp);
                        off += n;
                    }
                }
                Op::ConcatRows(parts) => {
                    let mut off = 0;
                    for p in parts {
                        let (m, n) = self.nodes[p.0].value.shape();
                        let mut dp = Tensor::zeros(m, n);
                        for r in 0..m {
                            for c in 0..n {
                                *dp.get_mut(r, c) = grad.get(off + r, c);
                            }
                        }
                        self.nodes[p.0].grad.add_assign(&dp);
                        off += m;
                    }
                }
                Op::Ln(a) => {
                    let av = self.nodes[a.0].value.clone();
                    let da = Tensor::from_vec(
                        grad.rows(),
                        grad.cols(),
                        grad.data()
                            .iter()
                            .zip(av.data())
                            .map(|(g, x)| g / x.max(1e-300))
                            .collect(),
                    );
                    self.nodes[a.0].grad.add_assign(&da);
                }
                Op::GatherRows(a, indices) => {
                    let n = grad.cols();
                    let (ar, ac) = self.nodes[a.0].value.shape();
                    let mut da = Tensor::zeros(ar, ac);
                    for (i_out, &idx) in indices.iter().enumerate() {
                        for c in 0..n {
                            *da.get_mut(idx, c) += grad.get(i_out, c);
                        }
                    }
                    self.nodes[a.0].grad.add_assign(&da);
                }
                Op::MeanAll(a) => {
                    let (m, n) = self.nodes[a.0].value.shape();
                    let g = grad.item() / (m * n) as f64;
                    let da = Tensor::full(m, n, g);
                    self.nodes[a.0].grad.add_assign(&da);
                }
                Op::SumAll(a) => {
                    let (m, n) = self.nodes[a.0].value.shape();
                    let da = Tensor::full(m, n, grad.item());
                    self.nodes[a.0].grad.add_assign(&da);
                }
            }
        }
    }

    /// Full backward pass: accumulates node gradients and flushes the
    /// gradients of parameter leaves into `store`.
    pub fn backward(&mut self, loss: Var, store: &mut ParamStore) {
        self.backward_graph_only(loss);
        for (id, node) in &self.bindings {
            store.accumulate_grad(*id, &self.nodes[*node].grad);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Central finite-difference gradient check: builds the graph twice per
    /// perturbed element and compares against the analytic gradient.
    fn grad_check(build: impl Fn(&mut Graph, &Tensor) -> Var, input: &Tensor, tol: f64) {
        let mut g = Graph::new();
        let _ = build(&mut g, input);
        // The build closure must create the input as node 0.
        let loss = Var(g.nodes.len() - 1);
        g.backward_graph_only(loss);
        let analytic = g.grad(Var(0)).clone();

        let eps = 1e-6;
        for r in 0..input.rows() {
            for c in 0..input.cols() {
                let mut plus = input.clone();
                *plus.get_mut(r, c) += eps;
                let mut minus = input.clone();
                *minus.get_mut(r, c) -= eps;
                let mut gp = Graph::new();
                let lp = build(&mut gp, &plus);
                let mut gm = Graph::new();
                let lm = build(&mut gm, &minus);
                let fd = (gp.value(lp).item() - gm.value(lm).item()) / (2.0 * eps);
                let a = analytic.get(r, c);
                assert!(
                    (fd - a).abs() <= tol * (1.0 + fd.abs().max(a.abs())),
                    "grad mismatch at ({r},{c}): fd={fd} analytic={a}"
                );
            }
        }
    }

    fn test_input() -> Tensor {
        Tensor::from_rows(&[&[0.5, -1.2, 2.0], &[1.5, 0.3, -0.7]])
    }

    #[test]
    fn grad_matmul() {
        let w = Tensor::from_rows(&[&[0.2, -0.4], &[1.0, 0.6], &[-0.3, 0.9]]);
        grad_check(
            |g, x| {
                let xv = g.constant(x.clone());
                let wv = g.constant(w.clone());
                let y = g.matmul(xv, wv);
                g.sum_all(y)
            },
            &test_input(),
            1e-6,
        );
    }

    #[test]
    fn grad_add_sub_mul() {
        let other = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[-1.0, 0.5, 0.25]]);
        grad_check(
            |g, x| {
                let xv = g.constant(x.clone());
                let o = g.constant(other.clone());
                let s = g.add(xv, o);
                let d = g.sub(s, xv);
                let m = g.mul(d, xv);
                g.sum_all(m)
            },
            &test_input(),
            1e-6,
        );
    }

    #[test]
    fn grad_add_row_broadcast() {
        grad_check(
            |g, x| {
                let xv = g.constant(x.clone());
                let b = g.constant(Tensor::from_rows(&[&[0.1, -0.2, 0.3]]));
                let y = g.add_row(xv, b);
                let sq = g.mul(y, y);
                g.sum_all(sq)
            },
            &test_input(),
            1e-6,
        );
        // Also check the bias gradient itself.
        let mut g = Graph::new();
        let x = g.constant(test_input());
        let b = g.constant(Tensor::from_rows(&[&[0.1, -0.2, 0.3]]));
        let y = g.add_row(x, b);
        let loss = g.sum_all(y);
        g.backward_graph_only(loss);
        // d(sum)/db_c = number of rows = 2.
        assert_eq!(g.grad(b).data(), &[2.0, 2.0, 2.0]);
    }

    #[test]
    fn grad_relu_and_scale() {
        grad_check(
            |g, x| {
                let xv = g.constant(x.clone());
                let r = g.relu(xv);
                let s = g.scale(r, 3.0);
                g.sum_all(s)
            },
            &test_input(),
            1e-6,
        );
    }

    #[test]
    fn grad_softmax_rows() {
        // Weighted sum of softmax outputs exercises the full Jacobian.
        let w = Tensor::from_rows(&[&[0.3, -0.7, 1.1], &[0.9, 0.2, -0.5]]);
        grad_check(
            |g, x| {
                let xv = g.constant(x.clone());
                let sm = g.softmax_rows(xv);
                let wv = g.constant(w.clone());
                let prod = g.mul(sm, wv);
                g.sum_all(prod)
            },
            &test_input(),
            1e-5,
        );
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut g = Graph::new();
        let x = g.constant(Tensor::from_rows(&[&[1000.0, 1001.0], &[-5.0, -5.0]]));
        let y = g.softmax_rows(x);
        let v = g.value(y);
        for r in 0..2 {
            let s: f64 = v.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-12, "row {r} sums to {s}");
        }
        // Large inputs do not overflow thanks to max subtraction.
        assert!(v.get(0, 1) > v.get(0, 0));
        assert!((v.get(1, 0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn masked_softmax_respects_mask_and_grads() {
        let mask = Tensor::from_rows(&[&[1.0, 1.0, 0.0], &[0.0, 0.0, 0.0]]);
        let mut g = Graph::new();
        let x = g.constant(test_input());
        let y = g.masked_softmax_rows(x, &mask);
        let v = g.value(y);
        // Masked entries are exactly zero; unmasked rows sum to one.
        assert_eq!(v.get(0, 2), 0.0);
        assert!((v.row(0).iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // Fully masked row is all zeros.
        assert_eq!(v.row(1), &[0.0, 0.0, 0.0]);

        // Gradient check against finite differences.
        let w = Tensor::from_rows(&[&[0.3, -0.7, 1.1], &[0.9, 0.2, -0.5]]);
        let mask2 = mask.clone();
        grad_check(
            |g, x| {
                let xv = g.constant(x.clone());
                let sm = g.masked_softmax_rows(xv, &mask2);
                let wv = g.constant(w.clone());
                let prod = g.mul(sm, wv);
                g.sum_all(prod)
            },
            &test_input(),
            1e-5,
        );
    }

    #[test]
    fn grad_transpose_slice_concat() {
        grad_check(
            |g, x| {
                let xv = g.constant(x.clone());
                let t = g.transpose(xv); // 3x2
                let left = g.slice_cols(t, 0, 1); // 3x1
                let right = g.slice_cols(t, 1, 1); // 3x1
                let cat = g.concat_cols(&[right, left]); // swapped 3x2
                let sq = g.mul(cat, cat);
                g.sum_all(sq)
            },
            &test_input(),
            1e-6,
        );
    }

    #[test]
    fn grad_concat_rows_and_ln() {
        grad_check(
            |g, x| {
                let xv = g.constant(x.clone());
                let sq = g.mul(xv, xv); // strictly positive for ln
                let one = g.constant(Tensor::full(2, 3, 1.0));
                let pos = g.add(sq, one);
                let l = g.ln(pos);
                let stack = g.concat_rows(&[l, l]);
                g.sum_all(stack)
            },
            &test_input(),
            1e-6,
        );
        // Value check: concat_rows stacks vertically.
        let mut g = Graph::new();
        let a = g.constant(Tensor::from_rows(&[&[1.0, 2.0]]));
        let b = g.constant(Tensor::from_rows(&[&[3.0, 4.0]]));
        let s = g.concat_rows(&[a, b]);
        assert_eq!(g.value(s).shape(), (2, 2));
        assert_eq!(g.value(s).row(1), &[3.0, 4.0]);
    }

    #[test]
    fn grad_gather_rows_accumulates_repeats() {
        grad_check(
            |g, x| {
                let xv = g.constant(x.clone());
                let gathered = g.gather_rows(xv, &[0, 0, 1]);
                let sq = g.mul(gathered, gathered);
                g.sum_all(sq)
            },
            &test_input(),
            1e-6,
        );
    }

    #[test]
    fn grad_mean_and_mse() {
        let target = Tensor::from_rows(&[&[0.0, 1.0, -1.0], &[2.0, 0.5, 0.0]]);
        grad_check(
            |g, x| {
                let xv = g.constant(x.clone());
                let t = g.constant(target.clone());
                g.mse(xv, t)
            },
            &test_input(),
            1e-6,
        );
        // MSE value is correct.
        let mut g = Graph::new();
        let a = g.constant(Tensor::from_rows(&[&[1.0, 3.0]]));
        let b = g.constant(Tensor::from_rows(&[&[0.0, 1.0]]));
        let l = g.mse(a, b);
        assert!((g.value(l).item() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn backward_flushes_param_grads() {
        let mut store = ParamStore::new(0);
        let w = store.add(Tensor::from_rows(&[&[2.0], &[3.0]]));
        let mut g = Graph::new();
        let x = g.constant(Tensor::from_rows(&[&[1.0, 4.0]]));
        let wv = g.param(&store, w);
        let y = g.matmul(x, wv); // 1x1 = 2 + 12
        let loss = g.sum_all(y);
        assert_eq!(g.value(loss).item(), 14.0);
        g.backward(loss, &mut store);
        assert_eq!(store.grad(w).data(), &[1.0, 4.0]);
        // Second backward accumulates.
        let mut g2 = Graph::new();
        let x2 = g2.constant(Tensor::from_rows(&[&[1.0, 1.0]]));
        let wv2 = g2.param(&store, w);
        let y2 = g2.matmul(x2, wv2);
        let loss2 = g2.sum_all(y2);
        g2.backward(loss2, &mut store);
        assert_eq!(store.grad(w).data(), &[2.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "scalar loss")]
    fn backward_requires_scalar() {
        let mut g = Graph::new();
        let x = g.constant(test_input());
        g.backward_graph_only(x);
    }

    #[test]
    fn pooled_graph_matches_serial_graph_bit_for_bit() {
        let x_data = Tensor::from_vec(
            64,
            8,
            (0..64 * 8).map(|i| ((i as f64) * 0.11).sin()).collect(),
        );
        let w_data = Tensor::from_vec(
            8,
            4,
            (0..8 * 4).map(|i| ((i as f64) * 0.29).cos()).collect(),
        );
        let forward = |g: &mut Graph| {
            let x = g.constant(x_data.clone());
            let w = g.constant(w_data.clone());
            let y = g.matmul(x, w);
            let r = g.relu(y);
            g.sum_all(r)
        };
        let mut serial = Graph::new();
        let ls = forward(&mut serial);
        let pool = std::sync::Arc::new(dpdp_pool::ThreadPool::new(4));
        let mut pooled = Graph::with_pool(pool);
        let lp = forward(&mut pooled);
        assert!(serial.value(ls).data() == pooled.value(lp).data());
    }
}
