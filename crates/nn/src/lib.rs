//! A minimal neural-network substrate: dense tensors, a tape-based
//! reverse-mode autodiff graph, the layers the paper's networks need
//! (linear, MLP, multi-head scaled dot-product attention), and SGD/Adam
//! optimizers.
//!
//! The paper's models are small (per-vehicle 5-feature states, two stacked
//! attention blocks over at most a few hundred vehicles), so a straight
//! `f64` CPU implementation reproduces the training dynamics without any
//! external ML framework. Every op's backward pass is verified against
//! central finite differences in the test suite.
//!
//! # Example
//!
//! ```
//! use dpdp_nn::{Graph, ParamStore, Linear, Adam, Optimizer, Tensor};
//!
//! let mut store = ParamStore::new(42);
//! let layer = Linear::new(&mut store, 3, 1);
//! let mut adam = Adam::with_lr(1e-2);
//! for _ in 0..200 {
//!     let mut g = Graph::new();
//!     let x = g.constant(Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]));
//!     let y = g.constant(Tensor::from_rows(&[&[6.0], &[15.0]]));
//!     let pred = layer.forward(&mut g, &store, x);
//!     let loss = g.mse(pred, y);
//!     g.backward(loss, &mut store);
//!     adam.step(&mut store);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod graph;
pub mod init;
pub mod layers;
pub mod optim;
pub mod params;
pub mod serialize;
pub mod tensor;

pub use graph::{Graph, Precision, Var};
pub use layers::{Linear, Mlp, MultiHeadAttention};
pub use optim::{Adam, Optimizer, Sgd};
pub use params::{ParamId, ParamStore};
pub use tensor::Tensor;
