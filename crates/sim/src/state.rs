//! Runtime state of one vehicle during an episode.

use dpdp_net::{FleetConfig, Order, OrderId, RoadNetwork, TimePoint, VehicleConfig};
use dpdp_routing::{Route, StopAction, VehicleView};

/// The evolving state of a vehicle: a [`VehicleView`] snapshot (anchor, cargo
/// stack, remaining route) plus the distance already driven.
///
/// The *anchor* invariant: `view.anchor_node` / `view.anchor_time` always
/// describe the next point in space-time where the vehicle is free to change
/// plans. While a leg is being driven the anchor is that leg's destination —
/// this is how the paper's "no interference with in-service vehicles" rule is
/// enforced: route edits only touch stops after the anchor.
#[derive(Debug, Clone)]
pub struct VehicleState {
    /// The planner-facing snapshot.
    pub view: VehicleView,
    /// Kilometres of already-committed driving (executed legs).
    pub traveled: f64,
    /// Number of orders this vehicle has accepted (and not had revoked by
    /// a cancellation or breakdown).
    pub orders_accepted: usize,
    /// Whether the vehicle is currently broken down (see
    /// [`VehicleState::break_down`]). Broken vehicles are masked out of
    /// every [`DecisionBatch`](crate::batch::DecisionBatch) until a
    /// recovery event clears the flag.
    pub broken: bool,
}

/// What a [`VehicleState::break_down`] call swept off the dying vehicle.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BreakdownOutcome {
    /// Accepted orders whose pickup had not been driven yet: their stops
    /// were removed and they can be re-dispatched to another vehicle.
    pub stranded: Vec<OrderId>,
    /// Orders already picked up but not delivered: the cargo is stuck on
    /// the dead vehicle and the order is unservable.
    pub lost: Vec<OrderId>,
}

impl VehicleState {
    /// Fresh state for a vehicle idling at its depot at time zero.
    pub fn new(config: &VehicleConfig) -> Self {
        VehicleState {
            view: VehicleView::idle_at_depot(config.id, config.depot),
            traveled: 0.0,
            orders_accepted: 0,
            broken: false,
        }
    }

    /// Advances the vehicle to wall-clock time `now`, committing every route
    /// leg whose departure has already happened.
    ///
    /// A vehicle departs toward its next stop the moment it becomes free, so
    /// a leg is committed (distance accrued, cargo stack updated, anchor
    /// moved to the leg destination) as soon as `anchor_time <= now`. After
    /// the loop, an idle vehicle's anchor time is brought forward to `now`.
    pub fn advance_to(
        &mut self,
        now: TimePoint,
        net: &RoadNetwork,
        fleet: &FleetConfig,
        orders: &[Order],
    ) {
        loop {
            if self.view.route.is_empty() {
                break;
            }
            if self.view.anchor_time > now {
                // Still executing the previous leg; destination is locked.
                break;
            }
            let stop = self
                .view
                .route
                .pop_front()
                .expect("route checked non-empty");
            let leg = net.distance(self.view.anchor_node, stop.node);
            self.traveled += leg;
            let arrival = self.view.anchor_time + fleet.travel_time(leg);
            let order = &orders[stop.action.order().index()];
            let service_start = match stop.action {
                StopAction::Pickup(id) => {
                    self.view.onboard.push((id, order.quantity));
                    arrival.max(order.created)
                }
                StopAction::Delivery(id) => {
                    debug_assert_eq!(
                        self.view.onboard.last().map(|&(o, _)| o),
                        Some(id),
                        "simulator executed a LIFO-violating route"
                    );
                    self.view.onboard.pop();
                    arrival
                }
            };
            self.view.anchor_node = stop.node;
            self.view.anchor_time = service_start + fleet.service_time;
        }
        if self.view.route.is_empty() && self.view.anchor_time < now {
            self.view.anchor_time = now;
        }
    }

    /// Commits an assignment: replaces the remaining route and marks the
    /// vehicle used.
    pub fn accept(&mut self, route: Route) {
        self.view.route = route;
        self.view.used = true;
        self.orders_accepted += 1;
    }

    /// Removes a cancelled order's remaining stops from the route (both
    /// pickup and delivery; the caller must have advanced the state to the
    /// cancellation instant first so "remaining" is wall-clock honest).
    /// Returns `true` when the order was actually still on the route, in
    /// which case the acceptance is also un-counted.
    pub fn cancel_order(&mut self, order: OrderId) -> bool {
        let removed = self.view.route.remove_order(order) > 0;
        if removed {
            self.orders_accepted = self.orders_accepted.saturating_sub(1);
        }
        removed
    }

    /// Breaks the vehicle down at its current anchor (the caller advances
    /// to the breakdown instant first): the remaining route is stripped,
    /// undriven pickups come back as re-dispatchable *stranded* orders,
    /// onboard cargo is written off as *lost*, and the vehicle is masked
    /// out of dispatch until [`VehicleState::recover`]. Executed kilometres
    /// and the used flag are kept — the truck did drive.
    pub fn break_down(&mut self) -> BreakdownOutcome {
        let stranded = self.view.route.pending_pickups();
        let lost: Vec<OrderId> = self.view.onboard.iter().map(|&(o, _)| o).collect();
        self.view.route = Route::empty();
        self.view.onboard.clear();
        self.orders_accepted = self
            .orders_accepted
            .saturating_sub(stranded.len() + lost.len());
        self.broken = true;
        BreakdownOutcome { stranded, lost }
    }

    /// Clears the breakdown flag: the vehicle is available again at its
    /// current anchor, with an empty route.
    pub fn recover(&mut self) {
        self.broken = false;
    }

    /// Whether the vehicle has served (or accepted) any order.
    #[inline]
    pub fn used(&self) -> bool {
        self.view.used
    }

    /// Total travel length if the vehicle finished its remaining route now:
    /// executed kilometres plus remaining route (anchor through stops, home
    /// to depot). Unused vehicles report 0.
    pub fn final_travel_length(&self, net: &RoadNetwork) -> f64 {
        if !self.used() {
            return 0.0;
        }
        self.traveled
            + self
                .view
                .route
                .length(net, self.view.anchor_node, self.view.depot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpdp_net::{Node, NodeId, OrderId, Point, TimeDelta, VehicleId};
    use dpdp_routing::Stop;

    fn setup() -> (RoadNetwork, FleetConfig, Vec<Order>) {
        let nodes = vec![
            Node::depot(NodeId(0), Point::new(0.0, 0.0)),
            Node::factory(NodeId(1), Point::new(10.0, 0.0)),
            Node::factory(NodeId(2), Point::new(20.0, 0.0)),
        ];
        let net = RoadNetwork::euclidean(nodes, 1.0).unwrap();
        let fleet = FleetConfig::homogeneous(
            1,
            &[NodeId(0)],
            10.0,
            500.0,
            2.0,
            60.0,
            TimeDelta::from_minutes(5.0),
        )
        .unwrap();
        let orders = vec![Order::new(
            OrderId(0),
            NodeId(1),
            NodeId(2),
            5.0,
            TimePoint::ZERO,
            TimePoint::from_hours(24.0),
        )
        .unwrap()];
        (net, fleet, orders)
    }

    fn state(fleet: &FleetConfig) -> VehicleState {
        VehicleState::new(fleet.vehicle(VehicleId(0)))
    }

    #[test]
    fn advance_commits_departed_legs_only() {
        let (net, fleet, orders) = setup();
        let mut s = state(&fleet);
        s.accept(dpdp_routing::Route::from_stops(vec![
            Stop::pickup(NodeId(1), OrderId(0)),
            Stop::delivery(NodeId(2), OrderId(0)),
        ]));
        // At t = 0 the vehicle departs immediately: first leg is committed,
        // anchor moves to node 1 at (10 min travel + 5 min service) = 15 min.
        s.advance_to(TimePoint::ZERO, &net, &fleet, &orders);
        assert_eq!(s.view.anchor_node, NodeId(1));
        assert!((s.view.anchor_time.seconds() - 900.0).abs() < 1e-6);
        assert_eq!(s.view.route.len(), 1);
        assert!((s.traveled - 10.0).abs() < 1e-12);
        assert_eq!(s.view.onboard.len(), 1);

        // At 10 minutes, still servicing at node 1; nothing more commits.
        s.advance_to(TimePoint::from_seconds(600.0), &net, &fleet, &orders);
        assert_eq!(s.view.route.len(), 1);

        // At 15 minutes it departs the delivery leg.
        s.advance_to(TimePoint::from_seconds(900.0), &net, &fleet, &orders);
        assert_eq!(s.view.anchor_node, NodeId(2));
        assert!(s.view.route.is_empty());
        assert!(s.view.onboard.is_empty());
        assert!((s.traveled - 20.0).abs() < 1e-12);
    }

    #[test]
    fn idle_vehicle_anchor_time_tracks_now() {
        let (net, fleet, orders) = setup();
        let mut s = state(&fleet);
        s.advance_to(TimePoint::from_hours(3.0), &net, &fleet, &orders);
        assert_eq!(s.view.anchor_time, TimePoint::from_hours(3.0));
        assert_eq!(s.view.anchor_node, NodeId(0));
        assert!(!s.used());
    }

    #[test]
    fn final_travel_length_includes_remaining_and_home() {
        let (net, fleet, orders) = setup();
        let mut s = state(&fleet);
        assert_eq!(s.final_travel_length(&net), 0.0);
        s.accept(dpdp_routing::Route::from_stops(vec![
            Stop::pickup(NodeId(1), OrderId(0)),
            Stop::delivery(NodeId(2), OrderId(0)),
        ]));
        // Nothing executed yet: full route from depot = 10 + 10 + 20 = 40.
        assert!((s.final_travel_length(&net) - 40.0).abs() < 1e-9);
        // After full execution the remaining part is just home from node 2.
        s.advance_to(TimePoint::from_hours(1.0), &net, &fleet, &orders);
        assert!((s.final_travel_length(&net) - 40.0).abs() < 1e-9);
        assert!((s.traveled - 20.0).abs() < 1e-12);
    }

    #[test]
    fn breakdown_strips_route_and_classifies_orders() {
        let (net, fleet, _) = setup();
        // Two orders: one will be picked up before the breakdown, one not.
        let orders = vec![
            Order::new(
                OrderId(0),
                NodeId(1),
                NodeId(2),
                2.0,
                TimePoint::ZERO,
                TimePoint::from_hours(24.0),
            )
            .unwrap(),
            Order::new(
                OrderId(1),
                NodeId(2),
                NodeId(1),
                2.0,
                TimePoint::ZERO,
                TimePoint::from_hours(24.0),
            )
            .unwrap(),
        ];
        let mut s = state(&fleet);
        s.accept(dpdp_routing::Route::from_stops(vec![
            Stop::pickup(NodeId(1), OrderId(0)),
            Stop::delivery(NodeId(2), OrderId(0)),
            Stop::pickup(NodeId(2), OrderId(1)),
            Stop::delivery(NodeId(1), OrderId(1)),
        ]));
        s.orders_accepted = 2;
        // At t = 0 the first leg departs: order 0 is onboard, order 1 not.
        s.advance_to(TimePoint::ZERO, &net, &fleet, &orders);
        assert_eq!(s.view.onboard.len(), 1);
        let outcome = s.break_down();
        assert_eq!(outcome.lost, vec![OrderId(0)]);
        assert_eq!(outcome.stranded, vec![OrderId(1)]);
        assert!(s.broken);
        assert!(s.view.route.is_empty());
        assert!(s.view.onboard.is_empty());
        assert_eq!(s.orders_accepted, 0);
        assert!(s.used(), "the truck drove; it stays used");
        assert!(s.traveled > 0.0);
        s.recover();
        assert!(!s.broken);
    }

    #[test]
    fn cancel_order_only_touches_undriven_stops() {
        let (net, fleet, orders) = setup();
        let mut s = state(&fleet);
        s.accept(dpdp_routing::Route::from_stops(vec![
            Stop::pickup(NodeId(1), OrderId(0)),
            Stop::delivery(NodeId(2), OrderId(0)),
        ]));
        assert!(s.cancel_order(OrderId(0)));
        assert!(s.view.route.is_empty());
        assert_eq!(s.orders_accepted, 0);
        // Cancelling an order that is not on the route is a no-op.
        assert!(!s.cancel_order(OrderId(0)));
        let _ = (&net, &orders);
    }

    #[test]
    fn waiting_for_order_creation_delays_anchor() {
        let (net, fleet, _) = setup();
        let orders = vec![Order::new(
            OrderId(0),
            NodeId(1),
            NodeId(2),
            5.0,
            TimePoint::from_hours(2.0),
            TimePoint::from_hours(24.0),
        )
        .unwrap()];
        let mut s = state(&fleet);
        s.accept(dpdp_routing::Route::from_stops(vec![
            Stop::pickup(NodeId(1), OrderId(0)),
            Stop::delivery(NodeId(2), OrderId(0)),
        ]));
        s.advance_to(TimePoint::ZERO, &net, &fleet, &orders);
        // Arrives at 10 min but waits until 2 h for the cargo; departs 2h05.
        assert_eq!(s.view.anchor_node, NodeId(1));
        assert!((s.view.anchor_time.seconds() - (7200.0 + 300.0)).abs() < 1e-6);
    }
}
