//! Batched decision epochs: the unit of work a [`Dispatcher`] sees.
//!
//! The paper's Algorithm 1 frames dispatch as a sequence of *decision
//! epochs*: every order whose decision time lands on the same instant is
//! decided against one shared fleet snapshot. A [`DecisionBatch`] carries
//! that snapshot — one [`VehicleView`] and one [`PlannerOutput`] per
//! `(order, vehicle)` pair — and maintains it *incrementally* as decisions
//! are committed: accepting an order replans only the chosen vehicle's
//! entries for the still-undecided orders (a per-order plan delta), so a
//! batch of `B` orders over `K` vehicles costs one full `B x K` planning
//! sweep plus at most `B` single-vehicle replans, instead of `B` full
//! sweeps.
//!
//! Sequential commit through [`DecisionBatch::resolve`] reproduces the
//! legacy one-order-at-a-time semantics exactly (same snapshot evolution,
//! same plan values), which is what makes the batch/serial parity tests in
//! this crate and `dpdp-baselines` possible.
//!
//! [`Dispatcher`]: crate::dispatcher::Dispatcher

use crate::dispatcher::DispatchContext;
use crate::shard::{plan_sweep, ShardContext, ShardStats, SweepBuffers};
use crate::state::VehicleState;
use dpdp_net::{FleetConfig, Order, OrderId, RoadNetwork, TimePoint, VehicleId};
use dpdp_pool::ThreadPool;
use dpdp_routing::{PlannerMode, PlannerOutput, RoutePlanner, ScheduleCache, VehicleView};
use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use std::cell::RefCell;
use std::sync::Arc;

/// Why a [`Decision`] turned out the way it did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DecisionReason {
    /// The order was assigned to a feasible vehicle.
    Assigned,
    /// No vehicle had a feasible insertion for the order.
    NoFeasibleVehicle,
    /// Feasible vehicles existed but the policy declined them all.
    PolicyRejected,
    /// The policy chose a vehicle whose plan was infeasible at commit time.
    InfeasibleChoice,
    /// The order's decision epoch fell beyond the simulation horizon.
    HorizonExceeded,
    /// The order was cancelled by an [`OrderCancelled`] event — either
    /// before it reached a dispatcher, or after assignment while its pickup
    /// was still undriven (the assignment is revoked by route surgery).
    ///
    /// [`OrderCancelled`]: crate::event::SimEvent::OrderCancelled
    Cancelled,
    /// The order's serving vehicle broke down after the pickup was
    /// executed: the cargo is stuck on the dead vehicle and the order
    /// cannot be re-dispatched (see
    /// [`VehicleBreakdown`](crate::event::SimEvent::VehicleBreakdown)).
    VehicleLost,
}

/// One dispatch outcome produced by [`Dispatcher::dispatch_batch`].
///
/// [`Dispatcher::dispatch_batch`]: crate::dispatcher::Dispatcher::dispatch_batch
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Decision {
    /// The order decided.
    pub order: OrderId,
    /// The serving vehicle, or `None` for a rejection.
    pub vehicle: Option<VehicleId>,
    /// Why.
    pub reason: DecisionReason,
}

impl Decision {
    /// An accepted assignment.
    pub fn assigned(order: OrderId, vehicle: VehicleId) -> Self {
        Decision {
            order,
            vehicle: Some(vehicle),
            reason: DecisionReason::Assigned,
        }
    }

    /// A rejection with the given reason.
    pub fn rejected(order: OrderId, reason: DecisionReason) -> Self {
        Decision {
            order,
            vehicle: None,
            reason,
        }
    }

    /// Whether the order was assigned.
    #[inline]
    pub fn is_assigned(&self) -> bool {
        self.vehicle.is_some()
    }
}

/// Everything [`DecisionBatch::resolve`] recorded about one committed
/// decision. The simulator adopts these records — and the batch's scratch
/// states — wholesale when the dispatcher's returned decisions match them,
/// so the planning work done inside the batch is never repeated.
#[derive(Debug)]
pub(crate) struct CommitRecord {
    /// The decision `resolve` returned.
    pub(crate) decision: Decision,
    /// Commit details, present iff the decision assigned a vehicle.
    pub(crate) assignment: Option<CommitAssignment>,
}

/// The committed side of an assignment, captured before the scratch state
/// mutated.
#[derive(Debug)]
pub(crate) struct CommitAssignment {
    /// The chosen vehicle's view before accepting the order.
    pub(crate) pre_view: VehicleView,
    /// The validated Algorithm 2 output the assignment committed.
    pub(crate) plan: PlannerOutput,
    /// Whether the vehicle had been used before this assignment.
    pub(crate) vehicle_was_used: bool,
}

/// Evaluates `f(i, k)` for every cell of a `rows x k` matrix across the
/// pool and regroups the flat results into rows. The single source of the
/// flat-index layout shared by the initial `B x K` sweep and
/// [`DecisionBatch::map_plans`], so the two cannot drift apart.
fn par_map_matrix<T: Send>(
    pool: &ThreadPool,
    rows: usize,
    k: usize,
    f: impl Fn(usize, usize) -> T + Sync,
) -> Vec<Vec<T>> {
    let mut flat = pool
        .par_map(rows * k, |idx| f(idx / k, idx % k))
        .into_iter();
    (0..rows).map(|_| flat.by_ref().take(k).collect()).collect()
}

/// Reusable per-epoch scratch arena for [`DecisionBatch::new`].
///
/// The driver loops (simulator episodes, server engine sessions) build one
/// `DecisionBatch` per decision epoch; without an arena every epoch pays
/// a fresh round of allocations for the sweep classification buffers and
/// one `ScheduleCache` per vehicle. An `EpochScratch` owned by the loop
/// and threaded into `new` keeps all of that storage alive across epochs:
/// buffers are cleared, never freed, so steady-state epochs allocate only
/// when the fleet or epoch outgrows every previous one.
///
/// Reuse is invisible in the output: cache rebuilds run the identical
/// passes over cleared vectors (see `ScheduleCache::rebuild`), the sweep
/// buffers are overwritten before use, and the per-vehicle rebuild fan-out
/// writes disjoint slots whose values do not depend on scheduling — so a
/// dirty scratch produces bit-identical plans to a fresh one at any
/// thread count (`dirty_epoch_scratch_is_bit_identical_to_fresh` below).
#[derive(Debug, Default)]
pub(crate) struct EpochScratch {
    /// Sharded-sweep classification buffers (see [`SweepBuffers`]).
    pub(crate) sweep: SweepBuffers,
    /// One schedule cache slot per vehicle, rebuilt in place each epoch.
    caches: Vec<ScheduleCache>,
    /// `cache_live[k]`: whether `caches[k]` was rebuilt for this epoch.
    /// Dead slots keep stale storage for later epochs but are never read.
    cache_live: Vec<bool>,
    /// Sharded path only: vehicles with at least one surviving sweep cell.
    needed: Vec<bool>,
}

impl EpochScratch {
    /// Rebuilds the per-vehicle schedule caches in place for every vehicle
    /// `want` selects, fanning the builds out across `pool` in fixed
    /// chunks. Each task owns a disjoint `chunks_mut` slice and every
    /// cache's content depends only on its own vehicle view, so the result
    /// is independent of task scheduling — bit-identical at any thread
    /// count, dirty or fresh.
    fn rebuild_caches(
        &mut self,
        planner: &RoutePlanner<'_>,
        views: &[VehicleView],
        pool: &ThreadPool,
        want: impl Fn(usize) -> bool + Sync,
    ) {
        let k_n = views.len();
        self.caches.resize_with(k_n, ScheduleCache::default);
        self.cache_live.clear();
        self.cache_live.resize(k_n, false);
        for (k, live) in self.cache_live.iter_mut().enumerate() {
            *live = want(k);
        }
        let live = &self.cache_live;
        if !pool.is_parallel() || k_n == 0 {
            for (k, cache) in self.caches.iter_mut().enumerate() {
                if live[k] {
                    planner.cache_into(cache, &views[k]);
                }
            }
            return;
        }
        let chunk = k_n.div_ceil((pool.threads() * 4).min(k_n));
        pool.scope(|scope| {
            for (c, caches) in self.caches.chunks_mut(chunk).enumerate() {
                let start = c * chunk;
                scope.spawn(move || {
                    for (off, cache) in caches.iter_mut().enumerate() {
                        let k = start + off;
                        if live[k] {
                            planner.cache_into(cache, &views[k]);
                        }
                    }
                });
            }
        });
    }

    /// The cache rebuilt for vehicle `k` this epoch, if any.
    #[inline]
    fn cache(&self, k: usize) -> Option<&ScheduleCache> {
        self.cache_live[k].then(|| &self.caches[k])
    }
}

/// How the epoch's `B x K` plan matrix is stored.
///
/// The flat scan materialises every cell (`Dense`). The sharded sweep
/// stores only the cells it actually evaluated (`Sparse`): every other
/// cell was proven infeasible by the geometric bound, so its output is the
/// per-vehicle pruned fallback (`best: None` plus the vehicle's
/// `d_{t,k}`) — identical for every row. Both representations answer every
/// cell query with bit-identical values; `Sparse` just refuses to spend
/// `O(B x K)` memory traffic on cells whose content is known in advance,
/// which is what lets the hierarchical megacity episode scale with the
/// *work* of the epoch instead of the fleet size.
#[derive(Debug)]
enum PlanStore {
    /// `rows[i][k]`: Algorithm 2 output for epoch order `i` on vehicle `k`.
    Dense(Vec<Vec<PlannerOutput>>),
    /// Evaluated cells only, each row sorted by vehicle index; every absent
    /// cell reads as `fallback[k]`. Commit deltas upsert into the rows, so
    /// a cell that becomes feasible after an acceptance is always present.
    Sparse {
        rows: Vec<Vec<(u32, PlannerOutput)>>,
        fallback: Vec<PlannerOutput>,
    },
}

impl PlanStore {
    /// The plan of cell `(i, k)`.
    fn cell(&self, i: usize, k: usize) -> &PlannerOutput {
        match self {
            PlanStore::Dense(rows) => &rows[i][k],
            PlanStore::Sparse { rows, fallback } => {
                match rows[i].binary_search_by_key(&(k as u32), |e| e.0) {
                    Ok(p) => &rows[i][p].1,
                    Err(_) => &fallback[k],
                }
            }
        }
    }

    /// Overwrites cell `(i, k)` (inserting it when sparse).
    fn set(&mut self, i: usize, k: usize, plan: PlannerOutput) {
        match self {
            PlanStore::Dense(rows) => rows[i][k] = plan,
            PlanStore::Sparse { rows, .. } => {
                let row = &mut rows[i];
                match row.binary_search_by_key(&(k as u32), |e| e.0) {
                    Ok(p) => row[p].1 = plan,
                    Err(p) => row.insert(p, (k as u32, plan)),
                }
            }
        }
    }

    /// Whether any vehicle currently has a feasible plan for row `i`.
    /// Sparse fallback cells are `best: None` by construction, so scanning
    /// the stored cells is exhaustive.
    fn row_feasible(&self, i: usize) -> bool {
        match self {
            PlanStore::Dense(rows) => rows[i].iter().any(|p| p.feasible()),
            PlanStore::Sparse { rows, .. } => rows[i].iter().any(|(_, p)| p.feasible()),
        }
    }

    /// Row `i` as the dense `K`-slice [`DispatchContext`] exposes,
    /// materialising it from the fallback when sparse.
    fn row_dense(&self, i: usize) -> Cow<'_, [PlannerOutput]> {
        match self {
            PlanStore::Dense(rows) => Cow::Borrowed(&rows[i]),
            PlanStore::Sparse { rows, fallback } => {
                let mut row = fallback.clone();
                for (k, p) in &rows[i] {
                    row[*k as usize] = p.clone();
                }
                Cow::Owned(row)
            }
        }
    }
}

/// Interior state of a batch: evolves as decisions are committed.
#[derive(Debug)]
struct BatchInner {
    /// Scratch copies of the simulator's vehicle states; committing a
    /// decision mirrors the simulator's accept-and-advance exactly.
    states: Vec<VehicleState>,
    /// `states[k].view` clones, dense by vehicle, kept in sync on commit
    /// (the contiguous slice [`DispatchContext`] wants).
    views: Vec<VehicleView>,
    /// The epoch's plan matrix (dense for the flat scan, candidate-sparse
    /// under sharding).
    plans: PlanStore,
    /// Which epoch orders have been resolved already.
    decided: Vec<bool>,
    /// Per-order commit records, filled by `resolve`.
    commits: Vec<Option<CommitRecord>>,
    /// Sharded-sweep work accounting (initial matrix plus commit deltas);
    /// zero cells when the batch runs unsharded.
    stats: ShardStats,
}

/// All orders flushed at one decision epoch, sharing one fleet snapshot.
///
/// Built by the [`Simulator`] once per epoch and handed to
/// [`Dispatcher::dispatch_batch`]. Policies read per-order joint states via
/// [`DecisionBatch::with_context`] and commit outcomes via
/// [`DecisionBatch::resolve`]; the shared snapshot is delta-updated after
/// every acceptance so later orders in the batch see the committed routes,
/// exactly as the legacy per-order path did.
///
/// Under [`SimulatorBuilder::sharding`] the batch is assembled as a
/// *merge of shard-local batches*: in-shard `(order, vehicle)` pairs run
/// the full insertion sweep as shard-grouped pool tasks, cross-shard pairs
/// go through the deterministic escalation/prune rule of [`crate::shard`],
/// and the resulting plan matrix is **bit-identical** to the unsharded
/// one — policies cannot tell the difference, only wall time moves.
///
/// [`Simulator`]: crate::simulator::Simulator
/// [`SimulatorBuilder::sharding`]: crate::simulator::SimulatorBuilder::sharding
/// [`Dispatcher::dispatch_batch`]: crate::dispatcher::Dispatcher::dispatch_batch
#[derive(Debug)]
pub struct DecisionBatch<'a> {
    now: TimePoint,
    interval: usize,
    net: &'a RoadNetwork,
    fleet: &'a FleetConfig,
    orders: &'a [Order],
    epoch_orders: Vec<OrderId>,
    pool: Arc<ThreadPool>,
    mode: PlannerMode,
    shards: Option<ShardContext>,
    /// Per-vehicle availability mask (`None` = every vehicle available).
    /// Masked vehicles — e.g. broken down mid-episode — keep their dense
    /// slot in the snapshot but are excluded from the insertion sweep:
    /// their plans arrive as `best: None`, so no policy can choose them.
    active: Option<Vec<bool>>,
    inner: RefCell<BatchInner>,
}

impl<'a> DecisionBatch<'a> {
    /// Builds a batch over the given epoch orders from the simulator's
    /// current vehicle states (cloned as scratch space). The initial
    /// `B x K` Algorithm 2 sweep is evaluated across `pool`'s threads, each
    /// `(order, vehicle)` plan landing in its pre-indexed matrix slot —
    /// bit-identical to the serial sweep for any thread count.
    ///
    /// Each vehicle's [`ScheduleCache`] — prefix/suffix schedule passes and
    /// the current route length `d_{t,k}` — is built **once** here and
    /// shared by every order of the batch, instead of being recomputed per
    /// `(order, vehicle)` cell: the sweep costs `K` cache builds plus
    /// `B x K` O(n²) incremental evaluations.
    #[allow(clippy::too_many_arguments)] // crate-private; mirrors the fields
    pub(crate) fn new(
        now: TimePoint,
        interval: usize,
        net: &'a RoadNetwork,
        fleet: &'a FleetConfig,
        orders: &'a [Order],
        epoch_orders: Vec<OrderId>,
        states: Vec<VehicleState>,
        pool: Arc<ThreadPool>,
        mode: PlannerMode,
        shards: Option<ShardContext>,
        active: Option<Vec<bool>>,
        scratch: &mut EpochScratch,
    ) -> Self {
        let views: Vec<VehicleView> = states.iter().map(|s| s.view.clone()).collect();
        let planner = RoutePlanner::with_mode(net, fleet, orders, mode);
        let epoch = &epoch_orders;
        let views_ref = &views;
        let active_ref = active.as_deref();
        let is_active = |k: usize| active_ref.is_none_or(|a| a[k]);
        let mut stats = ShardStats::default();
        let plans = match shards.as_ref().filter(|c| c.map.num_shards() > 1) {
            None => {
                if mode == PlannerMode::Naive {
                    // The reference path never reads a cache; don't build
                    // them. Masked vehicles skip the sweep entirely and
                    // emit the known infeasible output.
                    PlanStore::Dense(par_map_matrix(
                        &pool,
                        epoch_orders.len(),
                        views.len(),
                        |i, k| {
                            if is_active(k) {
                                planner.plan(&views_ref[k], &orders[epoch[i].index()])
                            } else {
                                planner.pruned_output(None, &views_ref[k])
                            }
                        },
                    ))
                } else {
                    // Schedule caches only for available vehicles; a masked
                    // vehicle's plans are `best: None` with its exact route
                    // length, so the mask is value-identical everywhere it
                    // is applied (flat or sharded, any thread count). The
                    // caches are rebuilt in place inside the epoch scratch
                    // arena, not freshly allocated.
                    scratch.rebuild_caches(&planner, &views, &pool, is_active);
                    let scr = &*scratch;
                    PlanStore::Dense(par_map_matrix(
                        &pool,
                        epoch_orders.len(),
                        views.len(),
                        |i, k| match scr.cache(k) {
                            Some(cache) => {
                                planner.plan_cached(cache, &views_ref[k], &orders[epoch[i].index()])
                            }
                            None => planner.pruned_output(None, &views_ref[k]),
                        },
                    ))
                }
            }
            Some(ctx) => {
                // Sharded sweep: classify every cell, run the surviving
                // cells shard-grouped across the pool, and store them as
                // candidate-sparse rows over the per-vehicle pruned
                // fallback. Every pruned cell's output is bit-identical to
                // what its full evaluation would have produced (see
                // crate::shard), so queries cannot tell the difference.
                let epoch_refs: Vec<&Order> = epoch.iter().map(|id| &orders[id.index()]).collect();
                let sweep = plan_sweep(
                    ctx,
                    &planner,
                    &views,
                    &epoch_refs,
                    active_ref,
                    &pool,
                    &mut scratch.sweep,
                );
                stats = sweep.stats;
                let work = &sweep.work;
                // Schedule caches are only needed by vehicles with at
                // least one surviving cell — a vehicle whose whole column
                // pruned skips the build entirely (its `d_{t,k}` comes
                // from `Route::length`, which accumulates the same legs in
                // the same order as the cache's forward pass, so the
                // emitted value is bit-identical either way). The `needed`
                // mask is lifted out of the scratch while `rebuild_caches`
                // borrows it mutably, then restored.
                if mode != PlannerMode::Naive {
                    let mut needed = std::mem::take(&mut scratch.needed);
                    needed.clear();
                    needed.resize(views.len(), false);
                    for &(_, k) in work.iter() {
                        needed[k as usize] = true;
                    }
                    scratch.rebuild_caches(&planner, &views, &pool, |k| needed[k]);
                    scratch.needed = needed;
                } else {
                    // The reference path never reads a cache; mark every
                    // slot dead so queries below fall through to `plan`.
                    scratch.rebuild_caches(&planner, &views, &pool, |_| false);
                }
                let scr = &*scratch;
                let outs = pool.par_map(work.len(), |w| {
                    let (i, k) = (work[w].0 as usize, work[w].1 as usize);
                    match scr.cache(k) {
                        Some(cache) => planner.plan_cached(cache, &views_ref[k], epoch_refs[i]),
                        None => planner.plan(&views_ref[k], epoch_refs[i]),
                    }
                });
                // A pruned cell's output depends only on the vehicle
                // (`best: None` plus its `d_{t,k}`), so compute it once
                // per vehicle as the sparse fallback instead of
                // materialising a `B x K` canvas.
                let fallback: Vec<PlannerOutput> = (0..views.len())
                    .map(|k| planner.pruned_output(scr.cache(k), &views_ref[k]))
                    .collect();
                let mut rows: Vec<Vec<(u32, PlannerOutput)>> =
                    (0..epoch_refs.len()).map(|_| Vec::new()).collect();
                for (&(i, k), out) in work.iter().zip(outs) {
                    rows[i as usize].push((k, out));
                }
                for row in &mut rows {
                    row.sort_unstable_by_key(|e| e.0);
                }
                PlanStore::Sparse { rows, fallback }
            }
        };
        let decided = vec![false; epoch_orders.len()];
        let commits = (0..epoch_orders.len()).map(|_| None).collect();
        DecisionBatch {
            now,
            interval,
            net,
            fleet,
            orders,
            epoch_orders,
            pool,
            mode,
            shards,
            active,
            inner: RefCell::new(BatchInner {
                states,
                views,
                plans,
                decided,
                commits,
                stats,
            }),
        }
    }

    /// The thread pool decisions of this epoch may score on. Width 1 means
    /// strictly serial execution; any width yields identical results (see
    /// [`dpdp_pool::ThreadPool::par_map`]).
    #[inline]
    pub fn pool(&self) -> &Arc<ThreadPool> {
        &self.pool
    }

    /// Applies `f` to every `(order, vehicle)` plan of the **current**
    /// snapshot across the batch's thread pool, returning one row per epoch
    /// order (`result[i][k]` = `f(i, k, plan)`), exactly as the serial
    /// nested loop would.
    ///
    /// This is the whole-epoch scoring primitive batch-native policies use:
    /// plans are read under one shared borrow, so it must not be called
    /// while [`DecisionBatch::resolve`] is on the stack.
    pub fn map_plans<T: Send>(
        &self,
        f: impl Fn(usize, usize, &PlannerOutput) -> T + Sync,
    ) -> Vec<Vec<T>> {
        let inner = self.inner.borrow();
        let plans = &inner.plans;
        match plans {
            PlanStore::Dense(rows) => {
                par_map_matrix(&self.pool, rows.len(), inner.views.len(), |i, k| {
                    f(i, k, &rows[i][k])
                })
            }
            PlanStore::Sparse { rows, .. } => self.pool.par_map(rows.len(), |i| {
                let row = plans.row_dense(i);
                row.iter().enumerate().map(|(k, p)| f(i, k, p)).collect()
            }),
        }
    }

    /// Applies `f` to every **candidate** `(order, vehicle)` plan of the
    /// current snapshot, returning one row per epoch order of
    /// `(vehicle_index, f(..))` pairs in ascending vehicle order.
    ///
    /// On a flat (unsharded) batch every vehicle is a candidate, so this is
    /// [`DecisionBatch::map_plans`] in sparse clothing. Under sharding only
    /// the cells the sweep actually evaluated appear — every absent cell is
    /// provably infeasible (`best: None`), so argmin-style policies lose
    /// nothing by never looking at it. This is the scoring primitive that
    /// keeps batch-native policies `O(work)` instead of `O(B x K)` at
    /// megacity scale.
    ///
    /// The rows reflect the snapshot at call time; after committing an
    /// acceptance through [`DecisionBatch::resolve`], the accepting
    /// vehicle's plans change for the still-undecided orders (and a
    /// previously-pruned cell may even become feasible once the vehicle
    /// starts moving) — re-read that column via
    /// [`DecisionBatch::with_plan`], exactly as the greedy baselines do.
    pub fn map_candidate_plans<T: Send>(
        &self,
        f: impl Fn(usize, usize, &PlannerOutput) -> T + Sync,
    ) -> Vec<Vec<(u32, T)>> {
        let inner = self.inner.borrow();
        match &inner.plans {
            PlanStore::Dense(rows) => self.pool.par_map(rows.len(), |i| {
                rows[i]
                    .iter()
                    .enumerate()
                    .map(|(k, p)| (k as u32, f(i, k, p)))
                    .collect()
            }),
            PlanStore::Sparse { rows, .. } => rows
                .iter()
                .enumerate()
                .map(|(i, row)| {
                    row.iter()
                        .map(|(k, p)| (*k, f(i, *k as usize, p)))
                        .collect()
                })
                .collect(),
        }
    }

    /// Runs `f` with the current plan of the single cell `(i, k)` — the
    /// point read batch-native policies use to refresh an accepting
    /// vehicle's column without materialising whole rows.
    ///
    /// # Panics
    /// Panics if `i >= len()` or `k` is out of range, or when called while
    /// the snapshot is mutably borrowed (inside [`DecisionBatch::resolve`]).
    pub fn with_plan<R>(&self, i: usize, k: VehicleId, f: impl FnOnce(&PlannerOutput) -> R) -> R {
        let inner = self.inner.borrow();
        f(inner.plans.cell(i, k.index()))
    }

    /// Runs `f` over every order's [`DispatchContext`] — all built from the
    /// batch's **current** shared snapshot — across the thread pool, and
    /// returns the results in batch order.
    ///
    /// Equivalent to calling [`DecisionBatch::with_context`] for each `i`
    /// before any decision commits (the precompute step of batch-native
    /// policies). Like `with_context`, the snapshot is borrowed for the
    /// duration, so `f` must not touch `resolve`.
    pub fn map_contexts<T: Send>(
        &self,
        f: impl Fn(usize, &DispatchContext<'_>) -> T + Sync,
    ) -> Vec<T> {
        let inner = self.inner.borrow();
        let views = &inner.views;
        let plans = &inner.plans;
        let (now, interval) = (self.now, self.interval);
        let (net, fleet, orders) = (self.net, self.fleet, self.orders);
        let epoch = &self.epoch_orders;
        self.pool.par_map(epoch.len(), |i| {
            let row = plans.row_dense(i);
            let ctx = DispatchContext {
                order: &orders[epoch[i].index()],
                now,
                interval,
                views,
                plans: &row,
                net,
                fleet,
                orders,
            };
            f(i, &ctx)
        })
    }

    /// Tears the batch down into its per-order commit records and scratch
    /// vehicle states (the simulator's fast commit path).
    pub(crate) fn into_parts(self) -> (Vec<Option<CommitRecord>>, Vec<VehicleState>) {
        let inner = self.inner.into_inner();
        (inner.commits, inner.states)
    }

    /// Number of orders in the batch.
    #[inline]
    pub fn len(&self) -> usize {
        self.epoch_orders.len()
    }

    /// Whether the batch is empty (never produced by the simulator).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.epoch_orders.is_empty()
    }

    /// The shared decision time of every order in the batch.
    #[inline]
    pub fn now(&self) -> TimePoint {
        self.now
    }

    /// Index of the epoch's time interval on the instance grid.
    #[inline]
    pub fn interval(&self) -> usize {
        self.interval
    }

    /// Number of vehicles in the shared snapshot.
    pub fn num_vehicles(&self) -> usize {
        self.inner.borrow().views.len()
    }

    /// Whether vehicle `k` is available to this epoch. Vehicles masked out
    /// (broken down mid-episode) keep their dense snapshot slot but every
    /// plan of theirs is `best: None`, so policies cannot choose them.
    ///
    /// # Panics
    /// Panics if `k` is out of range.
    pub fn vehicle_active(&self, k: VehicleId) -> bool {
        assert!(k.index() < self.num_vehicles(), "vehicle out of range");
        self.active.as_ref().is_none_or(|a| a[k.index()])
    }

    /// Number of geographic shards the epoch was scored with (1 when
    /// sharding is off).
    pub fn num_shards(&self) -> usize {
        self.shards.as_ref().map_or(1, |ctx| ctx.map.num_shards())
    }

    /// Work accounting of the sharded sweep so far: the initial `B x K`
    /// matrix plus every commit delta already applied. All counters are
    /// zero when the batch runs unsharded. The counters describe *work*
    /// saved by the partition — decisions are bit-identical regardless.
    pub fn shard_stats(&self) -> ShardStats {
        self.inner.borrow().stats
    }

    /// The shard owning the `i`-th order (its pickup node's region), or 0
    /// when sharding is off.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    pub fn shard_of_order(&self, i: usize) -> usize {
        self.shards
            .as_ref()
            .map_or(0, |ctx| ctx.map.shard_of(self.order(i).pickup))
    }

    /// The shard a vehicle currently belongs to (its anchor node's region,
    /// which moves as commits advance the vehicle), or 0 when sharding is
    /// off.
    ///
    /// # Panics
    /// Panics if `k` is out of range.
    pub fn shard_of_vehicle(&self, k: VehicleId) -> usize {
        self.shards.as_ref().map_or(0, |ctx| {
            ctx.map
                .shard_of(self.inner.borrow().views[k.index()].anchor_node)
        })
    }

    /// Ids of the orders flushed at this epoch, in creation order.
    #[inline]
    pub fn order_ids(&self) -> &[OrderId] {
        &self.epoch_orders
    }

    /// The `i`-th order of the batch.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    pub fn order(&self, i: usize) -> &Order {
        &self.orders[self.epoch_orders[i].index()]
    }

    /// Whether any vehicle can currently take the `i`-th order.
    pub fn any_feasible(&self, i: usize) -> bool {
        self.inner.borrow().plans.row_feasible(i)
    }

    /// Runs `f` with the `i`-th order's [`DispatchContext`], built from the
    /// batch's *current* (delta-updated) snapshot. This is the joint state
    /// `S^i_t` a legacy per-order policy would have seen at this point of
    /// the sequential commit order.
    ///
    /// # Panics
    /// Panics if `i >= len()`. The batch's shared snapshot is borrowed for
    /// the duration of `f`, so calling [`DecisionBatch::resolve`] (or any
    /// other batch method) from *inside* `f` panics with a `RefCell`
    /// borrow error — read the context, return the choice, and resolve
    /// outside the closure.
    pub fn with_context<R>(&self, i: usize, f: impl FnOnce(&DispatchContext<'_>) -> R) -> R {
        let inner = self.inner.borrow();
        let row = inner.plans.row_dense(i);
        let ctx = DispatchContext {
            order: self.order(i),
            now: self.now,
            interval: self.interval,
            views: &inner.views,
            plans: &row,
            net: self.net,
            fleet: self.fleet,
            orders: self.orders,
        };
        f(&ctx)
    }

    /// Commits the policy's choice for the `i`-th order and returns the
    /// resulting [`Decision`].
    ///
    /// An accepted choice updates the shared snapshot the way the simulator
    /// will: the chosen vehicle adopts the best temporary route, advances
    /// through any legs departing at the epoch instant, and its plans for
    /// the still-undecided orders of the batch are recomputed. A `None`
    /// choice or an infeasible vehicle yields a rejection with the matching
    /// [`DecisionReason`].
    ///
    /// # Panics
    /// Panics if `i >= len()` or the order was already resolved. Must not
    /// be called from inside a [`DecisionBatch::with_context`] closure
    /// (the shared snapshot is still borrowed there).
    pub fn resolve(&self, i: usize, choice: Option<VehicleId>) -> Decision {
        let mut inner = self.inner.borrow_mut();
        assert!(
            !inner.decided[i],
            "order {} resolved twice in one batch",
            self.epoch_orders[i]
        );
        inner.decided[i] = true;
        let oid = self.epoch_orders[i];
        let (decision, assignment) = Self::commit(&mut inner, self, i, oid, choice);
        inner.commits[i] = Some(CommitRecord {
            decision,
            assignment,
        });
        decision
    }

    /// The body of [`DecisionBatch::resolve`]: classifies the choice and,
    /// for an acceptance, applies it to the scratch snapshot.
    fn commit(
        inner: &mut BatchInner,
        batch: &DecisionBatch<'_>,
        i: usize,
        oid: OrderId,
        choice: Option<VehicleId>,
    ) -> (Decision, Option<CommitAssignment>) {
        let Some(k) = choice else {
            let reason = if inner.plans.row_feasible(i) {
                DecisionReason::PolicyRejected
            } else {
                DecisionReason::NoFeasibleVehicle
            };
            return (Decision::rejected(oid, reason), None);
        };
        let BatchInner {
            states,
            views,
            plans,
            decided,
            stats,
            ..
        } = inner;
        let plan = plans.cell(i, k.index()).clone();
        let Some(best) = plan.best.as_ref() else {
            return (
                Decision::rejected(oid, DecisionReason::InfeasibleChoice),
                None,
            );
        };
        // Mirror the simulator's commit: accept the route, then advance
        // through legs that depart at the epoch instant, so later orders in
        // the batch see the post-commit anchor (no-interference rule).
        let state = &mut states[k.index()];
        let pre_view = state.view.clone();
        let vehicle_was_used = state.used();
        state.accept(best.candidate.route.clone());
        state.advance_to(batch.now, batch.net, batch.fleet, batch.orders);
        views[k.index()] = state.view.clone();
        // The plan delta: only the accepting vehicle's column changes, and
        // only for the still-undecided orders — replanned in parallel, each
        // result landing back in its own row, all sharing one fresh
        // schedule cache for the vehicle's new route. Under sharding the
        // column gets the same exact prune as the initial sweep (foreign
        // orders the bound rules out skip the sweep; no m-nearest
        // escalation here — a single column has no ranking to run), which
        // is bit-identical to replanning every cell.
        let planner = RoutePlanner::with_mode(batch.net, batch.fleet, batch.orders, batch.mode);
        let undecided: Vec<usize> = (0..decided.len()).filter(|&j| !decided[j]).collect();
        let view = &views[k.index()];
        // The reference mode never reads a cache; don't build one.
        let cache = (batch.mode != PlannerMode::Naive).then(|| planner.cache(view));
        let cache_ref = cache.as_ref();
        let orders = batch.orders;
        let epoch = &batch.epoch_orders;
        let js = &undecided;
        let shard_ctx = batch.shards.as_ref().filter(|c| c.map.num_shards() > 1);
        let vehicle_shard = shard_ctx.map(|c| c.map.shard_of(view.anchor_node));
        // Columns are usually short next to the pool's wake/join latency;
        // replan them inline below this size (the values are identical
        // either way — `par_map` already matches the serial order).
        const PAR_COLUMN_MIN: usize = 256;
        let replan = |u: usize| {
            let order = &orders[epoch[js[u]].index()];
            let foreign = match (shard_ctx, vehicle_shard) {
                (Some(ctx), Some(vs)) => ctx.map.shard_of(order.pickup) != vs,
                _ => false,
            };
            if foreign && planner.provably_infeasible(view, order) {
                (planner.pruned_output(cache_ref, view), true, foreign)
            } else {
                let plan = match cache_ref {
                    Some(cache) => planner.plan_cached(cache, view, order),
                    None => planner.plan(view, order),
                };
                (plan, false, foreign)
            }
        };
        let fresh = if undecided.len() < PAR_COLUMN_MIN {
            (0..undecided.len()).map(replan).collect()
        } else {
            batch.pool.par_map(undecided.len(), replan)
        };
        if shard_ctx.is_some() {
            stats.cells += fresh.len();
        }
        for (&j, (plan, pruned, foreign)) in undecided.iter().zip(fresh) {
            if shard_ctx.is_some() {
                if pruned {
                    stats.pruned += 1;
                } else {
                    stats.evaluated += 1;
                    if foreign {
                        stats.escalated += 1;
                    }
                }
            }
            plans.set(j, k.index(), plan);
        }
        (
            Decision::assigned(oid, k),
            Some(CommitAssignment {
                pre_view,
                plan,
                vehicle_was_used,
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpdp_net::{FleetConfig, Instance, IntervalGrid, Node, NodeId, Point, TimeDelta};

    fn instance() -> Instance {
        let nodes = vec![
            Node::depot(NodeId(0), Point::new(0.0, 0.0)),
            Node::factory(NodeId(1), Point::new(10.0, 0.0)),
            Node::factory(NodeId(2), Point::new(20.0, 0.0)),
        ];
        let net = RoadNetwork::euclidean(nodes, 1.0).unwrap();
        let fleet =
            FleetConfig::homogeneous(2, &[NodeId(0)], 10.0, 500.0, 2.0, 60.0, TimeDelta::ZERO)
                .unwrap();
        let orders = vec![
            Order::new(
                OrderId(0),
                NodeId(1),
                NodeId(2),
                9.0,
                TimePoint::from_hours(8.0),
                // Tight deadline: no time to serve both orders back to
                // back, and 9 + 9 exceeds the capacity of 10, so a vehicle
                // that commits to one order cannot take the other.
                TimePoint::from_hours(8.34),
            )
            .unwrap(),
            Order::new(
                OrderId(1),
                NodeId(1),
                NodeId(2),
                9.0,
                TimePoint::from_hours(8.0),
                TimePoint::from_hours(8.34),
            )
            .unwrap(),
        ];
        Instance::new(net, fleet, IntervalGrid::paper_default(), orders).unwrap()
    }

    fn batch(inst: &Instance) -> DecisionBatch<'_> {
        batch_with(inst, &mut EpochScratch::default())
    }

    fn batch_with<'a>(inst: &'a Instance, scratch: &mut EpochScratch) -> DecisionBatch<'a> {
        let states: Vec<VehicleState> = inst.fleet.vehicles.iter().map(VehicleState::new).collect();
        let mut states = states;
        for s in &mut states {
            s.advance_to(
                TimePoint::from_hours(8.0),
                &inst.network,
                &inst.fleet,
                inst.orders(),
            );
        }
        DecisionBatch::new(
            TimePoint::from_hours(8.0),
            inst.grid.interval_of(TimePoint::from_hours(8.0)),
            &inst.network,
            &inst.fleet,
            inst.orders(),
            vec![OrderId(0), OrderId(1)],
            states,
            Arc::new(ThreadPool::serial()),
            PlannerMode::default(),
            None,
            None,
            scratch,
        )
    }

    /// Reusing one `EpochScratch` across batch builds must be invisible:
    /// a scratch dirtied by a previous epoch yields the same plan matrix,
    /// bit for bit, as a freshly allocated one.
    #[test]
    fn dirty_epoch_scratch_is_bit_identical_to_fresh() {
        let inst = instance();
        let snapshot = |b: &DecisionBatch<'_>| {
            b.map_plans(|_, _, p| {
                (
                    p.current_length.to_bits(),
                    p.best.as_ref().map(|best| {
                        (
                            best.candidate.pickup_pos,
                            best.candidate.delivery_pos,
                            best.length().to_bits(),
                        )
                    }),
                )
            })
        };
        let fresh = snapshot(&batch(&inst));
        let mut scratch = EpochScratch::default();
        let first = snapshot(&batch_with(&inst, &mut scratch));
        let second = snapshot(&batch_with(&inst, &mut scratch));
        assert_eq!(fresh, first);
        assert_eq!(fresh, second);
    }

    #[test]
    fn resolve_updates_plan_deltas_for_later_orders() {
        let inst = instance();
        let b = batch(&inst);
        assert_eq!(b.len(), 2);
        assert!(b.any_feasible(0) && b.any_feasible(1));
        // Before any commit both orders see an idle vehicle 0.
        let d0_before = b.with_context(1, |ctx| ctx.plans[0].incremental_length().unwrap());
        let d = b.resolve(0, Some(VehicleId(0)));
        assert_eq!(d, Decision::assigned(OrderId(0), VehicleId(0)));
        // Vehicle 0 is now loaded with 9 of 10 capacity: order 1 (quantity
        // 9) no longer fits on it, so its plan flipped infeasible.
        let feasible_now = b.with_context(1, |ctx| ctx.plans[0].feasible());
        assert!(!feasible_now, "capacity should exclude vehicle 0");
        assert!(d0_before.is_finite());
        // Vehicle 1 remains available.
        let d2 = b.resolve(1, Some(VehicleId(1)));
        assert_eq!(d2.reason, DecisionReason::Assigned);
    }

    #[test]
    fn resolve_classifies_rejections() {
        let inst = instance();
        let b = batch(&inst);
        // Policy declined although feasible vehicles exist.
        assert_eq!(b.resolve(0, None).reason, DecisionReason::PolicyRejected);
        // Choosing an infeasible vehicle: make vehicle 0 full first.
        let b2 = batch(&inst);
        b2.resolve(0, Some(VehicleId(0)));
        let d = b2.with_context(1, |ctx| ctx.plans[0].feasible());
        assert!(!d);
        assert_eq!(
            b2.resolve(1, Some(VehicleId(0))).reason,
            DecisionReason::InfeasibleChoice
        );
    }

    #[test]
    #[should_panic(expected = "resolved twice")]
    fn double_resolve_panics() {
        let inst = instance();
        let b = batch(&inst);
        b.resolve(0, None);
        b.resolve(0, None);
    }
}
