//! The dispatcher abstraction: who serves the next order?

use dpdp_net::{FleetConfig, Instance, Order, RoadNetwork, TimePoint, VehicleId};
use dpdp_routing::{PlannerOutput, VehicleView};

/// Everything a dispatching policy may look at when assigning one order.
///
/// This is the joint state `S^i_t` of the paper's MDP in raw form: one
/// [`VehicleView`] and one [`PlannerOutput`] (Algorithm 2 result) per
/// vehicle, plus the decision time and its interval index.
#[derive(Debug)]
pub struct DispatchContext<'a> {
    /// The order being assigned.
    pub order: &'a Order,
    /// Wall-clock decision time (order creation, or the buffer flush time).
    pub now: TimePoint,
    /// Index of the current time interval `t` on the instance grid.
    pub interval: usize,
    /// Per-vehicle snapshots, dense by vehicle id.
    pub views: &'a [VehicleView],
    /// Per-vehicle Algorithm 2 outputs, dense by vehicle id.
    pub plans: &'a [PlannerOutput],
    /// The road network.
    pub net: &'a RoadNetwork,
    /// The fleet configuration.
    pub fleet: &'a FleetConfig,
    /// Dense order table for the whole instance.
    pub orders: &'a [Order],
}

impl<'a> DispatchContext<'a> {
    /// Ids of vehicles that can feasibly take the order.
    pub fn feasible_vehicles(&self) -> impl Iterator<Item = VehicleId> + '_ {
        self.plans
            .iter()
            .enumerate()
            .filter(|(_, p)| p.feasible())
            .map(|(k, _)| VehicleId::from_index(k))
    }

    /// Whether any vehicle can take the order.
    pub fn any_feasible(&self) -> bool {
        self.plans.iter().any(|p| p.feasible())
    }
}

/// A dispatching policy: picks the vehicle that serves each incoming order.
///
/// Returning `None`, or a vehicle whose plan is infeasible, rejects the
/// order (the simulator records it as unserved).
pub trait Dispatcher {
    /// Chooses a vehicle for the order in `ctx`.
    fn dispatch(&mut self, ctx: &DispatchContext<'_>) -> Option<VehicleId>;

    /// Called once when an episode starts, with the instance being run.
    fn begin_episode(&mut self, _instance: &Instance) {}

    /// Called once when the episode ends.
    fn end_episode(&mut self) {}

    /// A short human-readable name for reports.
    fn name(&self) -> &str {
        "dispatcher"
    }
}

/// A trivial dispatcher for tests and smoke runs: picks the first feasible
/// vehicle in id order.
#[derive(Debug, Default, Clone)]
pub struct FirstFeasible;

impl Dispatcher for FirstFeasible {
    fn dispatch(&mut self, ctx: &DispatchContext<'_>) -> Option<VehicleId> {
        ctx.feasible_vehicles().next()
    }

    fn name(&self) -> &str {
        "first-feasible"
    }
}
