//! The dispatcher abstraction: who serves each order of a decision epoch?

use crate::batch::{Decision, DecisionBatch};
use dpdp_net::{FleetConfig, Instance, Order, RoadNetwork, TimePoint, VehicleId};
use dpdp_routing::{PlannerOutput, VehicleView};

/// Everything a dispatching policy may look at when assigning one order.
///
/// This is the joint state `S^i_t` of the paper's MDP in raw form: one
/// [`VehicleView`] and one [`PlannerOutput`] (Algorithm 2 result) per
/// vehicle, plus the decision time and its interval index.
#[derive(Debug)]
pub struct DispatchContext<'a> {
    /// The order being assigned.
    pub order: &'a Order,
    /// Wall-clock decision time (order creation, or the buffer flush time).
    pub now: TimePoint,
    /// Index of the current time interval `t` on the instance grid.
    pub interval: usize,
    /// Per-vehicle snapshots, dense by vehicle id.
    pub views: &'a [VehicleView],
    /// Per-vehicle Algorithm 2 outputs, dense by vehicle id.
    pub plans: &'a [PlannerOutput],
    /// The road network.
    pub net: &'a RoadNetwork,
    /// The fleet configuration.
    pub fleet: &'a FleetConfig,
    /// Dense order table for the whole instance.
    pub orders: &'a [Order],
}

impl<'a> DispatchContext<'a> {
    /// Ids of vehicles that can feasibly take the order.
    pub fn feasible_vehicles(&self) -> impl Iterator<Item = VehicleId> + '_ {
        self.plans
            .iter()
            .enumerate()
            .filter(|(_, p)| p.feasible())
            .map(|(k, _)| VehicleId::from_index(k))
    }

    /// Whether any vehicle can take the order.
    pub fn any_feasible(&self) -> bool {
        self.plans.iter().any(|p| p.feasible())
    }
}

/// A dispatching policy: picks the vehicle that serves each incoming order.
///
/// The simulator drives policies exclusively through
/// [`dispatch_batch`](Dispatcher::dispatch_batch): one call per decision
/// epoch, covering every order flushed at that epoch. Policies come in two
/// flavours:
///
/// * **Per-order policies** implement only [`dispatch`](Dispatcher::dispatch)
///   and inherit the default `dispatch_batch`, which walks the batch in
///   creation order, shows each order the delta-updated joint state, and
///   commits through [`DecisionBatch::resolve`] — bit-for-bit the legacy
///   one-order-at-a-time semantics.
/// * **Batch-native policies** override `dispatch_batch` to exploit the
///   shared epoch snapshot (e.g. scoring every order's Q-values in one
///   network forward pass, as `dpdp-rl`'s agents do).
///
/// Returning `None` from `dispatch`, or a vehicle whose plan is infeasible,
/// rejects the order (the simulator records it as unserved).
pub trait Dispatcher {
    /// Chooses a vehicle for the order in `ctx`.
    fn dispatch(&mut self, ctx: &DispatchContext<'_>) -> Option<VehicleId>;

    /// Decides every order of one epoch, returning one [`Decision`] per
    /// batch order **in batch order**.
    ///
    /// The default implementation adapts a per-order policy: for each order
    /// it builds the current [`DispatchContext`] (reflecting all decisions
    /// committed so far in this batch) and funnels the choice through
    /// [`DecisionBatch::resolve`].
    fn dispatch_batch(&mut self, batch: &DecisionBatch<'_>) -> Vec<Decision> {
        (0..batch.len())
            .map(|i| {
                let choice = batch.with_context(i, |ctx| self.dispatch(ctx));
                batch.resolve(i, choice)
            })
            .collect()
    }

    /// Called once when an episode starts, with the instance being run.
    fn begin_episode(&mut self, _instance: &Instance) {}

    /// Called once when the episode ends.
    fn end_episode(&mut self) {}

    /// A short human-readable name for reports.
    fn name(&self) -> &str {
        "dispatcher"
    }
}

/// Forces a policy through the default per-order adapter even when it has a
/// native `dispatch_batch`, by hiding the override behind delegation.
///
/// Useful to A/B a batch-native implementation against the sequential
/// reference — the batch/serial parity tests run every policy both ways and
/// assert identical [`EpisodeResult`](crate::metrics::EpisodeResult)s.
#[derive(Debug, Default, Clone)]
pub struct PerOrder<D>(pub D);

impl<D: Dispatcher> Dispatcher for PerOrder<D> {
    fn dispatch(&mut self, ctx: &DispatchContext<'_>) -> Option<VehicleId> {
        self.0.dispatch(ctx)
    }

    // No dispatch_batch override: the trait default (sequential adapter)
    // applies, regardless of D's own override.

    fn begin_episode(&mut self, instance: &Instance) {
        self.0.begin_episode(instance);
    }

    fn end_episode(&mut self) {
        self.0.end_episode();
    }

    fn name(&self) -> &str {
        self.0.name()
    }
}

/// A trivial dispatcher for tests and smoke runs: picks the first feasible
/// vehicle in id order.
#[derive(Debug, Default, Clone)]
pub struct FirstFeasible;

impl Dispatcher for FirstFeasible {
    fn dispatch(&mut self, ctx: &DispatchContext<'_>) -> Option<VehicleId> {
        ctx.feasible_vehicles().next()
    }

    fn name(&self) -> &str {
        "first-feasible"
    }
}
