//! The event taxonomy and pluggable event sources of the simulation core.
//!
//! The engine (see [`Simulator::run_events`]) consumes one deterministic,
//! time-ordered stream of [`SimEvent`]s merged from any number of
//! [`EventSource`]s. Three sources ship with the crate:
//!
//! * [`ReplaySource`] — wraps an instance's order table as a stream of
//!   [`SimEvent::OrderArrival`]s, reproducing the classic replay loop
//!   **bit-identically** (asserted by `tests/event_parity.rs`);
//! * [`StreamSource`] — a channel-backed push source: another thread feeds
//!   [`StreamCommand`]s into a live episode (`Simulator::serve`), turning
//!   the simulator into a serving loop;
//! * [`DisruptionSource`] — seeded stochastic cancellations and vehicle
//!   breakdowns/recoveries sampled from a [`DisruptionConfig`], consuming
//!   the simulator seed through dedicated RNG streams so every legacy draw
//!   (dataset generation, exploration) is untouched.
//!
//! # Determinism
//!
//! Sources must yield events in nondecreasing time order (the engine clamps
//! stragglers up to the current simulation clock). When several events
//! share one instant, the merge breaks ties by a fixed event-class rank —
//! arrivals, then cancellations, then breakdowns, then recoveries, then
//! flush heartbeats — and then by source position, so the merged stream is
//! a pure function of the sources' contents: same sources, same episode.
//!
//! [`Simulator::run_events`]: crate::simulator::Simulator::run_events

use dpdp_net::{Instance, Order, OrderId, TimeDelta, TimePoint, VehicleId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::mpsc::Receiver;

/// One simulation event.
#[derive(Debug, Clone, PartialEq)]
pub enum SimEvent {
    /// An order enters the system. Replayed orders keep their instance-
    /// table ids (the engine pre-seeds its table, so stream arrivals can
    /// interleave in time without shifting them); new orders are appended
    /// with the next dense id after the instance table. The order is
    /// buffered until its decision epoch flushes.
    OrderArrival(Order),
    /// An order is cancelled. Before dispatch the order is dropped from
    /// the buffer; after assignment (pickup still undriven) the serving
    /// vehicle's route is shortened by surgery and the assignment revoked;
    /// after pickup the event is too late and ignored.
    OrderCancelled(OrderId),
    /// A vehicle breaks down at its current position: undriven pickups are
    /// stranded back into the dispatch queue, onboard cargo is lost, and
    /// the vehicle is masked out of dispatch.
    VehicleBreakdown(VehicleId),
    /// A broken vehicle returns to service at its current anchor.
    VehicleRecovered(VehicleId),
    /// A pure time heartbeat: carries no state change, but its timestamp
    /// tells the engine that no earlier event can arrive any more, which
    /// releases any decision epoch due at or before it. Push sources use
    /// it to flush buffered orders without sending another order.
    EpochFlush,
}

impl SimEvent {
    /// Tie-break rank for events sharing one instant (lower fires first).
    pub(crate) fn rank(&self) -> u8 {
        match self {
            SimEvent::OrderArrival(_) => 0,
            SimEvent::OrderCancelled(_) => 1,
            SimEvent::VehicleBreakdown(_) => 2,
            SimEvent::VehicleRecovered(_) => 3,
            SimEvent::EpochFlush => 4,
        }
    }
}

/// A [`SimEvent`] stamped with its simulation time.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedEvent {
    /// When the event happens.
    pub time: TimePoint,
    /// The event.
    pub event: SimEvent,
}

/// A pluggable producer of simulation events.
///
/// The contract: [`EventSource::next_event`] yields events in
/// nondecreasing time order and returns `None` once the source is
/// exhausted. A call may block — that is how a channel-backed source
/// works: the episode's virtual clock cannot pass an instant until every
/// source has revealed its next event, so a [`StreamSource`] holds the
/// engine until its producer pushes another command or hangs up.
pub trait EventSource {
    /// The next event, or `None` when the source is exhausted.
    fn next_event(&mut self) -> Option<TimedEvent>;

    /// A short human-readable name for diagnostics.
    fn name(&self) -> &str {
        "event-source"
    }
}

/// Replays a fixed order table as a stream of arrivals — the classic
/// simulator input. Feeding the engine from a `ReplaySource` alone is
/// bit-identical to the pre-event scan loop for every scenario, policy,
/// shard count and thread count (`tests/event_parity.rs`).
#[derive(Debug, Clone)]
pub struct ReplaySource<'a> {
    orders: &'a [Order],
    next: usize,
}

impl<'a> ReplaySource<'a> {
    /// Replays `instance`'s order table (sorted by creation time).
    pub fn new(instance: &'a Instance) -> Self {
        ReplaySource {
            orders: instance.orders(),
            next: 0,
        }
    }

    /// Replays an explicit creation-sorted order slice.
    pub fn from_orders(orders: &'a [Order]) -> Self {
        ReplaySource { orders, next: 0 }
    }
}

impl EventSource for ReplaySource<'_> {
    fn next_event(&mut self) -> Option<TimedEvent> {
        let order = self.orders.get(self.next)?.clone();
        self.next += 1;
        Some(TimedEvent {
            time: order.created,
            event: SimEvent::OrderArrival(order),
        })
    }

    fn name(&self) -> &str {
        "replay"
    }
}

/// What a producer thread can push into a live episode (see
/// [`Simulator::serve`](crate::simulator::Simulator::serve)).
#[derive(Debug, Clone, PartialEq)]
pub enum StreamCommand {
    /// A new order; its event time is its creation time. The engine
    /// assigns ids sequentially after the replayed table (the first pushed
    /// order of a `serve` run gets id `instance.num_orders()`), so a
    /// producer can predict the id a later [`StreamCommand::Cancel`] needs.
    Order(Order),
    /// Cancel an order at `at`.
    Cancel {
        /// The order to cancel (engine-assigned id).
        order: OrderId,
        /// When the cancellation lands.
        at: TimePoint,
    },
    /// Break a vehicle down at `at`.
    Breakdown {
        /// The vehicle.
        vehicle: VehicleId,
        /// When it breaks.
        at: TimePoint,
    },
    /// Recover a broken vehicle at `at`.
    Recover {
        /// The vehicle.
        vehicle: VehicleId,
        /// When it recovers.
        at: TimePoint,
    },
    /// A time heartbeat: releases every epoch due at or before `at`
    /// without pushing an order (see [`SimEvent::EpochFlush`]).
    Flush {
        /// The heartbeat instant.
        at: TimePoint,
    },
}

impl StreamCommand {
    fn into_timed(self) -> TimedEvent {
        match self {
            StreamCommand::Order(order) => TimedEvent {
                time: order.created,
                event: SimEvent::OrderArrival(order),
            },
            StreamCommand::Cancel { order, at } => TimedEvent {
                time: at,
                event: SimEvent::OrderCancelled(order),
            },
            StreamCommand::Breakdown { vehicle, at } => TimedEvent {
                time: at,
                event: SimEvent::VehicleBreakdown(vehicle),
            },
            StreamCommand::Recover { vehicle, at } => TimedEvent {
                time: at,
                event: SimEvent::VehicleRecovered(vehicle),
            },
            StreamCommand::Flush { at } => TimedEvent {
                time: at,
                event: SimEvent::EpochFlush,
            },
        }
    }
}

/// A channel-backed push source: the receiving half of an
/// [`std::sync::mpsc::channel`] whose sending half lives on the producer
/// thread(s). The source blocks the engine between commands — simulation
/// time only advances as far as the producer has spoken — and is exhausted
/// when every sender hangs up, which releases the episode's final epochs.
///
/// Hang-up is the *only* end-of-stream signal, and it is always clean: a
/// sender dropped mid-episode (producer crash, connection reset) simply
/// exhausts the source, and the engine finishes the episode with final
/// metrics — the EOF contract documented on
/// [`Simulator::serve`](crate::simulator::Simulator::serve).
#[derive(Debug)]
pub struct StreamSource {
    rx: Receiver<StreamCommand>,
}

impl StreamSource {
    /// Wraps a command receiver.
    pub fn new(rx: Receiver<StreamCommand>) -> Self {
        StreamSource { rx }
    }
}

impl EventSource for StreamSource {
    fn next_event(&mut self) -> Option<TimedEvent> {
        self.rx.recv().ok().map(StreamCommand::into_timed)
    }

    fn name(&self) -> &str {
        "stream"
    }
}

/// Stochastic disruption knobs for [`DisruptionSource`], validated by
/// [`SimulatorBuilder::disruptions`].
///
/// All sampling is driven by dedicated RNG streams derived from the
/// simulator seed, so enabling disruptions perturbs **no** legacy draw
/// (dataset generation, policy exploration): the same seed without a
/// disruption config replays exactly the legacy episode. Each knob also
/// has its own stream — changing the cancellation probability never
/// reshuffles the breakdown timeline, and vice versa.
///
/// [`SimulatorBuilder::disruptions`]: crate::simulator::SimulatorBuilder::disruptions
#[derive(Debug, Clone, PartialEq)]
pub struct DisruptionConfig {
    /// Probability that a replayed order is cancelled (per order, iid).
    pub cancellation_prob: f64,
    /// Cancellations land uniformly within `[created, created + delay]`:
    /// under buffered dispatch, delays longer than the buffering period
    /// exercise post-assignment route surgery, shorter ones the
    /// before-dispatch path.
    pub cancellation_delay: TimeDelta,
    /// Probability that a vehicle breaks down during the episode (per
    /// vehicle, iid).
    pub breakdown_prob: f64,
    /// Breakdown instants are sampled uniformly within this window.
    pub breakdown_window: (TimePoint, TimePoint),
    /// Recovery delay range after a breakdown (`None` = the vehicle never
    /// recovers this episode).
    pub recovery_delay: Option<(TimeDelta, TimeDelta)>,
}

impl Default for DisruptionConfig {
    /// A vacuous config: nothing is ever cancelled or broken.
    fn default() -> Self {
        DisruptionConfig {
            cancellation_prob: 0.0,
            cancellation_delay: TimeDelta::ZERO,
            breakdown_prob: 0.0,
            breakdown_window: (TimePoint::ZERO, TimePoint::ZERO),
            recovery_delay: None,
        }
    }
}

impl DisruptionConfig {
    /// Whether the config can never produce an event.
    pub fn is_vacuous(&self) -> bool {
        self.cancellation_prob <= 0.0 && self.breakdown_prob <= 0.0
    }

    /// Validates the knobs (probabilities in `[0, 1]`, non-negative
    /// delays, an ordered breakdown window, an ordered recovery range).
    pub(crate) fn validate(&self) -> Result<(), String> {
        for (name, p) in [
            ("cancellation_prob", self.cancellation_prob),
            ("breakdown_prob", self.breakdown_prob),
        ] {
            if !(p.is_finite() && (0.0..=1.0).contains(&p)) {
                return Err(format!("{name} must be in [0, 1], got {p}"));
            }
        }
        if !self.cancellation_delay.is_non_negative() {
            return Err(format!(
                "cancellation_delay must be non-negative, got {} s",
                self.cancellation_delay.seconds()
            ));
        }
        let (w0, w1) = self.breakdown_window;
        if w1.seconds() < w0.seconds() {
            return Err(format!(
                "breakdown_window must be ordered, got [{}, {}]",
                w0, w1
            ));
        }
        if let Some((lo, hi)) = self.recovery_delay {
            if !lo.is_non_negative() || hi.seconds() < lo.seconds() {
                return Err(format!(
                    "recovery_delay must be an ordered non-negative range, got [{}, {}] s",
                    lo.seconds(),
                    hi.seconds()
                ));
            }
        }
        Ok(())
    }
}

/// Salt of the cancellation RNG stream (`seed ^ CANCEL_STREAM`).
const CANCEL_STREAM: u64 = 0x4341_4E43_454C_5F44;
/// Salt of the breakdown RNG stream (`seed ^ BREAK_STREAM`).
const BREAK_STREAM: u64 = 0x4252_4541_4B5F_4450;

/// Seeded stochastic disruption injector: samples an episode's
/// cancellation and breakdown/recovery events up front from an instance
/// and a [`DisruptionConfig`], then replays them as a sorted source.
///
/// Sampling draws the same number of RNG values for every order/vehicle
/// whether or not the event fires, so one entity's timeline never shifts
/// another's; the whole event list is a pure function of `(instance
/// shape, config, seed)`.
#[derive(Debug)]
pub struct DisruptionSource {
    events: std::vec::IntoIter<TimedEvent>,
}

impl DisruptionSource {
    /// Samples the disruption events for one episode.
    pub fn new(instance: &Instance, config: &DisruptionConfig, seed: u64) -> Self {
        let mut events: Vec<TimedEvent> = Vec::new();
        if config.cancellation_prob > 0.0 {
            let mut rng = StdRng::seed_from_u64(seed ^ CANCEL_STREAM);
            let delay = config.cancellation_delay.seconds().max(0.0);
            for order in instance.orders() {
                let u = rng.random_range(0.0..1.0);
                let d = rng.random_range(0.0..=delay);
                if u < config.cancellation_prob {
                    events.push(TimedEvent {
                        time: order.created + TimeDelta::from_seconds(d),
                        event: SimEvent::OrderCancelled(order.id),
                    });
                }
            }
        }
        if config.breakdown_prob > 0.0 {
            let mut rng = StdRng::seed_from_u64(seed ^ BREAK_STREAM);
            let (w0, w1) = config.breakdown_window;
            for vehicle in &instance.fleet.vehicles {
                let u = rng.random_range(0.0..1.0);
                let t = rng.random_range(w0.seconds()..=w1.seconds());
                let r = config
                    .recovery_delay
                    .map(|(lo, hi)| rng.random_range(lo.seconds()..=hi.seconds()));
                if u < config.breakdown_prob {
                    let at = TimePoint::from_seconds(t);
                    events.push(TimedEvent {
                        time: at,
                        event: SimEvent::VehicleBreakdown(vehicle.id),
                    });
                    if let Some(delay) = r {
                        events.push(TimedEvent {
                            time: at + TimeDelta::from_seconds(delay),
                            event: SimEvent::VehicleRecovered(vehicle.id),
                        });
                    }
                }
            }
        }
        // Stable sort by (time, class rank): equal keys keep generation
        // order, so the list is deterministic.
        events.sort_by(|a, b| {
            a.time
                .seconds()
                .total_cmp(&b.time.seconds())
                .then(a.event.rank().cmp(&b.event.rank()))
        });
        DisruptionSource {
            events: events.into_iter(),
        }
    }

    /// Number of events left to emit.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the source has no events (the config was vacuous or the
    /// draws all missed).
    pub fn is_empty(&self) -> bool {
        self.events.len() == 0
    }
}

impl EventSource for DisruptionSource {
    fn next_event(&mut self) -> Option<TimedEvent> {
        self.events.next()
    }

    fn name(&self) -> &str {
        "disruptions"
    }
}

/// Deterministic k-way merge over event sources: the engine's one event
/// feed. Each source keeps one buffered head; [`EventMux::pop`] takes the
/// head with the smallest `(time, class rank, source index)` key and
/// refills it from the owning source (which may block — see
/// [`EventSource`]).
pub(crate) struct EventMux<'s> {
    sources: Vec<Box<dyn EventSource + 's>>,
    heads: Vec<Option<TimedEvent>>,
}

impl<'s> EventMux<'s> {
    /// Primes one head per source (blocking sources block here first).
    pub(crate) fn new(mut sources: Vec<Box<dyn EventSource + 's>>) -> Self {
        let heads = sources.iter_mut().map(|s| s.next_event()).collect();
        EventMux { sources, heads }
    }

    fn best(&self) -> Option<usize> {
        let mut best: Option<(f64, u8, usize)> = None;
        for (i, head) in self.heads.iter().enumerate() {
            if let Some(ev) = head {
                let key = (ev.time.seconds(), ev.event.rank(), i);
                let better = match best {
                    None => true,
                    Some((t, r, _)) => ev
                        .time
                        .seconds()
                        .total_cmp(&t)
                        .then(ev.event.rank().cmp(&r))
                        .is_lt(),
                };
                if better {
                    best = Some(key);
                }
            }
        }
        best.map(|(_, _, i)| i)
    }

    /// The time of the next event across all sources, if any.
    pub(crate) fn peek_time(&self) -> Option<TimePoint> {
        self.best().map(|i| {
            self.heads[i]
                .as_ref()
                .expect("best() only returns live heads")
                .time
        })
    }

    /// Pops the next event and refills its source's head.
    pub(crate) fn pop(&mut self) -> Option<TimedEvent> {
        let i = self.best()?;
        let event = self.heads[i].take();
        self.heads[i] = self.sources[i].next_event();
        event
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpdp_net::{FleetConfig, IntervalGrid, Node, NodeId, Point, RoadNetwork};

    fn order(id: u32, created_h: f64) -> Order {
        Order::new(
            OrderId(id),
            NodeId(1),
            NodeId(2),
            1.0,
            TimePoint::from_hours(created_h),
            TimePoint::from_hours(created_h + 4.0),
        )
        .unwrap()
    }

    fn instance(orders: Vec<Order>, vehicles: usize) -> Instance {
        let nodes = vec![
            Node::depot(NodeId(0), Point::new(0.0, 0.0)),
            Node::factory(NodeId(1), Point::new(5.0, 0.0)),
            Node::factory(NodeId(2), Point::new(10.0, 0.0)),
        ];
        let net = RoadNetwork::euclidean(nodes, 1.0).unwrap();
        let fleet = FleetConfig::homogeneous(
            vehicles,
            &[NodeId(0)],
            10.0,
            500.0,
            2.0,
            40.0,
            TimeDelta::ZERO,
        )
        .unwrap();
        Instance::new(net, fleet, IntervalGrid::paper_default(), orders).unwrap()
    }

    #[test]
    fn replay_source_emits_creation_ordered_arrivals() {
        let inst = instance(vec![order(0, 9.0), order(1, 8.0)], 1);
        let mut src = ReplaySource::new(&inst);
        let a = src.next_event().unwrap();
        let b = src.next_event().unwrap();
        assert!(src.next_event().is_none());
        assert_eq!(a.time, TimePoint::from_hours(8.0));
        assert_eq!(b.time, TimePoint::from_hours(9.0));
        assert!(matches!(a.event, SimEvent::OrderArrival(_)));
    }

    #[test]
    fn mux_merges_sources_by_time_then_rank_then_source() {
        struct Fixed(std::vec::IntoIter<TimedEvent>);
        impl EventSource for Fixed {
            fn next_event(&mut self) -> Option<TimedEvent> {
                self.0.next()
            }
        }
        let t = TimePoint::from_hours(8.0);
        let later = TimePoint::from_hours(9.0);
        let a = Fixed(
            vec![
                TimedEvent {
                    time: t,
                    event: SimEvent::OrderCancelled(OrderId(0)),
                },
                TimedEvent {
                    time: later,
                    event: SimEvent::EpochFlush,
                },
            ]
            .into_iter(),
        );
        let b = Fixed(
            vec![TimedEvent {
                time: t,
                event: SimEvent::OrderArrival(order(0, 8.0)),
            }]
            .into_iter(),
        );
        let mut mux = EventMux::new(vec![Box::new(a), Box::new(b)]);
        // Same instant: the arrival (rank 0) beats the cancellation
        // (rank 1) even though its source comes second.
        assert!(matches!(
            mux.pop().unwrap().event,
            SimEvent::OrderArrival(_)
        ));
        assert!(matches!(
            mux.pop().unwrap().event,
            SimEvent::OrderCancelled(_)
        ));
        assert_eq!(mux.peek_time(), Some(later));
        assert!(matches!(mux.pop().unwrap().event, SimEvent::EpochFlush));
        assert!(mux.pop().is_none());
        assert_eq!(mux.peek_time(), None);
    }

    #[test]
    fn disruption_source_is_deterministic_per_seed() {
        let inst = instance((0..20).map(|i| order(i, 8.0 + 0.2 * i as f64)).collect(), 6);
        let cfg = DisruptionConfig {
            cancellation_prob: 0.5,
            cancellation_delay: TimeDelta::from_minutes(30.0),
            breakdown_prob: 0.5,
            breakdown_window: (TimePoint::from_hours(8.0), TimePoint::from_hours(16.0)),
            recovery_delay: Some((TimeDelta::from_minutes(10.0), TimeDelta::from_minutes(60.0))),
        };
        let drain = |seed: u64| {
            let mut src = DisruptionSource::new(&inst, &cfg, seed);
            let mut out = Vec::new();
            while let Some(ev) = src.next_event() {
                out.push(ev);
            }
            out
        };
        let a = drain(7);
        let b = drain(7);
        let c = drain(8);
        assert_eq!(a, b, "same seed must reproduce the same event list");
        assert_ne!(a, c, "different seeds must diverge");
        assert!(!a.is_empty());
        // Sorted by time.
        for w in a.windows(2) {
            assert!(w[0].time.seconds() <= w[1].time.seconds());
        }
        // Cancellations sit inside their window.
        for ev in &a {
            if let SimEvent::OrderCancelled(oid) = ev.event {
                let created = inst.order(oid).created;
                assert!(ev.time.seconds() >= created.seconds());
                assert!(ev.time.seconds() <= created.seconds() + 1800.0 + 1e-9);
            }
        }
    }

    #[test]
    fn cancellation_knob_does_not_reshuffle_breakdowns() {
        let inst = instance((0..10).map(|i| order(i, 9.0)).collect(), 8);
        let base = DisruptionConfig {
            breakdown_prob: 0.6,
            breakdown_window: (TimePoint::from_hours(8.0), TimePoint::from_hours(16.0)),
            ..DisruptionConfig::default()
        };
        let with_cancels = DisruptionConfig {
            cancellation_prob: 0.9,
            cancellation_delay: TimeDelta::from_minutes(5.0),
            ..base.clone()
        };
        let breakdowns = |cfg: &DisruptionConfig| {
            let mut src = DisruptionSource::new(&inst, cfg, 5);
            let mut out = Vec::new();
            while let Some(ev) = src.next_event() {
                if matches!(ev.event, SimEvent::VehicleBreakdown(_)) {
                    out.push((ev.time.seconds(), ev.event.clone()));
                }
            }
            out
        };
        assert_eq!(breakdowns(&base), breakdowns(&with_cancels));
        assert!(!breakdowns(&base).is_empty());
    }

    #[test]
    fn config_validation_rejects_bad_knobs() {
        let mut cfg = DisruptionConfig {
            cancellation_prob: 1.5,
            ..DisruptionConfig::default()
        };
        assert!(cfg.validate().is_err());
        cfg.cancellation_prob = 0.5;
        cfg.cancellation_delay = TimeDelta::from_seconds(-1.0);
        assert!(cfg.validate().is_err());
        cfg.cancellation_delay = TimeDelta::ZERO;
        cfg.breakdown_window = (TimePoint::from_hours(2.0), TimePoint::from_hours(1.0));
        assert!(cfg.validate().is_err());
        cfg.breakdown_window = (TimePoint::ZERO, TimePoint::from_hours(1.0));
        cfg.recovery_delay = Some((TimeDelta::from_hours(2.0), TimeDelta::from_hours(1.0)));
        assert!(cfg.validate().is_err());
        cfg.recovery_delay = None;
        assert!(cfg.validate().is_ok());
        assert!(DisruptionConfig::default().is_vacuous());
        assert!(!cfg.is_vacuous());
    }
}
