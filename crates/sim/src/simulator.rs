//! The episode simulator (paper Algorithm 1), organised around batched
//! decision epochs.

use crate::batch::{Decision, DecisionBatch, DecisionReason, EpochScratch};
use crate::dispatcher::Dispatcher;
use crate::event::DisruptionConfig;
use crate::metrics::{AssignmentRecord, EpisodeResult, MetricsAccumulator, MetricsOptions};
use crate::observer::{DecisionRecord, EpochInfo, SimObserver};
use crate::shard::ShardContext;
use crate::sharding::{ShardConfig, ShardRuntime};
use crate::state::VehicleState;
use dpdp_net::{Instance, ShardMap, TimeDelta, TimePoint};
use dpdp_pool::ThreadPool;
use dpdp_routing::{PlannerMode, PlannerOutput, RoutePlanner, VehicleView};
use std::sync::Arc;

/// When dispatch decisions are made relative to order creation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BufferingMode {
    /// Process each order the moment it is created (the paper's deployed
    /// strategy; short response time). Orders created at the same instant
    /// still share one decision epoch.
    Immediate,
    /// Accumulate orders and flush them at fixed wall-clock multiples of the
    /// given period (the alternative strategy the paper evaluated and
    /// rejected for its ~154 s response times). Every flush is one decision
    /// epoch: all orders buffered since the previous flush are decided
    /// through a single [`Dispatcher::dispatch_batch`] call.
    ///
    /// An order created *exactly* at a flush multiple (`created = k * period`)
    /// is decided at that flush, not delayed to the next one.
    FixedInterval(TimeDelta),
}

/// Errors detected when building a [`Simulator`].
#[derive(Debug, Clone, PartialEq)]
pub enum SimBuildError {
    /// `FixedInterval` buffering needs a strictly positive period.
    NonPositivePeriod {
        /// The offending period, in seconds.
        seconds: f64,
    },
    /// [`SimulatorBuilder::num_threads`] needs at least one thread.
    ZeroThreads,
    /// [`ShardConfig::flat`] needs at least one shard.
    ZeroShards,
    /// A [`ShardConfig`] constructor or knob got inconsistent values
    /// (zero region/cell counts, a hierarchical policy handed to
    /// [`ShardConfig::flat_with`], or a zero re-partition cadence).
    InvalidSharding {
        /// What was wrong.
        reason: String,
    },
    /// [`SimulatorBuilder::disruptions`] got invalid knobs (probability
    /// outside `[0, 1]`, negative delay, or an unordered window/range).
    InvalidDisruption {
        /// What was wrong.
        reason: String,
    },
}

impl std::fmt::Display for SimBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimBuildError::NonPositivePeriod { seconds } => write!(
                f,
                "fixed-interval buffering period must be positive, got {seconds} s"
            ),
            SimBuildError::ZeroThreads => {
                write!(f, "num_threads must be at least 1 (1 = serial)")
            }
            SimBuildError::ZeroShards => {
                write!(f, "shard count must be at least 1 (1 = unsharded)")
            }
            SimBuildError::InvalidSharding { reason } => {
                write!(f, "invalid shard config: {reason}")
            }
            SimBuildError::InvalidDisruption { reason } => {
                write!(f, "invalid disruption config: {reason}")
            }
        }
    }
}

impl std::error::Error for SimBuildError {}

/// Configures and validates a [`Simulator`].
///
/// ```
/// # use dpdp_sim::{Simulator, BufferingMode};
/// # use dpdp_net::{FleetConfig, Instance, IntervalGrid, Node, NodeId, Point,
/// #     RoadNetwork, TimeDelta};
/// # let nodes = vec![Node::depot(NodeId(0), Point::new(0.0, 0.0))];
/// # let net = RoadNetwork::euclidean(nodes, 1.0).unwrap();
/// # let fleet = FleetConfig::homogeneous(1, &[NodeId(0)], 10.0, 500.0, 2.0,
/// #     60.0, TimeDelta::ZERO).unwrap();
/// # let instance =
/// #     Instance::new(net, fleet, IntervalGrid::paper_default(), vec![]).unwrap();
/// let sim = Simulator::builder(&instance)
///     .buffering(BufferingMode::FixedInterval(TimeDelta::from_minutes(10.0)))
///     .seed(7)
///     .build()
///     .expect("positive period");
/// ```
#[derive(Debug, Clone)]
pub struct SimulatorBuilder<'a> {
    instance: &'a Instance,
    buffering: BufferingMode,
    horizon: Option<TimePoint>,
    metrics: MetricsOptions,
    seed: u64,
    num_threads: usize,
    pool: Option<Arc<ThreadPool>>,
    planner_mode: PlannerMode,
    sharding: ShardConfig,
    disruptions: Option<DisruptionConfig>,
}

impl<'a> SimulatorBuilder<'a> {
    /// Starts from the defaults: immediate service, no horizon, full
    /// metrics, seed 0, single-threaded scoring, incremental insertion
    /// evaluation, unsharded dispatch.
    pub fn new(instance: &'a Instance) -> Self {
        SimulatorBuilder {
            instance,
            buffering: BufferingMode::Immediate,
            horizon: None,
            metrics: MetricsOptions::default(),
            seed: 0,
            num_threads: 1,
            pool: None,
            planner_mode: PlannerMode::default(),
            sharding: ShardConfig::default(),
            disruptions: None,
        }
    }

    /// Sets the buffering strategy.
    pub fn buffering(mut self, buffering: BufferingMode) -> Self {
        self.buffering = buffering;
        self
    }

    /// Convenience: fixed-interval buffering with the given period.
    pub fn fixed_interval(self, period: TimeDelta) -> Self {
        self.buffering(BufferingMode::FixedInterval(period))
    }

    /// Stops dispatching at `horizon`: orders whose decision time falls
    /// strictly after it are recorded as rejected with
    /// [`DecisionReason::HorizonExceeded`] and excluded from the
    /// response-time average.
    pub fn horizon(mut self, horizon: TimePoint) -> Self {
        self.horizon = Some(horizon);
        self
    }

    /// Chooses which episode logs to materialise.
    pub fn metrics(mut self, options: MetricsOptions) -> Self {
        self.metrics = options;
        self
    }

    /// Seeds the simulator's deterministic identity. The replay itself is
    /// deterministic; the seed is carried for stochastic scenario
    /// extensions (e.g. sampled travel times) and surfaced to dispatchers
    /// via [`Simulator::seed`].
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Number of threads decision epochs are scored with (via an in-repo
    /// [`dpdp_pool::ThreadPool`] handed to every [`DecisionBatch`]).
    ///
    /// The default of 1 runs everything inline on the caller — bit-exact
    /// legacy behaviour with zero synchronisation. Any `n > 1` spawns
    /// `n - 1` workers, and because every parallel loop writes to
    /// pre-indexed slots, **episode results are identical for every thread
    /// count** (the parity suite in `tests/batch_parity.rs` asserts this
    /// for all built-in policies).
    ///
    /// [`DecisionBatch`]: crate::batch::DecisionBatch
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self.pool = None;
        self
    }

    /// Shares an existing pool instead of spawning a fresh one in
    /// [`SimulatorBuilder::build`] — the cheap path when many simulators
    /// (e.g. one per evaluation episode) should reuse the same workers
    /// rather than pay thread spawn/teardown per episode. Overrides any
    /// previous [`SimulatorBuilder::num_threads`]; the pool's own width
    /// applies.
    pub fn thread_pool(mut self, pool: Arc<ThreadPool>) -> Self {
        self.num_threads = pool.threads();
        self.pool = Some(pool);
        self
    }

    /// Sets the sharding configuration: how decision epochs are
    /// partitioned geographically (the region-sharded dispatch pipeline;
    /// see [`crate::shard`] and [`crate::sharding`]).
    ///
    /// The default [`ShardConfig::default`] (one flat cell) is the plain
    /// fleet scan. Any multi-cell config builds a [`ShardMap`] over the
    /// instance's node coordinates at [`SimulatorBuilder::build`] time and
    /// scores every epoch as a merge of cell-local batches: in-cell
    /// `(order, vehicle)` pairs run the full insertion sweep
    /// shard-concurrently, cross-cell pairs are either escalated within
    /// the parent region (see [`ShardConfig::escalation`]) or skipped
    /// through an exact geometric infeasibility bound. A
    /// [`RepartitionPolicy`](crate::sharding::RepartitionPolicy) can
    /// additionally re-seed the partition from live demand at flush
    /// boundaries. **Episode results are bit-identical for every shard
    /// layout** — the partition changes wall time, never decisions
    /// (`tests/batch_parity.rs` and `tests/repartition.rs` assert it).
    pub fn sharding(mut self, config: ShardConfig) -> Self {
        self.sharding = config;
        self
    }

    /// Arms seeded stochastic disruptions for every episode this simulator
    /// runs: order cancellations and vehicle breakdowns/recoveries sampled
    /// by a [`DisruptionSource`](crate::event::DisruptionSource) from the
    /// simulator seed (see [`SimulatorBuilder::seed`]) through dedicated
    /// RNG streams — legacy draws are untouched, and a simulator without a
    /// disruption config replays exactly the legacy episode.
    ///
    /// Validated at [`SimulatorBuilder::build`] time
    /// ([`SimBuildError::InvalidDisruption`]).
    pub fn disruptions(mut self, config: DisruptionConfig) -> Self {
        self.disruptions = Some(config);
        self
    }

    /// Selects the insertion evaluator every Algorithm 2 sweep of this
    /// simulator uses. The default [`PlannerMode::Incremental`] scores
    /// candidates through the O(n²) prefix/suffix-cached evaluator;
    /// [`PlannerMode::Naive`] forces the O(n³) enumerate-and-resimulate
    /// reference. Both modes produce bit-identical episodes (the parity
    /// suite in `tests/batch_parity.rs` asserts it for every built-in
    /// policy), so this switch exists for parity testing and debugging,
    /// not behaviour.
    pub fn planner_mode(mut self, mode: PlannerMode) -> Self {
        self.planner_mode = mode;
        self
    }

    /// Validates the configuration and builds the simulator.
    ///
    /// # Errors
    /// [`SimBuildError::NonPositivePeriod`] when fixed-interval buffering
    /// was requested with a period `<= 0`;
    /// [`SimBuildError::ZeroThreads`] when `num_threads(0)` was requested.
    /// (Shard configs are validated at [`ShardConfig`] construction time.)
    pub fn build(self) -> Result<Simulator<'a>, SimBuildError> {
        if let BufferingMode::FixedInterval(period) = self.buffering {
            let seconds = period.seconds();
            if seconds.is_nan() || seconds <= 0.0 {
                return Err(SimBuildError::NonPositivePeriod { seconds });
            }
        }
        if self.num_threads == 0 {
            return Err(SimBuildError::ZeroThreads);
        }
        if let Some(config) = &self.disruptions {
            config
                .validate()
                .map_err(|reason| SimBuildError::InvalidDisruption { reason })?;
        }
        let pool = self
            .pool
            .unwrap_or_else(|| Arc::new(ThreadPool::new(self.num_threads)));
        // The initial partition is built once here from node geometry and
        // shared by every episode; a re-partition policy lets each episode
        // evolve its own copy from the live demand stream.
        let shards = self
            .sharding
            .initial_context(&self.instance.network, self.seed);
        Ok(Simulator {
            instance: self.instance,
            buffering: self.buffering,
            horizon: self.horizon,
            metrics: self.metrics,
            seed: self.seed,
            pool,
            planner_mode: self.planner_mode,
            sharding: self.sharding,
            shards,
            disruptions: self.disruptions,
        })
    }
}

/// Default escalation width `m` of [`ShardConfig::escalation`]: every
/// order always sees its two nearest same-region foreign vehicles
/// evaluated in full, wherever the infeasibility bound stands.
pub const DEFAULT_SHARD_ESCALATION: usize = 2;

/// Fans every episode event out to the observers and feeds decisions into
/// the metrics accumulator — the single place a decision is recorded, so
/// the horizon, fast-commit, re-validation and disruption paths cannot
/// drift apart.
pub(crate) struct EpisodeSink<'run, 'obs, 'world> {
    pub(crate) observers: &'run mut [&'obs mut dyn SimObserver],
    pub(crate) acc: MetricsAccumulator,
    pub(crate) fleet: &'world dpdp_net::FleetConfig,
    pub(crate) net: &'world dpdp_net::RoadNetwork,
}

impl EpisodeSink<'_, '_, '_> {
    pub(crate) fn begin(&mut self, instance: &Instance) {
        for obs in self.observers.iter_mut() {
            obs.on_episode_begin(instance);
        }
    }

    pub(crate) fn epoch(&mut self, info: &EpochInfo) {
        for obs in self.observers.iter_mut() {
            obs.on_epoch(info);
        }
    }

    /// Fans a disruption record out to the observers.
    pub(crate) fn disruption(&mut self, record: &crate::observer::DisruptionRecord) {
        for obs in self.observers.iter_mut() {
            obs.on_disruption(record);
        }
    }

    /// Records one committed decision. `committed` carries the chosen
    /// vehicle's pre-accept view and validated plan for assignments;
    /// `response_secs` is `None` for orders that were never dispatched.
    pub(crate) fn decision(
        &mut self,
        decision: &Decision,
        record: AssignmentRecord,
        committed: Option<(&VehicleView, &PlannerOutput)>,
        response_secs: Option<f64>,
    ) {
        for obs in self.observers.iter_mut() {
            obs.on_decision(&DecisionRecord {
                decision,
                assignment: &record,
                view: committed.map(|(view, _)| view),
                plan: committed.map(|(_, plan)| plan),
                fleet: self.fleet,
                net: self.net,
            });
        }
        self.acc.record(record, response_secs);
    }

    pub(crate) fn finish(self, states: &[VehicleState]) -> EpisodeResult {
        let result = self.acc.finish(states, self.net, self.fleet);
        for obs in self.observers.iter_mut() {
            obs.on_episode_end(&result);
        }
        result
    }
}

/// The episode simulator: replays an instance's orders against a fleet under
/// a given [`Dispatcher`], one batched decision epoch at a time.
///
/// Construct via [`Simulator::builder`].
#[derive(Debug, Clone)]
pub struct Simulator<'a> {
    pub(crate) instance: &'a Instance,
    pub(crate) buffering: BufferingMode,
    pub(crate) horizon: Option<TimePoint>,
    pub(crate) metrics: MetricsOptions,
    pub(crate) seed: u64,
    pub(crate) pool: Arc<ThreadPool>,
    pub(crate) planner_mode: PlannerMode,
    pub(crate) sharding: ShardConfig,
    pub(crate) shards: Option<ShardContext>,
    pub(crate) disruptions: Option<DisruptionConfig>,
}

impl<'a> Simulator<'a> {
    /// Starts configuring a simulator for `instance`.
    pub fn builder(instance: &'a Instance) -> SimulatorBuilder<'a> {
        SimulatorBuilder::new(instance)
    }

    /// The instance being simulated.
    pub fn instance(&self) -> &Instance {
        self.instance
    }

    /// The buffering strategy in effect.
    pub fn buffering(&self) -> BufferingMode {
        self.buffering
    }

    /// The simulator's seed (see [`SimulatorBuilder::seed`]).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Width of the scoring thread pool (see
    /// [`SimulatorBuilder::num_threads`]).
    pub fn num_threads(&self) -> usize {
        self.pool.threads()
    }

    /// The insertion evaluator in effect (see
    /// [`SimulatorBuilder::planner_mode`]).
    pub fn planner_mode(&self) -> PlannerMode {
        self.planner_mode
    }

    /// Number of geographic shards (cells) epochs are scored with (see
    /// [`SimulatorBuilder::sharding`]; 1 = flat scan).
    pub fn num_shards(&self) -> usize {
        self.shards.as_ref().map_or(1, |c| c.map.num_shards())
    }

    /// The sharding configuration in effect (see
    /// [`SimulatorBuilder::sharding`]).
    pub fn sharding(&self) -> &ShardConfig {
        &self.sharding
    }

    /// The *initial* region partition, when sharding is on. Episodes under
    /// a re-partition policy evolve their own episode-local copy; this is
    /// the geometry-seeded map every episode starts from.
    pub fn shard_map(&self) -> Option<&ShardMap> {
        self.shards.as_ref().map(|c| &*c.map)
    }

    /// Builds the episode-local sharding runtime both episode loops start
    /// from — one per episode so mid-episode re-partitioning never leaks
    /// across runs.
    pub(crate) fn shard_runtime(&self) -> ShardRuntime {
        ShardRuntime::new(
            &self.sharding,
            self.shards.as_ref(),
            self.seed,
            self.instance.network.nodes().len(),
        )
    }

    /// The armed disruption config, if any (see
    /// [`SimulatorBuilder::disruptions`]).
    pub fn disruption_config(&self) -> Option<&DisruptionConfig> {
        self.disruptions.as_ref()
    }

    /// The wall-clock time at which an order created at `created` is
    /// decided.
    ///
    /// Under immediate service this is the creation time itself. Under
    /// fixed-interval buffering it is the first flush instant `k * period`
    /// with `k * period >= created` — in particular, an order created
    /// exactly at a flush multiple is decided at that flush, not one period
    /// later. (The implementation guards the `created / period` division
    /// against floating-point round-up so the boundary holds even when the
    /// product `k * period` is not exactly representable.)
    pub fn decision_time(&self, created: TimePoint) -> TimePoint {
        match self.buffering {
            BufferingMode::Immediate => created,
            BufferingMode::FixedInterval(period) => {
                let p = period.seconds();
                let mut k = (created.seconds() / p).ceil();
                // Float guard: if the division rounded up past the true
                // quotient, (k-1)*p already covers the creation time.
                if k >= 1.0 && (k - 1.0) * p >= created.seconds() {
                    k -= 1.0;
                }
                TimePoint::from_seconds(k * p)
            }
        }
    }

    /// Runs one full episode and returns the result. The dispatcher's
    /// `begin_episode` / `end_episode` hooks bracket the run.
    pub fn run(&self, dispatcher: &mut dyn Dispatcher) -> EpisodeResult {
        self.run_observed(dispatcher, &mut [])
    }

    /// Runs one full episode, notifying `observers` of every epoch,
    /// decision and disruption (see [`SimObserver`] for the guaranteed
    /// call order).
    ///
    /// This is the event-driven engine (see [`crate::event`] and
    /// [`Simulator::run_events`]): the instance's order table replays
    /// through a [`ReplaySource`](crate::event::ReplaySource) —
    /// bit-identical to the legacy scan loop kept as
    /// [`Simulator::run_reference`] — and, when
    /// [`SimulatorBuilder::disruptions`] armed a config, a seeded
    /// [`DisruptionSource`](crate::event::DisruptionSource) rides along.
    ///
    /// Orders are grouped into *decision epochs* — maximal runs of orders
    /// sharing one decision time — and each epoch is decided through a
    /// single [`Dispatcher::dispatch_batch`] call against one shared fleet
    /// snapshot. Every decision the dispatcher returns is re-validated:
    /// the simulator replans the chosen `(vehicle, order)` pair against
    /// its authoritative state and downgrades infeasible choices to
    /// rejections, so a buggy or adversarial policy cannot corrupt the
    /// episode.
    ///
    /// # Panics
    /// Panics if the dispatcher violates the `dispatch_batch` contract by
    /// returning the wrong number of decisions or decisions out of order.
    pub fn run_observed(
        &self,
        dispatcher: &mut dyn Dispatcher,
        observers: &mut [&mut dyn SimObserver],
    ) -> EpisodeResult {
        use crate::event::{DisruptionSource, EventSource, ReplaySource};
        let mut sources: Vec<Box<dyn EventSource + '_>> =
            vec![Box::new(ReplaySource::new(self.instance))];
        if let Some(config) = &self.disruptions {
            sources.push(Box::new(DisruptionSource::new(
                self.instance,
                config,
                self.seed,
            )));
        }
        self.run_events(sources, dispatcher, observers)
    }

    /// The pre-event reference implementation: a direct scan over the
    /// sorted order table, kept verbatim so `tests/event_parity.rs` can
    /// assert the event-driven engine reproduces it **bit-identically**
    /// for every scenario, policy, shard count and thread count.
    ///
    /// Supports everything the scan loop ever supported — buffering,
    /// horizon, threads, shards, planner modes — but *not* event-only
    /// features: any [`SimulatorBuilder::disruptions`] config is ignored
    /// here, and nothing can arrive mid-episode.
    ///
    /// # Panics
    /// Panics if the dispatcher violates the `dispatch_batch` contract.
    pub fn run_reference(
        &self,
        dispatcher: &mut dyn Dispatcher,
        observers: &mut [&mut dyn SimObserver],
    ) -> EpisodeResult {
        let instance = self.instance;
        let net = &instance.network;
        let fleet = &instance.fleet;
        let orders = instance.orders();
        dispatcher.begin_episode(instance);
        let mut sink = EpisodeSink {
            observers,
            acc: MetricsAccumulator::new(self.metrics, orders.len()),
            fleet,
            net,
        };
        sink.begin(instance);

        let mut states: Vec<VehicleState> = fleet.vehicles.iter().map(VehicleState::new).collect();

        let mut shard_rt = self.shard_runtime();
        let mut epoch_index = 0;
        let mut start = 0;
        // Per-epoch planning arena, reused across the whole episode:
        // cleared at each batch build, never freed (see `EpochScratch`).
        let mut scratch = EpochScratch::default();
        while start < orders.len() {
            let now = self.decision_time(orders[start].created);
            let mut end = start + 1;
            while end < orders.len() && self.decision_time(orders[end].created) == now {
                end += 1;
            }
            let epoch_orders = &orders[start..end];
            let interval = instance.grid.interval_of(now);

            if self.horizon.is_some_and(|h| now > h) {
                // Beyond the horizon: never dispatched. Orders are sorted
                // by creation and decision times are monotone, so every
                // later epoch is beyond it too — but keep scanning epochs
                // to log each order.
                for order in epoch_orders {
                    let decision = Decision::rejected(order.id, DecisionReason::HorizonExceeded);
                    let record = AssignmentRecord::rejected(
                        order.id,
                        DecisionReason::HorizonExceeded,
                        now,
                        interval,
                    );
                    sink.decision(&decision, record, None, None);
                }
                start = end;
                continue;
            }

            for s in &mut states {
                s.advance_to(now, net, fleet, orders);
            }
            // Demand accumulation and re-partitioning happen serially at
            // the flush boundary, before the batch forms — the event
            // engine does the same, so both loops stay bit-identical.
            for order in epoch_orders {
                shard_rt.observe(order);
            }
            let repartitioned = shard_rt.maybe_repartition(net);
            let batch = DecisionBatch::new(
                now,
                interval,
                net,
                fleet,
                orders,
                epoch_orders.iter().map(|o| o.id).collect(),
                states.clone(),
                Arc::clone(&self.pool),
                self.planner_mode,
                shard_rt.context(),
                None,
                &mut scratch,
            );
            sink.epoch(&EpochInfo {
                index: epoch_index,
                now,
                interval,
                num_orders: epoch_orders.len(),
                num_shards: self.num_shards(),
                shards: batch.shard_stats(),
                repartitioned,
            });
            let decisions = dispatcher.dispatch_batch(&batch);
            assert_eq!(
                decisions.len(),
                epoch_orders.len(),
                "{}: dispatch_batch returned {} decisions for {} orders",
                dispatcher.name(),
                decisions.len(),
                epoch_orders.len(),
            );

            // Fast path: when every returned decision matches what the
            // batch itself committed through `resolve` (true for the
            // default adapter and every built-in policy), adopt the batch's
            // scratch states and recorded plans verbatim — no replanning.
            // Otherwise fall back to re-validating each decision against
            // the authoritative state, so a stale or bogus choice degrades
            // to a rejection instead of corrupting the episode.
            let (commits, scratch_states) = batch.into_parts();
            let resolved_by_batch = decisions
                .iter()
                .zip(&commits)
                .all(|(d, c)| c.as_ref().is_some_and(|c| c.decision == *d));
            if resolved_by_batch {
                for ((order, decision), commit) in epoch_orders.iter().zip(&decisions).zip(commits)
                {
                    let commit = commit.expect("all commits checked present");
                    let response = (now - order.created).seconds();
                    match &commit.assignment {
                        Some(a) => {
                            let record = AssignmentRecord::assigned(
                                order.id,
                                decision.vehicle.expect("assignment has a vehicle"),
                                now,
                                interval,
                                &a.plan,
                                a.vehicle_was_used,
                            );
                            sink.decision(
                                &commit.decision,
                                record,
                                Some((&a.pre_view, &a.plan)),
                                Some(response),
                            );
                        }
                        None => {
                            let record = AssignmentRecord::rejected(
                                order.id,
                                decision.reason,
                                now,
                                interval,
                            );
                            sink.decision(&commit.decision, record, None, Some(response));
                        }
                    }
                }
                states = scratch_states;
            } else {
                let planner = RoutePlanner::with_mode(net, fleet, orders, self.planner_mode);
                for (order, decision) in epoch_orders.iter().zip(&decisions) {
                    assert_eq!(
                        decision.order,
                        order.id,
                        "{}: dispatch_batch returned decisions out of order",
                        dispatcher.name(),
                    );
                    let response = (now - order.created).seconds();
                    let validated = decision.vehicle.and_then(|k| {
                        let plan = planner.plan(&states[k.index()].view, order);
                        plan.best.is_some().then_some((k, plan))
                    });
                    match validated {
                        Some((k, plan)) => {
                            let record = AssignmentRecord::assigned(
                                order.id,
                                k,
                                now,
                                interval,
                                &plan,
                                states[k.index()].used(),
                            );
                            let committed = Decision::assigned(order.id, k);
                            sink.decision(
                                &committed,
                                record,
                                Some((&states[k.index()].view, &plan)),
                                Some(response),
                            );
                            let best = plan.best.as_ref().expect("validated feasible");
                            states[k.index()].accept(best.candidate.route.clone());
                            states[k.index()].advance_to(now, net, fleet, orders);
                        }
                        None => {
                            let reason = match decision.reason {
                                // An assignment that failed re-validation.
                                DecisionReason::Assigned => DecisionReason::InfeasibleChoice,
                                other => other,
                            };
                            let committed = Decision::rejected(order.id, reason);
                            let record =
                                AssignmentRecord::rejected(order.id, reason, now, interval);
                            sink.decision(&committed, record, None, Some(response));
                        }
                    }
                }
            }
            epoch_index += 1;
            start = end;
        }

        dispatcher.end_episode();
        sink.finish(&states)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatcher::FirstFeasible;
    use dpdp_net::{
        FleetConfig, IntervalGrid, Node, NodeId, Order, OrderId, Point, RoadNetwork, TimeDelta,
        TimePoint,
    };

    fn instance(num_vehicles: usize, orders: Vec<Order>) -> Instance {
        let nodes = vec![
            Node::depot(NodeId(0), Point::new(0.0, 0.0)),
            Node::factory(NodeId(1), Point::new(10.0, 0.0)),
            Node::factory(NodeId(2), Point::new(20.0, 0.0)),
            Node::factory(NodeId(3), Point::new(30.0, 0.0)),
        ];
        let net = RoadNetwork::euclidean(nodes, 1.0).unwrap();
        let fleet = FleetConfig::homogeneous(
            num_vehicles,
            &[NodeId(0)],
            10.0,
            500.0,
            2.0,
            60.0,
            TimeDelta::ZERO,
        )
        .unwrap();
        Instance::new(net, fleet, IntervalGrid::paper_default(), orders).unwrap()
    }

    fn order(id: u32, p: u32, d: u32, q: f64, created_h: f64, deadline_h: f64) -> Order {
        Order::new(
            OrderId(id),
            NodeId(p),
            NodeId(d),
            q,
            TimePoint::from_hours(created_h),
            TimePoint::from_hours(deadline_h),
        )
        .unwrap()
    }

    fn sim(inst: &Instance) -> Simulator<'_> {
        Simulator::builder(inst)
            .build()
            .expect("immediate never fails")
    }

    #[test]
    fn single_order_single_vehicle() {
        let inst = instance(1, vec![order(0, 1, 2, 5.0, 8.0, 20.0)]);
        let result = sim(&inst).run(&mut FirstFeasible);
        assert_eq!(result.metrics.nuv, 1);
        assert_eq!(result.metrics.served, 1);
        assert_eq!(result.metrics.rejected, 0);
        // Route 0 -> 1 -> 2 -> 0 = 40 km; TC = 500 + 2 * 40 = 580.
        assert!((result.metrics.ttl - 40.0).abs() < 1e-9);
        assert!((result.metrics.total_cost - 580.0).abs() < 1e-9);
        assert_eq!(result.metrics.avg_response_secs, 0.0);
        assert_eq!(result.assignments[0].reason, DecisionReason::Assigned);
    }

    #[test]
    fn infeasible_order_is_rejected() {
        // Deadline before any vehicle can reach the delivery node.
        let inst = instance(1, vec![order(0, 1, 2, 5.0, 8.0, 8.01)]);
        let result = sim(&inst).run(&mut FirstFeasible);
        assert_eq!(result.metrics.served, 0);
        assert_eq!(result.metrics.rejected, 1);
        assert_eq!(result.metrics.nuv, 0);
        assert_eq!(result.metrics.ttl, 0.0);
        assert_eq!(result.assignments[0].vehicle, None);
        assert_eq!(
            result.assignments[0].reason,
            DecisionReason::NoFeasibleVehicle
        );
    }

    #[test]
    fn capacity_forces_second_vehicle() {
        // Two simultaneous heavy orders on the same lane: capacity (9+9 > 10)
        // forbids carrying both, and the deadlines are too tight to serve
        // them sequentially, so a second vehicle is needed. Both orders
        // share one decision epoch (same creation instant), so this also
        // exercises the within-batch plan delta.
        let inst = instance(
            2,
            vec![
                order(0, 1, 2, 9.0, 8.0, 8.34),
                order(1, 1, 2, 9.0, 8.0, 8.34),
            ],
        );
        let result = sim(&inst).run(&mut FirstFeasible);
        assert_eq!(result.metrics.served, 2);
        assert_eq!(result.metrics.nuv, 2);
    }

    #[test]
    fn total_cost_identity_holds() {
        let inst = instance(
            3,
            vec![
                order(0, 1, 2, 2.0, 8.0, 20.0),
                order(1, 2, 3, 3.0, 9.0, 20.0),
                order(2, 3, 1, 4.0, 10.0, 20.0),
            ],
        );
        let result = sim(&inst).run(&mut FirstFeasible);
        let m = &result.metrics;
        let expect = inst.fleet.total_cost(m.nuv, m.ttl);
        assert!((m.total_cost - expect).abs() < 1e-9);
        assert_eq!(m.served + m.rejected, inst.num_orders());
    }

    #[test]
    fn vehicle_stats_are_consistent_with_aggregates() {
        let inst = instance(
            3,
            vec![
                order(0, 1, 2, 2.0, 8.0, 20.0),
                order(1, 3, 1, 3.0, 9.0, 20.0),
            ],
        );
        let result = sim(&inst).run(&mut FirstFeasible);
        assert_eq!(result.vehicles.len(), 3);
        let used = result.vehicles.iter().filter(|v| v.used).count();
        assert_eq!(used, result.metrics.nuv);
        let total: f64 = result.vehicles.iter().map(|v| v.travel_km).sum();
        assert!((total - result.metrics.ttl).abs() < 1e-9);
        let accepted: usize = result.vehicles.iter().map(|v| v.orders_accepted).sum();
        assert_eq!(accepted, result.metrics.served);
        for v in &result.vehicles {
            assert_eq!(v.used, v.orders_accepted > 0);
            assert!(v.travel_km >= 0.0);
        }
    }

    #[test]
    fn buffering_delays_decisions() {
        let inst = instance(1, vec![order(0, 1, 2, 5.0, 8.05, 20.0)]);
        let result = Simulator::builder(&inst)
            .fixed_interval(TimeDelta::from_minutes(30.0))
            .build()
            .unwrap()
            .run(&mut FirstFeasible);
        assert_eq!(result.metrics.served, 1);
        // Created 8:03, flushed at 8:30 -> 27 minutes response.
        let expect = 8.5 * 3600.0 - 8.05 * 3600.0;
        assert!((result.metrics.avg_response_secs - expect).abs() < 1e-6);
        assert!(result.assignments[0].time > TimePoint::from_hours(8.05));
    }

    #[test]
    fn hitchhike_reuses_vehicle() {
        // Second order lies exactly on the first's path and fits capacity:
        // the first-feasible dispatcher reuses vehicle 0 with no extra km.
        let inst = instance(
            2,
            vec![
                order(0, 1, 3, 4.0, 8.0, 20.0),
                order(1, 1, 3, 4.0, 8.0, 20.0),
            ],
        );
        let result = sim(&inst).run(&mut FirstFeasible);
        assert_eq!(result.metrics.nuv, 1);
        assert!((result.metrics.ttl - 60.0).abs() < 1e-9);
        assert!((result.assignments[1].incremental_length()).abs() < 1e-9);
    }

    #[test]
    fn order_created_exactly_on_flush_multiple_decides_at_that_flush() {
        // 8:30 is exactly the 17th multiple of a 30-minute period.
        let inst = instance(1, vec![order(0, 1, 2, 5.0, 8.5, 20.0)]);
        let s = Simulator::builder(&inst)
            .fixed_interval(TimeDelta::from_minutes(30.0))
            .build()
            .unwrap();
        assert_eq!(
            s.decision_time(TimePoint::from_hours(8.5)),
            TimePoint::from_hours(8.5),
        );
        let result = s.run(&mut FirstFeasible);
        assert_eq!(result.metrics.avg_response_secs, 0.0);
        assert_eq!(result.assignments[0].time, TimePoint::from_hours(8.5));
    }

    #[test]
    fn decision_time_boundary_survives_float_rounding() {
        // With an awkward period, created / period can round up past the
        // true quotient; the guard must keep created = k * period on flush
        // k. 0.1 s is the classic non-representable decimal.
        let inst = instance(1, vec![]);
        let s = Simulator::builder(&inst)
            .fixed_interval(TimeDelta::from_seconds(0.1))
            .build()
            .unwrap();
        for k in 1..2000u32 {
            let created = TimePoint::from_seconds(k as f64 * 0.1);
            let decided = s.decision_time(created);
            assert!(
                decided == created,
                "created at multiple {k} of 0.1 s delayed from {:?} to {:?}",
                created,
                decided
            );
        }
        // Orders strictly inside a period still wait for the next flush.
        let inside = s.decision_time(TimePoint::from_seconds(0.05));
        assert!((inside.seconds() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn non_positive_period_is_a_build_error() {
        let inst = instance(1, vec![]);
        for seconds in [0.0, -10.0] {
            let err = Simulator::builder(&inst)
                .fixed_interval(TimeDelta::from_seconds(seconds))
                .build()
                .unwrap_err();
            assert_eq!(err, SimBuildError::NonPositivePeriod { seconds });
            assert!(err.to_string().contains("must be positive"));
        }
    }

    #[test]
    fn horizon_drops_late_orders_as_rejections() {
        let inst = instance(
            2,
            vec![
                order(0, 1, 2, 2.0, 8.0, 20.0),
                order(1, 2, 3, 2.0, 15.0, 23.0),
            ],
        );
        let result = Simulator::builder(&inst)
            .horizon(TimePoint::from_hours(12.0))
            .build()
            .unwrap()
            .run(&mut FirstFeasible);
        assert_eq!(result.metrics.served, 1);
        assert_eq!(result.metrics.rejected, 1);
        assert_eq!(
            result.assignments[1].reason,
            DecisionReason::HorizonExceeded
        );
        // Dropped orders do not distort the response-time average.
        assert_eq!(result.metrics.avg_response_secs, 0.0);
    }

    #[test]
    fn metrics_options_suppress_logs_without_changing_aggregates() {
        let orders = vec![
            order(0, 1, 2, 2.0, 8.0, 20.0),
            order(1, 2, 3, 3.0, 9.0, 20.0),
        ];
        let inst = instance(2, orders);
        let full = sim(&inst).run(&mut FirstFeasible);
        let lean = Simulator::builder(&inst)
            .metrics(MetricsOptions {
                record_assignments: false,
                record_vehicle_stats: false,
            })
            .build()
            .unwrap()
            .run(&mut FirstFeasible);
        assert_eq!(full.metrics, lean.metrics);
        assert!(lean.assignments.is_empty());
        assert!(lean.vehicles.is_empty());
        assert_eq!(full.assignments.len(), 2);
        assert_eq!(full.vehicles.len(), 2);
    }

    #[test]
    fn unresolved_decisions_are_revalidated_not_trusted() {
        // A rogue dispatcher that never touches `DecisionBatch::resolve`
        // and claims every order for vehicle 0: the simulator must take
        // the re-validation path, honouring feasible claims and degrading
        // infeasible ones to rejections.
        struct ClaimVehicleZero;
        impl Dispatcher for ClaimVehicleZero {
            fn dispatch(
                &mut self,
                _ctx: &crate::dispatcher::DispatchContext<'_>,
            ) -> Option<dpdp_net::VehicleId> {
                unreachable!("batch override bypasses per-order dispatch")
            }
            fn dispatch_batch(&mut self, batch: &DecisionBatch<'_>) -> Vec<Decision> {
                batch
                    .order_ids()
                    .iter()
                    .map(|&oid| Decision::assigned(oid, dpdp_net::VehicleId(0)))
                    .collect()
            }
        }

        // Two heavy same-instant orders: vehicle 0 can only take one.
        let inst = instance(
            2,
            vec![
                order(0, 1, 2, 9.0, 8.0, 8.34),
                order(1, 1, 2, 9.0, 8.0, 8.34),
            ],
        );
        let result = sim(&inst).run(&mut ClaimVehicleZero);
        assert_eq!(result.metrics.served, 1);
        assert_eq!(result.metrics.rejected, 1);
        assert_eq!(result.assignments[0].vehicle, Some(dpdp_net::VehicleId(0)));
        assert_eq!(
            result.assignments[1].reason,
            DecisionReason::InfeasibleChoice,
            "bogus claim must degrade to a rejection"
        );
    }

    #[test]
    fn builder_carries_seed() {
        let inst = instance(1, vec![]);
        let s = Simulator::builder(&inst).seed(99).build().unwrap();
        assert_eq!(s.seed(), 99);
    }

    #[test]
    fn zero_threads_is_a_build_error() {
        let inst = instance(1, vec![]);
        let err = Simulator::builder(&inst)
            .num_threads(0)
            .build()
            .unwrap_err();
        assert_eq!(err, SimBuildError::ZeroThreads);
        assert!(err.to_string().contains("at least 1"));
    }

    #[test]
    fn zero_shards_is_a_config_error() {
        let err = ShardConfig::flat(0).unwrap_err();
        assert_eq!(err, SimBuildError::ZeroShards);
        assert!(err.to_string().contains("at least 1"));
    }

    #[test]
    fn episode_results_are_shard_count_invariant() {
        // Same fixture as the thread-parity test: multi-order epochs
        // exercise the sharded sweep and the per-commit column delta.
        let inst = instance(
            3,
            vec![
                order(0, 1, 2, 9.0, 8.0, 8.34),
                order(1, 1, 2, 9.0, 8.0, 8.34),
                order(2, 2, 3, 4.0, 9.0, 20.0),
                order(3, 3, 1, 4.0, 9.0, 20.0),
            ],
        );
        let flat = Simulator::builder(&inst)
            .build()
            .unwrap()
            .run(&mut FirstFeasible);
        let configs = [
            ShardConfig::flat(2).unwrap(),
            ShardConfig::flat(3).unwrap(),
            ShardConfig::flat(8).unwrap(),
            ShardConfig::flat_with(2, dpdp_net::ShardPolicy::Grid).unwrap(),
            ShardConfig::flat_with(8, dpdp_net::ShardPolicy::Grid).unwrap(),
            ShardConfig::hierarchical(2, 2).unwrap(),
            ShardConfig::hierarchical(2, 4).unwrap().escalation(0),
            ShardConfig::flat(4)
                .unwrap()
                .repartition(crate::sharding::RepartitionPolicy::Periodic {
                    every_epochs: 1,
                    min_orders: 1,
                })
                .unwrap(),
        ];
        for config in configs {
            let expect_shards = config.num_shards();
            let s = Simulator::builder(&inst)
                .sharding(config.clone())
                .build()
                .unwrap();
            assert_eq!(s.num_shards(), expect_shards);
            assert!(s.shard_map().is_some());
            let sharded = s.run(&mut FirstFeasible);
            assert_eq!(flat, sharded, "{config:?} diverged from the flat scan");
        }
    }

    #[test]
    fn episode_results_are_thread_count_invariant() {
        // Multi-order epochs (shared creation instants) exercise the
        // parallel B x K sweep and the per-commit plan delta.
        let inst = instance(
            3,
            vec![
                order(0, 1, 2, 9.0, 8.0, 8.34),
                order(1, 1, 2, 9.0, 8.0, 8.34),
                order(2, 2, 3, 4.0, 9.0, 20.0),
                order(3, 3, 1, 4.0, 9.0, 20.0),
            ],
        );
        let serial = Simulator::builder(&inst)
            .build()
            .unwrap()
            .run(&mut FirstFeasible);
        for threads in [2, 4] {
            let s = Simulator::builder(&inst)
                .num_threads(threads)
                .build()
                .unwrap();
            assert_eq!(s.num_threads(), threads);
            let parallel = s.run(&mut FirstFeasible);
            assert_eq!(serial, parallel, "{threads} threads diverged from serial");
        }
    }
}
