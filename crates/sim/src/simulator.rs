//! The episode simulator (paper Algorithm 1).

use crate::dispatcher::{DispatchContext, Dispatcher};
use crate::metrics::{AssignmentRecord, EpisodeMetrics, EpisodeResult};
use crate::state::VehicleState;
use dpdp_net::{Instance, TimeDelta, TimePoint};
use dpdp_routing::{PlannerOutput, RoutePlanner, VehicleView};

/// When dispatch decisions are made relative to order creation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BufferingMode {
    /// Process each order the moment it is created (the paper's deployed
    /// strategy; short response time).
    Immediate,
    /// Accumulate orders and flush them at fixed wall-clock multiples of the
    /// given period (the alternative strategy the paper evaluated and
    /// rejected for its ~154 s response times).
    FixedInterval(TimeDelta),
}

/// Simulator configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Buffering strategy for decision times.
    pub buffering: BufferingMode,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            buffering: BufferingMode::Immediate,
        }
    }
}

/// The episode simulator: replays an instance's orders against a fleet under
/// a given [`Dispatcher`].
#[derive(Debug)]
pub struct Simulator<'a> {
    instance: &'a Instance,
    config: SimConfig,
}

impl<'a> Simulator<'a> {
    /// Simulator with immediate service.
    pub fn new(instance: &'a Instance) -> Self {
        Simulator {
            instance,
            config: SimConfig::default(),
        }
    }

    /// Simulator with an explicit configuration.
    pub fn with_config(instance: &'a Instance, config: SimConfig) -> Self {
        Simulator { instance, config }
    }

    /// The instance being simulated.
    pub fn instance(&self) -> &Instance {
        self.instance
    }

    fn decision_time(&self, created: TimePoint) -> TimePoint {
        match self.config.buffering {
            BufferingMode::Immediate => created,
            BufferingMode::FixedInterval(period) => {
                let p = period.seconds().max(f64::EPSILON);
                let k = (created.seconds() / p).ceil();
                TimePoint::from_seconds(k * p)
            }
        }
    }

    /// Runs one full episode and returns the result. The dispatcher's
    /// `begin_episode` / `end_episode` hooks bracket the run.
    pub fn run(&self, dispatcher: &mut dyn Dispatcher) -> EpisodeResult {
        let instance = self.instance;
        let net = &instance.network;
        let fleet = &instance.fleet;
        let orders = instance.orders();
        dispatcher.begin_episode(instance);

        let mut states: Vec<VehicleState> = fleet
            .vehicles
            .iter()
            .map(VehicleState::new)
            .collect();
        let mut assignments = Vec::with_capacity(orders.len());
        let mut response_total = 0.0;

        for order in orders {
            let now = self.decision_time(order.created);
            response_total += (now - order.created).seconds();
            for s in &mut states {
                s.advance_to(now, net, fleet, orders);
            }
            let views: Vec<VehicleView> = states.iter().map(|s| s.view.clone()).collect();
            let planner = RoutePlanner::new(net, fleet, orders);
            let plans: Vec<PlannerOutput> =
                views.iter().map(|v| planner.plan(v, order)).collect();
            let interval = instance.grid.interval_of(now);
            let ctx = DispatchContext {
                order,
                now,
                interval,
                views: &views,
                plans: &plans,
                net,
                fleet,
                orders,
            };
            let choice = dispatcher
                .dispatch(&ctx)
                .filter(|k| plans[k.index()].feasible());
            match choice {
                Some(k) => {
                    let plan = &plans[k.index()];
                    let best = plan.best.as_ref().expect("choice filtered to feasible");
                    assignments.push(AssignmentRecord {
                        order: order.id,
                        vehicle: Some(k),
                        time: now,
                        interval,
                        prev_length: plan.current_length,
                        new_length: best.length(),
                        vehicle_was_used: states[k.index()].used(),
                    });
                    states[k.index()].accept(best.candidate.route.clone());
                }
                None => {
                    assignments.push(AssignmentRecord {
                        order: order.id,
                        vehicle: None,
                        time: now,
                        interval,
                        prev_length: 0.0,
                        new_length: 0.0,
                        vehicle_was_used: false,
                    });
                }
            }
        }

        let nuv = states.iter().filter(|s| s.used()).count();
        let vehicles: Vec<crate::metrics::VehicleStats> = states
            .iter()
            .map(|s| crate::metrics::VehicleStats {
                vehicle: s.view.vehicle,
                used: s.used(),
                travel_km: s.final_travel_length(net),
                orders_accepted: s.orders_accepted,
            })
            .collect();
        let ttl: f64 = vehicles.iter().map(|v| v.travel_km).sum();
        let served = assignments.iter().filter(|a| a.vehicle.is_some()).count();
        let rejected = assignments.len() - served;
        let metrics = EpisodeMetrics {
            nuv,
            ttl,
            total_cost: fleet.total_cost(nuv, ttl),
            served,
            rejected,
            avg_response_secs: if orders.is_empty() {
                0.0
            } else {
                response_total / orders.len() as f64
            },
        };
        dispatcher.end_episode();
        EpisodeResult {
            metrics,
            assignments,
            vehicles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatcher::FirstFeasible;
    use dpdp_net::{
        FleetConfig, IntervalGrid, Node, NodeId, Order, OrderId, Point, RoadNetwork,
        TimeDelta, TimePoint,
    };

    fn instance(num_vehicles: usize, orders: Vec<Order>) -> Instance {
        let nodes = vec![
            Node::depot(NodeId(0), Point::new(0.0, 0.0)),
            Node::factory(NodeId(1), Point::new(10.0, 0.0)),
            Node::factory(NodeId(2), Point::new(20.0, 0.0)),
            Node::factory(NodeId(3), Point::new(30.0, 0.0)),
        ];
        let net = RoadNetwork::euclidean(nodes, 1.0).unwrap();
        let fleet = FleetConfig::homogeneous(
            num_vehicles,
            &[NodeId(0)],
            10.0,
            500.0,
            2.0,
            60.0,
            TimeDelta::ZERO,
        )
        .unwrap();
        Instance::new(net, fleet, IntervalGrid::paper_default(), orders).unwrap()
    }

    fn order(id: u32, p: u32, d: u32, q: f64, created_h: f64, deadline_h: f64) -> Order {
        Order::new(
            OrderId(id),
            NodeId(p),
            NodeId(d),
            q,
            TimePoint::from_hours(created_h),
            TimePoint::from_hours(deadline_h),
        )
        .unwrap()
    }

    #[test]
    fn single_order_single_vehicle() {
        let inst = instance(1, vec![order(0, 1, 2, 5.0, 8.0, 20.0)]);
        let result = Simulator::new(&inst).run(&mut FirstFeasible);
        assert_eq!(result.metrics.nuv, 1);
        assert_eq!(result.metrics.served, 1);
        assert_eq!(result.metrics.rejected, 0);
        // Route 0 -> 1 -> 2 -> 0 = 40 km; TC = 500 + 2 * 40 = 580.
        assert!((result.metrics.ttl - 40.0).abs() < 1e-9);
        assert!((result.metrics.total_cost - 580.0).abs() < 1e-9);
        assert_eq!(result.metrics.avg_response_secs, 0.0);
    }

    #[test]
    fn infeasible_order_is_rejected() {
        // Deadline before any vehicle can reach the delivery node.
        let inst = instance(1, vec![order(0, 1, 2, 5.0, 8.0, 8.01)]);
        let result = Simulator::new(&inst).run(&mut FirstFeasible);
        assert_eq!(result.metrics.served, 0);
        assert_eq!(result.metrics.rejected, 1);
        assert_eq!(result.metrics.nuv, 0);
        assert_eq!(result.metrics.ttl, 0.0);
        assert_eq!(result.assignments[0].vehicle, None);
    }

    #[test]
    fn capacity_forces_second_vehicle() {
        // Two simultaneous heavy orders on the same lane: capacity (9+9 > 10)
        // forbids carrying both, and the deadlines are too tight to serve
        // them sequentially, so a second vehicle is needed.
        let inst = instance(
            2,
            vec![
                order(0, 1, 2, 9.0, 8.0, 8.34),
                order(1, 1, 2, 9.0, 8.0, 8.34),
            ],
        );
        let result = Simulator::new(&inst).run(&mut FirstFeasible);
        assert_eq!(result.metrics.served, 2);
        assert_eq!(result.metrics.nuv, 2);
    }

    #[test]
    fn total_cost_identity_holds() {
        let inst = instance(
            3,
            vec![
                order(0, 1, 2, 2.0, 8.0, 20.0),
                order(1, 2, 3, 3.0, 9.0, 20.0),
                order(2, 3, 1, 4.0, 10.0, 20.0),
            ],
        );
        let result = Simulator::new(&inst).run(&mut FirstFeasible);
        let m = &result.metrics;
        let expect = inst.fleet.total_cost(m.nuv, m.ttl);
        assert!((m.total_cost - expect).abs() < 1e-9);
        assert_eq!(m.served + m.rejected, inst.num_orders());
    }

    #[test]
    fn vehicle_stats_are_consistent_with_aggregates() {
        let inst = instance(
            3,
            vec![
                order(0, 1, 2, 2.0, 8.0, 20.0),
                order(1, 3, 1, 3.0, 9.0, 20.0),
            ],
        );
        let result = Simulator::new(&inst).run(&mut FirstFeasible);
        assert_eq!(result.vehicles.len(), 3);
        let used = result.vehicles.iter().filter(|v| v.used).count();
        assert_eq!(used, result.metrics.nuv);
        let total: f64 = result.vehicles.iter().map(|v| v.travel_km).sum();
        assert!((total - result.metrics.ttl).abs() < 1e-9);
        let accepted: usize = result.vehicles.iter().map(|v| v.orders_accepted).sum();
        assert_eq!(accepted, result.metrics.served);
        for v in &result.vehicles {
            assert_eq!(v.used, v.orders_accepted > 0);
            assert!(v.travel_km >= 0.0);
        }
    }

    #[test]
    fn buffering_delays_decisions() {
        let inst = instance(1, vec![order(0, 1, 2, 5.0, 8.05, 20.0)]);
        let cfg = SimConfig {
            buffering: BufferingMode::FixedInterval(TimeDelta::from_minutes(30.0)),
        };
        let result = Simulator::with_config(&inst, cfg).run(&mut FirstFeasible);
        assert_eq!(result.metrics.served, 1);
        // Created 8:03, flushed at 8:30 -> 27 minutes response.
        let expect = 8.5 * 3600.0 - 8.05 * 3600.0;
        assert!((result.metrics.avg_response_secs - expect).abs() < 1e-6);
        assert!(result.assignments[0].time > TimePoint::from_hours(8.05));
    }

    #[test]
    fn hitchhike_reuses_vehicle() {
        // Second order lies exactly on the first's path and fits capacity:
        // the first-feasible dispatcher reuses vehicle 0 with no extra km.
        let inst = instance(
            2,
            vec![
                order(0, 1, 3, 4.0, 8.0, 20.0),
                order(1, 1, 3, 4.0, 8.0, 20.0),
            ],
        );
        let result = Simulator::new(&inst).run(&mut FirstFeasible);
        assert_eq!(result.metrics.nuv, 1);
        assert!((result.metrics.ttl - 60.0).abs() < 1e-9);
        assert!((result.assignments[1].incremental_length()).abs() < 1e-9);
    }
}
