//! Episode outcome metrics: NUV, TTL, TC (Section V-A of the paper).

use dpdp_net::{OrderId, TimePoint, VehicleId};
use serde::{Deserialize, Serialize};

/// One dispatch decision recorded by the simulator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AssignmentRecord {
    /// The order assigned (or rejected).
    pub order: OrderId,
    /// The serving vehicle, or `None` if the order was rejected.
    pub vehicle: Option<VehicleId>,
    /// Decision time.
    pub time: TimePoint,
    /// Time-interval index of the decision.
    pub interval: usize,
    /// Remaining-route length of the chosen vehicle before the assignment
    /// (`d_{t,k}`), km. Zero for rejections.
    pub prev_length: f64,
    /// Remaining-route length after the assignment (`d^i_{t,k}`), km.
    pub new_length: f64,
    /// Whether the chosen vehicle had been used before this assignment.
    pub vehicle_was_used: bool,
}

impl AssignmentRecord {
    /// Incremental distance `Δd` caused by the assignment, km.
    #[inline]
    pub fn incremental_length(&self) -> f64 {
        self.new_length - self.prev_length
    }
}

/// Aggregate metrics of one episode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpisodeMetrics {
    /// Number of Used Vehicles.
    pub nuv: usize,
    /// Total Travel Length over all used vehicles, km (committed plus
    /// remaining-route distance at episode end).
    pub ttl: f64,
    /// Total Cost `TC = mu * NUV + delta * TTL`.
    pub total_cost: f64,
    /// Orders successfully assigned.
    pub served: usize,
    /// Orders no vehicle could feasibly take (or the dispatcher declined).
    pub rejected: usize,
    /// Mean seconds between an order's creation and its dispatch decision.
    /// Zero under immediate service; positive under buffering (Section IV-D).
    pub avg_response_secs: f64,
}

/// Per-vehicle end-of-episode statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VehicleStats {
    /// The vehicle.
    pub vehicle: VehicleId,
    /// Whether the vehicle served anything.
    pub used: bool,
    /// Total travel length (committed + remaining), km.
    pub travel_km: f64,
    /// Orders accepted over the episode.
    pub orders_accepted: usize,
}

/// Full outcome of one simulated episode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpisodeResult {
    /// Aggregate metrics.
    pub metrics: EpisodeMetrics,
    /// Per-order dispatch log in processing order.
    pub assignments: Vec<AssignmentRecord>,
    /// Per-vehicle statistics, dense by vehicle id.
    pub vehicles: Vec<VehicleStats>,
}

impl EpisodeResult {
    /// Convenience accessor: number of used vehicles.
    #[inline]
    pub fn nuv(&self) -> usize {
        self.metrics.nuv
    }

    /// Convenience accessor: total cost.
    #[inline]
    pub fn total_cost(&self) -> f64 {
        self.metrics.total_cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incremental_length() {
        let r = AssignmentRecord {
            order: OrderId(0),
            vehicle: Some(VehicleId(1)),
            time: TimePoint::ZERO,
            interval: 0,
            prev_length: 12.0,
            new_length: 20.0,
            vehicle_was_used: true,
        };
        assert!((r.incremental_length() - 8.0).abs() < 1e-12);
    }
}
