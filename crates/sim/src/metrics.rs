//! Episode outcome metrics: NUV, TTL, TC (Section V-A of the paper).

use crate::batch::DecisionReason;
use crate::state::VehicleState;
use dpdp_net::{FleetConfig, OrderId, RoadNetwork, TimePoint, VehicleId};
use serde::{Deserialize, Serialize};

/// One dispatch decision recorded by the simulator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AssignmentRecord {
    /// The order assigned (or rejected).
    pub order: OrderId,
    /// The serving vehicle, or `None` if the order was rejected.
    pub vehicle: Option<VehicleId>,
    /// Why the decision turned out this way.
    pub reason: DecisionReason,
    /// Decision time.
    pub time: TimePoint,
    /// Time-interval index of the decision.
    pub interval: usize,
    /// Remaining-route length of the chosen vehicle before the assignment
    /// (`d_{t,k}`), km. Zero for rejections.
    pub prev_length: f64,
    /// Remaining-route length after the assignment (`d^i_{t,k}`), km.
    pub new_length: f64,
    /// Whether the chosen vehicle had been used before this assignment.
    pub vehicle_was_used: bool,
}

impl AssignmentRecord {
    /// Incremental distance `Δd` caused by the assignment, km.
    #[inline]
    pub fn incremental_length(&self) -> f64 {
        self.new_length - self.prev_length
    }

    /// Record for a committed assignment, reading the route lengths off the
    /// validated plan.
    ///
    /// # Panics
    /// Panics if `plan` has no best route.
    pub(crate) fn assigned(
        order: OrderId,
        vehicle: VehicleId,
        time: TimePoint,
        interval: usize,
        plan: &dpdp_routing::PlannerOutput,
        vehicle_was_used: bool,
    ) -> Self {
        let best = plan
            .best
            .as_ref()
            .expect("assigned record needs a feasible plan");
        AssignmentRecord {
            order,
            vehicle: Some(vehicle),
            reason: DecisionReason::Assigned,
            time,
            interval,
            prev_length: plan.current_length,
            new_length: best.length(),
            vehicle_was_used,
        }
    }

    /// Record for a rejection.
    pub(crate) fn rejected(
        order: OrderId,
        reason: DecisionReason,
        time: TimePoint,
        interval: usize,
    ) -> Self {
        AssignmentRecord {
            order,
            vehicle: None,
            reason,
            time,
            interval,
            prev_length: 0.0,
            new_length: 0.0,
            vehicle_was_used: false,
        }
    }
}

/// Per-[`DecisionReason`] rejection tallies of one episode, so
/// infeasibility and policy-rejection rates (and, under region sharding,
/// the escalation outcomes they reflect) are observable without replaying
/// the assignment log.
///
/// Rejection *reasons* are part of the decision stream, so these counts are
/// bit-identical across thread counts, shard counts and planner modes —
/// the batch-parity suite compares them as part of [`EpisodeMetrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RejectionCounts {
    /// No vehicle had a feasible insertion
    /// ([`DecisionReason::NoFeasibleVehicle`]).
    pub no_feasible_vehicle: usize,
    /// Feasible vehicles existed but the policy declined them all
    /// ([`DecisionReason::PolicyRejected`]).
    pub policy_rejected: usize,
    /// The policy chose a vehicle whose plan failed commit-time validation
    /// ([`DecisionReason::InfeasibleChoice`]).
    pub infeasible_choice: usize,
    /// The order's decision epoch fell beyond the simulation horizon
    /// ([`DecisionReason::HorizonExceeded`]).
    pub horizon_exceeded: usize,
    /// The order was cancelled by a disruption event, before dispatch or by
    /// revoking its assignment while the pickup was still undriven
    /// ([`DecisionReason::Cancelled`]).
    pub cancelled: usize,
    /// The order's serving vehicle broke down after the pickup, stranding
    /// the cargo ([`DecisionReason::VehicleLost`]).
    pub vehicle_lost: usize,
}

impl RejectionCounts {
    /// Total rejections across all reasons (equals
    /// [`EpisodeMetrics::rejected`]).
    pub fn total(&self) -> usize {
        self.no_feasible_vehicle
            + self.policy_rejected
            + self.infeasible_choice
            + self.horizon_exceeded
            + self.cancelled
            + self.vehicle_lost
    }

    /// Tallies one rejection. [`DecisionReason::Assigned`] is not a
    /// rejection and is ignored. Public so streaming observers (e.g.
    /// `dpdp-core`'s evaluation probe) can maintain the same breakdown
    /// from the decision stream.
    pub fn record(&mut self, reason: DecisionReason) {
        match reason {
            DecisionReason::Assigned => {}
            DecisionReason::NoFeasibleVehicle => self.no_feasible_vehicle += 1,
            DecisionReason::PolicyRejected => self.policy_rejected += 1,
            DecisionReason::InfeasibleChoice => self.infeasible_choice += 1,
            DecisionReason::HorizonExceeded => self.horizon_exceeded += 1,
            DecisionReason::Cancelled => self.cancelled += 1,
            DecisionReason::VehicleLost => self.vehicle_lost += 1,
        }
    }
}

/// Aggregate metrics of one episode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpisodeMetrics {
    /// Number of Used Vehicles.
    pub nuv: usize,
    /// Total Travel Length over all used vehicles, km (committed plus
    /// remaining-route distance at episode end).
    pub ttl: f64,
    /// Total Cost `TC = mu * NUV + delta * TTL`.
    pub total_cost: f64,
    /// Orders successfully assigned.
    pub served: usize,
    /// Orders no vehicle could feasibly take (or the dispatcher declined).
    pub rejected: usize,
    /// Rejections broken down by [`DecisionReason`]
    /// (`rejections.total() == rejected`).
    pub rejections: RejectionCounts,
    /// Mean seconds between an order's creation and its dispatch decision.
    /// Zero under immediate service; positive under buffering (Section IV-D).
    pub avg_response_secs: f64,
}

/// Per-vehicle end-of-episode statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VehicleStats {
    /// The vehicle.
    pub vehicle: VehicleId,
    /// Whether the vehicle served anything.
    pub used: bool,
    /// Total travel length (committed + remaining), km.
    pub travel_km: f64,
    /// Orders accepted over the episode.
    pub orders_accepted: usize,
}

/// Full outcome of one simulated episode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpisodeResult {
    /// Aggregate metrics.
    pub metrics: EpisodeMetrics,
    /// Per-order dispatch log in processing order.
    pub assignments: Vec<AssignmentRecord>,
    /// Per-vehicle statistics, dense by vehicle id.
    pub vehicles: Vec<VehicleStats>,
}

impl EpisodeResult {
    /// Convenience accessor: number of used vehicles.
    #[inline]
    pub fn nuv(&self) -> usize {
        self.metrics.nuv
    }

    /// Convenience accessor: total cost.
    #[inline]
    pub fn total_cost(&self) -> f64 {
        self.metrics.total_cost
    }
}

/// Which parts of an [`EpisodeResult`] the simulator should materialise.
///
/// Aggregate [`EpisodeMetrics`] are always computed; the per-order and
/// per-vehicle logs can be switched off to keep long sweeps (training runs,
/// benchmarks) allocation-light.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricsOptions {
    /// Keep the per-order [`AssignmentRecord`] log (default `true`).
    pub record_assignments: bool,
    /// Keep the per-vehicle [`VehicleStats`] (default `true`).
    pub record_vehicle_stats: bool,
}

impl Default for MetricsOptions {
    fn default() -> Self {
        MetricsOptions {
            record_assignments: true,
            record_vehicle_stats: true,
        }
    }
}

/// Streaming accumulator behind the simulator's episode bookkeeping —
/// consumes one [`AssignmentRecord`] per decision and finishes into an
/// [`EpisodeResult`].
#[derive(Debug)]
pub(crate) struct MetricsAccumulator {
    options: MetricsOptions,
    assignments: Vec<AssignmentRecord>,
    served: usize,
    rejected: usize,
    rejections: RejectionCounts,
    response_total: f64,
    responses_counted: usize,
}

impl MetricsAccumulator {
    pub(crate) fn new(options: MetricsOptions, capacity: usize) -> Self {
        MetricsAccumulator {
            options,
            assignments: if options.record_assignments {
                Vec::with_capacity(capacity)
            } else {
                Vec::new()
            },
            served: 0,
            rejected: 0,
            rejections: RejectionCounts::default(),
            response_total: 0.0,
            responses_counted: 0,
        }
    }

    /// Accounts one decision. `response_secs` is `None` for orders the
    /// simulator never dispatched (beyond the horizon), which are excluded
    /// from the response-time average.
    pub(crate) fn record(&mut self, record: AssignmentRecord, response_secs: Option<f64>) {
        if record.vehicle.is_some() {
            self.served += 1;
        } else {
            self.rejected += 1;
            self.rejections.record(record.reason);
        }
        if let Some(secs) = response_secs {
            self.response_total += secs;
            self.responses_counted += 1;
        }
        if self.options.record_assignments {
            self.assignments.push(record);
        }
    }

    /// Flips a previously recorded assignment of `order` into a rejection
    /// with `reason` — a post-assignment cancellation or a breakdown that
    /// lost the picked-up cargo. The order's log entry is rewritten in
    /// place as a rejection stamped with the disruption's time and
    /// interval; the original response-time sample is kept (the dispatch
    /// decision did happen).
    pub(crate) fn revoke_to_rejection(
        &mut self,
        order: OrderId,
        reason: DecisionReason,
        time: TimePoint,
        interval: usize,
    ) {
        debug_assert!(self.served > 0, "revoking with no assignment on record");
        self.served -= 1;
        self.rejected += 1;
        self.rejections.record(reason);
        if self.options.record_assignments {
            if let Some(idx) = self.assignments.iter().rposition(|r| r.order == order) {
                self.assignments[idx] = AssignmentRecord::rejected(order, reason, time, interval);
            }
        }
    }

    /// Withdraws a previously recorded assignment of `order` entirely: the
    /// order goes back into the dispatch queue (a breakdown stranded it
    /// before pickup), so its *next* decision — not this one — is the one
    /// the episode log keeps. `response_secs` is the sample the withdrawn
    /// decision contributed to the response-time average; it is subtracted
    /// so the average covers exactly the decisions the episode kept.
    pub(crate) fn withdraw_assignment(&mut self, order: OrderId, response_secs: f64) {
        debug_assert!(self.served > 0, "withdrawing with no assignment on record");
        self.served -= 1;
        self.response_total -= response_secs;
        self.responses_counted = self.responses_counted.saturating_sub(1);
        if self.options.record_assignments {
            if let Some(idx) = self.assignments.iter().rposition(|r| r.order == order) {
                self.assignments.remove(idx);
            }
        }
    }

    pub(crate) fn finish(
        self,
        states: &[VehicleState],
        net: &RoadNetwork,
        fleet: &FleetConfig,
    ) -> EpisodeResult {
        let nuv = states.iter().filter(|s| s.used()).count();
        let lengths: Vec<f64> = states.iter().map(|s| s.final_travel_length(net)).collect();
        let ttl: f64 = lengths.iter().sum();
        let vehicles = if self.options.record_vehicle_stats {
            states
                .iter()
                .zip(&lengths)
                .map(|(s, &travel_km)| VehicleStats {
                    vehicle: s.view.vehicle,
                    used: s.used(),
                    travel_km,
                    orders_accepted: s.orders_accepted,
                })
                .collect()
        } else {
            Vec::new()
        };
        let metrics = EpisodeMetrics {
            nuv,
            ttl,
            total_cost: fleet.total_cost(nuv, ttl),
            served: self.served,
            rejected: self.rejected,
            rejections: self.rejections,
            avg_response_secs: if self.responses_counted == 0 {
                0.0
            } else {
                self.response_total / self.responses_counted as f64
            },
        };
        EpisodeResult {
            metrics,
            assignments: self.assignments,
            vehicles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejection_counts_tally_by_reason() {
        let mut acc = MetricsAccumulator::new(MetricsOptions::default(), 4);
        let t = TimePoint::ZERO;
        acc.record(
            AssignmentRecord::rejected(OrderId(0), DecisionReason::NoFeasibleVehicle, t, 0),
            Some(0.0),
        );
        acc.record(
            AssignmentRecord::rejected(OrderId(1), DecisionReason::PolicyRejected, t, 0),
            Some(0.0),
        );
        acc.record(
            AssignmentRecord::rejected(OrderId(2), DecisionReason::HorizonExceeded, t, 0),
            None,
        );
        acc.record(
            AssignmentRecord::rejected(OrderId(3), DecisionReason::InfeasibleChoice, t, 0),
            Some(0.0),
        );
        let result = acc.finish(&[], &RoadNetwork::euclidean(vec![], 1.0).unwrap(), {
            // A fleet is only read for total_cost; a minimal one suffices.
            &FleetConfig::homogeneous(
                1,
                &[dpdp_net::NodeId(0)],
                1.0,
                1.0,
                1.0,
                1.0,
                dpdp_net::TimeDelta::ZERO,
            )
            .unwrap()
        });
        let r = result.metrics.rejections;
        assert_eq!(r.no_feasible_vehicle, 1);
        assert_eq!(r.policy_rejected, 1);
        assert_eq!(r.horizon_exceeded, 1);
        assert_eq!(r.infeasible_choice, 1);
        assert_eq!(r.total(), result.metrics.rejected);
    }

    #[test]
    fn revoke_and_withdraw_keep_the_totals_invariant() {
        // The breakdown totals invariant: after any mix of assignments,
        // rejections, post-assignment cancellations, lost cargo and
        // stranded-order re-dispatch, `assigned + sum(rejected by reason)`
        // equals the number of orders with a final decision.
        let fleet = FleetConfig::homogeneous(
            1,
            &[dpdp_net::NodeId(0)],
            1.0,
            1.0,
            1.0,
            1.0,
            dpdp_net::TimeDelta::ZERO,
        )
        .unwrap();
        let net = RoadNetwork::euclidean(vec![], 1.0).unwrap();
        let mut acc = MetricsAccumulator::new(MetricsOptions::default(), 5);
        let t = TimePoint::ZERO;
        let assigned = |order: u32| AssignmentRecord {
            order: OrderId(order),
            vehicle: Some(VehicleId(0)),
            reason: DecisionReason::Assigned,
            time: t,
            interval: 0,
            prev_length: 0.0,
            new_length: 1.0,
            vehicle_was_used: false,
        };
        // Orders 0-3 assigned, order 4 rejected outright.
        for o in 0..4 {
            acc.record(assigned(o), Some(0.0));
        }
        acc.record(
            AssignmentRecord::rejected(OrderId(4), DecisionReason::NoFeasibleVehicle, t, 0),
            Some(0.0),
        );
        // Order 1 cancelled after assignment, order 2 lost to a breakdown,
        // order 3 stranded (withdrawn) and later re-assigned.
        acc.revoke_to_rejection(OrderId(1), DecisionReason::Cancelled, t, 0);
        acc.revoke_to_rejection(OrderId(2), DecisionReason::VehicleLost, t, 0);
        acc.withdraw_assignment(OrderId(3), 0.0);
        acc.record(assigned(3), Some(5.0));
        let result = acc.finish(&[], &net, &fleet);
        let m = &result.metrics;
        assert_eq!(m.served, 2);
        assert_eq!(m.rejected, 3);
        assert_eq!(m.rejections.cancelled, 1);
        assert_eq!(m.rejections.vehicle_lost, 1);
        assert_eq!(m.rejections.no_feasible_vehicle, 1);
        assert_eq!(m.served + m.rejections.total(), 5, "totals invariant");
        // The log keeps exactly one final record per order.
        assert_eq!(result.assignments.len(), 5);
        let rec = |o: u32| {
            result
                .assignments
                .iter()
                .find(|r| r.order == OrderId(o))
                .unwrap()
        };
        assert_eq!(rec(1).reason, DecisionReason::Cancelled);
        assert_eq!(rec(1).vehicle, None);
        assert_eq!(rec(2).reason, DecisionReason::VehicleLost);
        assert_eq!(rec(3).reason, DecisionReason::Assigned);
        assert_eq!(rec(0).reason, DecisionReason::Assigned);
    }

    #[test]
    fn incremental_length() {
        let r = AssignmentRecord {
            order: OrderId(0),
            vehicle: Some(VehicleId(1)),
            reason: DecisionReason::Assigned,
            time: TimePoint::ZERO,
            interval: 0,
            prev_length: 12.0,
            new_length: 20.0,
            vehicle_was_used: true,
        };
        assert!((r.incremental_length() - 8.0).abs() < 1e-12);
    }
}
