//! The event-driven episode engine.
//!
//! [`Simulator::run_events`] drives one episode off a deterministic merged
//! stream of [`SimEvent`]s instead of a scan over a pre-sorted order
//! table. The engine owns a growable order table (replayed orders keep
//! their dense ids; streamed orders are appended with the next id),
//! buffers arrivals until their decision time, and flushes a decision
//! epoch the moment the merged stream proves no earlier event can arrive:
//!
//! ```text
//! loop {
//!     if the next event's time <= the earliest pending decision time {
//!         apply the event  (arrival / cancel / breakdown / recovery / flush)
//!     } else {
//!         flush the due epoch through one dispatch_batch call
//!     }
//! }
//! ```
//!
//! With a lone [`ReplaySource`](crate::event::ReplaySource) this grouping
//! is provably the legacy one — arrivals are creation-sorted and decision
//! times are monotone, so an epoch closes exactly when the next order's
//! decision time differs — and `tests/event_parity.rs` asserts the
//! resulting episodes are bit-identical to the retained
//! [`Simulator::run_reference`] scan loop for every policy, shard count
//! and thread count.
//!
//! Disruption events mutate the authoritative vehicle states *between*
//! epochs: cancellations drop buffered orders or shorten a committed route
//! (`Route::remove_order` surgery), breakdowns strand undriven pickups
//! back into the dispatch queue (they re-enter the next epoch as
//! re-dispatchable arrivals) and write off onboard cargo, and broken
//! vehicles are masked out of every [`DecisionBatch`] until they recover.

use crate::batch::{Decision, DecisionBatch, DecisionReason, EpochScratch};
use crate::dispatcher::Dispatcher;
use crate::event::{EventMux, EventSource, SimEvent, StreamCommand, StreamSource};
use crate::metrics::{AssignmentRecord, EpisodeResult, MetricsAccumulator};
use crate::observer::{CancelOutcome, DisruptionKind, DisruptionRecord, EpochInfo, SimObserver};
use crate::sharding::ShardRuntime;
use crate::simulator::{EpisodeSink, Simulator};
use crate::state::VehicleState;
use dpdp_net::{Order, OrderId, TimePoint, VehicleId};
use dpdp_routing::{RoutePlanner, StopAction};
use std::sync::mpsc::Receiver;
use std::sync::Arc;

/// One buffered order waiting for its decision epoch.
#[derive(Debug, Clone, Copy)]
struct PendingOrder {
    id: OrderId,
    /// The epoch instant this order is decided at: its creation's decision
    /// time for fresh arrivals, the breakdown instant's decision time for
    /// stranded re-dispatches.
    due: TimePoint,
}

impl<'a> Simulator<'a> {
    /// Runs one episode fed by `sources` — the engine underneath
    /// [`Simulator::run_observed`] (replay) and [`Simulator::serve`]
    /// (live streams), exposed for custom source stacks.
    ///
    /// Events are merged deterministically (see [`crate::event`]); the
    /// episode ends when every source is exhausted and every buffered
    /// order has been decided. Orders arriving with a timestamp already in
    /// the past are clamped to the current simulation clock.
    ///
    /// # Panics
    /// Panics if the dispatcher violates the `dispatch_batch` contract.
    pub fn run_events(
        &self,
        sources: Vec<Box<dyn EventSource + '_>>,
        dispatcher: &mut dyn Dispatcher,
        observers: &mut [&mut dyn SimObserver],
    ) -> EpisodeResult {
        let instance = self.instance;
        let net = &instance.network;
        let fleet = &instance.fleet;
        dispatcher.begin_episode(instance);
        let mut sink = EpisodeSink {
            observers,
            acc: MetricsAccumulator::new(self.metrics, instance.num_orders()),
            fleet,
            net,
        };
        sink.begin(instance);

        let mut states: Vec<VehicleState> = fleet.vehicles.iter().map(VehicleState::new).collect();
        // The engine-owned order table, pre-seeded with the instance's
        // table so replayed orders keep their dense ids no matter how
        // stream arrivals interleave in time; streamed orders append
        // strictly after it, which is what lets a producer (and the
        // disruption source) predict ids for cancellation targeting.
        let mut table: Vec<Order> = instance.orders().to_vec();
        // Which pre-seeded orders have actually arrived (a resident order
        // only joins dispatch once its arrival event fires).
        let mut arrived: Vec<bool> = vec![false; table.len()];
        // Current assignee and response-time sample per order (dense by
        // order id), for cancellation and breakdown bookkeeping.
        let mut assigned_to: Vec<Option<(VehicleId, f64)>> = vec![None; table.len()];
        let mut pending: Vec<PendingOrder> = Vec::new();
        let mut mux = EventMux::new(sources);
        let mut shard_rt = self.shard_runtime();
        let mut epoch_index = 0usize;
        let mut clock = TimePoint::ZERO;
        // Per-epoch planning arena, reused across the whole session:
        // cleared at each batch build, never freed (see `EpochScratch`).
        let mut scratch = EpochScratch::default();

        loop {
            let next_due =
                pending
                    .iter()
                    .map(|p| p.due)
                    .reduce(|a, b| if b.seconds() < a.seconds() { b } else { a });
            let take_event = match (next_due, mux.peek_time()) {
                (None, None) => break,
                (None, Some(_)) => true,
                (Some(_), None) => false,
                // An event exactly at the flush instant belongs to the
                // epoch (a same-instant arrival joins it, a same-instant
                // breakdown masks its vehicle out of it).
                (Some(due), Some(t)) => t.seconds() <= due.seconds(),
            };
            if !take_event {
                let now = next_due.expect("flush branch requires a due epoch");
                let mut epoch_ids: Vec<OrderId> = Vec::new();
                pending.retain(|p| {
                    if p.due.seconds() == now.seconds() {
                        epoch_ids.push(p.id);
                        false
                    } else {
                        true
                    }
                });
                self.run_epoch(
                    &mut sink,
                    &mut states,
                    &table,
                    epoch_ids,
                    now,
                    &mut epoch_index,
                    &mut assigned_to,
                    &mut shard_rt,
                    &mut scratch,
                    dispatcher,
                );
                continue;
            }
            let ev = mux.pop().expect("event branch requires a live head");
            let time = ev.time.max(clock);
            clock = time;
            match ev.event {
                SimEvent::OrderArrival(mut order) => {
                    // Streamed orders must reference this instance's
                    // factories; anything else is dropped (replayed orders
                    // were validated at instance construction).
                    if order.validate_against(net).is_err() {
                        continue;
                    }
                    let idx = order.id.index();
                    let id = if idx < arrived.len() && !arrived[idx] && table[idx] == order {
                        // A pre-seeded (replayed) order arriving under its
                        // own id.
                        arrived[idx] = true;
                        order.id
                    } else {
                        // A streamed/new order: appended after the
                        // instance table with the next dense id.
                        let id = OrderId::from_index(table.len());
                        order.id = id;
                        table.push(order);
                        assigned_to.push(None);
                        id
                    };
                    let due = self.decision_time(time);
                    pending.push(PendingOrder { id, due });
                }
                SimEvent::OrderCancelled(oid) => {
                    if oid.index() >= table.len() {
                        continue; // never arrived; nothing to cancel
                    }
                    let outcome = self.apply_cancellation(
                        &mut sink,
                        &mut states,
                        &table,
                        &mut pending,
                        &mut assigned_to,
                        oid,
                        time,
                    );
                    let vehicle = match outcome {
                        CancelOutcome::AfterAssignment => {
                            assigned_to[oid.index()].take().map(|(k, _)| k)
                        }
                        _ => None,
                    };
                    sink.disruption(&DisruptionRecord {
                        time,
                        kind: DisruptionKind::OrderCancelled {
                            order: oid,
                            outcome,
                            vehicle,
                        },
                    });
                }
                SimEvent::VehicleBreakdown(v) => {
                    if v.index() >= states.len() || states[v.index()].broken {
                        continue;
                    }
                    let state = &mut states[v.index()];
                    state.advance_to(time, net, fleet, &table);
                    let outcome = state.break_down();
                    let interval = instance.grid.interval_of(time);
                    for &oid in &outcome.stranded {
                        // Back into the queue: the earlier assignment — its
                        // response-time sample included — is withdrawn and
                        // the order's next decision is the one the episode
                        // keeps.
                        let response = assigned_to[oid.index()].take().map_or(0.0, |(_, r)| r);
                        sink.acc.withdraw_assignment(oid, response);
                        pending.push(PendingOrder {
                            id: oid,
                            due: self.decision_time(time),
                        });
                    }
                    for &oid in &outcome.lost {
                        sink.acc.revoke_to_rejection(
                            oid,
                            DecisionReason::VehicleLost,
                            time,
                            interval,
                        );
                        assigned_to[oid.index()] = None;
                    }
                    sink.disruption(&DisruptionRecord {
                        time,
                        kind: DisruptionKind::VehicleBreakdown {
                            vehicle: v,
                            stranded: outcome.stranded,
                            lost: outcome.lost,
                        },
                    });
                }
                SimEvent::VehicleRecovered(v) => {
                    if v.index() >= states.len() || !states[v.index()].broken {
                        continue;
                    }
                    let state = &mut states[v.index()];
                    state.advance_to(time, net, fleet, &table);
                    state.recover();
                    sink.disruption(&DisruptionRecord {
                        time,
                        kind: DisruptionKind::VehicleRecovered { vehicle: v },
                    });
                }
                // A pure heartbeat: consuming it advanced the clock's
                // knowledge, which is all it is for.
                SimEvent::EpochFlush => {}
            }
        }

        dispatcher.end_episode();
        sink.finish(&states)
    }

    /// Serves a live episode: the instance's order table replays while a
    /// producer thread pushes [`StreamCommand`]s through `rx` — the
    /// simulator as a serving loop. The episode's virtual clock advances
    /// only as far as *every* source has spoken, so buffered epochs flush
    /// when a later-stamped command arrives (or a
    /// [`StreamCommand::Flush`] heartbeat passes them) and the episode
    /// ends once the channel hangs up and the replay is exhausted.
    ///
    /// Pushed orders get ids sequentially after the replayed table. Any
    /// armed [`SimulatorBuilder::disruptions`] config rides along exactly
    /// as in [`Simulator::run_observed`].
    ///
    /// # EOF contract
    ///
    /// Dropping every sending half of `rx` — deliberately, or because the
    /// producer thread (or its network connection) died mid-episode — is
    /// the stream's end-of-file, **never** an error: the engine treats the
    /// hang-up as "no further event can arrive", flushes every still
    /// buffered epoch in due order, decides their orders, and returns the
    /// complete [`EpisodeResult`]. It does not hang and it does not panic.
    /// A receiver dropped before any command was sent yields exactly the
    /// replay-only episode of [`Simulator::run`]. `dpdp-server` leans on
    /// this to drain tenant sessions on `DRAIN` frames and on abrupt
    /// disconnects alike.
    ///
    /// # Determinism and journaled recovery
    ///
    /// An episode is a pure function of the builder configuration and the
    /// ordered command sequence: re-running `serve` with the same
    /// instance, seed, buffering mode, and commands lands bit-identical
    /// decisions and [`EpisodeMetrics`](crate::EpisodeMetrics). This is
    /// the property `dpdp-server`'s write-ahead session journal builds
    /// on — after a crash it replays the journaled commands through a
    /// fresh `serve` call and the episode resumes exactly where the wire
    /// left off.
    ///
    /// [`SimulatorBuilder::disruptions`]:
    ///     crate::simulator::SimulatorBuilder::disruptions
    pub fn serve(
        &self,
        rx: Receiver<StreamCommand>,
        dispatcher: &mut dyn Dispatcher,
    ) -> EpisodeResult {
        self.serve_observed(rx, dispatcher, &mut [])
    }

    /// [`Simulator::serve`] with observers.
    pub fn serve_observed(
        &self,
        rx: Receiver<StreamCommand>,
        dispatcher: &mut dyn Dispatcher,
        observers: &mut [&mut dyn SimObserver],
    ) -> EpisodeResult {
        use crate::event::{DisruptionSource, ReplaySource};
        let mut sources: Vec<Box<dyn EventSource + '_>> =
            vec![Box::new(ReplaySource::new(self.instance))];
        if let Some(config) = &self.disruptions {
            sources.push(Box::new(DisruptionSource::new(
                self.instance,
                config,
                self.seed,
            )));
        }
        sources.push(Box::new(StreamSource::new(rx)));
        self.run_events(sources, dispatcher, observers)
    }

    /// Applies one cancellation and reports where it caught the order.
    #[allow(clippy::too_many_arguments)] // engine-internal plumbing
    fn apply_cancellation(
        &self,
        sink: &mut EpisodeSink<'_, '_, '_>,
        states: &mut [VehicleState],
        table: &[Order],
        pending: &mut Vec<PendingOrder>,
        assigned_to: &mut [Option<(VehicleId, f64)>],
        oid: OrderId,
        time: TimePoint,
    ) -> CancelOutcome {
        let interval = self.instance.grid.interval_of(time);
        if let Some(pos) = pending.iter().position(|p| p.id == oid) {
            // Still buffered: it never reaches a dispatcher.
            pending.remove(pos);
            let decision = Decision::rejected(oid, DecisionReason::Cancelled);
            let record = AssignmentRecord::rejected(oid, DecisionReason::Cancelled, time, interval);
            sink.decision(&decision, record, None, None);
            return CancelOutcome::BeforeDispatch;
        }
        if let Some((k, _)) = assigned_to[oid.index()] {
            let state = &mut states[k.index()];
            state.advance_to(time, &self.instance.network, &self.instance.fleet, table);
            let pickup_undriven = state
                .view
                .route
                .stops()
                .iter()
                .any(|s| matches!(s.action, StopAction::Pickup(o) if o == oid));
            if pickup_undriven && state.cancel_order(oid) {
                sink.acc
                    .revoke_to_rejection(oid, DecisionReason::Cancelled, time, interval);
                return CancelOutcome::AfterAssignment;
            }
        }
        CancelOutcome::TooLate
    }

    /// Flushes one decision epoch: advances the fleet to `now`, builds the
    /// shared [`DecisionBatch`] (broken vehicles masked out), dispatches,
    /// and commits — the exact sequence of the reference scan loop, plus
    /// the availability mask and assignee bookkeeping.
    #[allow(clippy::too_many_arguments)] // engine-internal plumbing
    fn run_epoch(
        &self,
        sink: &mut EpisodeSink<'_, '_, '_>,
        states: &mut Vec<VehicleState>,
        table: &[Order],
        epoch_ids: Vec<OrderId>,
        now: TimePoint,
        epoch_index: &mut usize,
        assigned_to: &mut [Option<(VehicleId, f64)>],
        shard_rt: &mut ShardRuntime,
        scratch: &mut EpochScratch,
        dispatcher: &mut dyn Dispatcher,
    ) {
        let instance = self.instance;
        let net = &instance.network;
        let fleet = &instance.fleet;
        let interval = instance.grid.interval_of(now);

        if self.horizon.is_some_and(|h| now > h) {
            // Beyond the horizon: never dispatched, only logged.
            for &oid in &epoch_ids {
                let decision = Decision::rejected(oid, DecisionReason::HorizonExceeded);
                let record =
                    AssignmentRecord::rejected(oid, DecisionReason::HorizonExceeded, now, interval);
                sink.decision(&decision, record, None, None);
            }
            return;
        }

        for s in states.iter_mut() {
            s.advance_to(now, net, fleet, table);
        }
        // Broken vehicles keep their dense snapshot slot but are masked
        // out of the sweep; with no breakdown in effect the mask is absent
        // and the batch is bit-identical to the reference loop's.
        let active: Option<Vec<bool>> = states
            .iter()
            .any(|s| s.broken)
            .then(|| states.iter().map(|s| !s.broken).collect());
        // Demand accumulation and re-partitioning mirror the reference
        // loop exactly: serial, in epoch order, at the flush boundary,
        // before the batch forms.
        for &oid in &epoch_ids {
            shard_rt.observe(&table[oid.index()]);
        }
        let repartitioned = shard_rt.maybe_repartition(net);
        let batch = DecisionBatch::new(
            now,
            interval,
            net,
            fleet,
            table,
            epoch_ids.clone(),
            states.clone(),
            Arc::clone(&self.pool),
            self.planner_mode,
            shard_rt.context(),
            active,
            scratch,
        );
        sink.epoch(&EpochInfo {
            index: *epoch_index,
            now,
            interval,
            num_orders: epoch_ids.len(),
            num_shards: self.num_shards(),
            shards: batch.shard_stats(),
            repartitioned,
        });
        let decisions = dispatcher.dispatch_batch(&batch);
        assert_eq!(
            decisions.len(),
            epoch_ids.len(),
            "{}: dispatch_batch returned {} decisions for {} orders",
            dispatcher.name(),
            decisions.len(),
            epoch_ids.len(),
        );

        // Fast path: adopt the batch's own commits verbatim when the
        // returned decisions match them; otherwise re-validate each
        // decision against the authoritative state (see run_reference for
        // the rationale — the two paths are kept in lockstep).
        let (commits, scratch_states) = batch.into_parts();
        let resolved_by_batch = decisions
            .iter()
            .zip(&commits)
            .all(|(d, c)| c.as_ref().is_some_and(|c| c.decision == *d));
        if resolved_by_batch {
            for ((&oid, decision), commit) in epoch_ids.iter().zip(&decisions).zip(commits) {
                let commit = commit.expect("all commits checked present");
                let order = &table[oid.index()];
                let response = (now - order.created).seconds();
                match &commit.assignment {
                    Some(a) => {
                        let vehicle = decision.vehicle.expect("assignment has a vehicle");
                        let record = AssignmentRecord::assigned(
                            oid,
                            vehicle,
                            now,
                            interval,
                            &a.plan,
                            a.vehicle_was_used,
                        );
                        assigned_to[oid.index()] = Some((vehicle, response));
                        sink.decision(
                            &commit.decision,
                            record,
                            Some((&a.pre_view, &a.plan)),
                            Some(response),
                        );
                    }
                    None => {
                        let record =
                            AssignmentRecord::rejected(oid, decision.reason, now, interval);
                        sink.decision(&commit.decision, record, None, Some(response));
                    }
                }
            }
            *states = scratch_states;
        } else {
            let planner = RoutePlanner::with_mode(net, fleet, table, self.planner_mode);
            for (&oid, decision) in epoch_ids.iter().zip(&decisions) {
                assert_eq!(
                    decision.order,
                    oid,
                    "{}: dispatch_batch returned decisions out of order",
                    dispatcher.name(),
                );
                let order = &table[oid.index()];
                let response = (now - order.created).seconds();
                let validated = decision.vehicle.and_then(|k| {
                    if states[k.index()].broken {
                        return None; // a dead truck cannot serve
                    }
                    let plan = planner.plan(&states[k.index()].view, order);
                    plan.best.is_some().then_some((k, plan))
                });
                match validated {
                    Some((k, plan)) => {
                        let record = AssignmentRecord::assigned(
                            oid,
                            k,
                            now,
                            interval,
                            &plan,
                            states[k.index()].used(),
                        );
                        let committed = Decision::assigned(oid, k);
                        assigned_to[oid.index()] = Some((k, response));
                        sink.decision(
                            &committed,
                            record,
                            Some((&states[k.index()].view, &plan)),
                            Some(response),
                        );
                        let best = plan.best.as_ref().expect("validated feasible");
                        states[k.index()].accept(best.candidate.route.clone());
                        states[k.index()].advance_to(now, net, fleet, table);
                    }
                    None => {
                        let reason = match decision.reason {
                            // An assignment that failed re-validation.
                            DecisionReason::Assigned => DecisionReason::InfeasibleChoice,
                            other => other,
                        };
                        let committed = Decision::rejected(oid, reason);
                        let record = AssignmentRecord::rejected(oid, reason, now, interval);
                        sink.decision(&committed, record, None, Some(response));
                    }
                }
            }
        }
        *epoch_index += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatcher::FirstFeasible;
    use crate::event::{DisruptionConfig, TimedEvent};
    use crate::observer::EventCounter;
    use dpdp_net::{
        FleetConfig, Instance, IntervalGrid, Node, NodeId, Point, RoadNetwork, TimeDelta,
    };

    fn instance(num_vehicles: usize, orders: Vec<Order>) -> Instance {
        let nodes = vec![
            Node::depot(NodeId(0), Point::new(0.0, 0.0)),
            Node::factory(NodeId(1), Point::new(10.0, 0.0)),
            Node::factory(NodeId(2), Point::new(20.0, 0.0)),
            Node::factory(NodeId(3), Point::new(30.0, 0.0)),
        ];
        let net = RoadNetwork::euclidean(nodes, 1.0).unwrap();
        let fleet = FleetConfig::homogeneous(
            num_vehicles,
            &[NodeId(0)],
            10.0,
            500.0,
            2.0,
            60.0,
            TimeDelta::ZERO,
        )
        .unwrap();
        Instance::new(net, fleet, IntervalGrid::paper_default(), orders).unwrap()
    }

    fn order(id: u32, p: u32, d: u32, q: f64, created_h: f64, deadline_h: f64) -> Order {
        Order::new(
            OrderId(id),
            NodeId(p),
            NodeId(d),
            q,
            TimePoint::from_hours(created_h),
            TimePoint::from_hours(deadline_h),
        )
        .unwrap()
    }

    /// A fixed pre-sorted event list, for injecting disruptions in tests.
    struct Fixed(std::vec::IntoIter<TimedEvent>);

    impl Fixed {
        fn new(events: Vec<TimedEvent>) -> Self {
            Fixed(events.into_iter())
        }
    }

    impl EventSource for Fixed {
        fn next_event(&mut self) -> Option<TimedEvent> {
            self.0.next()
        }
    }

    fn run_with_events(
        inst: &Instance,
        buffering: crate::simulator::BufferingMode,
        events: Vec<TimedEvent>,
        counter: &mut EventCounter,
    ) -> EpisodeResult {
        let sim = Simulator::builder(inst)
            .buffering(buffering)
            .build()
            .unwrap();
        let sources: Vec<Box<dyn EventSource + '_>> = vec![
            Box::new(crate::event::ReplaySource::new(inst)),
            Box::new(Fixed::new(events)),
        ];
        sim.run_events(sources, &mut FirstFeasible, &mut [&mut *counter])
    }

    #[test]
    fn engine_matches_reference_loop_without_disruptions() {
        use crate::simulator::BufferingMode;
        let inst = instance(
            3,
            vec![
                order(0, 1, 2, 9.0, 8.0, 8.34),
                order(1, 1, 2, 9.0, 8.0, 8.34),
                order(2, 2, 3, 4.0, 9.0, 20.0),
                order(3, 3, 1, 4.0, 9.0, 20.0),
            ],
        );
        for buffering in [
            BufferingMode::Immediate,
            BufferingMode::FixedInterval(TimeDelta::from_minutes(30.0)),
        ] {
            let sim = Simulator::builder(&inst)
                .buffering(buffering)
                .build()
                .unwrap();
            let engine = sim.run_observed(&mut FirstFeasible, &mut []);
            let reference = sim.run_reference(&mut FirstFeasible, &mut []);
            assert_eq!(engine, reference, "diverged under {buffering:?}");
        }
    }

    #[test]
    fn buffered_cancellation_before_dispatch_never_reaches_the_policy() {
        use crate::simulator::BufferingMode;
        // Created 8:05, due at the 8:30 flush, cancelled at 8:10.
        let inst = instance(1, vec![order(0, 1, 2, 5.0, 8.05, 20.0)]);
        let mut counter = EventCounter::default();
        let result = run_with_events(
            &inst,
            BufferingMode::FixedInterval(TimeDelta::from_minutes(30.0)),
            vec![TimedEvent {
                time: TimePoint::from_hours(8.0 + 10.0 / 60.0),
                event: SimEvent::OrderCancelled(OrderId(0)),
            }],
            &mut counter,
        );
        assert_eq!(result.metrics.served, 0);
        assert_eq!(result.metrics.rejected, 1);
        assert_eq!(result.metrics.rejections.cancelled, 1);
        assert_eq!(result.assignments[0].reason, DecisionReason::Cancelled);
        assert_eq!(counter.epochs, 0, "the cancelled order forms no epoch");
        assert_eq!(counter.cancellations, 1);
        assert_eq!(counter.decisions, 1);
    }

    #[test]
    fn post_assignment_cancellation_shortens_the_route_by_surgery() {
        // Order 0 departs immediately at 8:00 (pickup driven, onboard);
        // order 1 is appended at 8:05 while the vehicle is mid-leg, so its
        // pickup is still undriven when the 8:07 cancellation lands.
        let inst = instance(
            1,
            vec![
                order(0, 1, 2, 2.0, 8.0, 20.0),
                order(1, 1, 2, 2.0, 8.0 + 5.0 / 60.0, 20.0),
            ],
        );
        let mut counter = EventCounter::default();
        let result = run_with_events(
            &inst,
            crate::simulator::BufferingMode::Immediate,
            vec![TimedEvent {
                time: TimePoint::from_hours(8.0 + 7.0 / 60.0),
                event: SimEvent::OrderCancelled(OrderId(1)),
            }],
            &mut counter,
        );
        assert_eq!(result.metrics.served, 1);
        assert_eq!(result.metrics.rejected, 1);
        assert_eq!(result.metrics.rejections.cancelled, 1);
        let rec1 = result
            .assignments
            .iter()
            .find(|r| r.order == OrderId(1))
            .unwrap();
        assert_eq!(rec1.reason, DecisionReason::Cancelled);
        assert_eq!(rec1.vehicle, None);
        // The surgically shortened route still serves order 0 alone: the
        // vehicle ends with exactly order 0's travel (0->1->2->0 = 40 km).
        assert!((result.metrics.ttl - 40.0).abs() < 1e-9);
        assert_eq!(result.vehicles[0].orders_accepted, 1);
        assert_eq!(counter.cancellations, 1);
    }

    #[test]
    fn cancelling_a_driven_pickup_is_too_late() {
        let inst = instance(1, vec![order(0, 1, 2, 2.0, 8.0, 20.0)]);
        let mut counter = EventCounter::default();
        let result = run_with_events(
            &inst,
            crate::simulator::BufferingMode::Immediate,
            vec![TimedEvent {
                time: TimePoint::from_hours(8.05),
                event: SimEvent::OrderCancelled(OrderId(0)),
            }],
            &mut counter,
        );
        // Pickup departed at 8:00 sharp: the cancellation has no effect.
        assert_eq!(result.metrics.served, 1);
        assert_eq!(result.metrics.rejections.cancelled, 0);
        assert_eq!(counter.cancellations, 1, "the event still fired");
    }

    #[test]
    fn breakdown_strands_undriven_orders_and_loses_onboard_cargo() {
        let inst = instance(
            2,
            vec![
                order(0, 1, 2, 2.0, 8.0, 20.0),
                order(1, 2, 3, 2.0, 8.0 + 5.0 / 60.0, 20.0),
            ],
        );
        let mut counter = EventCounter::default();
        let result = run_with_events(
            &inst,
            crate::simulator::BufferingMode::Immediate,
            vec![TimedEvent {
                time: TimePoint::from_hours(8.1),
                event: SimEvent::VehicleBreakdown(VehicleId(0)),
            }],
            &mut counter,
        );
        // First-feasible put both orders on vehicle 0. At the 8:06
        // breakdown order 0 is onboard (lost) and order 1's pickup is
        // undriven (stranded); the stranded order re-dispatches to
        // vehicle 1 at the breakdown instant.
        assert_eq!(counter.breakdowns, 1);
        assert_eq!(result.metrics.served, 1);
        assert_eq!(result.metrics.rejected, 1);
        assert_eq!(result.metrics.rejections.vehicle_lost, 1);
        let rec0 = result
            .assignments
            .iter()
            .find(|r| r.order == OrderId(0))
            .unwrap();
        assert_eq!(rec0.reason, DecisionReason::VehicleLost);
        let rec1 = result
            .assignments
            .iter()
            .find(|r| r.order == OrderId(1))
            .unwrap();
        assert_eq!(rec1.vehicle, Some(VehicleId(1)));
        assert!(
            (rec1.time.hours() - 8.1).abs() < 1e-9,
            "re-dispatched at the breakdown instant"
        );
        // One final record per order; totals invariant holds.
        assert_eq!(result.assignments.len(), 2);
        assert_eq!(
            result.metrics.served + result.metrics.rejections.total(),
            inst.num_orders()
        );
        // The broken vehicle keeps its driven kilometres and used flag.
        assert!(result.vehicles[0].used);
        assert!(result.vehicles[0].travel_km > 0.0);
        assert_eq!(result.vehicles[0].orders_accepted, 0);
    }

    #[test]
    fn broken_vehicle_is_masked_until_recovery() {
        let inst = instance(
            1,
            vec![
                order(0, 1, 2, 2.0, 8.0 + 5.0 / 60.0, 20.0),
                order(1, 2, 3, 2.0, 9.0, 20.0),
            ],
        );
        let mut counter = EventCounter::default();
        let result = run_with_events(
            &inst,
            crate::simulator::BufferingMode::Immediate,
            vec![
                TimedEvent {
                    time: TimePoint::from_hours(8.0),
                    event: SimEvent::VehicleBreakdown(VehicleId(0)),
                },
                TimedEvent {
                    time: TimePoint::from_hours(8.5),
                    event: SimEvent::VehicleRecovered(VehicleId(0)),
                },
            ],
            &mut counter,
        );
        // Broken at 8:00: the 8:05 order finds no feasible vehicle.
        // Recovered at 8:30: the 9:00 order is served.
        assert_eq!(
            result.assignments[0].reason,
            DecisionReason::NoFeasibleVehicle
        );
        assert_eq!(result.assignments[1].reason, DecisionReason::Assigned);
        assert_eq!(counter.breakdowns, 1);
        assert_eq!(counter.recoveries, 1);
    }

    #[test]
    fn serve_flushes_buffered_epochs_as_the_stream_reveals_time() {
        use crate::simulator::BufferingMode;
        let inst = instance(2, vec![]);
        let (tx, rx) = std::sync::mpsc::channel();
        // All commands queued up front; the channel closing releases the
        // final epoch.
        tx.send(StreamCommand::Order(order(0, 1, 2, 2.0, 8.2, 20.0)))
            .unwrap();
        tx.send(StreamCommand::Order(order(1, 2, 3, 2.0, 8.9, 20.0)))
            .unwrap();
        drop(tx);
        let sim = Simulator::builder(&inst)
            .buffering(BufferingMode::FixedInterval(TimeDelta::from_minutes(30.0)))
            .build()
            .unwrap();
        let mut counter = EventCounter::default();
        let result = sim.serve_observed(rx, &mut FirstFeasible, &mut [&mut counter]);
        assert_eq!(result.metrics.served, 2);
        // Pushed orders get sequential engine ids and land on their flush
        // multiples: 8:12 -> 8:30, 8:54 -> 9:00.
        assert_eq!(result.assignments[0].order, OrderId(0));
        assert!((result.assignments[0].time.hours() - 8.5).abs() < 1e-9);
        assert!((result.assignments[1].time.hours() - 9.0).abs() < 1e-9);
        assert_eq!(counter.epochs, 2);
    }

    #[test]
    fn serve_sender_dropped_mid_episode_drains_buffered_epochs_cleanly() {
        // The EOF contract: a producer that dies mid-episode — engine
        // blocked on `recv`, orders still buffered, no Flush heartbeat,
        // no goodbye — must end the episode cleanly with final metrics.
        use crate::simulator::BufferingMode;
        let inst = instance(2, vec![]);
        let (tx, rx) = std::sync::mpsc::channel();
        let producer = std::thread::spawn(move || {
            tx.send(StreamCommand::Order(order(0, 1, 2, 2.0, 8.2, 20.0)))
                .unwrap();
            // Let the engine reach its blocking recv before the hang-up.
            std::thread::sleep(std::time::Duration::from_millis(20));
            tx.send(StreamCommand::Order(order(1, 2, 3, 2.0, 8.9, 20.0)))
                .unwrap();
            // The sender drops here, with both epochs still buffered.
        });
        let sim = Simulator::builder(&inst)
            .buffering(BufferingMode::FixedInterval(TimeDelta::from_minutes(30.0)))
            .build()
            .unwrap();
        let result = sim.serve(rx, &mut FirstFeasible);
        producer.join().unwrap();
        assert_eq!(result.assignments.len(), 2, "both buffered orders decided");
        assert_eq!(result.metrics.served + result.metrics.rejected, 2);
        assert!((result.assignments[0].time.hours() - 8.5).abs() < 1e-9);
        assert!((result.assignments[1].time.hours() - 9.0).abs() < 1e-9);
    }

    #[test]
    fn serve_with_immediately_dropped_sender_equals_the_replay_episode() {
        // The degenerate stream — hung up before a single command — must
        // reduce `serve` to exactly the replay-only episode of `run`.
        use crate::simulator::BufferingMode;
        let inst = instance(
            2,
            vec![
                order(0, 1, 2, 2.0, 8.0, 20.0),
                order(1, 2, 3, 2.0, 9.0, 20.0),
            ],
        );
        for buffering in [
            BufferingMode::Immediate,
            BufferingMode::FixedInterval(TimeDelta::from_minutes(30.0)),
        ] {
            let sim = Simulator::builder(&inst)
                .buffering(buffering)
                .build()
                .unwrap();
            let reference = sim.run(&mut FirstFeasible);
            let (tx, rx) = std::sync::mpsc::channel::<StreamCommand>();
            drop(tx);
            assert_eq!(sim.serve(rx, &mut FirstFeasible), reference);
        }
    }

    #[test]
    fn streamed_orders_interleaving_with_replay_keep_ids_stable() {
        use crate::simulator::BufferingMode;
        // Replay table: ids 0 (8:00) and 1 (10:00). A streamed order
        // created 9:00 interleaves between them — it must get id 2 (after
        // the instance table), never shift the replayed 10:00 order, and a
        // cancellation targeting id 2 must kill exactly the streamed
        // order.
        let inst = instance(
            2,
            vec![
                order(0, 1, 2, 2.0, 8.0, 20.0),
                order(1, 2, 3, 2.0, 10.0, 20.0),
            ],
        );
        let (tx, rx) = std::sync::mpsc::channel();
        tx.send(StreamCommand::Order(order(0, 3, 1, 2.0, 9.0, 20.0)))
            .unwrap();
        tx.send(StreamCommand::Cancel {
            order: OrderId(2),
            at: TimePoint::from_hours(8.95),
        })
        .unwrap();
        drop(tx);
        let sim = Simulator::builder(&inst)
            .buffering(BufferingMode::FixedInterval(TimeDelta::from_minutes(30.0)))
            .build()
            .unwrap();
        let result = sim.serve(rx, &mut FirstFeasible);
        assert_eq!(result.metrics.served, 2);
        assert_eq!(result.metrics.rejections.cancelled, 1);
        let rec = |o: u32| {
            result
                .assignments
                .iter()
                .find(|r| r.order == OrderId(o))
                .unwrap()
        };
        // Replayed orders keep their ids and are served at their own
        // flush instants; the streamed order (id 2) is the cancelled one.
        assert_eq!(rec(0).reason, DecisionReason::Assigned);
        assert!((rec(0).time.hours() - 8.0).abs() < 1e-9);
        assert_eq!(rec(1).reason, DecisionReason::Assigned);
        assert!((rec(1).time.hours() - 10.0).abs() < 1e-9);
        assert_eq!(rec(2).reason, DecisionReason::Cancelled);
    }

    #[test]
    fn stranded_redispatch_keeps_only_the_final_response_sample() {
        // Same fixture as the breakdown test above: at the 8:06 breakdown
        // order 0 is onboard (lost, its 0 s sample kept by design) and
        // order 1 is stranded — its withdrawn 0 s sample must be
        // subtracted, and the re-dispatch at 8:06 contributes a fresh
        // 60 s sample (it was created 8:05).
        let inst = instance(
            2,
            vec![
                order(0, 1, 2, 2.0, 8.0, 20.0),
                order(1, 2, 3, 2.0, 8.0 + 5.0 / 60.0, 20.0),
            ],
        );
        let mut counter = EventCounter::default();
        let result = run_with_events(
            &inst,
            crate::simulator::BufferingMode::Immediate,
            vec![TimedEvent {
                time: TimePoint::from_hours(8.1),
                event: SimEvent::VehicleBreakdown(VehicleId(0)),
            }],
            &mut counter,
        );
        assert_eq!(counter.breakdowns, 1);
        assert_eq!(result.metrics.rejections.vehicle_lost, 1);
        assert_eq!(result.metrics.served, 1);
        // Kept samples: order 0 (0 s) and order 1's re-dispatch (60 s);
        // with the withdrawn sample wrongly retained this would read
        // (0 + 0 + 60) / 3 = 20 s instead.
        let expect = (0.0 + 60.0) / 2.0;
        assert!(
            (result.metrics.avg_response_secs - expect).abs() < 1e-6,
            "{} vs {expect}",
            result.metrics.avg_response_secs
        );
    }

    #[test]
    fn epoch_flush_heartbeat_releases_buffered_orders() {
        use crate::simulator::BufferingMode;
        let inst = instance(1, vec![]);
        let (tx, rx) = std::sync::mpsc::channel();
        tx.send(StreamCommand::Order(order(0, 1, 2, 2.0, 8.2, 20.0)))
            .unwrap();
        // Without this heartbeat the 8:30 epoch would only flush at
        // channel close; with it, the epoch flushes as soon as the
        // heartbeat is consumed.
        tx.send(StreamCommand::Flush {
            at: TimePoint::from_hours(9.0),
        })
        .unwrap();
        drop(tx);
        let sim = Simulator::builder(&inst)
            .buffering(BufferingMode::FixedInterval(TimeDelta::from_minutes(30.0)))
            .build()
            .unwrap();
        let result = sim.serve(rx, &mut FirstFeasible);
        assert_eq!(result.metrics.served, 1);
        assert!((result.assignments[0].time.hours() - 8.5).abs() < 1e-9);
    }

    #[test]
    fn seeded_disruptions_are_deterministic_and_seed_sensitive() {
        let orders: Vec<Order> = (0..24)
            .map(|i| {
                order(
                    i,
                    1 + (i % 3),
                    1 + ((i + 1) % 3),
                    1.0,
                    8.0 + 0.25 * i as f64,
                    23.0,
                )
            })
            .collect();
        let inst = instance(4, orders);
        let cfg = DisruptionConfig {
            cancellation_prob: 0.3,
            cancellation_delay: TimeDelta::from_minutes(20.0),
            breakdown_prob: 0.5,
            breakdown_window: (TimePoint::from_hours(8.0), TimePoint::from_hours(14.0)),
            recovery_delay: Some((TimeDelta::from_minutes(30.0), TimeDelta::from_hours(2.0))),
        };
        let run = |seed: u64| {
            let mut counter = EventCounter::default();
            let sim = Simulator::builder(&inst)
                .disruptions(cfg.clone())
                .seed(seed)
                .build()
                .unwrap();
            let result = sim.run_observed(&mut FirstFeasible, &mut [&mut counter]);
            (result, counter)
        };
        let (a, ca) = run(5);
        let (b, _) = run(5);
        assert_eq!(a, b, "same seed must reproduce the episode bit for bit");
        assert!(ca.cancellations > 0 && ca.breakdowns > 0, "non-vacuous");
        let (c, _) = run(6);
        assert_ne!(a, c, "a different seed must move the disruption draw");
        // Every order ends in exactly one final state.
        assert_eq!(
            a.metrics.served + a.metrics.rejections.total(),
            inst.num_orders()
        );
    }

    #[test]
    fn invalid_disruption_config_is_a_build_error() {
        let inst = instance(1, vec![]);
        let err = Simulator::builder(&inst)
            .disruptions(DisruptionConfig {
                cancellation_prob: 2.0,
                ..DisruptionConfig::default()
            })
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            crate::simulator::SimBuildError::InvalidDisruption { .. }
        ));
        assert!(err.to_string().contains("cancellation_prob"));
    }
}
