//! Event-driven DPDP simulator — the paper's Algorithm 1.
//!
//! The simulator replays a day (an *episode*) of delivery orders against a
//! fleet. Orders are processed in ascending creation time ("immediate
//! service", Section IV-D); before each decision every vehicle's runtime
//! state is advanced to the decision time; the route planner (Algorithm 2,
//! from `dpdp-routing`) computes each vehicle's feasibility and candidate
//! route; and a pluggable [`Dispatcher`] picks the serving vehicle.
//!
//! The crate also implements the fixed-interval *buffering* strategy the
//! paper discusses (and rejects for response-time reasons) in Section IV-D,
//! so that the trade-off can be reproduced.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dispatcher;
pub mod metrics;
pub mod simulator;
pub mod state;

pub use dispatcher::{DispatchContext, Dispatcher};
pub use metrics::{AssignmentRecord, EpisodeMetrics, EpisodeResult, VehicleStats};
pub use simulator::{BufferingMode, SimConfig, Simulator};
pub use state::VehicleState;
