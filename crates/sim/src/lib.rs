//! Event-driven DPDP simulation core — the paper's Algorithm 1 rebuilt
//! around a deterministic **event engine** feeding **batched decision
//! epochs**.
//!
//! # Architecture: sources → event stream → epochs → decisions
//!
//! An episode is a time-ordered stream of [`SimEvent`]s consumed by the
//! engine ([`Simulator::run_events`]):
//!
//! | event | effect |
//! |---|---|
//! | [`OrderArrival`] | the order joins the dispatch buffer until its decision epoch flushes |
//! | [`OrderCancelled`] | buffered → logged as a [`Cancelled`] rejection; assigned with an undriven pickup → route surgery ([`Route::remove_order`]) revokes the assignment; picked up → too late, ignored |
//! | [`VehicleBreakdown`] | undriven pickups are *stranded* back into the buffer (re-dispatched at the next epoch), onboard cargo is written off as [`VehicleLost`], and the vehicle is masked out of every [`DecisionBatch`] |
//! | [`VehicleRecovered`] | the vehicle rejoins dispatch at its current anchor |
//! | [`EpochFlush`] | a pure time heartbeat releasing every epoch due at or before it |
//!
//! Events come from pluggable [`EventSource`]s, merged deterministically
//! (time, then a fixed event-class rank, then source position):
//!
//! * [`ReplaySource`] — the instance's order table; feeding the engine
//!   from it alone is **bit-identical** to the pre-event scan loop (kept
//!   as [`Simulator::run_reference`]) for every scenario, policy, shard
//!   count and thread count — `tests/event_parity.rs` asserts it.
//! * [`StreamSource`] — a channel of [`StreamCommand`]s pushed by another
//!   thread ([`Simulator::serve`]): the simulator as a serving loop for
//!   live traffic.
//! * [`DisruptionSource`] — seeded stochastic cancellations and
//!   breakdowns ([`DisruptionConfig`], armed via
//!   [`SimulatorBuilder::disruptions`]) drawn from dedicated RNG streams
//!   of the builder seed, so legacy draws are untouched.
//!
//! **Source contract.** A source yields events in nondecreasing time
//! order and may block (that is how a channel source works — virtual time
//! cannot pass an instant until every source has spoken). The engine
//! clamps stragglers to the current clock.
//!
//! **Determinism guarantee.** The merged stream — and therefore the whole
//! episode — is a pure function of the sources' contents: same instance,
//! config and seed ⇒ bit-identical [`EpisodeResult`] and disruption
//! trace, for every thread count, shard count and planner mode
//! (`tests/event_parity.rs`, `tests/batch_parity.rs`).
//!
//! # Batched decision epochs
//!
//! Buffered orders sharing one decision time (immediate service: their
//! creation instant; fixed-interval buffering: the flush multiple) are
//! decided through a single [`Dispatcher::dispatch_batch`] call over a
//! [`DecisionBatch`]: one shared set of vehicle snapshots and Algorithm 2
//! planner outputs, delta-updated as decisions commit. Per-order policies
//! implement [`Dispatcher::dispatch`] and ride the default adapter;
//! batch-native policies (like `dpdp-rl`'s agents) score whole epochs at
//! once. Stranded orders from breakdowns re-enter here as re-dispatchable
//! arrivals; broken vehicles keep their dense snapshot slot but every
//! plan of theirs arrives as `best: None`.
//!
//! # Parallel epoch scoring
//!
//! [`SimulatorBuilder::num_threads`] hands every [`DecisionBatch`] a
//! [`dpdp_pool::ThreadPool`]: the initial `B x K` Algorithm 2 sweep, the
//! per-commit plan deltas, and policy-side scoring
//! ([`DecisionBatch::map_plans`] / [`DecisionBatch::map_contexts`]) all
//! fan out across it, with every result written to a pre-indexed slot —
//! results are bit-identical for every thread count. Sharded batches
//! store only the cells the sweep evaluated; batch-native policies can
//! stay `O(work)` instead of `O(B x K)` through
//! [`DecisionBatch::map_candidate_plans`] / [`DecisionBatch::with_plan`]
//! (every cell the candidate rows omit is provably infeasible).
//!
//! # Region-sharded dispatch: partition → score → merge
//!
//! [`SimulatorBuilder::sharding`] takes a validated [`ShardConfig`] and
//! turns every decision epoch into a merge of cell-local batches:
//!
//! * **Flat** ([`ShardConfig::flat`]) — one level of k-means (or grid)
//!   cells. In-cell `(order, vehicle)` pairs run the full insertion sweep
//!   shard-concurrently; cross-cell pairs are escalated (the `m` nearest
//!   foreign vehicles) or skipped through the **exact** geometric bound
//!   of [`dpdp_routing::RoutePlanner::provably_infeasible`].
//! * **Hierarchical** ([`ShardConfig::hierarchical`]) — two levels:
//!   coarse metro regions, each split into fine cells. Cross-cell
//!   escalation is resolved *within the parent region* (the `m` nearest
//!   same-region foreign vehicles); cross-region pairs rely on the exact
//!   bound alone, so sweep cost scales with cell size instead of fleet
//!   size at megacity scale.
//! * **Mid-episode re-partitioning** ([`RepartitionPolicy`]) — at flush
//!   boundaries, quantity-weighted pickup demand accumulated from the
//!   order stream re-seeds the k-means centroids
//!   ([`ShardMap::build_weighted`]), so the partition tracks demand drift
//!   (e.g. `Presets::metro`'s staggered hotspot peaks). Re-seeding is
//!   seeded and serial, so a fixed seed stays bit-identical across thread
//!   counts and escalation widths; [`EpochInfo::repartitioned`] flags the
//!   epochs where it fired.
//!
//! See [`crate::shard`] for the sweep pipeline and its determinism
//! argument, [`crate::sharding`] for the config surface.
//!
//! [`OrderArrival`]: event::SimEvent::OrderArrival
//! [`OrderCancelled`]: event::SimEvent::OrderCancelled
//! [`VehicleBreakdown`]: event::SimEvent::VehicleBreakdown
//! [`VehicleRecovered`]: event::SimEvent::VehicleRecovered
//! [`EpochFlush`]: event::SimEvent::EpochFlush
//! [`Cancelled`]: batch::DecisionReason::Cancelled
//! [`VehicleLost`]: batch::DecisionReason::VehicleLost
//! [`Route::remove_order`]: dpdp_routing::Route::remove_order
//! [`Dispatcher::dispatch`]: dispatcher::Dispatcher::dispatch
//! [`Dispatcher::dispatch_batch`]: dispatcher::Dispatcher::dispatch_batch

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod dispatcher;
pub mod engine;
pub mod event;
pub mod metrics;
pub mod observer;
pub mod shard;
pub mod sharding;
pub mod simulator;
pub mod state;

pub use batch::{Decision, DecisionBatch, DecisionReason};
pub use dispatcher::{DispatchContext, Dispatcher, FirstFeasible, PerOrder};
pub use dpdp_net::{ShardMap, ShardPolicy};
pub use dpdp_routing::PlannerMode;
pub use event::{
    DisruptionConfig, DisruptionSource, EventSource, ReplaySource, SimEvent, StreamCommand,
    StreamSource, TimedEvent,
};
pub use metrics::{
    AssignmentRecord, EpisodeMetrics, EpisodeResult, MetricsOptions, RejectionCounts, VehicleStats,
};
pub use observer::{
    CancelOutcome, DecisionRecord, DisruptionKind, DisruptionRecord, EpochInfo, EventCounter,
    SimObserver,
};
pub use shard::ShardStats;
pub use sharding::{RepartitionPolicy, ShardConfig};
pub use simulator::{
    BufferingMode, SimBuildError, Simulator, SimulatorBuilder, DEFAULT_SHARD_ESCALATION,
};
pub use state::{BreakdownOutcome, VehicleState};
