//! Event-driven DPDP simulator — the paper's Algorithm 1, organised around
//! **batched decision epochs**.
//!
//! The simulator replays a day (an *episode*) of delivery orders against a
//! fleet. Orders are grouped into decision epochs — all orders sharing one
//! decision time — and each epoch is decided through a single
//! [`Dispatcher::dispatch_batch`] call over a [`DecisionBatch`]: one shared
//! set of vehicle snapshots and Algorithm 2 planner outputs, delta-updated
//! as decisions commit. Per-order policies keep implementing
//! [`Dispatcher::dispatch`] and ride on the default batch adapter, which
//! reproduces the legacy one-order-at-a-time semantics exactly; batch-native
//! policies (like `dpdp-rl`'s agents) override `dispatch_batch` to score a
//! whole epoch at once.
//!
//! Under immediate service (Section IV-D) epochs are single orders except
//! for creation-time ties; under the fixed-interval *buffering* strategy the
//! paper evaluates (and rejects for response-time reasons), every flush is
//! one epoch and plans are computed once per epoch instead of once per
//! order.
//!
//! Simulators are configured through [`SimulatorBuilder`] (buffering,
//! horizon, metrics materialisation, seed, scoring threads), and episodes
//! can be watched through [`SimObserver`] hooks — the seam that experience
//! recording and metrics pipelines plug into.
//!
//! # Parallel epoch scoring
//!
//! [`SimulatorBuilder::num_threads`] hands every [`DecisionBatch`] a
//! [`dpdp_pool::ThreadPool`]: the initial `B x K` Algorithm 2 sweep, the
//! per-commit plan deltas, and policy-side scoring
//! ([`DecisionBatch::map_plans`] / [`DecisionBatch::map_contexts`]) all
//! fan out across it, with every result written to a pre-indexed slot.
//! Episode results are therefore **bit-identical for every thread count**
//! — `num_threads(1)` (the default) is exact legacy behaviour, and the
//! parity suite in `tests/batch_parity.rs` asserts the invariance for all
//! built-in policies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod dispatcher;
pub mod metrics;
pub mod observer;
pub mod simulator;
pub mod state;

pub use batch::{Decision, DecisionBatch, DecisionReason};
pub use dispatcher::{DispatchContext, Dispatcher, FirstFeasible, PerOrder};
pub use dpdp_routing::PlannerMode;
pub use metrics::{AssignmentRecord, EpisodeMetrics, EpisodeResult, MetricsOptions, VehicleStats};
pub use observer::{DecisionRecord, EpochInfo, EventCounter, SimObserver};
pub use simulator::{BufferingMode, SimBuildError, Simulator, SimulatorBuilder};
pub use state::VehicleState;
