//! Event-driven DPDP simulator — the paper's Algorithm 1, organised around
//! **batched decision epochs**.
//!
//! The simulator replays a day (an *episode*) of delivery orders against a
//! fleet. Orders are grouped into decision epochs — all orders sharing one
//! decision time — and each epoch is decided through a single
//! [`Dispatcher::dispatch_batch`] call over a [`DecisionBatch`]: one shared
//! set of vehicle snapshots and Algorithm 2 planner outputs, delta-updated
//! as decisions commit. Per-order policies keep implementing
//! [`Dispatcher::dispatch`] and ride on the default batch adapter, which
//! reproduces the legacy one-order-at-a-time semantics exactly; batch-native
//! policies (like `dpdp-rl`'s agents) override `dispatch_batch` to score a
//! whole epoch at once.
//!
//! Under immediate service (Section IV-D) epochs are single orders except
//! for creation-time ties; under the fixed-interval *buffering* strategy the
//! paper evaluates (and rejects for response-time reasons), every flush is
//! one epoch and plans are computed once per epoch instead of once per
//! order.
//!
//! Simulators are configured through [`SimulatorBuilder`] (buffering,
//! horizon, metrics materialisation, seed, scoring threads), and episodes
//! can be watched through [`SimObserver`] hooks — the seam that experience
//! recording and metrics pipelines plug into.
//!
//! # Parallel epoch scoring
//!
//! [`SimulatorBuilder::num_threads`] hands every [`DecisionBatch`] a
//! [`dpdp_pool::ThreadPool`]: the initial `B x K` Algorithm 2 sweep, the
//! per-commit plan deltas, and policy-side scoring
//! ([`DecisionBatch::map_plans`] / [`DecisionBatch::map_contexts`]) all
//! fan out across it, with every result written to a pre-indexed slot.
//! Episode results are therefore **bit-identical for every thread count**
//! — `num_threads(1)` (the default) is exact legacy behaviour, and the
//! parity suite in `tests/batch_parity.rs` asserts the invariance for all
//! built-in policies.
//!
//! # Region-sharded dispatch: partition → score → merge
//!
//! [`SimulatorBuilder::num_shards`] turns every decision epoch into a
//! *merge of shard-local batches* instead of a flat fleet scan:
//!
//! 1. **Partition.** A [`ShardMap`] (built once per simulator from node
//!    coordinates, via seeded k-means centroids or a fixed grid —
//!    [`ShardPolicy`]) assigns each vehicle to the region of its current
//!    anchor node and each epoch order to the region of its pickup node.
//! 2. **Score.** In-shard `(order, vehicle)` pairs run the full insertion
//!    sweep, grouped vehicle-shard-major into pool tasks; schedule caches
//!    are built only for vehicles with at least one surviving pair.
//! 3. **Merge.** Cross-shard pairs go through the deterministic
//!    escalation rule: the `m` nearest foreign vehicles per order
//!    ([`SimulatorBuilder::shard_escalation`], ranked by anchor→pickup
//!    distance under `total_cmp`, ties first-wins) are always evaluated,
//!    and each remaining pair is evaluated **unless** the exact geometric
//!    bound of `dpdp_routing::RoutePlanner::provably_infeasible` — gated
//!    on metric networks, with a one-second safety margin over the
//!    deadline — proves no insertion can serve the order, in which case
//!    the pair's known output (`best: None`, exact `d_{t,k}`) is emitted
//!    without the sweep. Per-commit column deltas apply the same prune.
//!
//! **Determinism guarantee.** A pruned pair's output is bit-identical to
//! what its full evaluation would have produced, every evaluated pair
//! lands in a pre-indexed matrix slot, and classification never reads
//! results — so the plan matrix every policy sees, and therefore the whole
//! episode, is **bit-identical for every shard count, escalation width,
//! and thread count**. Only wall time moves (shard-sweep savings are
//! observable through [`EpochInfo`]'s [`ShardStats`]). The suite in
//! `tests/batch_parity.rs` asserts `shards = 1` vs `shards = N` equality
//! for every built-in policy at 1 and 4 threads on the metro preset, with
//! a non-vacuity guard proving the prune fires; the CI bench-smoke job
//! gates `shards = 4` wall time against the flat scan.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod dispatcher;
pub mod metrics;
pub mod observer;
pub mod shard;
pub mod simulator;
pub mod state;

pub use batch::{Decision, DecisionBatch, DecisionReason};
pub use dispatcher::{DispatchContext, Dispatcher, FirstFeasible, PerOrder};
pub use dpdp_net::{ShardMap, ShardPolicy};
pub use dpdp_routing::PlannerMode;
pub use metrics::{
    AssignmentRecord, EpisodeMetrics, EpisodeResult, MetricsOptions, RejectionCounts, VehicleStats,
};
pub use observer::{DecisionRecord, EpochInfo, EventCounter, SimObserver};
pub use shard::ShardStats;
pub use simulator::{
    BufferingMode, SimBuildError, Simulator, SimulatorBuilder, DEFAULT_SHARD_ESCALATION,
};
pub use state::VehicleState;
