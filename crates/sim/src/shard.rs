//! Region sharding of decision epochs: partition → score → merge.
//!
//! A monolithic decision epoch scores every epoch order against every
//! vehicle — `B x K` full Algorithm 2 sweeps — even though most pairs are
//! geographically hopeless at industry scale. With
//! [`SimulatorBuilder::num_shards`] the epoch becomes a **merge of
//! shard-local batches** instead:
//!
//! 1. **Partition** — a [`ShardMap`] (built once per simulator from node
//!    coordinates) assigns every vehicle to the region of its current
//!    anchor node and every epoch order to the region of its pickup node.
//! 2. **Score** — in-shard `(order, vehicle)` pairs get the full insertion
//!    sweep, grouped vehicle-shard-major into `dpdp-pool` tasks so each
//!    shard's sweep runs concurrently against its own schedule caches.
//! 3. **Merge** — cross-shard pairs go through the deterministic
//!    escalation rule: the `m` nearest foreign vehicles per order (ranked
//!    by anchor→pickup distance under [`f64::total_cmp`], ties first-wins
//!    toward the lower vehicle id) are always evaluated in full, and every
//!    remaining foreign pair is evaluated **unless** the exact geometric
//!    bound ([`RoutePlanner::provably_infeasible`]) proves that no
//!    insertion can meet the order's deadline, in which case the pair's
//!    known output (`best: None`, exact `d_{t,k}`) is emitted without the
//!    sweep.
//!
//! **Determinism guarantee.** A pruned pair's output is *bit-identical* to
//! what the full sweep would have produced (the bound is conservative and
//! gated on metric networks), every evaluated cell lands in a pre-indexed
//! slot of the plan matrix, and the classification itself never reads
//! results — so episodes are bit-identical for **any** shard count, any
//! escalation width and any thread count. `tests/batch_parity.rs` asserts
//! this end-to-end for every built-in policy; only wall time moves.
//!
//! [`SimulatorBuilder::num_shards`]: crate::simulator::SimulatorBuilder::num_shards
//! [`RoutePlanner::provably_infeasible`]: dpdp_routing::RoutePlanner::provably_infeasible

use dpdp_net::{Order, ShardMap};
use dpdp_routing::{RoutePlanner, VehicleView};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Sharding parameters a [`Simulator`](crate::simulator::Simulator) hands
/// to every [`DecisionBatch`](crate::batch::DecisionBatch).
#[derive(Debug, Clone)]
pub(crate) struct ShardContext {
    /// The node → region partition (built once per simulator).
    pub(crate) map: Arc<ShardMap>,
    /// Escalation width `m`: the number of nearest foreign vehicles per
    /// order that are always evaluated in full.
    pub(crate) escalation: usize,
}

/// Work accounting of one epoch's sharded sweep (initial `B x K` matrix
/// plus any per-commit column deltas), surfaced through
/// [`EpochInfo`](crate::observer::EpochInfo) and
/// [`DecisionBatch::shard_stats`](crate::batch::DecisionBatch::shard_stats).
///
/// These counters describe *work*, not outcomes: they vary with the shard
/// count and escalation width while the episode's decisions do not.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardStats {
    /// Total `(order, vehicle)` cells considered.
    pub cells: usize,
    /// Cells that ran the full Algorithm 2 insertion sweep.
    pub evaluated: usize,
    /// Cross-shard cells skipped through the exact infeasibility bound.
    pub pruned: usize,
    /// Cross-shard cells evaluated in full (m-nearest escalation, or the
    /// bound could not rule them out).
    pub escalated: usize,
}

impl ShardStats {
    /// Fraction of cells pruned (0 when no cells were considered).
    pub fn pruned_fraction(&self) -> f64 {
        if self.cells == 0 {
            0.0
        } else {
            self.pruned as f64 / self.cells as f64
        }
    }
}

/// The classified `B x K` sweep of one epoch: which cells need the full
/// insertion sweep (vehicle-shard-major, pre-indexed) and which are pruned.
#[derive(Debug)]
pub(crate) struct SweepPlan {
    /// `(order_index, vehicle_index)` cells to evaluate in full, grouped
    /// vehicle-shard-major (all of one region's vehicles are contiguous,
    /// so pool chunks mostly stay inside one shard's caches).
    pub(crate) work: Vec<(u32, u32)>,
    /// Work accounting for the whole matrix.
    pub(crate) stats: ShardStats,
}

/// Classifies every `(order, vehicle)` cell of an epoch.
///
/// Runs serially before the parallel sweep (distance lookups only, no
/// planning); the result depends solely on the epoch snapshot and the
/// shard configuration, never on thread scheduling.
///
/// `active` is the engine's vehicle-availability mask (`None` = all
/// available): cells of a masked vehicle — broken down mid-episode — never
/// survive classification (counted as pruned), and masked vehicles are
/// skipped by the escalation ranking so an order never "escalates" to a
/// dead truck.
pub(crate) fn plan_sweep(
    ctx: &ShardContext,
    planner: &RoutePlanner<'_>,
    views: &[VehicleView],
    epoch_orders: &[&Order],
    active: Option<&[bool]>,
) -> SweepPlan {
    let map = &*ctx.map;
    let net = planner.network();
    let k_n = views.len();
    let b = epoch_orders.len();
    let is_active = |k: usize| active.is_none_or(|a| a[k]);
    let vehicle_shard: Vec<u32> = views
        .iter()
        .map(|v| map.shard_of(v.anchor_node) as u32)
        .collect();
    let order_shard: Vec<u32> = epoch_orders
        .iter()
        .map(|o| map.shard_of(o.pickup) as u32)
        .collect();

    // Escalation marks: per order, the m nearest foreign vehicles by
    // anchor→pickup distance (total_cmp, ties first-wins on the lower
    // vehicle id). `m` is small, so a running top-m scan beats sorting —
    // `esc[i * m ..]` holds order `i`'s escalated vehicle ids.
    let m = ctx.escalation.min(k_n);
    let mut esc: Vec<u32> = vec![u32::MAX; b * m];
    if m > 0 {
        let mut best: Vec<(f64, u32)> = Vec::with_capacity(m);
        for (i, order) in epoch_orders.iter().enumerate() {
            best.clear();
            for (k, view) in views.iter().enumerate() {
                if vehicle_shard[k] == order_shard[i] || !is_active(k) {
                    continue;
                }
                let d = net.distance(view.anchor_node, order.pickup);
                // Insert into the small sorted top-m buffer; strict
                // ordering by (distance, id) keeps ties first-wins.
                let pos = best
                    .iter()
                    .position(|&(bd, bk)| d.total_cmp(&bd).then((k as u32).cmp(&bk)).is_lt())
                    .unwrap_or(best.len());
                if pos < m {
                    if best.len() == m {
                        best.pop();
                    }
                    best.insert(pos, (d, k as u32));
                }
            }
            for (slot, &(_, k)) in best.iter().enumerate() {
                esc[i * m + slot] = k;
            }
        }
    }

    let mut stats = ShardStats {
        cells: b * k_n,
        ..ShardStats::default()
    };
    // Vehicle-shard-major work list: regions become contiguous runs of the
    // flat list, so the pool's chunked tasks are (mostly) shard-local.
    // Bucketed counting sort — shard counts are tiny and vehicle order
    // within a shard stays ascending (deterministic).
    let num_shards = map.num_shards();
    let mut vehicles_by_shard: Vec<u32> = Vec::with_capacity(k_n);
    let mut buckets = vec![0u32; num_shards + 1];
    for &s in &vehicle_shard {
        buckets[s as usize + 1] += 1;
    }
    for s in 0..num_shards {
        buckets[s + 1] += buckets[s];
    }
    vehicles_by_shard.resize(k_n, 0);
    let mut cursor = buckets;
    for (k, &s) in vehicle_shard.iter().enumerate() {
        vehicles_by_shard[cursor[s as usize] as usize] = k as u32;
        cursor[s as usize] += 1;
    }
    let mut work = Vec::with_capacity(b * k_n);
    for &k in &vehicles_by_shard {
        let ku = k as usize;
        for (i, order) in epoch_orders.iter().enumerate() {
            if !is_active(ku) {
                stats.pruned += 1;
                continue;
            }
            if vehicle_shard[ku] == order_shard[i] {
                stats.evaluated += 1;
            } else if esc[i * m..(i + 1) * m].contains(&k)
                || !planner.provably_infeasible(&views[ku], order)
            {
                stats.evaluated += 1;
                stats.escalated += 1;
            } else {
                stats.pruned += 1;
                continue;
            }
            work.push((i as u32, k));
        }
    }
    SweepPlan { work, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpdp_net::{
        FleetConfig, Node, NodeId, Order, OrderId, Point, RoadNetwork, ShardPolicy, TimeDelta,
        TimePoint,
    };

    /// Two clusters 200 km apart; deadlines allow in-cluster service only.
    fn setup() -> (RoadNetwork, FleetConfig, Vec<Order>) {
        let nodes = vec![
            Node::depot(NodeId(0), Point::new(0.0, 0.0)),
            Node::factory(NodeId(1), Point::new(5.0, 0.0)),
            Node::factory(NodeId(2), Point::new(10.0, 0.0)),
            Node::depot(NodeId(3), Point::new(200.0, 0.0)),
            Node::factory(NodeId(4), Point::new(205.0, 0.0)),
            Node::factory(NodeId(5), Point::new(210.0, 0.0)),
        ];
        let net = RoadNetwork::euclidean(nodes, 1.0).unwrap();
        let fleet = FleetConfig::homogeneous(
            2,
            &[NodeId(0), NodeId(3)],
            10.0,
            500.0,
            2.0,
            60.0,
            TimeDelta::ZERO,
        )
        .unwrap();
        // One order per cluster, one hour of slack: served locally in
        // minutes, unreachable from the other cluster (200 km ≈ 3.3 h).
        let orders = vec![
            Order::new(
                OrderId(0),
                NodeId(1),
                NodeId(2),
                1.0,
                TimePoint::from_hours(8.0),
                TimePoint::from_hours(9.0),
            )
            .unwrap(),
            Order::new(
                OrderId(1),
                NodeId(4),
                NodeId(5),
                1.0,
                TimePoint::from_hours(8.0),
                TimePoint::from_hours(9.0),
            )
            .unwrap(),
        ];
        (net, fleet, orders)
    }

    /// Epoch-time views: the simulator advances every vehicle to the
    /// decision instant before a batch forms, so anchor times sit at `now`
    /// (a vehicle anchored in the past could pre-position and the bound
    /// would rightly not prune it).
    fn views_at(fleet: &FleetConfig, now: TimePoint) -> Vec<VehicleView> {
        fleet
            .vehicles
            .iter()
            .map(|v| {
                let mut view = VehicleView::idle_at_depot(v.id, v.depot);
                view.anchor_time = now;
                view
            })
            .collect()
    }

    #[test]
    fn cross_cluster_cells_prune_and_escalation_overrides() {
        let (net, fleet, orders) = setup();
        let planner = RoutePlanner::new(&net, &fleet, &orders);
        let views = views_at(&fleet, TimePoint::from_hours(8.0));
        let map = Arc::new(ShardMap::build(&net, 2, ShardPolicy::default(), 7));
        let epoch: Vec<&Order> = orders.iter().collect();

        // No escalation: both cross-cluster cells prune.
        let ctx = ShardContext {
            map: Arc::clone(&map),
            escalation: 0,
        };
        let sweep = plan_sweep(&ctx, &planner, &views, &epoch, None);
        assert_eq!(sweep.stats.cells, 4);
        assert_eq!(sweep.stats.pruned, 2);
        assert_eq!(sweep.stats.evaluated, 2);
        assert_eq!(sweep.stats.escalated, 0);
        assert_eq!(sweep.work.len(), 2);
        // Exactly the in-shard diagonal survives.
        assert!(sweep.work.contains(&(0, 0)));
        assert!(sweep.work.contains(&(1, 1)));

        // Escalation m = 1 forces the nearest foreign vehicle back in.
        let ctx = ShardContext { map, escalation: 1 };
        let sweep = plan_sweep(&ctx, &planner, &views, &epoch, None);
        assert_eq!(sweep.stats.pruned, 0);
        assert_eq!(sweep.stats.escalated, 2);
        assert_eq!(sweep.work.len(), 4);
    }

    #[test]
    fn loose_deadlines_keep_every_cell_evaluated() {
        let (net, fleet, mut orders) = setup();
        for o in &mut orders {
            o.deadline = TimePoint::from_hours(48.0);
        }
        let planner = RoutePlanner::new(&net, &fleet, &orders);
        let views = views_at(&fleet, TimePoint::from_hours(8.0));
        let map = Arc::new(ShardMap::build(&net, 2, ShardPolicy::default(), 7));
        let ctx = ShardContext { map, escalation: 0 };
        let epoch: Vec<&Order> = orders.iter().collect();
        let sweep = plan_sweep(&ctx, &planner, &views, &epoch, None);
        assert_eq!(sweep.stats.pruned, 0);
        assert_eq!(sweep.stats.evaluated, 4);
        assert_eq!(sweep.stats.escalated, 2);
        assert_eq!(sweep.stats.pruned_fraction(), 0.0);
    }

    #[test]
    fn work_list_is_vehicle_shard_major() {
        let (net, fleet, orders) = setup();
        let planner = RoutePlanner::new(&net, &fleet, &orders);
        let views = views_at(&fleet, TimePoint::from_hours(8.0));
        let map = Arc::new(ShardMap::build(&net, 2, ShardPolicy::default(), 7));
        let shard_of = |k: u32| map.shard_of(views[k as usize].anchor_node);
        let ctx = ShardContext {
            map: Arc::clone(&map),
            escalation: 2,
        };
        let epoch: Vec<&Order> = orders.iter().collect();
        let sweep = plan_sweep(&ctx, &planner, &views, &epoch, None);
        let shards: Vec<usize> = sweep.work.iter().map(|&(_, k)| shard_of(k)).collect();
        let mut sorted = shards.clone();
        sorted.sort_unstable();
        assert_eq!(shards, sorted, "work must group by vehicle shard");
    }
}
